//! # EOF — Effective On-Hardware Fuzzing of Embedded Operating Systems
//!
//! A from-scratch Rust reproduction of the EuroSys '26 paper. EOF is a
//! feedback-guided fuzzer that tests embedded operating systems *running
//! on hardware*, using the debug port (JTAG/SWD, via an OpenOCD/GDB-style
//! stack) as the single channel of control and observation: test cases go
//! down as direct memory writes, execution synchronises on hardware
//! breakpoints at the on-target agent's sync points, coverage and crash
//! state come back as memory reads and UART logs, and degraded targets
//! are revived by reflashing over the same port.
//!
//! Everything the paper runs on is implemented in this workspace:
//!
//! | crate | role |
//! |---|---|
//! | [`hal`] | simulated MCU boards (RAM, flash partitions, UART, debug surface, fault injection) |
//! | [`dap`] | the debug access port: transport, JTAG TAP, OpenOCD server, GDB RSP |
//! | [`rtos`] | kernel models of FreeRTOS, RT-Thread, NuttX, Zephyr and PoK, with the 19 Table-2 bugs seeded |
//! | [`agent`] | the cross-platform on-target execution agent |
//! | [`speclang`] | the Syzlang-style specification language and prog wire format |
//! | [`specgen`] | LLM-substitute spec extraction, noise model and validation gate |
//! | [`coverage`] | SanCov-style edge instrumentation and host coverage maps |
//! | [`monitors`] | log monitor, exception monitor, liveness watchdogs, state restoration |
//! | [`core`] | the fuzzing engine: generation, corpus, executor, campaigns |
//! | [`baselines`] | Tardis, Gustave, GDBFuzz and SHIFT as engine configurations |
//!
//! # Quickstart
//!
//! ```
//! use eof::prelude::*;
//!
//! // A short EOF campaign against the Zephyr model on the QEMU-class
//! // board (the examples run the real 24-simulated-hour setups).
//! let mut config = FuzzerConfig::eof(OsKind::Zephyr, 42);
//! config.budget_hours = 0.01;
//! let result = run_campaign(config);
//! assert!(result.stats.execs > 0);
//! assert!(result.branches > 0);
//! ```

pub use eof_agent as agent;
pub use eof_baselines as baselines;
pub use eof_core as core;
pub use eof_coverage as coverage;
pub use eof_dap as dap;
pub use eof_hal as hal;
pub use eof_monitors as monitors;
pub use eof_rtos as rtos;
pub use eof_specgen as specgen;
pub use eof_speclang as speclang;

/// The names most programs need.
pub mod prelude {
    pub use eof_agent::{agent_loader, api_table_of, boot_machine, AgentLayout};
    pub use eof_baselines::BaselineKind;
    pub use eof_core::config::{DetectionConfig, GenerationMode, RecoveryConfig};
    pub use eof_core::report::write_campaign_report;
    pub use eof_core::{
        diff_against_serial, fabric_chaos_plan, fabric_grid, run_fabric, run_serial,
        FabricChaosPlan, FabricConfig, FabricFault, FabricReport, SerialMerge,
    };
    pub use eof_core::{
        replay_store, resume_campaign, resume_campaign_with, CampaignStore, Exchange,
        ExchangeImport, LoadedStore, ReplayReport, StoreError,
    };
    pub use eof_core::{run_campaign, CampaignResult, Executor, Fuzzer, FuzzerConfig, Generator};
    pub use eof_coverage::InstrumentMode;
    pub use eof_dap::{DebugTransport, LinkConfig, OcdServer, RspServer, Txn, TxnOp, TxnResult};
    pub use eof_hal::{BoardCatalog, BoardSpec, Machine};
    pub use eof_monitors::{LivenessWatchdog, LogMonitor, StateRestoration};
    pub use eof_rtos::image::{build_image, ImageProfile};
    pub use eof_rtos::{BugId, OsKind};
    pub use eof_specgen::{extract_spec_text, generate_validated, NoiseConfig};
    pub use eof_speclang::{parse_spec, Prog};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_work() {
        let board = BoardCatalog::esp32_devkit();
        assert_eq!(board.name, "esp32-devkitc");
        let spec = parse_spec(&extract_spec_text(OsKind::FreeRtos)).unwrap();
        assert!(!spec.apis.is_empty());
    }
}
