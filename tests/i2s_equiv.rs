//! The cmplog gate: the Redqueen/I2S comparison channel is a *mutation
//! oracle*, not a source of nondeterminism — and it must be invisible
//! when disarmed. Four claims are enforced here:
//!
//! 1. **Determinism** — a cmplog campaign (`FuzzerConfig::eof_cmplog`)
//!    with a fixed seed observes a bit-identical target over scalar and
//!    vectored debug links, operator accounting included; and a rerun
//!    from scratch is bit-exact down to cycle accounting.
//! 2. **Invisibility** — with the channel disarmed (`cmplog: false`)
//!    the campaign is byte-identical, cycles included, to the plain
//!    driver baseline: the ring stays cold, the hooks free, and the
//!    scheduler never runs.
//! 3. **Job-independence** — a fleet of cmplog campaigns merges to the
//!    same per-cell results at any worker count.
//! 4. **Reach** — the magic-guarded driver bugs (#26, #27) are found by
//!    the cmplog campaign and *not* by the otherwise-identical pure
//!    driver campaign at the same step budget: the comparison operands
//!    are load-bearing, not decorative.

use eof::core::{build_fuzzer, FleetRunner, Fuzzer, FuzzerConfig, MutOp};
use eof::hal::FaultPlan;
use eof::rtos::bugs::magic_guarded_bugs;
use eof::rtos::OsKind;

const STEPS: usize = 40;
const SEED: u64 = 7;

/// Fuzzing iterations for the bug-hunt half of the gate. The magic
/// bugs are staged (two comparisons deep, the second only reachable
/// after the first matches), so the ladder needs a longer campaign
/// than the link-equivalence check.
const HUNT_STEPS: usize = 400;

/// Everything an exec campaign can observe about the target, minus
/// cycle accounting.
#[derive(Debug, PartialEq)]
struct Observed {
    execs: u64,
    coverage: Vec<u64>,
    crash_keys: Vec<String>,
    bugs: Vec<String>,
    corpus_len: usize,
    stalls: u64,
    op_execs: [u64; MutOp::COUNT],
    op_interesting: [u64; MutOp::COUNT],
}

fn run(config: FuzzerConfig, steps: usize) -> (Observed, Vec<u8>, u64) {
    let (mut fuzzer, _, _): (Fuzzer, _, _) = build_fuzzer(config, FaultPlan::none());
    for _ in 0..steps {
        fuzzer.step();
    }
    let mut coverage: Vec<u64> = fuzzer.executor().coverage().iter().collect();
    coverage.sort_unstable();
    let mut crash_keys: Vec<String> = fuzzer
        .crashes()
        .unique()
        .map(eof::core::crash::dedup_key)
        .collect();
    crash_keys.sort();
    let found = fuzzer.crashes().bugs_found();
    let mut bugs: Vec<String> = found.iter().map(|b| format!("{b:?}")).collect();
    bugs.sort();
    let mut numbers: Vec<u8> = found.iter().map(|b| b.number()).collect();
    numbers.sort_unstable();
    let stats = fuzzer.stats();
    (
        Observed {
            execs: stats.execs,
            coverage,
            crash_keys,
            bugs,
            corpus_len: fuzzer.corpus().len(),
            stalls: stats.stalls,
            op_execs: stats.op_execs,
            op_interesting: stats.op_interesting,
        },
        numbers,
        fuzzer.executor().now(),
    )
}

/// The cmplog arm is always set in code — never via `EOF_CMPLOG` — so
/// the gate is immune to the parallel test runner's shared environment.
fn cmplog_config(os: OsKind, vectored: bool) -> FuzzerConfig {
    let mut config = FuzzerConfig::eof_cmplog(os, SEED);
    config.budget_hours = 24.0; // never the stopping condition here
    config.vectored = vectored;
    config
}

fn driver_config(os: OsKind, vectored: bool) -> FuzzerConfig {
    let mut config = FuzzerConfig::eof_driver(os, SEED);
    config.budget_hours = 24.0;
    config.vectored = vectored;
    config
}

#[test]
fn cmplog_campaigns_survive_the_vectored_link() {
    for os in [
        OsKind::FreeRtos,
        OsKind::RtThread,
        OsKind::NuttX,
        OsKind::Zephyr,
    ] {
        let (scalar, _, scalar_cycles) = run(cmplog_config(os, false), STEPS);
        let (vectored, _, vectored_cycles) = run(cmplog_config(os, true), STEPS);
        assert!(scalar.execs > 0, "{os:?}: campaign executed nothing");
        assert_eq!(
            scalar, vectored,
            "{os:?}: vectored link changed what the cmplog campaign observed"
        );
        assert!(
            vectored_cycles < scalar_cycles,
            "{os:?}: vectored run saved no cycles \
             (scalar {scalar_cycles}, vectored {vectored_cycles})"
        );
        // The scheduler really attributed mutants to operators.
        assert!(
            scalar.op_execs.iter().sum::<u64>() > 0,
            "{os:?}: no mutants were attributed to operators"
        );
    }
}

#[test]
fn cmplog_campaigns_replay_bit_exact() {
    // Same seed, run twice from scratch: the journal is filled from the
    // target's own comparison operands and the scheduler from its own
    // seeded RNG plane, so the whole campaign must be a pure function
    // of the config — cycle accounting included.
    for os in [OsKind::FreeRtos, OsKind::Zephyr] {
        let (first, _, first_cycles) = run(cmplog_config(os, false), STEPS);
        let (second, _, second_cycles) = run(cmplog_config(os, false), STEPS);
        assert_eq!(first, second, "{os:?}: cmplog campaign is nondeterministic");
        assert_eq!(
            first_cycles, second_cycles,
            "{os:?}: cycle accounting drifted between identical runs"
        );
    }
}

#[test]
fn disarmed_cmplog_is_invisible() {
    // `eof_cmplog` with the arm flipped off must be byte-identical —
    // cycles included — to the plain driver baseline: the ring header
    // rides the upload only when armed, the kernel hooks early-out on
    // the cold capacity word, and the generator's RNG planes are not
    // consulted by a scheduler that never runs.
    for os in [OsKind::FreeRtos, OsKind::Zephyr] {
        for vectored in [false, true] {
            let mut disarmed = cmplog_config(os, vectored);
            disarmed.cmplog = false;
            let (off, _, off_cycles) = run(disarmed, STEPS);
            let (base, _, base_cycles) = run(driver_config(os, vectored), STEPS);
            assert_eq!(
                off, base,
                "{os:?} (vectored={vectored}): disarmed cmplog changed the campaign"
            );
            assert_eq!(
                off_cycles, base_cycles,
                "{os:?} (vectored={vectored}): disarmed cmplog cost cycles"
            );
            assert_eq!(
                off.op_execs,
                [0; MutOp::COUNT],
                "{os:?}: operators ran while disarmed"
            );
        }
    }
}

#[test]
fn jobs_do_not_change_cmplog_results() {
    // The per-campaign journal and scheduler live inside the fuzzer, so
    // worker count is pure mechanism: a 3-worker fleet must produce the
    // same per-cell results as a serial one.
    let grid = |_: ()| -> Vec<FuzzerConfig> {
        [OsKind::FreeRtos, OsKind::Zephyr]
            .into_iter()
            .map(|os| {
                let mut c = FuzzerConfig::eof_cmplog(os, SEED);
                c.budget_hours = 0.02;
                c.snapshot_hours = 0.005;
                c
            })
            .collect()
    };
    let serial: Vec<_> = FleetRunner::new(1).run(grid(()));
    let fleet: Vec<_> = FleetRunner::new(3).run(grid(()));
    assert_eq!(serial.len(), fleet.len());
    for (a, b) in serial.iter().zip(&fleet) {
        let (a, b) = match (a, b) {
            (Ok(a), Ok(b)) => (a, b),
            other => panic!("fleet cell failed: {other:?}"),
        };
        assert_eq!(a.branches, b.branches);
        assert_eq!(a.bugs, b.bugs);
        assert_eq!(a.stats.execs, b.stats.execs);
        assert_eq!(a.stats.op_execs, b.stats.op_execs);
        assert_eq!(a.stats.op_interesting, b.stats.op_interesting);
    }
}

#[test]
fn magic_bugs_need_the_comparison_channel() {
    // The A/B at the heart of the PR: same OS, same seed, same step
    // budget, same MMIO plane — the only delta is the comparison
    // channel. The magic-guarded bugs sit behind 32-bit (and staged
    // 8-bit) equality checks that random mutation cannot thread, and
    // the observed-operand splice can.
    let expect: &[(OsKind, u8)] = &[(OsKind::FreeRtos, 26), (OsKind::Zephyr, 27)];
    assert_eq!(
        magic_guarded_bugs().len(),
        expect.len(),
        "bug table and gate drifted apart"
    );
    for &(os, bug) in expect {
        let (_, pure_bugs, _) = run(driver_config(os, false), HUNT_STEPS);
        assert!(
            !pure_bugs.contains(&bug),
            "{os:?}: the pure driver campaign reached magic bug #{bug} — \
             the A/B control is broken"
        );
        let (_, cmplog_bugs, _) = run(cmplog_config(os, false), HUNT_STEPS);
        assert!(
            cmplog_bugs.contains(&bug),
            "{os:?}: cmplog campaign missed magic bug #{bug} in {HUNT_STEPS} steps \
             (found {cmplog_bugs:?})"
        );
    }
}
