//! The vectored-equivalence gate: batched debug-port transactions
//! (`EOF_VECTORED=1`) are an optimisation of the wire protocol, not of
//! the fuzzer — the same campaign, run over scalar and vectored links,
//! must observe the *same target*. With target-visible time decoupled
//! from debug-port traffic (timers freeze on halt, as real DBGMCU
//! freeze bits do), a fixed number of fuzzing iterations must produce
//! bit-identical coverage bitmaps, crash lists and triaged BugIds on
//! every OS. Only the cycle accounting — the thing the optimisation is
//! *for* — is allowed to differ.

use eof::core::{build_fuzzer, Fuzzer, FuzzerConfig};
use eof::hal::FaultPlan;
use eof::rtos::OsKind;

const STEPS: usize = 40;
const SEED: u64 = 7;

/// Everything an exec campaign can observe about the target, minus
/// cycle accounting.
#[derive(Debug, PartialEq)]
struct Observed {
    execs: u64,
    coverage: Vec<u64>,
    crash_keys: Vec<String>,
    bugs: Vec<String>,
    corpus_len: usize,
    stalls: u64,
}

fn run(os: OsKind, vectored: bool) -> (Observed, u64) {
    let mut config = FuzzerConfig::eof(os, SEED);
    config.budget_hours = 24.0; // never the stopping condition here
    config.vectored = vectored;
    let (mut fuzzer, _, _): (Fuzzer, _, _) = build_fuzzer(config, FaultPlan::none());
    for _ in 0..STEPS {
        fuzzer.step();
    }
    let mut coverage: Vec<u64> = fuzzer.executor().coverage().iter().collect();
    coverage.sort_unstable();
    let mut crash_keys: Vec<String> = fuzzer
        .crashes()
        .unique()
        .map(eof::core::crash::dedup_key)
        .collect();
    crash_keys.sort();
    let mut bugs: Vec<String> = fuzzer
        .crashes()
        .bugs_found()
        .iter()
        .map(|b| format!("{b:?}"))
        .collect();
    bugs.sort();
    let stats = fuzzer.stats();
    (
        Observed {
            execs: stats.execs,
            coverage,
            crash_keys,
            bugs,
            corpus_len: fuzzer.corpus().len(),
            stalls: stats.stalls,
        },
        fuzzer.executor().now(),
    )
}

#[test]
fn vectored_and_scalar_links_observe_the_same_target() {
    for os in [
        OsKind::FreeRtos,
        OsKind::RtThread,
        OsKind::NuttX,
        OsKind::Zephyr,
    ] {
        let (scalar, scalar_cycles) = run(os, false);
        let (vectored, vectored_cycles) = run(os, true);
        assert!(scalar.execs > 0, "{os:?}: campaign executed nothing");
        assert_eq!(
            scalar, vectored,
            "{os:?}: vectored link changed what the campaign observed"
        );
        // The one permitted difference — and the point of the batching:
        // the same work takes fewer simulated cycles over the wire.
        assert!(
            vectored_cycles < scalar_cycles,
            "{os:?}: vectored run saved no cycles \
             (scalar {scalar_cycles}, vectored {vectored_cycles})"
        );
    }
}
