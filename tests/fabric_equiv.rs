//! The fabric determinism gate, as a tier-1 test: an N-worker fabric
//! over the full four-OS grid must merge to *exactly* the bug set and
//! coverage bitmap a plain serial loop produces — and keep doing so
//! when a worker is killed mid-campaign. This is the PR-5/PR-6
//! differential-equivalence pattern applied one layer up: the fabric
//! (leases, checkpoints, reassignment) is pure mechanism and must be
//! invisible in the results.

use eof::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn root(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "eof-fabric-gate-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

const ALL_OSES: [OsKind; 4] = [
    OsKind::FreeRtos,
    OsKind::RtThread,
    OsKind::NuttX,
    OsKind::Zephyr,
];

fn grid(hours: f64) -> Vec<FuzzerConfig> {
    fabric_grid(&ALL_OSES, &[7], hours, false)
}

#[test]
fn four_worker_fabric_equals_serial_on_all_four_oses() {
    let config = FabricConfig::new(grid(0.05), 4, &root("gate"));
    let report = run_fabric(&config, &FabricChaosPlan::none());
    assert_eq!(report.violations, Vec::<String>::new());
    assert!(report.failures.is_empty(), "{:?}", report.failures);
    assert_eq!(report.outcomes.len(), config.cells.len());

    let serial = run_serial(&config.cells);
    assert_eq!(
        diff_against_serial(&report, &serial),
        Vec::<String>::new(),
        "4-worker fabric must be byte-identical to the serial loop"
    );
    // The gate is not vacuous: the grid finds real bugs and coverage.
    assert!(!report.merged_bugs.is_empty(), "grid found no bugs");
    assert!(
        report.merged_edges.len() > 100,
        "grid covered almost nothing"
    );
    // And the exchange holds every completed cell's deduped pool.
    assert!(report.exchange.imported > 0);
    assert_eq!(report.exchange.write_errors, 0);
    let _ = std::fs::remove_dir_all(&config.root);
}

#[test]
fn worker_kill_mid_campaign_loses_no_confirmed_bug() {
    // Kill the worker holding cell 0 right after its first checkpoint
    // lands, and stall-expire cell 2's lease for good measure: the
    // reassigned successors must resume the dead workers' stores
    // (prefix-verified, not re-trusted) and the final merge must equal
    // a fault-free run — zero lost bugs, zero lost coverage.
    let mut config = FabricConfig::new(grid(0.05), 4, &root("kill"));
    config.slices_per_cell = 2;
    let plan = FabricChaosPlan::none().with(0, 0, FabricFault::Kill).with(
        2,
        0,
        FabricFault::Stall {
            rounds: config.lease_rounds + 2,
        },
    );
    let report = run_fabric(&config, &plan);
    assert_eq!(report.violations, Vec::<String>::new());
    assert!(report.failures.is_empty(), "{:?}", report.failures);
    assert_eq!(report.accounting.worker_deaths, 1);
    assert_eq!(report.lease_expiries, 1);
    assert_eq!(report.reassignments.len(), 2);

    // Both reassigned cells resumed from the last valid checkpoint.
    for cell in [0usize, 2] {
        let outcome = &report
            .outcomes
            .iter()
            .find(|(c, _)| *c == cell)
            .expect("reassigned cell completed")
            .1;
        assert_eq!(outcome.attempts, 2, "cell {cell}: one reassignment");
        assert!(
            outcome.prefix_verified > 0,
            "cell {cell}: successor did not prefix-verify the checkpoint"
        );
    }

    let serial = run_serial(&config.cells);
    assert_eq!(
        diff_against_serial(&report, &serial),
        Vec::<String>::new(),
        "faulted fabric must still merge identically to serial"
    );

    let baseline = FabricConfig::new(grid(0.05), 4, &root("kill-baseline"));
    let clean = run_fabric(&baseline, &FabricChaosPlan::none());
    assert_eq!(
        report.merged_bugs, clean.merged_bugs,
        "a confirmed bug was lost"
    );
    assert_eq!(report.merged_edges, clean.merged_edges, "coverage was lost");
    let _ = std::fs::remove_dir_all(&config.root);
    let _ = std::fs::remove_dir_all(&baseline.root);
}

#[test]
fn worker_count_is_invisible_in_the_merge() {
    // 1, 2 and 4 workers over the same cells: identical gate unions and
    // identical exchange totals (exports happen in cell order, not
    // completion order).
    let cells = grid(0.04);
    let mut merges = Vec::new();
    for workers in [1usize, 2, 4] {
        let config = FabricConfig::new(cells.clone(), workers, &root("scale"));
        let report = run_fabric(&config, &FabricChaosPlan::none());
        assert!(report.failures.is_empty());
        merges.push((
            report.merged_bugs.clone(),
            report.merged_edges.clone(),
            report.exchange.imported,
        ));
        let _ = std::fs::remove_dir_all(&config.root);
    }
    assert_eq!(merges[0], merges[1]);
    assert_eq!(merges[1], merges[2]);
}
