//! Exhaustive API-surface smoke: every published API of every OS is
//! driven end to end through the agent at least once, with producers
//! synthesised for its resource parameters. Nothing may panic on the
//! host, and the target must stay drivable afterwards.

use eof::prelude::*;
use eof::rtos::api::ArgKind;
use eof::speclang::prog::{ArgValue, Call};

fn executor(os: OsKind) -> Executor {
    let board = eof::rtos::registry::default_board(os);
    let mut config = FuzzerConfig::eof(os, 2);
    config.board = board.clone();
    let image = build_image(os, ImageProfile::FullSystem, &InstrumentMode::Full);
    let machine = boot_machine(
        board.clone(),
        os,
        ImageProfile::FullSystem,
        &InstrumentMode::Full,
    );
    let kconfig = eof::monitors::parse_kconfig(&eof::monitors::render_kconfig(
        "arm",
        machine.flash().table(),
    ))
    .unwrap();
    let restoration =
        StateRestoration::from_kconfig(&kconfig, board.flash_size, vec![("kernel".into(), image)])
            .unwrap();
    Executor::new(
        DebugTransport::attach(machine, LinkConfig::default()),
        config,
        api_table_of(os),
        restoration,
    )
    .unwrap()
}

/// A benign value for one parameter, producing prerequisite calls into
/// `prefix` for resource parameters.
fn benign_value(os: OsKind, kind: &ArgKind, prefix: &mut Vec<Call>, depth: usize) -> ArgValue {
    match kind {
        ArgKind::Int { min, max, .. } => {
            // Mid-range keeps clear of the magic edges.
            ArgValue::Int(min + (max - min) / 3)
        }
        ArgKind::Enum { values, .. } => ArgValue::Int(values.first().map(|(_, v)| *v).unwrap_or(0)),
        ArgKind::Str { max } => ArgValue::CString("t0".chars().take(*max as usize).collect()),
        ArgKind::Bytes { .. } => ArgValue::Buffer(b"[1]".to_vec()),
        ArgKind::ResourceIn(res) => {
            if depth < 3 {
                // Find a producer API for this resource kind.
                let kernel = eof::rtos::registry::make_kernel(os);
                let producer = kernel
                    .api_table()
                    .iter()
                    .find(|d| d.returns == Some(res))
                    .cloned();
                if let Some(p) = producer {
                    let args = p
                        .args
                        .iter()
                        .map(|a| benign_value(os, &a.kind, prefix, depth + 1))
                        .collect();
                    prefix.push(Call {
                        api: p.name.to_string(),
                        args,
                    });
                    return ArgValue::ResourceRef(prefix.len() as u16 - 1);
                }
            }
            ArgValue::Int(u64::MAX)
        }
    }
}

#[test]
fn every_api_of_every_os_executes_end_to_end() {
    for os in OsKind::ALL {
        let mut ex = executor(os);
        let kernel = eof::rtos::registry::make_kernel(os);
        for desc in kernel.api_table() {
            let mut calls = Vec::new();
            let args = desc
                .args
                .iter()
                .map(|a| benign_value(os, &a.kind, &mut calls, 0))
                .collect();
            calls.push(Call {
                api: desc.name.to_string(),
                args,
            });
            let prog = Prog {
                mmio: vec![],
                calls,
            };
            let outcome = ex.run_one(&prog);
            // Benign mid-range arguments must not trip any seeded bug
            // (the Table-2 triggers all need edge values or chains that
            // this construction avoids).
            assert!(
                outcome.crash.is_none(),
                "{os}::{}: unexpected crash {:?}",
                desc.name,
                outcome.crash.map(|c| c.message)
            );
        }
        // The target is still healthy after sweeping the whole surface.
        let probe = Prog {
            mmio: vec![],
            calls: vec![Call {
                api: kernel.api_table()[0].name.to_string(),
                args: kernel.api_table()[0]
                    .args
                    .iter()
                    .map(|a| benign_value(os, &a.kind, &mut Vec::new(), 3))
                    .collect(),
            }],
        };
        let out = ex.run_one(&probe);
        assert!(out.crash.is_none(), "{os}: post-sweep probe crashed");
    }
}

#[test]
fn spec_surface_equals_kernel_surface() {
    // The validated spec drives exactly the published APIs: the default
    // scope is everything outside the driver modules, and the driver
    // scope restores the full surface.
    for os in OsKind::ALL {
        let kernel = eof::rtos::registry::make_kernel(os);
        let pure_surface = kernel
            .api_table()
            .iter()
            .filter(|d| !eof::specgen::DRIVER_MODULES.contains(&d.module))
            .count();
        let (spec, _) = generate_validated(os, &NoiseConfig::none(), true);
        assert_eq!(spec.apis.len(), pure_surface, "{os}");
        let (full, _) =
            eof::specgen::generate_validated_scoped(os, &NoiseConfig::none(), true, true);
        assert_eq!(
            full.apis.len(),
            kernel.api_table().len(),
            "{os} driver scope"
        );
    }
}
