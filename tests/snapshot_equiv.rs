//! The snapshot-equivalence gate: dirty-page delta restore
//! (`EOF_SNAPSHOT=1`) is an optimisation of *recovery*, not of the
//! fuzzer — the same campaign, recovering via snapshot rewind or via
//! the reboot/reflash ladder, must observe the *same target*. The delta
//! restore rewinds RAM to the parked snapshot and restarts the core,
//! which is observationally identical to a reboot of an intact image;
//! a fixed number of fuzzing iterations with identically-timed injected
//! faults must therefore produce bit-identical coverage bitmaps, crash
//! lists and triaged BugIds on every OS. Only the cycle accounting —
//! the thing the fast path is *for* — is allowed to differ, and it must
//! differ in the right direction.

use eof::core::{build_fuzzer, Fuzzer, FuzzerConfig};
use eof::hal::{FaultPlan, InjectedFault};
use eof::rtos::OsKind;

const STEPS: usize = 40;
const SEED: u64 = 7;
/// Steps after which a firmware freeze is injected (relative to the
/// next exec, so it lands at the same logical point in both runs).
const FAULT_AFTER: [usize; 2] = [10, 25];

/// Everything an exec campaign can observe about the target, minus
/// cycle accounting.
#[derive(Debug, PartialEq)]
struct Observed {
    execs: u64,
    coverage: Vec<u64>,
    crash_keys: Vec<String>,
    bugs: Vec<String>,
    corpus_len: usize,
    stalls: u64,
    episodes: u64,
}

fn run(os: OsKind, snapshot: bool) -> (Observed, u64) {
    let mut config = FuzzerConfig::eof(os, SEED);
    config.budget_hours = 24.0; // never the stopping condition here
    config.snapshot = snapshot;
    let (mut fuzzer, _, _): (Fuzzer, _, _) = build_fuzzer(config, FaultPlan::none());
    for step in 0..STEPS {
        // Freeze the firmware a fixed distance into an upcoming exec:
        // `set_fault_plan` rebases to the current bus time, and per-exec
        // target behaviour is mode-independent, so the freeze fires at
        // the same logical point whether or not earlier recoveries took
        // the fast path.
        if FAULT_AFTER.contains(&step) {
            fuzzer
                .executor_mut()
                .transport_mut()
                .machine_mut()
                .set_fault_plan(FaultPlan::none().at(10, InjectedFault::FreezeFirmware));
        }
        fuzzer.step();
    }
    let mut coverage: Vec<u64> = fuzzer.executor().coverage().iter().collect();
    coverage.sort_unstable();
    let mut crash_keys: Vec<String> = fuzzer
        .crashes()
        .unique()
        .map(eof::core::crash::dedup_key)
        .collect();
    crash_keys.sort();
    let mut bugs: Vec<String> = fuzzer
        .crashes()
        .bugs_found()
        .iter()
        .map(|b| format!("{b:?}"))
        .collect();
    bugs.sort();
    let stats = fuzzer.stats();
    let episodes = fuzzer.executor().resilience().episodes;
    (
        Observed {
            execs: stats.execs,
            coverage,
            crash_keys,
            bugs,
            corpus_len: fuzzer.corpus().len(),
            stalls: stats.stalls,
            episodes,
        },
        fuzzer.executor().now(),
    )
}

#[test]
fn snapshot_and_reboot_recovery_observe_the_same_target() {
    for os in [
        OsKind::FreeRtos,
        OsKind::RtThread,
        OsKind::NuttX,
        OsKind::Zephyr,
    ] {
        let (reboot, reboot_cycles) = run(os, false);
        let (snap, snap_cycles) = run(os, true);
        assert!(reboot.execs > 0, "{os:?}: campaign executed nothing");
        assert!(
            reboot.episodes >= FAULT_AFTER.len() as u64,
            "{os:?}: injected freezes produced no recovery episodes \
             ({} episodes) — the gate is vacuous",
            reboot.episodes
        );
        assert_eq!(
            reboot, snap,
            "{os:?}: snapshot recovery changed what the campaign observed"
        );
        // The one permitted difference — and the point of the fast
        // path: the same recoveries take fewer simulated cycles.
        assert!(
            snap_cycles < reboot_cycles,
            "{os:?}: snapshot run saved no cycles \
             (reboot {reboot_cycles}, snapshot {snap_cycles})"
        );
    }
}
