//! The CI replay gate, as a tier-1 test: the checked-in regression
//! corpus under `tests/regression_corpus/` must replay green, a
//! hand-broken reproducer must turn the gate red, and damaged store
//! entries must degrade to counted skips — never panics, never silent
//! passes.

use eof::core::persist;
use eof::prelude::*;
use std::path::{Path, PathBuf};

fn corpus_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/regression_corpus")
}

fn corpus_stores() -> Vec<PathBuf> {
    let mut stores: Vec<PathBuf> = std::fs::read_dir(corpus_root())
        .expect("tests/regression_corpus is checked in")
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.join("manifest.eof").is_file())
        .collect();
    stores.sort();
    stores
}

fn scratch_copy(store: &Path, tag: &str) -> PathBuf {
    fn copy_dir(from: &Path, to: &Path) {
        std::fs::create_dir_all(to).unwrap();
        for entry in std::fs::read_dir(from).unwrap().flatten() {
            let src = entry.path();
            let dst = to.join(entry.file_name());
            if src.is_dir() {
                copy_dir(&src, &dst);
            } else {
                std::fs::copy(&src, &dst).unwrap();
            }
        }
    }
    let dir = std::env::temp_dir().join(format!(
        "eof-gate-{tag}-{}-{}",
        std::process::id(),
        store.file_name().unwrap().to_string_lossy()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    copy_dir(store, &dir);
    dir
}

#[test]
fn checked_in_corpus_replays_green() {
    let stores = corpus_stores();
    assert!(!stores.is_empty(), "regression corpus is missing");
    for store in stores {
        let report = replay_store(&store).unwrap_or_else(|e| {
            panic!("store {} failed to load: {e}", store.display());
        });
        assert!(!report.cases.is_empty(), "{}: empty store", store.display());
        assert!(
            report.cases.iter().any(|c| c.kind == "crash"),
            "{}: no crash reproducer in the corpus",
            store.display()
        );
        let failing: Vec<_> = report.cases.iter().filter(|c| !c.pass).collect();
        assert!(
            failing.is_empty(),
            "{}: {} of {} cases failed to reproduce: {failing:?}",
            store.display(),
            failing.len(),
            report.cases.len()
        );
        assert_eq!(report.skips.total(), 0, "{}: load skips", store.display());
    }
}

#[test]
fn a_hand_broken_reproducer_turns_the_gate_red() {
    // Swap a stored crash reproducer's prog for one of the store's
    // benign seed progs, fixing up the prog field only — the record
    // stays well-formed, so the *replay* (not the parser) must catch it.
    let store = scratch_copy(&corpus_stores()[0], "tamper");
    let loaded = persist::open(&store).unwrap();
    let victim = loaded
        .crashes
        .iter()
        .find(|c| c.confirmed)
        .expect("corpus store holds a confirmed crash");
    let crash_path = store
        .join("crashes")
        .join(format!("{:016x}.crash", victim.key_hash));
    let crash_text = std::fs::read_to_string(&crash_path).unwrap();
    let seed_path = std::fs::read_dir(store.join("corpus"))
        .unwrap()
        .flatten()
        .map(|e| e.path())
        .min()
        .unwrap();
    let seed_text = std::fs::read_to_string(seed_path).unwrap();
    let benign_prog = seed_text
        .lines()
        .find(|l| l.starts_with("prog = "))
        .unwrap()
        .to_string();
    let tampered: String = crash_text
        .lines()
        .map(|l| {
            if l.starts_with("prog = ") {
                benign_prog.clone()
            } else {
                l.to_string()
            }
        })
        .collect::<Vec<_>>()
        .join("\n")
        + "\n";
    assert_ne!(tampered, crash_text, "tampering had no effect");
    std::fs::write(&crash_path, tampered).unwrap();

    let report = replay_store(&store).unwrap();
    assert!(!report.all_passed(), "tampered store replayed green");
    assert!(
        report
            .cases
            .iter()
            .any(|c| !c.pass && c.kind == "crash" && c.id == format!("{:016x}", victim.key_hash)),
        "the tampered reproducer is the case that fails: {:?}",
        report.cases
    );
    assert!(report.to_json().contains("\"verdict\": \"FAIL\""));
    let _ = std::fs::remove_dir_all(&store);
}

#[test]
fn damaged_entries_are_counted_skips_not_failures() {
    let store = scratch_copy(&corpus_stores()[0], "damage");
    let mut seeds = std::fs::read_dir(store.join("corpus"))
        .unwrap()
        .flatten()
        .map(|e| e.path())
        .collect::<Vec<_>>();
    seeds.sort();
    // Truncate one seed mid-record and flip another's schema version.
    let truncated = std::fs::read_to_string(&seeds[0]).unwrap();
    std::fs::write(&seeds[0], &truncated[..truncated.len() / 2]).unwrap();
    let flipped = std::fs::read_to_string(&seeds[1])
        .unwrap()
        .replace("schema = 1", "schema = 999");
    std::fs::write(&seeds[1], flipped).unwrap();

    let loaded = persist::open(&store).unwrap();
    assert_eq!(loaded.skips.corrupt, 1);
    assert_eq!(loaded.skips.foreign_schema, 1);

    // Loading and replaying never panics on damage — but the gate must
    // notice the pool is incomplete: the per-seed coverage baseline is
    // prefix-dependent, so a lossy pool cannot reproduce its recorded
    // final branch count. Crash reproducers are self-contained and stay
    // green.
    let report = replay_store(&store).unwrap();
    assert_eq!(report.skips.total(), 2);
    assert!(
        report
            .cases
            .iter()
            .filter(|c| c.kind == "crash")
            .all(|c| c.pass),
        "crash reproducers must not depend on the seed pool: {:?}",
        report.cases
    );
    assert!(
        report.cases.iter().any(|c| c.kind == "coverage" && !c.pass),
        "a lossy seed pool replayed green: {:?}",
        report.cases
    );
    let _ = std::fs::remove_dir_all(&store);
}

#[test]
fn corpus_resumes_to_a_longer_budget() {
    // The `--resume` path on the checked-in corpus: re-derive the
    // interrupted prefix and fuzz on; the persisted pool, crashes and
    // coverage must all verify as a prefix of the longer run.
    let store = scratch_copy(&corpus_stores()[0], "resume");
    let prior = persist::open(&store).unwrap().manifest;
    let outcome = resume_campaign(&store, prior.consumed_hours * 1.5)
        .unwrap_or_else(|e| panic!("resume failed: {e}"));
    assert!(outcome.verified_seeds > 0);
    assert!(outcome.verified_edges > 0);
    assert!(outcome.result.branches >= prior.branches);
    assert!(outcome.result.stats.execs > prior.execs);
    let reloaded = persist::open(&store).unwrap();
    assert_eq!(reloaded.manifest.branches, outcome.result.branches);
    let _ = std::fs::remove_dir_all(&store);
}
