//! Integration checks of the §5.5 overhead properties: instrumentation
//! must cost image bytes in the paper's band and execution throughput
//! measurably, and the costs must come from the modelled mechanisms.

use eof::prelude::*;

#[test]
fn image_overhead_in_paper_band() {
    // Paper: 4.32–9.58 % across the four reported OSs, average 6.44 %.
    let mut sum = 0.0;
    let mut n = 0;
    for os in [
        OsKind::NuttX,
        OsKind::RtThread,
        OsKind::Zephyr,
        OsKind::FreeRtos,
    ] {
        let plain = build_image(os, ImageProfile::FullSystem, &InstrumentMode::None).len() as f64;
        let inst = build_image(os, ImageProfile::FullSystem, &InstrumentMode::Full).len() as f64;
        let pct = (inst - plain) / plain * 100.0;
        assert!((4.0..10.0).contains(&pct), "{os}: {pct:.2}%");
        sum += pct;
        n += 1;
    }
    let avg = sum / n as f64;
    assert!((avg - 6.44).abs() < 0.5, "average {avg:.2}% vs paper 6.44%");
}

#[test]
fn module_confined_instrumentation_is_much_smaller() {
    let full = build_image(
        OsKind::FreeRtos,
        ImageProfile::AppLevel,
        &InstrumentMode::Full,
    )
    .len();
    let confined = build_image(
        OsKind::FreeRtos,
        ImageProfile::AppLevel,
        &InstrumentMode::Modules(vec!["json".into(), "http".into()]),
    )
    .len();
    let none = build_image(
        OsKind::FreeRtos,
        ImageProfile::AppLevel,
        &InstrumentMode::None,
    )
    .len();
    assert!(none < confined && confined < full);
}

#[test]
fn execution_overhead_is_positive_and_bounded() {
    // One 10-simulated-minute window per mode, like §5.5.2.
    let runs = |mode: InstrumentMode| -> u64 {
        let mut cfg = FuzzerConfig::eof(OsKind::RtThread, 42);
        cfg.instrument = mode;
        cfg.budget_hours = 10.0 / 60.0;
        cfg.snapshot_hours = cfg.budget_hours;
        run_campaign(cfg).stats.execs
    };
    let plain = runs(InstrumentMode::None);
    let instrumented = runs(InstrumentMode::Full);
    assert!(plain > 100, "throughput sanity: {plain}");
    let slowdown = (plain as f64 - instrumented as f64) / plain as f64 * 100.0;
    assert!(
        (3.0..60.0).contains(&slowdown),
        "slowdown {slowdown:.1}% out of the plausible band ({plain} vs {instrumented})"
    );
}

#[test]
fn uninstrumented_images_make_no_coverage_traffic() {
    let mut cfg = FuzzerConfig::eof(OsKind::Zephyr, 9);
    cfg.instrument = InstrumentMode::None;
    cfg.budget_hours = 0.02;
    let r = run_campaign(cfg);
    assert_eq!(r.branches, 0, "no instrumentation, no edges");
    assert!(r.stats.execs > 10);
}
