//! Integration tests of the debug-port stack: OpenOCD commands and GDB
//! RSP packets driving real agent firmware, plus monitor behaviour over
//! the same link.

use eof::dap::{frame_packet, parse_packet};
use eof::monitors::{ExceptionMonitor, Liveness, LivenessWatchdog};
use eof::prelude::*;

fn transport(os: OsKind) -> DebugTransport {
    let m = boot_machine(
        BoardCatalog::qemu_virt_arm(),
        os,
        ImageProfile::FullSystem,
        &InstrumentMode::Full,
    );
    DebugTransport::attach(m, LinkConfig::default())
}

#[test]
fn ocd_session_against_live_agent() {
    let mut ocd = OcdServer::new(transport(OsKind::Zephyr));
    assert!(ocd.execute("targets").unwrap().contains("qemu-virt-arm"));
    // Let it boot, then read the PC twice — it must move.
    ocd.transport_mut().continue_until_halt(500).unwrap();
    let pc1 = ocd.execute("reg pc").unwrap();
    ocd.transport_mut().continue_until_halt(500).unwrap();
    let pc2 = ocd.execute("reg pc").unwrap();
    assert_ne!(pc1, pc2, "agent must make progress");
    // Memory scratch write via the text protocol.
    ocd.execute("mww 0x40000010 0x12345678").unwrap();
    assert!(ocd
        .execute("mdw 0x40000010")
        .unwrap()
        .contains("0x12345678"));
}

#[test]
fn rsp_session_sets_breakpoint_at_executor_main() {
    let t = transport(OsKind::FreeRtos);
    let main_addr = t.symbol("executor_main").unwrap();
    let mut rsp = eof::dap::RspServer::new(t);
    let z = format!("Z0,{main_addr:x},4");
    assert_eq!(
        parse_packet(&rsp.handle(&frame_packet(&z)).unwrap()).unwrap(),
        "OK"
    );
    let reply = rsp.handle(&frame_packet("c")).unwrap();
    assert_eq!(parse_packet(&reply).unwrap(), "S05");
    // Read the PC register packet and confirm it is the breakpoint.
    let pc_reply = rsp.handle(&frame_packet("p20")).unwrap();
    let hex = parse_packet(&pc_reply).unwrap().to_string();
    let bytes: Vec<u8> = (0..hex.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&hex[i..i + 2], 16).unwrap())
        .collect();
    let pc = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    assert_eq!(pc, main_addr);
}

#[test]
fn watchdog_sees_healthy_agent_as_alive() {
    let mut t = transport(OsKind::NuttX);
    let mut w = LivenessWatchdog::new();
    for _ in 0..10 {
        t.continue_until_halt(300).unwrap();
        assert_eq!(w.check(&mut t), Liveness::Alive);
    }
    assert_eq!(w.stalls(), 0);
}

#[test]
fn exception_monitor_arms_on_every_os() {
    for os in OsKind::ALL {
        let kernel = eof::rtos::registry::make_kernel(os);
        let mut t = transport(os);
        let mon = ExceptionMonitor::arm(&mut t, kernel.exception_symbol(), kernel.assert_symbol());
        assert!(mon.is_ok(), "{os}");
    }
}

#[test]
fn uart_log_flows_over_the_link() {
    let mut t = transport(OsKind::Zephyr);
    t.continue_until_halt(2_000).unwrap();
    let log = String::from_utf8_lossy(&t.drain_uart()).into_owned();
    assert!(log.contains("Booting Zephyr OS"), "{log}");
}

#[test]
fn link_outage_and_recovery() {
    let mut t = transport(OsKind::Zephyr);
    let now = t.now();
    t.schedule_outage(now, 5_000);
    assert!(t.read_pc().is_err());
    t.sleep(6_000);
    assert!(t.read_pc().is_ok());
}

#[test]
fn flash_checksum_detects_corruption_over_link() {
    let mut t = transport(OsKind::Zephyr);
    let before = t.flash_checksum("kernel").unwrap();
    let off = t.machine().flash().table().get("kernel").unwrap().offset;
    t.machine_mut().flash_mut().flip_bit(off + 999, 1).unwrap();
    let after = t.flash_checksum("kernel").unwrap();
    assert_ne!(before, after);
}
