//! End-to-end integration tests: full campaigns across every crate in
//! the workspace — image build, flash, boot, spec generation, fuzzing
//! loop, monitors, triage.

use eof::prelude::*;

fn short(os: OsKind, seed: u64, hours: f64) -> FuzzerConfig {
    let mut c = FuzzerConfig::eof(os, seed);
    c.budget_hours = hours;
    c.snapshot_hours = (hours / 4.0).max(0.005);
    c
}

#[test]
fn every_os_fuzzes_end_to_end() {
    for os in OsKind::ALL {
        let r = run_campaign(short(os, 5, 0.05));
        assert!(r.stats.execs > 10, "{os}: {}", r.stats.execs);
        assert!(r.branches > 10, "{os}: {}", r.branches);
        assert!(!r.history.is_empty(), "{os}");
    }
}

#[test]
fn campaigns_are_bit_deterministic() {
    let a = run_campaign(short(OsKind::RtThread, 17, 0.05));
    let b = run_campaign(short(OsKind::RtThread, 17, 0.05));
    assert_eq!(a.branches, b.branches);
    assert_eq!(a.stats.execs, b.stats.execs);
    assert_eq!(a.bugs, b.bugs);
    assert_eq!(a.crashes.len(), b.crashes.len());
}

#[test]
fn rtthread_campaign_finds_shallow_bugs_quickly() {
    // One simulated hour of guided fuzzing reliably finds several of the
    // RT-Thread bugs (the exact set is seed-dependent; at least two of
    // the shallow ones must show up).
    let r = run_campaign(short(OsKind::RtThread, 3, 1.0));
    assert!(
        r.bugs.len() >= 2,
        "expected ≥2 bugs in 1h, got {:?}",
        r.bugs.iter().map(|b| b.number()).collect::<Vec<_>>()
    );
    for bug in &r.bugs {
        assert_eq!(bug.info().os, OsKind::RtThread);
    }
}

#[test]
fn crash_reports_carry_figure6_style_backtraces() {
    let r = run_campaign(short(OsKind::RtThread, 3, 1.0));
    let with_bt = r.crashes.iter().filter(|c| !c.backtrace.is_empty()).count();
    assert!(with_bt > 0, "no crash carried a backtrace");
    for crash in &r.crashes {
        assert!(!crash.message.is_empty());
        assert!(crash.at_hours >= 0.0 && crash.at_hours <= 1.1);
    }
}

#[test]
fn eof_beats_eof_nf_on_zephyr_at_scale() {
    let mut eof_cfg = short(OsKind::Zephyr, 42, 4.0);
    eof_cfg.snapshot_hours = 1.0;
    let mut nf_cfg = eof_cfg.clone();
    nf_cfg.coverage_feedback = false;
    nf_cfg.crash_feedback = false;
    let eof = run_campaign(eof_cfg);
    let nf = run_campaign(nf_cfg);
    assert!(
        eof.branches > nf.branches,
        "EOF ({}) must out-cover EOF-nf ({}) at 4 simulated hours",
        eof.branches,
        nf.branches
    );
}

#[test]
fn baseline_configs_run_and_stay_in_their_lanes() {
    use eof::baselines::BaselineKind;
    // Tardis on Zephyr: timeout-only, QEMU board.
    let mut cfg = BaselineKind::Tardis
        .full_system_config(OsKind::Zephyr, 9)
        .unwrap();
    cfg.budget_hours = 0.05;
    let r = run_campaign(cfg);
    assert!(r.stats.execs > 10);
    // GDBFuzz app-level: random bytes, sparse observation.
    let mut cfg = BaselineKind::GdbFuzz.app_level_config(9).unwrap();
    cfg.budget_hours = 0.05;
    let r = run_campaign(cfg);
    assert!(r.stats.execs > 10);
    // Gustave refuses non-PoK targets.
    assert!(BaselineKind::Gustave
        .full_system_config(OsKind::Zephyr, 9)
        .is_none());
}

#[test]
fn app_level_confinement_restricts_modules() {
    use eof::baselines::BaselineKind;
    let mut cfg = BaselineKind::Eof.app_level_config(4).unwrap();
    cfg.budget_hours = 0.2;
    let r = run_campaign(cfg);
    assert!(r.stats.execs > 10);
    assert!(r.branches > 10);
    // No kernel-module bug can be found when only json+http are driven.
    assert!(
        r.bugs.is_empty(),
        "app-level campaign must not reach kernel bugs: {:?}",
        r.bugs
    );
}

#[test]
fn spec_pipeline_reports_surface_coverage() {
    let r = run_campaign(short(OsKind::NuttX, 8, 0.02));
    assert!(r.spec_report.admitted_apis >= 20);
    assert!(r.spec_report.validated);
}

#[test]
fn image_bytes_match_builder() {
    let r = run_campaign(short(OsKind::Zephyr, 8, 0.01));
    let img = build_image(
        OsKind::Zephyr,
        ImageProfile::FullSystem,
        &InstrumentMode::Full,
    );
    assert_eq!(r.image_bytes, img.len());
}
