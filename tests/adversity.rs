//! Robustness under adversity: campaigns must survive link outages,
//! scheduled flash corruption, core lockups and hostile coverage-buffer
//! state without host-side panics, and keep making progress afterwards.

use eof::hal::{FaultPlan, InjectedFault};
use eof::prelude::*;
use eof::speclang::prog::{ArgValue, Call};

fn harness(os: OsKind, plan: FaultPlan) -> Executor {
    let board = eof::rtos::registry::default_board(os);
    let mut config = FuzzerConfig::eof(os, 21);
    config.board = board.clone();
    let image = build_image(os, ImageProfile::FullSystem, &InstrumentMode::Full);
    let mut machine = boot_machine(
        board.clone(),
        os,
        ImageProfile::FullSystem,
        &InstrumentMode::Full,
    );
    machine.set_fault_plan(plan);
    let kconfig = eof::monitors::parse_kconfig(&eof::monitors::render_kconfig(
        "arm",
        machine.flash().table(),
    ))
    .unwrap();
    let restoration =
        StateRestoration::from_kconfig(&kconfig, board.flash_size, vec![("kernel".into(), image)])
            .unwrap();
    Executor::new(
        DebugTransport::attach(machine, LinkConfig::default()),
        config,
        api_table_of(os),
        restoration,
    )
    .unwrap()
}

fn probe(os: OsKind) -> Prog {
    let call = match os {
        OsKind::Zephyr => Call {
            api: "k_yield".into(),
            args: vec![],
        },
        OsKind::NuttX => Call {
            api: "sched_tick".into(),
            args: vec![ArgValue::Int(1)],
        },
        _ => Call {
            api: "rt_tick_increase".into(),
            args: vec![ArgValue::Int(1)],
        },
    };
    Prog {
        mmio: vec![],
        calls: vec![call],
    }
}

#[test]
fn survives_scheduled_core_kill() {
    // Plan cycles count from arming (post-boot); a trivial exec costs
    // ~80 bus cycles, so 2_000 lands the kill mid-loop.
    let mut ex = harness(
        OsKind::Zephyr,
        FaultPlan::none().at(2_000, InjectedFault::KillCore),
    );
    let prog = probe(OsKind::Zephyr);
    let mut restored = false;
    for _ in 0..120 {
        let out = ex.run_one(&prog);
        restored |= out.restored;
    }
    assert!(restored, "the kill must have forced a restoration");
    let out = ex.run_one(&prog);
    assert!(out.crash.is_none());
}

#[test]
fn survives_flash_corruption_plus_lockup() {
    // Corruption alone is latent; the lockup forces a reboot through the
    // damaged image, and only the verify+reflash path revives it.
    let mut ex = harness(
        OsKind::RtThread,
        FaultPlan::none()
            .at(
                1_000,
                InjectedFault::FlashBitFlip {
                    offset: 0x20_0000,
                    bit: 5,
                },
            )
            .at(2_500, InjectedFault::KillCore),
    );
    let prog = probe(OsKind::RtThread);
    for _ in 0..150 {
        let _ = ex.run_one(&prog);
    }
    assert!(ex.restorations() >= 1);
    let out = ex.run_one(&prog);
    assert!(out.crash.is_none(), "target must end healthy");
}

#[test]
fn survives_repeated_link_outages() {
    let mut ex = harness(OsKind::Zephyr, FaultPlan::none());
    let prog = probe(OsKind::Zephyr);
    // Schedule several short outages ahead of the fuzzing.
    let now = ex.now();
    for k in 0..5 {
        ex.transport_mut()
            .schedule_outage(now + 5_000 + k * 9_000, 1_500);
    }
    let mut completed = 0;
    for _ in 0..120 {
        let out = ex.run_one(&prog);
        if !out.target_lost {
            completed += 1;
        }
    }
    assert!(
        completed > 60,
        "most executions still complete: {completed}"
    );
}

#[test]
fn survives_hostile_coverage_header() {
    // A buggy target could scribble the ring header; the host must clamp
    // and carry on.
    let mut ex = harness(OsKind::Zephyr, FaultPlan::none());
    let prog = probe(OsKind::Zephyr);
    let _ = ex.run_one(&prog);
    let base =
        eof::agent::AgentLayout::for_board(&eof::rtos::registry::default_board(OsKind::Zephyr))
            .cov
            .base;
    // Claim an absurd record count.
    ex.transport_mut()
        .write_mem(base, &u32::MAX.to_le_bytes())
        .unwrap();
    let out = ex.run_one(&prog);
    assert!(out.crash.is_none());
    let out = ex.run_one(&prog);
    assert!(out.crash.is_none());
}

#[test]
fn frozen_firmware_mid_campaign_is_recovered() {
    let mut ex = harness(
        OsKind::NuttX,
        FaultPlan::none().at(1_500, InjectedFault::FreezeFirmware),
    );
    let prog = probe(OsKind::NuttX);
    let mut stalled = false;
    for _ in 0..120 {
        let out = ex.run_one(&prog);
        stalled |= out.stalled;
    }
    assert!(stalled, "the freeze must surface as a stall");
    let out = ex.run_one(&prog);
    assert!(out.crash.is_none());
}
