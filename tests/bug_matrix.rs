//! The full Table-2 matrix, end to end: every seeded bug triggered via
//! its canonical reproducer through the real stack — prog encoding,
//! debug-port upload, agent execution, monitor detection, banner-based
//! triage — and checked against the table's metadata (detection class,
//! hang behaviour).

use eof::core::crash::DetectionSource;
use eof::prelude::*;
use eof::rtos::bugs::{DetectionClass, BUG_TABLE};
use eof::speclang::prog::{ArgValue, Call};

fn executor(os: OsKind) -> Executor {
    let board = BoardCatalog::qemu_virt_arm();
    let mut config = FuzzerConfig::eof(os, 1);
    config.board = board.clone();
    let image = build_image(os, ImageProfile::FullSystem, &InstrumentMode::Full);
    let machine = boot_machine(
        board.clone(),
        os,
        ImageProfile::FullSystem,
        &InstrumentMode::Full,
    );
    let kconfig = eof::monitors::parse_kconfig(&eof::monitors::render_kconfig(
        "arm",
        machine.flash().table(),
    ))
    .unwrap();
    let restoration =
        StateRestoration::from_kconfig(&kconfig, board.flash_size, vec![("kernel".into(), image)])
            .unwrap();
    Executor::new(
        DebugTransport::attach(machine, LinkConfig::default()),
        config,
        api_table_of(os),
        restoration,
    )
    .unwrap()
}

fn call(api: &str, args: Vec<ArgValue>) -> Call {
    Call {
        api: api.into(),
        args,
    }
}

fn i(v: u64) -> ArgValue {
    ArgValue::Int(v)
}

fn r(idx: u16) -> ArgValue {
    ArgValue::ResourceRef(idx)
}

fn s(v: &str) -> ArgValue {
    ArgValue::CString(v.to_string())
}

fn b(v: &[u8]) -> ArgValue {
    ArgValue::Buffer(v.to_vec())
}

/// The canonical reproducer for each Table-2 bug, as EOF's crash
/// minimiser would report it.
fn reproducer(number: u8) -> (OsKind, Prog) {
    let calls = match number {
        1 => vec![
            call("k_heap_init", vec![i(4096), i(8)]),
            call("k_heap_alloc", vec![r(0), i(64)]),
            call("k_heap_alloc", vec![r(0), i(64)]),
            call("sys_heap_stress", vec![i(64), i(7)]),
        ],
        2 => vec![
            call("k_msgq_alloc_init", vec![i(4), i(16)]),
            call("k_msgq_purge", vec![r(0)]),
            call("z_impl_k_msgq_get", vec![r(0), i(u64::MAX)]),
        ],
        3 => vec![call("json_obj_encode", vec![i(13), i(3)])],
        4 => vec![call("k_heap_init", vec![i(12), i(7)])],
        5 => vec![
            call("rt_object_init", vec![i(5), s("spi1")]),
            call("rt_object_detach", vec![r(0)]),
            call("rt_object_get_type", vec![r(0)]),
        ],
        6 => vec![
            call("rt_object_init", vec![i(4), s("mp0")]),
            call("rt_object_detach", vec![r(0)]),
            call("rt_object_detach", vec![r(0)]),
            call("rt_service_check", vec![i(4), i(11)]),
        ],
        7 => vec![
            call("rt_mp_create", vec![s("mp"), i(16), i(2)]),
            call("rt_mp_alloc", vec![r(0), i(0)]),
            call("rt_mp_alloc", vec![r(0), i(0)]),
            call("rt_mp_alloc", vec![r(0), i(0x5A)]),
        ],
        8 => vec![call("rt_object_init", vec![i(6), s("")])],
        9 => vec![
            call("rt_enter_critical", vec![]),
            call("rt_malloc", vec![i(2048)]),
        ],
        10 => vec![
            call("rt_event_create", vec![s("evt")]),
            call("rt_event_delete", vec![r(0)]),
            call("rt_event_send", vec![r(0), i((u32::MAX >> 6) as u64)]),
        ],
        11 => vec![
            call("rt_smem_init", vec![i(118)]),
            call("rt_smem_setname", vec![r(0), s("a-very-long-region-name")]),
        ],
        12 => vec![
            call("rt_console_device", vec![]),
            call("rt_device_close", vec![r(0)]),
            call("rt_device_unregister", vec![r(0)]),
            call(
                "syz_create_bind_socket",
                vec![i(2), i(1), i(0x101), i(48248)],
            ),
        ],
        13 => vec![call("load_partitions", vec![i(3), i(0x10)])],
        14 => vec![
            call("setenv", vec![s("A"), s("value0"), i(1)]),
            call("setenv", vec![s("A"), s(&"v".repeat(47)), i(0)]),
        ],
        15 => vec![
            call("clock_settime", vec![i(u64::MAX / 4)]),
            call("gettimeofday", vec![i(1), i(0)]),
        ],
        16 => vec![
            call("mq_open", vec![i(0), i(16), i(2)]),
            call("mq_send", vec![r(0), b(&[1]), i(1)]),
            call("mq_send", vec![r(0), b(&[2]), i(1)]),
            call("nxmq_timedsend", vec![r(0), b(&[3]), i(27), i(0)]),
        ],
        17 => vec![
            call("nxsem_init", vec![i(0)]),
            call("nxsem_wait", vec![r(0)]),
            call("nxsem_wait", vec![r(0)]),
            call("nxsem_wait", vec![r(0)]),
            call("nxsem_destroy", vec![r(0)]),
            call("nxsem_trywait", vec![r(0)]),
        ],
        18 => vec![call("timer_create", vec![i(1), i(2), i(512)])],
        19 => vec![call("clock_getres", vec![i(7), i(3)])],
        _ => unreachable!(),
    };
    let os = BUG_TABLE
        .iter()
        .find(|info| info.number == number)
        .unwrap()
        .os;
    (
        os,
        Prog {
            mmio: vec![],
            calls,
        },
    )
}

#[test]
fn all_nineteen_bugs_trigger_end_to_end() {
    // Group by OS so each executor is reused across its bugs (the target
    // recovers or is restored between cases, like a real campaign).
    for os in OsKind::ALL {
        let numbers: Vec<u8> = BUG_TABLE
            .iter()
            .filter(|info| info.os == os)
            .map(|info| info.number)
            .collect();
        if numbers.is_empty() {
            continue;
        }
        let mut ex = executor(os);
        for number in numbers {
            let info = BUG_TABLE.iter().find(|i| i.number == number).unwrap();
            let (prog_os, prog) = reproducer(number);
            assert_eq!(prog_os, os);
            let outcome = ex.run_one(&prog);
            let crash = outcome
                .crash
                .unwrap_or_else(|| panic!("bug #{number}: no crash detected"));
            assert_eq!(
                crash.bug.map(|bug| bug.number()),
                Some(number),
                "bug #{number}: triaged as {:?} ({})",
                crash.bug,
                crash.message
            );
            // Detection channel matches Table 2's attribution.
            match info.detection {
                DetectionClass::LogMonitor => {
                    assert_eq!(crash.source, DetectionSource::LogMonitor, "bug #{number}")
                }
                DetectionClass::ExceptionMonitor => assert_eq!(
                    crash.source,
                    DetectionSource::ExceptionMonitor,
                    "bug #{number}"
                ),
            }
            // Hang behaviour matches the inventory.
            assert_eq!(
                outcome.stalled, info.hangs,
                "bug #{number}: stalled={} but table says hangs={}",
                outcome.stalled, info.hangs
            );
            // The campaign continues afterwards: a benign input runs.
            let benign = Prog {
                mmio: vec![],
                calls: vec![match os {
                    OsKind::Zephyr => call("k_yield", vec![]),
                    OsKind::RtThread => call("rt_tick_increase", vec![i(1)]),
                    OsKind::NuttX => call("sched_tick", vec![i(1)]),
                    OsKind::FreeRtos => call("vTaskTickIncrement", vec![i(1)]),
                    OsKind::PokOs => call("pok_sched_slot", vec![i(1)]),
                }],
            };
            let after = ex.run_one(&benign);
            assert!(
                after.crash.is_none(),
                "bug #{number}: target unhealthy afterwards"
            );
        }
    }
}

#[test]
fn hanging_bug_count_matches_inventory() {
    // Sanity on the inventory itself: exactly the timeout-visible bugs
    // (Tardis's six) hang per Table 2's comparison discussion, plus the
    // depth-gated hangs EOF alone reaches.
    let hanging: Vec<u8> = BUG_TABLE
        .iter()
        .filter(|b| b.hangs)
        .map(|b| b.number)
        .collect();
    for required in [3, 4, 5, 8, 15, 18] {
        assert!(hanging.contains(&required), "#{required} must hang");
    }
}
