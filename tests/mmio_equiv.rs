//! The driver-workload gate: the model-free MMIO peripheral plane is a
//! *second fuzzer input*, not a source of nondeterminism. Two claims
//! are enforced here, per OS:
//!
//! 1. **Determinism** — a driver campaign (`FuzzerConfig::eof_driver`)
//!    with a fixed seed observes a bit-identical target over scalar and
//!    vectored debug links: same coverage bitmap, same crash dedup
//!    keys, same triaged BugIds. Only cycle accounting may differ.
//! 2. **Unreachability** — the seeded driver bugs (numbers ≥ 20) are
//!    provably out of reach for a pure-API campaign: the driver APIs
//!    are absent from its generated spec, so no mutation of the call
//!    plane can ever touch the kernel↔peripheral interaction; while the
//!    driver campaign, whose only difference is the MMIO plane and the
//!    driver-scoped spec, confirms at least one within the same budget.

use eof::core::{build_fuzzer, Fuzzer, FuzzerConfig};
use eof::hal::FaultPlan;
use eof::rtos::OsKind;
use eof::specgen::{extract_spec_text_scoped, DRIVER_MODULES};

const STEPS: usize = 40;
const SEED: u64 = 7;

/// Fuzzing iterations for the bug-hunt half of the gate. Driver bugs
/// are gated on (argument condition) && (MMIO stream condition), so
/// they need a longer campaign than the link-equivalence check.
const HUNT_STEPS: usize = 400;

/// Everything an exec campaign can observe about the target, minus
/// cycle accounting.
#[derive(Debug, PartialEq)]
struct Observed {
    execs: u64,
    coverage: Vec<u64>,
    crash_keys: Vec<String>,
    bugs: Vec<String>,
    corpus_len: usize,
    stalls: u64,
}

fn run(config: FuzzerConfig, steps: usize) -> (Observed, Vec<u8>, u64) {
    let (mut fuzzer, _, _): (Fuzzer, _, _) = build_fuzzer(config, FaultPlan::none());
    for _ in 0..steps {
        fuzzer.step();
    }
    let mut coverage: Vec<u64> = fuzzer.executor().coverage().iter().collect();
    coverage.sort_unstable();
    let mut crash_keys: Vec<String> = fuzzer
        .crashes()
        .unique()
        .map(eof::core::crash::dedup_key)
        .collect();
    crash_keys.sort();
    let found = fuzzer.crashes().bugs_found();
    let mut bugs: Vec<String> = found.iter().map(|b| format!("{b:?}")).collect();
    bugs.sort();
    let mut numbers: Vec<u8> = found.iter().map(|b| b.number()).collect();
    numbers.sort_unstable();
    let stats = fuzzer.stats();
    (
        Observed {
            execs: stats.execs,
            coverage,
            crash_keys,
            bugs,
            corpus_len: fuzzer.corpus().len(),
            stalls: stats.stalls,
        },
        numbers,
        fuzzer.executor().now(),
    )
}

fn driver_config(os: OsKind, vectored: bool) -> FuzzerConfig {
    let mut config = FuzzerConfig::eof_driver(os, SEED);
    config.budget_hours = 24.0; // never the stopping condition here
    config.vectored = vectored;
    config
}

#[test]
fn driver_campaigns_survive_the_vectored_link() {
    for os in [
        OsKind::FreeRtos,
        OsKind::RtThread,
        OsKind::NuttX,
        OsKind::Zephyr,
    ] {
        let (scalar, _, scalar_cycles) = run(driver_config(os, false), STEPS);
        let (vectored, _, vectored_cycles) = run(driver_config(os, true), STEPS);
        assert!(scalar.execs > 0, "{os:?}: campaign executed nothing");
        assert_eq!(
            scalar, vectored,
            "{os:?}: vectored link changed what the driver campaign observed"
        );
        assert!(
            vectored_cycles < scalar_cycles,
            "{os:?}: vectored run saved no cycles \
             (scalar {scalar_cycles}, vectored {vectored_cycles})"
        );
    }
}

#[test]
fn driver_campaigns_replay_bit_exact() {
    // Same seed, run twice from scratch: the MMIO plane is drawn from
    // a seeded stream, so the whole campaign — peripheral responses
    // included — must be a pure function of the config.
    for os in [OsKind::FreeRtos, OsKind::Zephyr] {
        let (first, _, first_cycles) = run(driver_config(os, false), STEPS);
        let (second, _, second_cycles) = run(driver_config(os, false), STEPS);
        assert_eq!(first, second, "{os:?}: driver campaign is nondeterministic");
        assert_eq!(
            first_cycles, second_cycles,
            "{os:?}: cycle accounting drifted between identical runs"
        );
    }
}

#[test]
fn driver_bugs_need_the_mmio_plane() {
    for os in [
        OsKind::FreeRtos,
        OsKind::RtThread,
        OsKind::NuttX,
        OsKind::Zephyr,
    ] {
        // The pure spec provably cannot express a driver call: every
        // driver-module API name is absent from its text.
        let pure_spec = extract_spec_text_scoped(os, false);
        let driver_spec = extract_spec_text_scoped(os, true);
        let driver_apis: Vec<&str> = eof::rtos::make_kernel(os)
            .api_table()
            .iter()
            .filter(|d| DRIVER_MODULES.contains(&d.module))
            .map(|d| d.name)
            .collect();
        assert!(
            !driver_apis.is_empty(),
            "{os:?}: kernel exposes no driver APIs"
        );
        for name in &driver_apis {
            assert!(
                !pure_spec.contains(name),
                "{os:?}: pure spec leaks driver API {name}"
            );
            assert!(
                driver_spec.contains(name),
                "{os:?}: driver spec is missing {name}"
            );
        }

        // Same seed, same budget; the only delta is `mmio: true` (which
        // scopes the spec to include drivers and arms the MMIO plane).
        let mut pure = FuzzerConfig::eof(os, SEED);
        pure.budget_hours = 24.0;
        let (_, pure_bugs, _) = run(pure, HUNT_STEPS);
        assert!(
            pure_bugs.iter().all(|&n| n < 20),
            "{os:?}: pure-API campaign reached a driver bug ({pure_bugs:?}) — \
             the workload separation is broken"
        );

        let (_, driver_bugs, _) = run(driver_config(os, false), HUNT_STEPS);
        assert!(
            driver_bugs.iter().any(|&n| n >= 20),
            "{os:?}: driver campaign confirmed no driver bug in {HUNT_STEPS} steps \
             (found {driver_bugs:?})"
        );
    }
}
