//! The trace gate: hardware-trace coverage is an *acquisition channel*,
//! not a different fuzzer — and it must be invisible when disarmed.
//! Four claims are enforced here:
//!
//! 1. **Equivalence** — on every OS, a campaign over the trace backend
//!    (plain image, `DrainTrace` wire op, host-side packet decode)
//!    observes the identical target: same confirmed bug sets, same
//!    final coverage bitmap, same crash keys, same stall count as the
//!    instrumented-ring campaign at the same seed and step budget. The
//!    instrumentation clock (`charge_instr`) makes the two images
//!    execute the same core history, so this is exact, not approximate.
//! 2. **Losslessness** — at the default FIFO size the stream never
//!    overflows during the gate: every edge the ring would have seen
//!    arrived by trace too.
//! 3. **Determinism and job-independence** — a trace campaign rerun
//!    from scratch is bit-exact, cycle accounting included, and a
//!    fleet of trace campaigns merges to the same per-cell results at
//!    any worker count.
//! 4. **Invisibility** — the trace unit lives in the probe and the
//!    debug power domain: the *images* are untouched. The plain build
//!    a trace campaign flashes is byte-identical to the uninstrumented
//!    build from before the trace subsystem existed.

use eof::core::{build_fuzzer, FleetRunner, Fuzzer, FuzzerConfig, MutOp};
use eof::coverage::{CoverageKind, InstrumentMode};
use eof::hal::FaultPlan;
use eof::rtos::image::{build_image, image_plain};
use eof::rtos::OsKind;

const STEPS: usize = 40;
const SEED: u64 = 7;

/// Everything an exec campaign can observe about the target, minus
/// cycle accounting (the two backends pay different wire and
/// instrumentation costs by design; the *observations* must agree).
#[derive(Debug, PartialEq)]
struct Observed {
    execs: u64,
    coverage: Vec<u64>,
    crash_keys: Vec<String>,
    bugs: Vec<String>,
    corpus_len: usize,
    stalls: u64,
    op_execs: [u64; MutOp::COUNT],
    op_interesting: [u64; MutOp::COUNT],
}

fn run(config: FuzzerConfig, steps: usize) -> (Observed, u64, u64) {
    let (mut fuzzer, _, _): (Fuzzer, _, _) = build_fuzzer(config, FaultPlan::none());
    for _ in 0..steps {
        fuzzer.step();
    }
    let coverage = fuzzer.executor().coverage().sorted_edges();
    let mut crash_keys: Vec<String> = fuzzer
        .crashes()
        .unique()
        .map(eof::core::crash::dedup_key)
        .collect();
    crash_keys.sort();
    let mut bugs: Vec<String> = fuzzer
        .crashes()
        .bugs_found()
        .iter()
        .map(|b| format!("{b:?}"))
        .collect();
    bugs.sort();
    let stats = fuzzer.stats();
    let overflows = fuzzer.executor().trace_stats().overflows;
    (
        Observed {
            execs: stats.execs,
            coverage,
            crash_keys,
            bugs,
            corpus_len: fuzzer.corpus().len(),
            stalls: stats.stalls,
            op_execs: stats.op_execs,
            op_interesting: stats.op_interesting,
        },
        overflows,
        fuzzer.executor().now(),
    )
}

/// The backend is always set in code — never via `EOF_COV` — so the
/// gate is immune to the parallel test runner's shared environment.
fn config_with(os: OsKind, backend: CoverageKind) -> FuzzerConfig {
    let mut config = FuzzerConfig::eof(os, SEED);
    config.budget_hours = 24.0; // never the stopping condition here
    config.coverage_backend = backend;
    config
}

#[test]
fn trace_and_ring_observe_the_identical_campaign() {
    for os in [
        OsKind::FreeRtos,
        OsKind::RtThread,
        OsKind::NuttX,
        OsKind::Zephyr,
    ] {
        let (ring, _, _) = run(config_with(os, CoverageKind::Ring), STEPS);
        let (trace, overflows, _) = run(config_with(os, CoverageKind::Trace), STEPS);
        assert!(ring.execs > 0, "{os:?}: campaign executed nothing");
        assert!(
            !ring.coverage.is_empty(),
            "{os:?}: ring campaign saw no coverage"
        );
        assert_eq!(
            ring, trace,
            "{os:?}: the trace backend changed what the campaign observed"
        );
        assert_eq!(
            overflows, 0,
            "{os:?}: the default trace FIFO overflowed during the gate"
        );
    }
}

#[test]
fn trace_campaigns_replay_bit_exact() {
    // Same seed, run twice from scratch: decoder state, FIFO drains and
    // wire accounting are all pure functions of the config — cycle
    // accounting included.
    for os in [OsKind::FreeRtos, OsKind::Zephyr] {
        for vectored in [false, true] {
            let mut config = config_with(os, CoverageKind::Trace);
            config.vectored = vectored;
            let (first, _, first_cycles) = run(config.clone(), STEPS);
            let (second, _, second_cycles) = run(config, STEPS);
            assert_eq!(
                first, second,
                "{os:?} (vectored={vectored}): trace campaign is nondeterministic"
            );
            assert_eq!(
                first_cycles, second_cycles,
                "{os:?} (vectored={vectored}): cycle accounting drifted between identical runs"
            );
        }
    }
}

#[test]
fn wire_mode_does_not_change_what_trace_observes() {
    // Scalar and vectored `DrainTrace` ship byte-identical payloads, so
    // the only difference a trace campaign may see is cycle cost.
    for os in [OsKind::FreeRtos, OsKind::RtThread] {
        let mut scalar_config = config_with(os, CoverageKind::Trace);
        scalar_config.vectored = false;
        let (scalar, _, scalar_cycles) = run(scalar_config, STEPS);
        let mut vectored_config = config_with(os, CoverageKind::Trace);
        vectored_config.vectored = true;
        let (vectored, _, vectored_cycles) = run(vectored_config, STEPS);
        assert_eq!(
            scalar, vectored,
            "{os:?}: wire mode changed what the trace campaign observed"
        );
        assert!(
            vectored_cycles < scalar_cycles,
            "{os:?}: vectored trace drains saved no cycles \
             (scalar {scalar_cycles}, vectored {vectored_cycles})"
        );
    }
}

#[test]
fn jobs_do_not_change_trace_results() {
    // The decoder and the FIFO live per-executor, so worker count is
    // pure mechanism: a 3-worker fleet must produce the same per-cell
    // results as a serial one.
    let grid = |_: ()| -> Vec<FuzzerConfig> {
        [OsKind::FreeRtos, OsKind::Zephyr]
            .into_iter()
            .map(|os| {
                let mut c = FuzzerConfig::eof(os, SEED);
                c.coverage_backend = CoverageKind::Trace;
                c.budget_hours = 0.02;
                c.snapshot_hours = 0.005;
                c
            })
            .collect()
    };
    let serial: Vec<_> = FleetRunner::new(1).run(grid(()));
    let fleet: Vec<_> = FleetRunner::new(3).run(grid(()));
    assert_eq!(serial.len(), fleet.len());
    for (a, b) in serial.iter().zip(&fleet) {
        let (a, b) = match (a, b) {
            (Ok(a), Ok(b)) => (a, b),
            other => panic!("fleet cell failed: {other:?}"),
        };
        assert_eq!(a.branches, b.branches);
        assert_eq!(a.bugs, b.bugs);
        assert_eq!(a.stats.execs, b.stats.execs);
    }
}

#[test]
fn disarmed_trace_leaves_every_image_untouched() {
    // The trace unit needs nothing from the build: the plain image a
    // trace campaign flashes is exactly the uninstrumented build, and
    // selecting the trace backend changes no image bytes anywhere —
    // coverage hooks are still real when the ring asks for them.
    for os in [
        OsKind::FreeRtos,
        OsKind::RtThread,
        OsKind::NuttX,
        OsKind::Zephyr,
    ] {
        let config = config_with(os, CoverageKind::Trace);
        assert_eq!(config.effective_instrument(), InstrumentMode::None);
        assert_eq!(
            image_plain(os, config.profile),
            build_image(os, config.profile, &InstrumentMode::None),
            "{os:?}: the plain build drifted from the uninstrumented baseline"
        );
        assert_ne!(
            image_plain(os, config.profile),
            build_image(os, config.profile, &InstrumentMode::Full),
            "{os:?}: instrumentation no longer changes the image"
        );
        let ring = config_with(os, CoverageKind::Ring);
        assert_eq!(
            ring.effective_instrument(),
            ring.instrument,
            "{os:?}: the ring backend no longer flashes the configured build"
        );
    }
}
