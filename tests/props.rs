//! Property-based tests on the core data structures and invariants.

use eof::monitors::{parse_kconfig, render_kconfig, Pattern};
use eof::prelude::*;
use eof::speclang::prog::{ArgValue, Call};
use eof::speclang::wire::{decode_prog, encode_prog, ApiBinding, ApiTable, WireOrder};
use proptest::prelude::*;

fn arb_arg() -> impl Strategy<Value = ArgValue> {
    prop_oneof![
        any::<u64>().prop_map(ArgValue::Int),
        (0u16..16).prop_map(ArgValue::ResourceRef),
        proptest::collection::vec(any::<u8>(), 0..64).prop_map(ArgValue::Buffer),
        "[a-z0-9_]{0,24}".prop_map(ArgValue::CString),
    ]
}

fn arb_prog() -> impl Strategy<Value = Prog> {
    proptest::collection::vec((0u16..4, proptest::collection::vec(arb_arg(), 0..5)), 0..10)
        .prop_map(|calls| Prog {
            mmio: vec![],
            calls: calls
                .into_iter()
                .map(|(id, args)| Call {
                    api: format!("api{id}"),
                    args,
                })
                .collect(),
        })
}

fn table() -> ApiTable {
    ApiTable::new((0u16..4).map(|id| ApiBinding {
        id,
        name: format!("api{id}"),
    }))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn prog_wire_roundtrip_little(prog in arb_prog()) {
        let t = table();
        let bytes = encode_prog(&prog, &t, WireOrder::Little).unwrap();
        let back = decode_prog(&bytes, &t, WireOrder::Little).unwrap();
        prop_assert_eq!(back, prog);
    }

    #[test]
    fn prog_wire_roundtrip_big(prog in arb_prog()) {
        let t = table();
        let bytes = encode_prog(&prog, &t, WireOrder::Big).unwrap();
        let back = decode_prog(&bytes, &t, WireOrder::Big).unwrap();
        prop_assert_eq!(back, prog);
    }

    #[test]
    fn wire_decoder_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode_prog(&bytes, &table(), WireOrder::Little);
    }

    #[test]
    fn wire_decoder_never_panics_on_any_truncation(prog in arb_prog(), cut in 0usize..512) {
        let t = table();
        let bytes = encode_prog(&prog, &t, WireOrder::Little).unwrap();
        let cut = cut.min(bytes.len());
        let _ = decode_prog(&bytes[..cut], &t, WireOrder::Little);
    }

    #[test]
    fn remove_call_preserves_backward_references(prog in arb_prog(), idx in 0usize..10) {
        let mut p = prog;
        // Normalise: clamp refs backward so the input itself is valid.
        for i in 0..p.calls.len() {
            for a in &mut p.calls[i].args {
                if let ArgValue::ResourceRef(r) = a {
                    if i == 0 {
                        *a = ArgValue::Int(0);
                    } else {
                        *r %= i as u16;
                    }
                }
            }
        }
        prop_assert_eq!(p.first_invalid_ref(), None);
        p.remove_call(idx);
        prop_assert_eq!(p.first_invalid_ref(), None);
    }

    #[test]
    fn json_parser_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let mut bus = eof::hal::Bus::new(0x2000_0000, 0x1000, eof::hal::Endianness::Little);
        let mut cov = eof::rtos::ctx::CovState::uninstrumented();
        let mut ctx = eof::rtos::ctx::ExecCtx::new(&mut bus, &mut cov);
        let _ = eof::rtos::subsys::json::parse(&mut ctx, "t::json::p", &bytes);
    }

    #[test]
    fn http_parser_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let mut bus = eof::hal::Bus::new(0x2000_0000, 0x1000, eof::hal::Endianness::Little);
        let mut cov = eof::rtos::ctx::CovState::uninstrumented();
        let mut ctx = eof::rtos::ctx::ExecCtx::new(&mut bus, &mut cov);
        let _ = eof::rtos::subsys::http::parse_request(&mut ctx, "t::http::p", &bytes);
    }

    #[test]
    fn every_kernel_survives_arbitrary_invocations(
        os_idx in 0usize..5,
        calls in proptest::collection::vec((any::<u16>(), proptest::collection::vec(any::<u64>(), 0..6)), 1..30)
    ) {
        let os = OsKind::ALL[os_idx];
        let mut kernel = eof::rtos::registry::make_kernel(os);
        let mut bus = eof::hal::Bus::new(0x2000_0000, 0x2_0000, eof::hal::Endianness::Little);
        let mut cov = eof::rtos::ctx::CovState::uninstrumented();
        for (api_id, args) in calls {
            let kargs: Vec<eof::rtos::api::KArg> =
                args.into_iter().map(eof::rtos::api::KArg::Int).collect();
            let mut ctx = eof::rtos::ctx::ExecCtx::new(&mut bus, &mut cov);
            // Must never panic at the host level, whatever the input.
            let _ = kernel.invoke(&mut ctx, api_id, &kargs);
        }
    }

    #[test]
    fn heap_invariants_under_arbitrary_op_sequences(
        ops in proptest::collection::vec((any::<bool>(), 0u32..512), 1..60)
    ) {
        use eof::rtos::subsys::heap::FreeListHeap;
        let mut bus = eof::hal::Bus::new(0x2000_0000, 0x1000, eof::hal::Endianness::Little);
        let mut cov = eof::rtos::ctx::CovState::uninstrumented();
        let mut ctx = eof::rtos::ctx::ExecCtx::new(&mut bus, &mut cov);
        let mut heap = FreeListHeap::new(4096);
        let mut live: Vec<u32> = Vec::new();
        for (is_alloc, v) in ops {
            if is_alloc {
                if let Ok(h) = heap.alloc(&mut ctx, "p::heap::a", v) {
                    live.push(h);
                }
            } else if !live.is_empty() {
                let h = live.remove((v as usize) % live.len());
                heap.free(&mut ctx, "p::heap::f", h).unwrap();
            }
            // The walk invariant must hold after every operation.
            prop_assert!(heap.check().is_ok());
        }
        prop_assert_eq!(heap.live_blocks(), live.len());
    }

    #[test]
    fn pattern_matcher_agrees_with_contains_for_plain_patterns(
        needle in "[a-zA-Z ]{1,12}",
        hay in "[a-zA-Z :._-]{0,64}"
    ) {
        let p = Pattern::new(&needle);
        prop_assert_eq!(p.matches(&hay), hay.contains(&needle));
    }

    #[test]
    fn kconfig_roundtrip(parts in proptest::collection::btree_map("[A-Z]{1,8}", (0u32..64, 1u32..64), 1..6)) {
        // Build a non-overlapping layout from the random sizes.
        let mut offset = 0u32;
        let mut list = Vec::new();
        for (name, (_gap, size_kb)) in &parts {
            let size = size_kb * 1024;
            list.push(eof::hal::Partition::new(name.to_lowercase(), offset, size));
            offset += size;
        }
        let table = eof::hal::PartitionTable::new(list, offset.max(1)).unwrap();
        let text = render_kconfig("arm", &table);
        let cfg = parse_kconfig(&text).unwrap();
        prop_assert_eq!(cfg.partition_table(offset.max(1)).unwrap(), table);
    }

    #[test]
    fn generated_progs_always_conform(seed in any::<u64>()) {
        let spec = parse_spec(&extract_spec_text(OsKind::RtThread)).unwrap();
        let mut g = Generator::new(spec, seed, GenerationMode::ApiAware, 6);
        for _ in 0..5 {
            let p = g.generate();
            prop_assert!(p.conforms_to(g.spec()));
            let m = g.mutate(&p);
            prop_assert!(m.conforms_to(g.spec()));
        }
    }
}

// ---------------------------------------------------------------------------
// Concurrent persist-store writers (the fabric's corpus exchange)
// ---------------------------------------------------------------------------
//
// Two workers importing seeds into one exchange must never lose an
// update. The exchange earns this without locks: every seed is a
// content-addressed file written atomically (temp + rename), and the
// manifest-last marker carries no membership data — loads scan the
// directory — so there is no read-modify-write step for interleavings
// to tear.

use eof::core::{persist::PersistedSeed, Exchange};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn exchange_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "eof-props-exchange-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A synthetic-but-valid persisted seed: the hash really is the prog's
/// stable hash, so `Exchange::load`'s integrity check accepts it.
fn synthetic_seed(i: u64) -> PersistedSeed {
    let prog = Prog {
        mmio: vec![],
        calls: vec![Call {
            api: format!("api{}", i % 4),
            args: vec![ArgValue::Int(i)],
        }],
    };
    PersistedSeed {
        hash: prog.stable_hash(),
        ordinal: i,
        new_edges: (i % 7) as usize,
        crashed: false,
        replay_edges: (i % 5) as usize,
        prog,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn exchange_two_writer_interleavings_never_lose_seeds(
        batch_a in proptest::collection::vec(0u64..24, 1..16),
        batch_b in proptest::collection::vec(0u64..24, 1..16),
        schedule in proptest::collection::vec(any::<bool>(), 0..40),
    ) {
        let dir = exchange_dir("interleave");
        // Each writer holds its own handle, exactly like two fabric
        // workers pointed at the same exchange directory.
        let writer_a = Exchange::open(&dir).unwrap();
        let writer_b = Exchange::open(&dir).unwrap();
        let seeds_a: Vec<PersistedSeed> = batch_a.iter().map(|&i| synthetic_seed(i)).collect();
        let seeds_b: Vec<PersistedSeed> = batch_b.iter().map(|&i| synthetic_seed(i)).collect();

        // Drive the two imports one seed at a time in an arbitrary
        // interleaving (schedule bools pick the writer; an exhausted
        // writer yields its turn).
        let (mut ia, mut ib) = (0usize, 0usize);
        let mut accounted = 0usize;
        let mut steps = schedule.into_iter();
        while ia < seeds_a.len() || ib < seeds_b.len() {
            let pick_a = steps.next().unwrap_or(true);
            let stats = if (pick_a && ia < seeds_a.len()) || ib >= seeds_b.len() {
                ia += 1;
                writer_a.import(&seeds_a[ia - 1..ia], 0xfeed)
            } else {
                ib += 1;
                writer_b.import(&seeds_b[ib - 1..ib], 0xbeef)
            };
            prop_assert_eq!(stats.write_errors, 0);
            accounted += stats.imported + stats.deduped;

            // The pool is loadable mid-interleaving, never torn.
            let (loaded, skips) = writer_a.load();
            prop_assert_eq!(skips.total(), 0);
            prop_assert_eq!(loaded.len(), accounted_distinct(&seeds_a[..ia], &seeds_b[..ib]));
        }
        prop_assert_eq!(accounted, seeds_a.len() + seeds_b.len());

        // No update lost: the final pool is exactly the hash-union.
        let (loaded, skips) = writer_b.load();
        prop_assert_eq!(skips.total(), 0);
        let expect: std::collections::BTreeSet<u64> = seeds_a
            .iter()
            .chain(seeds_b.iter())
            .map(|s| s.hash)
            .collect();
        let got: std::collections::BTreeSet<u64> = loaded.iter().map(|s| s.hash).collect();
        prop_assert_eq!(got, expect);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Distinct hash count over the seeds imported so far.
fn accounted_distinct(a: &[PersistedSeed], b: &[PersistedSeed]) -> usize {
    a.iter()
        .chain(b.iter())
        .map(|s| s.hash)
        .collect::<std::collections::BTreeSet<_>>()
        .len()
}

#[test]
fn exchange_truly_concurrent_writers_reach_the_union() {
    // The threaded flavor of the property above: two OS threads racing
    // seed-by-seed imports into one directory. Scheduling is real, the
    // postcondition is the same — the union, with nothing torn.
    let dir = exchange_dir("threads");
    let seeds: Vec<PersistedSeed> = (0..48).map(synthetic_seed).collect();
    // Overlapping halves: [0, 32) and [16, 48) share a middle third.
    let a: Vec<PersistedSeed> = seeds[..32].to_vec();
    let b: Vec<PersistedSeed> = seeds[16..].to_vec();
    let dir_a = dir.clone();
    let dir_b = dir.clone();
    let ta = std::thread::spawn(move || {
        let ex = Exchange::open(&dir_a).unwrap();
        let mut errors = 0;
        for s in &a {
            errors += ex.import(std::slice::from_ref(s), 0xaaaa).write_errors;
        }
        errors
    });
    let tb = std::thread::spawn(move || {
        let ex = Exchange::open(&dir_b).unwrap();
        let mut errors = 0;
        for s in &b {
            errors += ex.import(std::slice::from_ref(s), 0xbbbb).write_errors;
        }
        errors
    });
    assert_eq!(ta.join().unwrap(), 0, "writer A hit write errors");
    assert_eq!(tb.join().unwrap(), 0, "writer B hit write errors");

    let ex = Exchange::open(&dir).unwrap();
    let (loaded, skips) = ex.load();
    assert_eq!(skips.total(), 0, "a racing writer tore an entry");
    let got: std::collections::BTreeSet<u64> = loaded.iter().map(|s| s.hash).collect();
    let expect: std::collections::BTreeSet<u64> = seeds.iter().map(|s| s.hash).collect();
    assert_eq!(got, expect, "concurrent import lost an update");
    let _ = std::fs::remove_dir_all(&dir);
}
