//! Domain scenario from the paper's introduction: an industrial
//! controller running on an STM32H745 — a board with *no
//! peripheral-accurate emulator*, so emulation-based fuzzers cannot test
//! it at all. EOF attaches over SWD and runs a full-system campaign.
//!
//! Run with: `cargo run --release --example industrial_controller [hours]`

use eof::prelude::*;

fn main() {
    let hours: f64 = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(2.0);

    let board = BoardCatalog::stm32h745_nucleo();
    println!(
        "target: {} ({}, {}) — peripheral-accurate emulator available: {}",
        board.name, board.arch, board.debug_iface, board.has_peripheral_emulator
    );
    assert!(
        !board.has_peripheral_emulator,
        "the point of this scenario is an emulator-less board"
    );

    // Tardis cannot even be configured for this target class; EOF can.
    let tardis = BaselineKind::Tardis.full_system_config(OsKind::RtThread, 1);
    println!(
        "Tardis on this board: {}",
        if tardis.map(|c| c.board.has_peripheral_emulator) == Some(true) {
            "must fall back to QEMU — cannot exercise this hardware"
        } else {
            "unsupported"
        }
    );

    // EOF: RT-Thread full-system campaign over SWD.
    let mut config = FuzzerConfig::eof(OsKind::RtThread, 1);
    config.board = board;
    config.budget_hours = hours;
    config.snapshot_hours = (hours / 12.0).max(0.25);
    println!("\nEOF campaign: RT-Thread, {hours} simulated hours over SWD…");
    let result = run_campaign(config);

    println!("\n── campaign summary ──────────────────────────────");
    println!("executions      : {}", result.stats.execs);
    println!("branches found  : {}", result.branches);
    println!("stalls recovered: {}", result.stats.stalls);
    println!("restorations    : {}", result.stats.restorations);
    println!("unique crashes  : {}", result.crashes.len());
    println!(
        "Table-2 bugs    : {:?}",
        result.bugs.iter().map(|b| b.number()).collect::<Vec<_>>()
    );
    println!("\ncoverage growth:");
    for point in result.history.iter().step_by(2) {
        println!(
            "  {:5.1} h  {:5}  {}",
            point.hours,
            point.branches,
            "#".repeat(point.branches / 8)
        );
    }
    // Persist the developer-facing artefacts.
    let report_dir = std::path::PathBuf::from("results/campaign-rtthread-h745");
    if write_campaign_report(&report_dir, OsKind::RtThread, &result).is_ok() {
        println!(
            "
report written to {}",
            report_dir.display()
        );
    }

    for crash in result.crashes.iter().take(3) {
        println!("\ncrash: {}", crash.message);
        println!(
            "  detected by {:?} at {:.2} h",
            crash.source, crash.at_hours
        );
        if let Some(bug) = crash.bug {
            let info = bug.info();
            println!(
                "  triaged: Table 2 #{} — {} / {} / {}",
                info.number, info.scope, info.bug_type, info.operation
            );
        }
    }
}
