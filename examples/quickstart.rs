//! Quickstart: boot an embedded OS on a simulated board, poke it through
//! the OpenOCD-style command channel, execute one hand-written test case
//! through the agent, and watch the monitors catch a seeded kernel bug.
//!
//! Run with: `cargo run --release --example quickstart`

use eof::prelude::*;
use eof::speclang::prog::{ArgValue, Call};

fn main() {
    // ── 1. Build an instrumented FreeRTOS image and flash it onto an
    //        ESP32-class devkit. ────────────────────────────────────────
    let board = BoardCatalog::esp32_devkit();
    println!(
        "target : {} ({}, {} debug)",
        board.name, board.arch, board.debug_iface
    );
    let machine = boot_machine(
        board.clone(),
        OsKind::FreeRtos,
        ImageProfile::FullSystem,
        &InstrumentMode::Full,
    );
    println!("booted : {:?}", machine.state());

    // ── 2. Talk to it the way the paper does: an OpenOCD session over
    //        the debug port. ───────────────────────────────────────────
    let mut ocd = OcdServer::new(DebugTransport::attach(machine, LinkConfig::default()));
    for cmd in [
        "targets",
        "reg pc",
        "mww 0x3ffb0040 0xdeadbeef",
        "mdw 0x3ffb0040",
    ] {
        println!("ocd    > {cmd}");
        println!("ocd    < {}", ocd.execute(cmd).unwrap());
    }
    let transport = ocd.into_transport();

    // ── 3. Hand the session to the EOF executor and run a hand-written
    //        test case (create a queue, send to it, parse some JSON). ──
    let config = FuzzerConfig::eof(OsKind::FreeRtos, 7);
    let kconfig = eof::monitors::parse_kconfig(&eof::monitors::render_kconfig(
        "xtensa",
        transport.machine().flash().table(),
    ))
    .unwrap();
    let image = build_image(
        OsKind::FreeRtos,
        ImageProfile::FullSystem,
        &InstrumentMode::Full,
    );
    let restoration =
        StateRestoration::from_kconfig(&kconfig, board.flash_size, vec![("kernel".into(), image)])
            .unwrap();
    let mut executor = Executor::new(
        transport,
        config,
        api_table_of(OsKind::FreeRtos),
        restoration,
    )
    .unwrap();

    let prog = Prog {
        mmio: vec![],
        calls: vec![
            Call {
                api: "xQueueCreate".into(),
                args: vec![ArgValue::Int(4), ArgValue::Int(32)],
            },
            Call {
                api: "xQueueSend".into(),
                args: vec![
                    ArgValue::ResourceRef(0),
                    ArgValue::Buffer(b"hello".to_vec()),
                ],
            },
            Call {
                api: "json_parse".into(),
                args: vec![ArgValue::Buffer(br#"{"sensors":[1,2,3]}"#.to_vec())],
            },
        ],
    };
    println!("\nexecuting:\n{prog}");
    let outcome = executor.run_one(&prog);
    println!(
        "outcome: {} new edges, {} total hits, crash: {}",
        outcome.new_edges,
        outcome.edges_hit,
        outcome.crash.is_some()
    );

    // ── 4. Now a test case that trips seeded bug #13 — the exception
    //        monitor catches it at the panic handler and recovers the
    //        backtrace from the crash banner. ─────────────────────────
    let crasher = Prog {
        mmio: vec![],
        calls: vec![Call {
            api: "load_partitions".into(),
            args: vec![ArgValue::Int(3), ArgValue::Int(0x10)],
        }],
    };
    println!("executing:\n{crasher}");
    let outcome = executor.run_one(&crasher);
    match outcome.crash {
        Some(crash) => {
            println!("CRASH  : {}", crash.message);
            println!("  via  : {:?}", crash.source);
            println!("  bug  : Table 2 #{:?}", crash.bug.map(|b| b.number()));
            for (i, frame) in crash.backtrace.iter().enumerate() {
                println!("  #{i}  : {frame}");
            }
        }
        None => println!("no crash — unexpected for this input"),
    }

    // ── 5. The target survives (recoverable fault): keep fuzzing. ────
    let outcome = executor.run_one(&prog);
    println!(
        "\ntarget alive after crash: executed again with {} edge hits",
        outcome.edges_hit
    );
}
