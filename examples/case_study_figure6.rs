//! The paper's §5.3.1 case study (Figure 6): the previously-unknown
//! RT-Thread kernel panic in `rt_serial_write`, reached through
//! `syz_create_bind_socket` when socket-creation logging walks a stale
//! serial device left behind by an earlier unregister.
//!
//! This example replays the four-call chain by hand, then shows how the
//! fuzzer finds it from scratch.
//!
//! Run with: `cargo run --release --example case_study_figure6`

use eof::prelude::*;
use eof::speclang::prog::{ArgValue, Call};

fn executor() -> Executor {
    let board = BoardCatalog::stm32h745_nucleo();
    let config = {
        let mut c = FuzzerConfig::eof(OsKind::RtThread, 12);
        c.board = board.clone();
        c
    };
    let image = build_image(
        OsKind::RtThread,
        ImageProfile::FullSystem,
        &InstrumentMode::Full,
    );
    let machine = boot_machine(
        board.clone(),
        OsKind::RtThread,
        ImageProfile::FullSystem,
        &InstrumentMode::Full,
    );
    let kconfig = eof::monitors::parse_kconfig(&eof::monitors::render_kconfig(
        "arm",
        machine.flash().table(),
    ))
    .unwrap();
    let restoration =
        StateRestoration::from_kconfig(&kconfig, board.flash_size, vec![("kernel".into(), image)])
            .unwrap();
    Executor::new(
        DebugTransport::attach(machine, LinkConfig::default()),
        config,
        api_table_of(OsKind::RtThread),
        restoration,
    )
    .unwrap()
}

fn main() {
    let mut ex = executor();

    // The minimised reproducer, as EOF's crash report would render it.
    let repro = Prog {
        mmio: vec![],
        calls: vec![
            Call {
                api: "rt_console_device".into(),
                args: vec![],
            },
            Call {
                api: "rt_device_close".into(),
                args: vec![ArgValue::ResourceRef(0)],
            },
            Call {
                api: "rt_device_unregister".into(),
                args: vec![ArgValue::ResourceRef(0)],
            },
            Call {
                api: "syz_create_bind_socket".into(),
                args: vec![
                    ArgValue::Int(0xbc78 % 11), // domain (the paper's raw value, SAL-mapped)
                    ArgValue::Int(0x1),
                    ArgValue::Int(0x101),
                    ArgValue::Int(48248),
                ],
            },
        ],
    };
    println!("reproducer:\n{repro}");

    // A healthy socket creation first, to show the log path working.
    let healthy = Prog {
        mmio: vec![],
        calls: vec![Call {
            api: "syz_create_bind_socket".into(),
            args: vec![
                ArgValue::Int(2),
                ArgValue::Int(1),
                ArgValue::Int(0),
                ArgValue::Int(8080),
            ],
        }],
    };
    let out = ex.run_one(&healthy);
    println!("healthy socket creation: crash={}\n", out.crash.is_some());

    // Now the chain. The fault propagates exactly as Figure 6 shows:
    // sal_socket → rt_kprintf → _kputs → rt_device_write →
    // rt_serial_write → (stale serial) → bus fault.
    let out = ex.run_one(&repro);
    let crash = out.crash.expect("the Figure 6 chain must crash");
    println!("BUG: {}", crash.message);
    println!("Stack frames at BUG: unexpected stop:");
    for (i, frame) in crash.backtrace.iter().enumerate() {
        println!("Level: {}: {}", i + 1, frame);
    }
    let bug = crash.bug.expect("triage attributes the crash");
    let info = bug.info();
    println!(
        "\ntriaged: Table 2 #{} — {} / {} / {} (detected by {:?})",
        info.number, info.scope, info.bug_type, info.operation, crash.source
    );
    assert_eq!(info.number, 12);
    println!("system hung after the fault: {}", out.stalled);
    println!("restored by reflash+reboot : {}", out.restored);

    // And from scratch: a short guided campaign on this target usually
    // rediscovers the chain (the console producer, close and unregister
    // each contribute fresh coverage, so the corpus climbs toward it).
    println!("\nfuzzing from scratch to rediscover it (4 simulated hours)…");
    let mut config = FuzzerConfig::eof(OsKind::RtThread, 3);
    config.board = BoardCatalog::stm32h745_nucleo();
    config.budget_hours = 4.0;
    let result = run_campaign(config);
    let found = result.bugs.iter().any(|b| b.number() == 12);
    println!(
        "bugs found: {:?} — #12 rediscovered: {found}",
        result.bugs.iter().map(|b| b.number()).collect::<Vec<_>>()
    );
}
