//! Head-to-head on one target: EOF vs EOF-nf vs Tardis on Zephyr —
//! a single-OS slice of the paper's Table 3 / Figure 7, runnable in
//! seconds.
//!
//! Run with: `cargo run --release --example compare_fuzzers [hours]`

use eof::prelude::*;

fn main() {
    let hours: f64 = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(4.0);
    let os = OsKind::Zephyr;
    println!(
        "target: {} for {hours} simulated hours per fuzzer\n",
        os.display()
    );

    let mut rows = Vec::new();
    for kind in [BaselineKind::Eof, BaselineKind::EofNf, BaselineKind::Tardis] {
        let mut cfg = kind.full_system_config(os, 42).expect("supported");
        cfg.budget_hours = hours;
        cfg.snapshot_hours = (hours / 10.0).max(0.1);
        let r = run_campaign(cfg);
        println!(
            "{:8} | {:6} execs | {:4} branches | {:2} bugs | {:3} stalls handled",
            kind.display(),
            r.stats.execs,
            r.branches,
            r.bugs.len(),
            r.stats.stalls
        );
        rows.push((kind, r));
    }

    println!("\ncoverage growth (each row one fuzzer, one char per snapshot):");
    let max = rows
        .iter()
        .flat_map(|(_, r)| r.history.iter().map(|s| s.branches))
        .max()
        .unwrap_or(1) as f64;
    for (kind, r) in &rows {
        let bar: String = r
            .history
            .iter()
            .map(|s| {
                let l = (s.branches as f64 / max * 8.0).round() as usize;
                [' ', '.', ':', '-', '=', '+', '*', '#', '@'][l.min(8)]
            })
            .collect();
        println!("  {:8} |{bar}|", kind.display());
    }

    let eof = rows[0].1.branches as f64;
    for (kind, r) in rows.iter().skip(1) {
        println!(
            "EOF improvement over {}: {:+.2}%",
            kind.display(),
            (eof - r.branches as f64) / r.branches as f64 * 100.0
        );
    }
}
