//! Liveness maintenance under fire: flash corruption and core lockups
//! injected mid-campaign, detected by Algorithm 1's watchdogs and cured
//! by checksum-verified reflash — the fuzzer never needs a human.
//!
//! Run with: `cargo run --release --example liveness_rescue`

use eof::hal::{FaultPlan, InjectedFault};
use eof::prelude::*;
use eof::speclang::prog::{ArgValue, Call};

fn main() {
    let board = BoardCatalog::stm32h745_nucleo();
    let os = OsKind::NuttX;
    let mut config = FuzzerConfig::eof(os, 99);
    config.board = board.clone();
    let image = build_image(os, ImageProfile::FullSystem, &InstrumentMode::Full);
    let mut machine = boot_machine(
        board.clone(),
        os,
        ImageProfile::FullSystem,
        &InstrumentMode::Full,
    );

    // Schedule trouble: a flash bit flip deep in the kernel image at
    // t≈10 sim-seconds, and a hard core lockup at t≈30.
    let kernel_off = machine.flash().table().get("kernel").unwrap().offset;
    machine.set_fault_plan(
        FaultPlan::none()
            .at(
                10_000,
                InjectedFault::FlashBitFlip {
                    offset: kernel_off + 0x4000,
                    bit: 2,
                },
            )
            .at(30_000, InjectedFault::KillCore),
    );

    let kconfig = eof::monitors::parse_kconfig(&eof::monitors::render_kconfig(
        "arm",
        machine.flash().table(),
    ))
    .unwrap();
    let restoration =
        StateRestoration::from_kconfig(&kconfig, board.flash_size, vec![("kernel".into(), image)])
            .unwrap();
    let mut executor = Executor::new(
        DebugTransport::attach(machine, LinkConfig::default()),
        config,
        api_table_of(os),
        restoration,
    )
    .unwrap();

    let probe = Prog {
        mmio: vec![],
        calls: vec![Call {
            api: "getenv".into(),
            args: vec![ArgValue::CString("PATH".into())],
        }],
    };

    println!("fuzzing through injected flash corruption and a core lockup…\n");
    let mut rescued = 0;
    for i in 0..200 {
        let out = executor.run_one(&probe);
        if out.restored {
            rescued += 1;
            println!(
                "exec {i:3}: target lost ({}) → watchdog tripped → restoration #{rescued} → fuzzing continues",
                if out.target_lost { "debug link dead" } else { "stall" },
            );
        }
        if rescued >= 2 && i > 60 {
            break;
        }
    }
    println!("\nexecutions completed : {}", executor.execs());
    println!("restorations needed  : {}", executor.restorations());
    assert!(
        executor.restorations() >= 1,
        "the injected faults must have forced at least one restoration"
    );
    // The proof of life: the target still answers.
    let out = executor.run_one(&probe);
    println!(
        "final probe after rescue: crash={} (target healthy)",
        out.crash.is_some()
    );
}
