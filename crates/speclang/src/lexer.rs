//! Tokeniser for the Syzlang-flavoured specification syntax.
//!
//! The language is line-oriented like Syzlang: every declaration fits on
//! one line, `#` starts a comment that runs to end of line, and blank lines
//! separate nothing. Comment lines immediately preceding an API signature
//! are preserved as its doc string.

use std::fmt;

/// Kinds of tokens produced by the lexer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal (decimal, `0x` hex, or negative decimal stored as
    /// two's-complement `u64`).
    Number(u64),
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `[`.
    LBracket,
    /// `]`.
    RBracket,
    /// `,`.
    Comma,
    /// `:`.
    Colon,
    /// `=`.
    Equals,
    /// End of a logical line.
    Newline,
    /// A `#`-comment's text (leading `#` and surrounding space stripped).
    Comment(String),
}

/// A token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token kind and payload.
    pub kind: TokenKind,
    /// 1-based line number.
    pub line: usize,
}

/// Lexing failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Offending character.
    pub ch: char,
    /// 1-based line number.
    pub line: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: unexpected character {:?}", self.line, self.ch)
    }
}

impl std::error::Error for LexError {}

/// The specification lexer.
pub struct Lexer;

impl Lexer {
    /// Tokenise `src`. Every source line yields its tokens followed by one
    /// [`TokenKind::Newline`] (blank lines yield just the newline).
    pub fn tokenize(src: &str) -> Result<Vec<Token>, LexError> {
        let mut out = Vec::new();
        for (idx, raw_line) in src.lines().enumerate() {
            let line = idx + 1;
            let mut chars = raw_line.char_indices().peekable();
            while let Some(&(i, c)) = chars.peek() {
                match c {
                    ' ' | '\t' | '\r' => {
                        chars.next();
                    }
                    '#' => {
                        let text = raw_line[i + 1..].trim().to_string();
                        out.push(Token {
                            kind: TokenKind::Comment(text),
                            line,
                        });
                        break;
                    }
                    '(' | ')' | '[' | ']' | ',' | ':' | '=' => {
                        chars.next();
                        let kind = match c {
                            '(' => TokenKind::LParen,
                            ')' => TokenKind::RParen,
                            '[' => TokenKind::LBracket,
                            ']' => TokenKind::RBracket,
                            ',' => TokenKind::Comma,
                            ':' => TokenKind::Colon,
                            _ => TokenKind::Equals,
                        };
                        out.push(Token { kind, line });
                    }
                    '-' | '0'..='9' => {
                        let neg = c == '-';
                        if neg {
                            chars.next();
                        }
                        let start = chars.peek().map(|&(i, _)| i).unwrap_or(raw_line.len());
                        let hex = raw_line[start..].starts_with("0x")
                            || raw_line[start..].starts_with("0X");
                        if hex {
                            chars.next();
                            chars.next();
                        }
                        let mut digits = String::new();
                        while let Some(&(_, d)) = chars.peek() {
                            if d.is_ascii_hexdigit() && (hex || d.is_ascii_digit()) {
                                digits.push(d);
                                chars.next();
                            } else {
                                break;
                            }
                        }
                        if digits.is_empty() {
                            return Err(LexError { ch: c, line });
                        }
                        let radix = if hex { 16 } else { 10 };
                        let magnitude = u64::from_str_radix(&digits, radix)
                            .map_err(|_| LexError { ch: c, line })?;
                        let value = if neg {
                            (magnitude as i64).wrapping_neg() as u64
                        } else {
                            magnitude
                        };
                        out.push(Token {
                            kind: TokenKind::Number(value),
                            line,
                        });
                    }
                    c if c.is_ascii_alphabetic() || c == '_' => {
                        let mut ident = String::new();
                        while let Some(&(_, d)) = chars.peek() {
                            if d.is_ascii_alphanumeric() || d == '_' {
                                ident.push(d);
                                chars.next();
                            } else {
                                break;
                            }
                        }
                        out.push(Token {
                            kind: TokenKind::Ident(ident),
                            line,
                        });
                    }
                    other => return Err(LexError { ch: other, line }),
                }
            }
            out.push(Token {
                kind: TokenKind::Newline,
                line,
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        Lexer::tokenize(src)
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lex_api_signature() {
        let k = kinds("xTaskCreate(depth int32[128:4096]) task");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("xTaskCreate".into()),
                TokenKind::LParen,
                TokenKind::Ident("depth".into()),
                TokenKind::Ident("int32".into()),
                TokenKind::LBracket,
                TokenKind::Number(128),
                TokenKind::Colon,
                TokenKind::Number(4096),
                TokenKind::RBracket,
                TokenKind::RParen,
                TokenKind::Ident("task".into()),
                TokenKind::Newline,
            ]
        );
    }

    #[test]
    fn lex_hex_and_negative() {
        let k = kinds("0xbc78 -1");
        assert_eq!(
            k,
            vec![
                TokenKind::Number(0xbc78),
                TokenKind::Number(u64::MAX),
                TokenKind::Newline
            ]
        );
    }

    #[test]
    fn lex_comment_captures_text() {
        let k = kinds("# creates and binds a socket\nsocket()");
        assert_eq!(
            k[0],
            TokenKind::Comment("creates and binds a socket".into())
        );
        assert_eq!(k[1], TokenKind::Newline);
    }

    #[test]
    fn blank_lines_yield_newlines() {
        let k = kinds("a\n\nb");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Newline,
                TokenKind::Newline,
                TokenKind::Ident("b".into()),
                TokenKind::Newline,
            ]
        );
    }

    #[test]
    fn line_numbers_are_tracked() {
        let toks = Lexer::tokenize("a\nb\nc").unwrap();
        let lines: Vec<usize> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 1, 2, 2, 3, 3]);
    }

    #[test]
    fn bad_character_is_reported() {
        let err = Lexer::tokenize("ok\nbad^char").unwrap_err();
        assert_eq!(err.ch, '^');
        assert_eq!(err.line, 2);
    }

    #[test]
    fn bare_minus_is_error() {
        assert!(Lexer::tokenize("-").is_err());
    }
}
