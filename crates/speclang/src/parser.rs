//! Recursive-descent parser for specification files.
//!
//! Grammar (one declaration per line):
//!
//! ```text
//! file     := line*
//! line     := resource | flagset | api | comment | blank
//! resource := "resource" IDENT "[" intty "]" (":" NUMBER ("," NUMBER)*)?
//! flagset  := IDENT "=" IDENT ":" NUMBER ("," IDENT ":" NUMBER)*
//! api      := IDENT "(" params? ")" IDENT?
//! params   := param ("," param)*
//! param    := IDENT type
//! type     := intty ("[" NUMBER ":" NUMBER "]")?
//!           | "flags" "[" IDENT "]"
//!           | "ptr" "[" type "]"
//!           | "buffer" "[" NUMBER "]"
//!           | "cstring" "[" NUMBER "]"
//!           | IDENT                      — a resource kind reference
//! intty    := "int8" | "int16" | "int32" | "int64"
//! ```
//!
//! A comment line directly above an API becomes its doc string, mirroring
//! how the LLM-generated specs carry an explanation per pseudo-syscall.

use crate::ast::{ApiSpec, FlagSet, Param, ResourceDecl, SpecFile, TypeDesc};
use crate::lexer::{Lexer, Token, TokenKind};
use std::fmt;

/// Parse failure with location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// Description of what went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse a full specification source into a [`SpecFile`].
pub fn parse_spec(src: &str) -> Result<SpecFile, ParseError> {
    let tokens = Lexer::tokenize(src).map_err(|e| ParseError {
        line: e.line,
        message: e.to_string(),
    })?;
    Parser { tokens, pos: 0 }.file()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos).map(|t| &t.kind)
    }

    fn line(&self) -> usize {
        self.tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map(|t| t.line)
            .unwrap_or(0)
    }

    fn bump(&mut self) -> Option<TokenKind> {
        let t = self.tokens.get(self.pos).map(|t| t.kind.clone());
        self.pos += 1;
        t
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line(),
            message: message.into(),
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            Some(TokenKind::Ident(s)) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn expect_number(&mut self) -> Result<u64, ParseError> {
        match self.bump() {
            Some(TokenKind::Number(n)) => Ok(n),
            other => Err(self.err(format!("expected number, found {other:?}"))),
        }
    }

    fn expect(&mut self, kind: TokenKind) -> Result<(), ParseError> {
        match self.bump() {
            Some(k) if k == kind => Ok(()),
            other => Err(self.err(format!("expected {kind:?}, found {other:?}"))),
        }
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == Some(kind) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn end_line(&mut self) -> Result<(), ParseError> {
        match self.bump() {
            Some(TokenKind::Newline) | None => Ok(()),
            other => Err(self.err(format!("trailing tokens on line: {other:?}"))),
        }
    }

    fn file(&mut self) -> Result<SpecFile, ParseError> {
        let mut spec = SpecFile::default();
        let mut pending_doc: Option<String> = None;
        while let Some(tok) = self.peek() {
            match tok.clone() {
                TokenKind::Newline => {
                    self.pos += 1;
                    pending_doc = None;
                }
                TokenKind::Comment(text) => {
                    self.pos += 1;
                    pending_doc = Some(text);
                    self.end_line()?;
                }
                TokenKind::Ident(word) if word == "resource" => {
                    self.pos += 1;
                    let decl = self.resource()?;
                    spec.resources.insert(decl.name.clone(), decl);
                    pending_doc = None;
                }
                TokenKind::Ident(_) => {
                    // Either a flagset (`name = …`) or an API (`name(…)`).
                    let name = self.expect_ident()?;
                    match self.peek() {
                        Some(TokenKind::Equals) => {
                            self.pos += 1;
                            let fs = self.flagset(name)?;
                            spec.flags.insert(fs.name.clone(), fs);
                            pending_doc = None;
                        }
                        Some(TokenKind::LParen) => {
                            let api = self.api(name, pending_doc.take())?;
                            spec.apis.push(api);
                        }
                        other => {
                            return Err(self
                                .err(format!("expected '=' or '(' after name, found {other:?}")))
                        }
                    }
                }
                other => return Err(self.err(format!("unexpected token {other:?}"))),
            }
        }
        Ok(spec)
    }

    fn int_bits(&mut self) -> Result<u8, ParseError> {
        let word = self.expect_ident()?;
        match word.as_str() {
            "int8" => Ok(8),
            "int16" => Ok(16),
            "int32" => Ok(32),
            "int64" => Ok(64),
            other => Err(self.err(format!("expected int type, found {other:?}"))),
        }
    }

    fn resource(&mut self) -> Result<ResourceDecl, ParseError> {
        let name = self.expect_ident()?;
        self.expect(TokenKind::LBracket)?;
        let bits = self.int_bits()?;
        self.expect(TokenKind::RBracket)?;
        let mut sentinels = Vec::new();
        if self.eat(&TokenKind::Colon) {
            sentinels.push(self.expect_number()?);
            while self.eat(&TokenKind::Comma) {
                sentinels.push(self.expect_number()?);
            }
        }
        self.end_line()?;
        Ok(ResourceDecl {
            name,
            bits,
            sentinels,
        })
    }

    fn flagset(&mut self, name: String) -> Result<FlagSet, ParseError> {
        let mut values = Vec::new();
        loop {
            let sym = self.expect_ident()?;
            self.expect(TokenKind::Colon)?;
            let val = self.expect_number()?;
            values.push((sym, val));
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.end_line()?;
        Ok(FlagSet { name, values })
    }

    fn api(&mut self, name: String, doc: Option<String>) -> Result<ApiSpec, ParseError> {
        self.expect(TokenKind::LParen)?;
        let mut params = Vec::new();
        if !self.eat(&TokenKind::RParen) {
            loop {
                let pname = self.expect_ident()?;
                let ty = self.type_desc()?;
                params.push(Param { name: pname, ty });
                if self.eat(&TokenKind::Comma) {
                    continue;
                }
                self.expect(TokenKind::RParen)?;
                break;
            }
        }
        let returns = match self.peek() {
            Some(TokenKind::Ident(_)) => Some(self.expect_ident()?),
            _ => None,
        };
        self.end_line()?;
        Ok(ApiSpec {
            name,
            params,
            returns,
            doc,
        })
    }

    fn type_desc(&mut self) -> Result<TypeDesc, ParseError> {
        let word = self.expect_ident()?;
        match word.as_str() {
            "int8" | "int16" | "int32" | "int64" => {
                let bits = match word.as_str() {
                    "int8" => 8,
                    "int16" => 16,
                    "int32" => 32,
                    _ => 64,
                };
                let range = if self.eat(&TokenKind::LBracket) {
                    let min = self.expect_number()?;
                    self.expect(TokenKind::Colon)?;
                    let max = self.expect_number()?;
                    self.expect(TokenKind::RBracket)?;
                    Some((min, max))
                } else {
                    None
                };
                Ok(TypeDesc::Int { bits, range })
            }
            "flags" => {
                self.expect(TokenKind::LBracket)?;
                let set = self.expect_ident()?;
                self.expect(TokenKind::RBracket)?;
                Ok(TypeDesc::Flags { set })
            }
            "ptr" => {
                self.expect(TokenKind::LBracket)?;
                let inner = self.type_desc()?;
                self.expect(TokenKind::RBracket)?;
                Ok(TypeDesc::Ptr(Box::new(inner)))
            }
            "buffer" => {
                self.expect(TokenKind::LBracket)?;
                let max_len = self.expect_number()? as u32;
                self.expect(TokenKind::RBracket)?;
                Ok(TypeDesc::Buffer { max_len })
            }
            "cstring" => {
                self.expect(TokenKind::LBracket)?;
                let max_len = self.expect_number()? as u32;
                self.expect(TokenKind::RBracket)?;
                Ok(TypeDesc::CString { max_len })
            }
            resource => Ok(TypeDesc::Resource {
                name: resource.to_string(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
resource task[int32]: -1
resource sock[int32]: -1, 0

sock_domain = AF_INET:2, AF_INET6:10, AF_UNIX:1

# Create a task with a bounded stack.
xTaskCreate(name ptr[cstring[16]], depth int32[128:4096], prio int32[0:31]) task
vTaskDelete(handle task)
# Bundled socket create + bind.
syz_create_bind_socket(domain flags[sock_domain], type int32, protocol int32, addr ptr[buffer[64]]) sock
"#;

    #[test]
    fn parse_full_sample() {
        let spec = parse_spec(SAMPLE).unwrap();
        assert_eq!(spec.resources.len(), 2);
        assert_eq!(spec.flags.len(), 1);
        assert_eq!(spec.apis.len(), 3);
        assert_eq!(spec.resources["sock"].sentinels, vec![u64::MAX, 0]);
        assert_eq!(spec.flags["sock_domain"].values.len(), 3);
    }

    #[test]
    fn api_types_and_resources() {
        let spec = parse_spec(SAMPLE).unwrap();
        let create = spec.api("xTaskCreate").unwrap();
        assert_eq!(create.returns.as_deref(), Some("task"));
        assert_eq!(
            create.params[1].ty,
            TypeDesc::Int {
                bits: 32,
                range: Some((128, 4096))
            }
        );
        let del = spec.api("vTaskDelete").unwrap();
        assert_eq!(del.consumed_resources(), vec!["task"]);
    }

    #[test]
    fn doc_comments_attach_to_next_api() {
        let spec = parse_spec(SAMPLE).unwrap();
        assert_eq!(
            spec.api("xTaskCreate").unwrap().doc.as_deref(),
            Some("Create a task with a bounded stack.")
        );
        // The doc for the pseudo-syscall must not leak to vTaskDelete.
        assert!(spec.api("vTaskDelete").unwrap().doc.is_none());
        assert!(spec
            .api("syz_create_bind_socket")
            .unwrap()
            .doc
            .as_deref()
            .unwrap()
            .contains("Bundled"));
    }

    #[test]
    fn nested_pointer_type() {
        let spec = parse_spec("f(p ptr[ptr[int32]])").unwrap();
        match &spec.apis[0].params[0].ty {
            TypeDesc::Ptr(inner) => match inner.as_ref() {
                TypeDesc::Ptr(inner2) => {
                    assert_eq!(
                        **inner2,
                        TypeDesc::Int {
                            bits: 32,
                            range: None
                        }
                    )
                }
                other => panic!("expected nested ptr, got {other:?}"),
            },
            other => panic!("expected ptr, got {other:?}"),
        }
    }

    #[test]
    fn empty_params() {
        let spec = parse_spec("rt_thread_yield()").unwrap();
        assert!(spec.apis[0].params.is_empty());
        assert!(spec.apis[0].returns.is_none());
    }

    #[test]
    fn error_reports_line() {
        let err = parse_spec("ok()\nbroken(").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse_spec("f() task extra").is_err());
    }

    #[test]
    fn missing_colon_in_flagset() {
        assert!(parse_spec("flags_set = A, B").is_err());
    }

    #[test]
    fn empty_input_is_empty_spec() {
        let spec = parse_spec("").unwrap();
        assert!(spec.apis.is_empty());
    }
}
