//! Post-validation of parsed specifications.
//!
//! The paper admits LLM-generated specifications to the corpus only after
//! "parsing and type checking" (§4.5). This module is that gate: it
//! rejects dangling flag-set and resource references, inverted ranges,
//! ranges that do not fit the declared integer width, duplicate API names,
//! resources nobody can produce, and structurally absurd signatures.

use crate::ast::{SpecFile, TypeDesc};
use std::collections::BTreeSet;
use std::fmt;

/// Maximum parameters per API — mirrors syscall ABI limits.
pub const MAX_PARAMS: usize = 8;

/// A type-checking diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeError {
    /// API or declaration the error is attached to.
    pub context: String,
    /// Description of the violation.
    pub message: String,
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.context, self.message)
    }
}

impl std::error::Error for TypeError {}

/// Validate a specification file. Returns every violation found (empty
/// means the spec is admissible).
pub fn typecheck(spec: &SpecFile) -> Vec<TypeError> {
    let mut errors = Vec::new();
    let mut seen_api = BTreeSet::new();

    for api in &spec.apis {
        let ctx = api.name.clone();
        if !seen_api.insert(api.name.clone()) {
            errors.push(TypeError {
                context: ctx.clone(),
                message: "duplicate API name".into(),
            });
        }
        if api.params.len() > MAX_PARAMS {
            errors.push(TypeError {
                context: ctx.clone(),
                message: format!(
                    "{} parameters exceeds the ABI limit of {MAX_PARAMS}",
                    api.params.len()
                ),
            });
        }
        let mut seen_param = BTreeSet::new();
        for p in &api.params {
            if !seen_param.insert(p.name.clone()) {
                errors.push(TypeError {
                    context: ctx.clone(),
                    message: format!("duplicate parameter name {:?}", p.name),
                });
            }
            check_type(&p.ty, spec, &ctx, &p.name, &mut errors, 0);
        }
        if let Some(ret) = &api.returns {
            if !spec.resources.contains_key(ret) {
                errors.push(TypeError {
                    context: ctx.clone(),
                    message: format!("returns undeclared resource {ret:?}"),
                });
            }
        }
    }

    // Every resource consumed somewhere must have at least one producer or
    // a sentinel value, otherwise no valid program can ever call the API.
    for api in &spec.apis {
        for res in api.consumed_resources() {
            match spec.resources.get(res) {
                None => errors.push(TypeError {
                    context: api.name.clone(),
                    message: format!("consumes undeclared resource {res:?}"),
                }),
                Some(decl) => {
                    let has_producer = spec.apis.iter().any(|a| a.returns.as_deref() == Some(res));
                    if !has_producer && decl.sentinels.is_empty() {
                        errors.push(TypeError {
                            context: api.name.clone(),
                            message: format!(
                                "resource {res:?} has no producer and no sentinel values"
                            ),
                        });
                    }
                }
            }
        }
    }

    for fs in spec.flags.values() {
        if fs.values.is_empty() {
            errors.push(TypeError {
                context: fs.name.clone(),
                message: "empty flag set".into(),
            });
        }
    }

    for r in spec.resources.values() {
        if ![8, 16, 32, 64].contains(&r.bits) {
            errors.push(TypeError {
                context: r.name.clone(),
                message: format!("invalid resource width {}", r.bits),
            });
        }
    }

    errors
}

fn check_type(
    ty: &TypeDesc,
    spec: &SpecFile,
    ctx: &str,
    param: &str,
    errors: &mut Vec<TypeError>,
    depth: usize,
) {
    if depth > 4 {
        errors.push(TypeError {
            context: ctx.to_string(),
            message: format!("parameter {param:?}: pointer nesting too deep"),
        });
        return;
    }
    match ty {
        TypeDesc::Int { bits, range } => {
            if let Some((min, max)) = range {
                if min > max {
                    errors.push(TypeError {
                        context: ctx.to_string(),
                        message: format!("parameter {param:?}: inverted range {min}..{max}"),
                    });
                }
                // Negative sentinels (two's complement) are allowed; only
                // flag plainly-too-wide positive bounds.
                let width_max = match bits {
                    8 => u8::MAX as u64,
                    16 => u16::MAX as u64,
                    32 => u32::MAX as u64,
                    _ => u64::MAX,
                };
                let is_negative = (*max as i64) < 0;
                if !is_negative && *max > width_max {
                    errors.push(TypeError {
                        context: ctx.to_string(),
                        message: format!(
                            "parameter {param:?}: max {max:#x} does not fit int{bits}"
                        ),
                    });
                }
            }
        }
        TypeDesc::Flags { set } => {
            if !spec.flags.contains_key(set) {
                errors.push(TypeError {
                    context: ctx.to_string(),
                    message: format!("parameter {param:?}: undeclared flag set {set:?}"),
                });
            }
        }
        TypeDesc::Ptr(inner) => check_type(inner, spec, ctx, param, errors, depth + 1),
        TypeDesc::Buffer { max_len } | TypeDesc::CString { max_len } => {
            if *max_len == 0 || *max_len > 4096 {
                errors.push(TypeError {
                    context: ctx.to_string(),
                    message: format!("parameter {param:?}: unreasonable length bound {max_len}"),
                });
            }
        }
        TypeDesc::Resource { name } => {
            if !spec.resources.contains_key(name) {
                errors.push(TypeError {
                    context: ctx.to_string(),
                    message: format!("parameter {param:?}: undeclared resource {name:?}"),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_spec;

    fn check(src: &str) -> Vec<TypeError> {
        typecheck(&parse_spec(src).unwrap())
    }

    #[test]
    fn valid_spec_passes() {
        let errs = check(
            "resource task[int32]: -1\n\
             prio_flags = LOW:0, HIGH:1\n\
             create(p flags[prio_flags], d int32[1:10]) task\n\
             delete(t task)",
        );
        assert!(errs.is_empty(), "{errs:?}");
    }

    #[test]
    fn dangling_flagset() {
        let errs = check("f(x flags[nope])");
        assert_eq!(errs.len(), 1);
        assert!(errs[0].message.contains("undeclared flag set"));
    }

    #[test]
    fn dangling_resource_consumption() {
        let errs = check("f(x ghost)");
        // Two diagnostics: undeclared in the param type and in the
        // producer analysis.
        assert!(errs
            .iter()
            .any(|e| e.message.contains("undeclared resource")));
    }

    #[test]
    fn undeclared_return_resource() {
        let errs = check("f() ghost");
        assert!(errs
            .iter()
            .any(|e| e.message.contains("returns undeclared")));
    }

    #[test]
    fn inverted_range() {
        let errs = check("f(x int32[10:1])");
        assert!(errs.iter().any(|e| e.message.contains("inverted range")));
    }

    #[test]
    fn range_must_fit_width() {
        let errs = check("f(x int8[0:300])");
        assert!(errs.iter().any(|e| e.message.contains("does not fit int8")));
    }

    #[test]
    fn negative_sentinel_ranges_allowed() {
        let errs = check("f(x int32[0:-1])");
        // -1 as max means "max handle value"; allowed, though the min>max
        // numeric comparison fires on two's complement. Accept either the
        // inverted-range diagnostic or none, but never the width error.
        assert!(errs.iter().all(|e| !e.message.contains("does not fit")));
    }

    #[test]
    fn duplicate_api_rejected() {
        let errs = check("f()\nf()");
        assert!(errs.iter().any(|e| e.message.contains("duplicate API")));
    }

    #[test]
    fn duplicate_param_rejected() {
        let errs = check("f(a int32, a int32)");
        assert!(errs
            .iter()
            .any(|e| e.message.contains("duplicate parameter")));
    }

    #[test]
    fn too_many_params() {
        let errs =
            check("f(a int8, b int8, c int8, d int8, e int8, g int8, h int8, i int8, j int8)");
        assert!(errs.iter().any(|e| e.message.contains("ABI limit")));
    }

    #[test]
    fn resource_without_producer_or_sentinel() {
        let errs = check("resource h[int32]\nuse_h(x h)");
        assert!(errs
            .iter()
            .any(|e| e.message.contains("no producer and no sentinel")));
    }

    #[test]
    fn resource_with_sentinel_is_fine_without_producer() {
        let errs = check("resource h[int32]: 0\nuse_h(x h)");
        assert!(errs.is_empty(), "{errs:?}");
    }

    #[test]
    fn zero_length_buffer_rejected() {
        let errs = check("f(b buffer[0])");
        assert!(errs.iter().any(|e| e.message.contains("length bound")));
    }

    #[test]
    fn deep_pointer_nesting_rejected() {
        let errs = check("f(p ptr[ptr[ptr[ptr[ptr[ptr[int32]]]]]])");
        assert!(errs.iter().any(|e| e.message.contains("nesting too deep")));
    }
}
