//! Binary wire format between the host fuzzer and the on-target agent.
//!
//! The agent deserialises test cases "using only primitive operations such
//! as integer/bitwise arithmetic and direct array reads/writes" (§4.3.2),
//! so the format is deliberately trivial: fixed-size little fields, no
//! varints, no alignment games, everything in the *target's* byte order.
//!
//! ```text
//! offset 0   4 bytes  magic "EOFP"
//! offset 4   u8       version (1)
//! offset 5   u8       call count
//! then per call:
//!            u16      api id        (assigned by the target's API table)
//!            u8       arg count
//!            per arg: u8 tag, then payload:
//!              0 Int         u64 value
//!              1 ResourceRef u16 producing call index
//!              2 Buffer      u16 len, len bytes
//!              3 CString     u16 len, len bytes (NUL not stored)
//! then, only when the prog carries an MMIO response stream:
//!            u8       trailer tag 'M' (0x4d)
//!            u16      stream length
//!            bytes    the response stream
//! ```
//!
//! The trailer is strictly additive: pure-API progs encode byte-for-byte
//! as they always have, and decoders ignore trailing bytes that do not
//! start with the trailer tag (the historical contract).

use crate::prog::{ArgValue, Call, Prog, MMIO_TRAILER};
use std::collections::BTreeMap;
use std::fmt;

/// Wire magic: `"EOFP"`.
pub const PROG_MAGIC: [u8; 4] = *b"EOFP";

/// Wire format version.
pub const PROG_VERSION: u8 = 1;

/// Byte order used on the wire (matches the target core).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireOrder {
    /// Little-endian fields.
    Little,
    /// Big-endian fields.
    Big,
}

impl WireOrder {
    fn u16_bytes(self, v: u16) -> [u8; 2] {
        match self {
            WireOrder::Little => v.to_le_bytes(),
            WireOrder::Big => v.to_be_bytes(),
        }
    }

    fn u64_bytes(self, v: u64) -> [u8; 8] {
        match self {
            WireOrder::Little => v.to_le_bytes(),
            WireOrder::Big => v.to_be_bytes(),
        }
    }

    fn u16_from(self, b: [u8; 2]) -> u16 {
        match self {
            WireOrder::Little => u16::from_le_bytes(b),
            WireOrder::Big => u16::from_be_bytes(b),
        }
    }

    fn u64_from(self, b: [u8; 8]) -> u64 {
        match self {
            WireOrder::Little => u64::from_le_bytes(b),
            WireOrder::Big => u64::from_be_bytes(b),
        }
    }
}

/// One API's binding between its spec name and the target's numeric id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiBinding {
    /// Numeric id understood by the target's dispatch table.
    pub id: u16,
    /// Spec-level API name.
    pub name: String,
}

/// Bidirectional name ⇄ id table for one target OS.
#[derive(Debug, Clone, Default)]
pub struct ApiTable {
    by_name: BTreeMap<String, u16>,
    by_id: BTreeMap<u16, String>,
}

impl ApiTable {
    /// Build a table from bindings. Later duplicates overwrite.
    pub fn new(bindings: impl IntoIterator<Item = ApiBinding>) -> Self {
        let mut t = ApiTable::default();
        for b in bindings {
            t.by_name.insert(b.name.clone(), b.id);
            t.by_id.insert(b.id, b.name);
        }
        t
    }

    /// Id for a name.
    pub fn id_of(&self, name: &str) -> Option<u16> {
        self.by_name.get(name).copied()
    }

    /// Name for an id.
    pub fn name_of(&self, id: u16) -> Option<&str> {
        self.by_id.get(&id).map(|s| s.as_str())
    }

    /// Number of bound APIs.
    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }

    /// Iterate over `(id, name)`.
    pub fn iter(&self) -> impl Iterator<Item = (u16, &str)> {
        self.by_id.iter().map(|(&id, n)| (id, n.as_str()))
    }
}

/// Encoding / decoding failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Prog has more calls than the format can carry.
    TooManyCalls(usize),
    /// A call names an API absent from the table.
    UnboundApi(String),
    /// An id on the wire is absent from the table.
    UnknownApiId(u16),
    /// Buffer/string payload exceeds `u16` length.
    PayloadTooLong(usize),
    /// Bad magic bytes.
    BadMagic,
    /// Unsupported version byte.
    BadVersion(u8),
    /// Truncated input at the given offset.
    Truncated(usize),
    /// Unknown argument tag byte.
    BadTag(u8),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::TooManyCalls(n) => write!(f, "prog has {n} calls, max 255"),
            WireError::UnboundApi(name) => write!(f, "API {name:?} not in table"),
            WireError::UnknownApiId(id) => write!(f, "unknown API id {id}"),
            WireError::PayloadTooLong(n) => write!(f, "payload of {n} bytes exceeds u16"),
            WireError::BadMagic => f.write_str("bad prog magic"),
            WireError::BadVersion(v) => write!(f, "unsupported prog version {v}"),
            WireError::Truncated(off) => write!(f, "truncated prog at offset {off}"),
            WireError::BadTag(t) => write!(f, "unknown argument tag {t}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Encode a prog for transmission to the target.
pub fn encode_prog(prog: &Prog, table: &ApiTable, order: WireOrder) -> Result<Vec<u8>, WireError> {
    if prog.calls.len() > 255 {
        return Err(WireError::TooManyCalls(prog.calls.len()));
    }
    let mut out = Vec::with_capacity(64);
    out.extend_from_slice(&PROG_MAGIC);
    out.push(PROG_VERSION);
    out.push(prog.calls.len() as u8);
    for call in &prog.calls {
        let id = table
            .id_of(&call.api)
            .ok_or_else(|| WireError::UnboundApi(call.api.clone()))?;
        out.extend_from_slice(&order.u16_bytes(id));
        if call.args.len() > 255 {
            return Err(WireError::TooManyCalls(call.args.len()));
        }
        out.push(call.args.len() as u8);
        for arg in &call.args {
            match arg {
                ArgValue::Int(v) => {
                    out.push(0);
                    out.extend_from_slice(&order.u64_bytes(*v));
                }
                ArgValue::ResourceRef(r) => {
                    out.push(1);
                    out.extend_from_slice(&order.u16_bytes(*r));
                }
                ArgValue::Buffer(b) => {
                    if b.len() > u16::MAX as usize {
                        return Err(WireError::PayloadTooLong(b.len()));
                    }
                    out.push(2);
                    out.extend_from_slice(&order.u16_bytes(b.len() as u16));
                    out.extend_from_slice(b);
                }
                ArgValue::CString(s) => {
                    if s.len() > u16::MAX as usize {
                        return Err(WireError::PayloadTooLong(s.len()));
                    }
                    out.push(3);
                    out.extend_from_slice(&order.u16_bytes(s.len() as u16));
                    out.extend_from_slice(s.as_bytes());
                }
            }
        }
    }
    if !prog.mmio.is_empty() {
        if prog.mmio.len() > u16::MAX as usize {
            return Err(WireError::PayloadTooLong(prog.mmio.len()));
        }
        out.push(MMIO_TRAILER);
        out.extend_from_slice(&order.u16_bytes(prog.mmio.len() as u16));
        out.extend_from_slice(&prog.mmio);
    }
    Ok(out)
}

/// Decode a prog received from the host. This mirrors the agent's
/// `read_prog()` and uses only slicing and integer assembly, as the agent
/// contract requires.
pub fn decode_prog(bytes: &[u8], table: &ApiTable, order: WireOrder) -> Result<Prog, WireError> {
    let mut off = 0usize;
    let take = |off: &mut usize, n: usize| -> Result<&[u8], WireError> {
        if *off + n > bytes.len() {
            return Err(WireError::Truncated(*off));
        }
        let s = &bytes[*off..*off + n];
        *off += n;
        Ok(s)
    };
    let magic = take(&mut off, 4)?;
    if magic != PROG_MAGIC {
        return Err(WireError::BadMagic);
    }
    let version = take(&mut off, 1)?[0];
    if version != PROG_VERSION {
        return Err(WireError::BadVersion(version));
    }
    let ncalls = take(&mut off, 1)?[0] as usize;
    let mut calls = Vec::with_capacity(ncalls);
    for _ in 0..ncalls {
        let idb = take(&mut off, 2)?;
        let id = order.u16_from([idb[0], idb[1]]);
        let name = table
            .name_of(id)
            .ok_or(WireError::UnknownApiId(id))?
            .to_string();
        let argc = take(&mut off, 1)?[0] as usize;
        let mut args = Vec::with_capacity(argc);
        for _ in 0..argc {
            let tag = take(&mut off, 1)?[0];
            let arg = match tag {
                0 => {
                    let b = take(&mut off, 8)?;
                    let mut a = [0u8; 8];
                    a.copy_from_slice(b);
                    ArgValue::Int(order.u64_from(a))
                }
                1 => {
                    let b = take(&mut off, 2)?;
                    ArgValue::ResourceRef(order.u16_from([b[0], b[1]]))
                }
                2 => {
                    let lb = take(&mut off, 2)?;
                    let len = order.u16_from([lb[0], lb[1]]) as usize;
                    ArgValue::Buffer(take(&mut off, len)?.to_vec())
                }
                3 => {
                    let lb = take(&mut off, 2)?;
                    let len = order.u16_from([lb[0], lb[1]]) as usize;
                    let raw = take(&mut off, len)?;
                    ArgValue::CString(String::from_utf8_lossy(raw).into_owned())
                }
                t => return Err(WireError::BadTag(t)),
            };
            args.push(arg);
        }
        calls.push(Call { api: name, args });
    }
    let mut mmio = Vec::new();
    if off < bytes.len() && bytes[off] == MMIO_TRAILER {
        off += 1;
        let lb = take(&mut off, 2)?;
        let len = order.u16_from([lb[0], lb[1]]) as usize;
        mmio = take(&mut off, len)?.to_vec();
    }
    Ok(Prog { mmio, calls })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> ApiTable {
        ApiTable::new([
            ApiBinding {
                id: 1,
                name: "create".into(),
            },
            ApiBinding {
                id: 2,
                name: "send".into(),
            },
        ])
    }

    fn sample() -> Prog {
        Prog {
            mmio: vec![],
            calls: vec![
                Call {
                    api: "create".into(),
                    args: vec![ArgValue::Int(42), ArgValue::CString("tsk".into())],
                },
                Call {
                    api: "send".into(),
                    args: vec![
                        ArgValue::ResourceRef(0),
                        ArgValue::Buffer(vec![1, 2, 3, 255]),
                    ],
                },
            ],
        }
    }

    #[test]
    fn roundtrip_little() {
        let t = table();
        let p = sample();
        let bytes = encode_prog(&p, &t, WireOrder::Little).unwrap();
        assert_eq!(&bytes[..4], b"EOFP");
        let back = decode_prog(&bytes, &t, WireOrder::Little).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn roundtrip_big() {
        let t = table();
        let p = sample();
        let bytes = encode_prog(&p, &t, WireOrder::Big).unwrap();
        let back = decode_prog(&bytes, &t, WireOrder::Big).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn endianness_mismatch_fails_or_differs() {
        let t = table();
        let p = sample();
        let bytes = encode_prog(&p, &t, WireOrder::Big).unwrap();
        if let Ok(back) = decode_prog(&bytes, &t, WireOrder::Little) {
            assert_ne!(back, p);
        }
    }

    #[test]
    fn unbound_api_rejected() {
        let p = Prog {
            mmio: vec![],
            calls: vec![Call {
                api: "ghost".into(),
                args: vec![],
            }],
        };
        assert_eq!(
            encode_prog(&p, &table(), WireOrder::Little).unwrap_err(),
            WireError::UnboundApi("ghost".into())
        );
    }

    #[test]
    fn bad_magic_rejected() {
        let err = decode_prog(b"NOPE\x01\x00", &table(), WireOrder::Little).unwrap_err();
        assert_eq!(err, WireError::BadMagic);
    }

    #[test]
    fn bad_version_rejected() {
        let err = decode_prog(b"EOFP\x09\x00", &table(), WireOrder::Little).unwrap_err();
        assert_eq!(err, WireError::BadVersion(9));
    }

    #[test]
    fn truncation_is_detected_not_panicking() {
        let t = table();
        let bytes = encode_prog(&sample(), &t, WireOrder::Little).unwrap();
        for cut in 0..bytes.len() {
            let r = decode_prog(&bytes[..cut], &t, WireOrder::Little);
            assert!(r.is_err(), "prefix of {cut} bytes must not decode");
        }
    }

    #[test]
    fn bad_tag_rejected() {
        let t = table();
        // magic, version, 1 call, api id 1, 1 arg, tag 7.
        let bytes = [b'E', b'O', b'F', b'P', 1, 1, 1, 0, 1, 7];
        assert_eq!(
            decode_prog(&bytes, &t, WireOrder::Little).unwrap_err(),
            WireError::BadTag(7)
        );
    }

    #[test]
    fn unknown_id_rejected() {
        let t = table();
        let bytes = [b'E', b'O', b'F', b'P', 1, 1, 0x63, 0, 0];
        assert_eq!(
            decode_prog(&bytes, &t, WireOrder::Little).unwrap_err(),
            WireError::UnknownApiId(0x63)
        );
    }

    #[test]
    fn empty_prog_roundtrips() {
        let t = table();
        let bytes = encode_prog(&Prog::new(), &t, WireOrder::Little).unwrap();
        assert_eq!(bytes.len(), 6);
        assert!(decode_prog(&bytes, &t, WireOrder::Little)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn mmio_trailer_roundtrips_on_both_orders() {
        let t = table();
        let mut p = sample();
        p.mmio = vec![0x4d, 0x00, 0xff, 0x10];
        for order in [WireOrder::Little, WireOrder::Big] {
            let bytes = encode_prog(&p, &t, order).unwrap();
            assert_eq!(decode_prog(&bytes, &t, order).unwrap(), p);
            // Truncation inside the trailer is detected, never a panic.
            for cut in bytes.len() - p.mmio.len()..bytes.len() {
                assert!(decode_prog(&bytes[..cut], &t, order).is_err());
            }
        }
        // The trailer extends the plain encoding without altering it.
        let plain = encode_prog(&sample(), &t, WireOrder::Little).unwrap();
        let with = encode_prog(&p, &t, WireOrder::Little).unwrap();
        assert_eq!(&with[..plain.len()], &plain[..]);
    }

    #[test]
    fn api_table_lookups() {
        let t = table();
        assert_eq!(t.id_of("send"), Some(2));
        assert_eq!(t.name_of(1), Some("create"));
        assert_eq!(t.len(), 2);
        assert!(t.id_of("missing").is_none());
    }
}
