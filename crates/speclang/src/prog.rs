//! Concrete test cases ("progs").
//!
//! A [`Prog`] is what the fuzzer actually executes: an ordered sequence of
//! API calls with concrete argument values. Arguments that consume a
//! resource refer to the *index of the producing call* within the same
//! prog — the dependency structure that lets EOF order calls by resource
//! production/consumption (§5.4.2).

use crate::ast::{SpecFile, TypeDesc};

/// A concrete argument value.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ArgValue {
    /// Scalar (covers ints and flag combinations).
    Int(u64),
    /// Reference to the result of the `n`-th call in the same prog.
    ResourceRef(u16),
    /// Raw bytes (for `buffer[...]` / `ptr[buffer[...]]` parameters).
    Buffer(Vec<u8>),
    /// NUL-terminated string payload (NUL added on the wire).
    CString(String),
}

/// One API invocation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Call {
    /// API name (resolved to a numeric id at encode time).
    pub api: String,
    /// Concrete arguments, one per declared parameter.
    pub args: Vec<ArgValue>,
}

/// An executable test case.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Prog {
    /// The call sequence.
    pub calls: Vec<Call>,
    /// The MMIO response stream: the prog's *second input plane*. Loaded
    /// into the target's model-free peripheral region before execution,
    /// it answers driver-layer data/status register reads (Ember-IO
    /// replay/inject). Empty for pure-API progs — and then absent from
    /// both encodings, keeping legacy bytes and hashes unchanged.
    pub mmio: Vec<u8>,
}

impl Prog {
    /// An empty prog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of calls.
    pub fn len(&self) -> usize {
        self.calls.len()
    }

    /// Whether the prog has no calls.
    pub fn is_empty(&self) -> bool {
        self.calls.is_empty()
    }

    /// Structural validity: every resource reference must point at an
    /// *earlier* call. Returns the index of the first invalid call.
    pub fn first_invalid_ref(&self) -> Option<usize> {
        for (i, call) in self.calls.iter().enumerate() {
            for arg in &call.args {
                if let ArgValue::ResourceRef(r) = arg {
                    if *r as usize >= i {
                        return Some(i);
                    }
                }
            }
        }
        None
    }

    /// Validity against a spec: call names exist, arity matches, resource
    /// refs are backward, and the referenced producer returns the right
    /// resource kind.
    pub fn conforms_to(&self, spec: &SpecFile) -> bool {
        if self.first_invalid_ref().is_some() {
            return false;
        }
        for call in &self.calls {
            let Some(api) = spec.api(&call.api) else {
                return false;
            };
            if api.params.len() != call.args.len() {
                return false;
            }
            for (param, arg) in api.params.iter().zip(&call.args) {
                if let ArgValue::ResourceRef(r) = arg {
                    let Some(kind) = param.ty.consumed_resource() else {
                        return false;
                    };
                    let producer = &self.calls[*r as usize];
                    let Some(papi) = spec.api(&producer.api) else {
                        return false;
                    };
                    if papi.returns.as_deref() != Some(kind) {
                        return false;
                    }
                }
                // Scalars vs buffers: a light shape check.
                let shape_ok = matches!(
                    (&param.ty, arg),
                    (TypeDesc::Int { .. }, ArgValue::Int(_))
                        | (TypeDesc::Flags { .. }, ArgValue::Int(_))
                        | (TypeDesc::Resource { .. }, ArgValue::Int(_))
                        | (TypeDesc::Resource { .. }, ArgValue::ResourceRef(_))
                        | (TypeDesc::Ptr(_), _)
                        | (TypeDesc::Buffer { .. }, ArgValue::Buffer(_))
                        | (TypeDesc::CString { .. }, ArgValue::CString(_))
                );
                if !shape_ok {
                    return false;
                }
            }
        }
        true
    }

    /// Indices of calls whose result is referenced later (must be kept
    /// when minimising).
    pub fn referenced_calls(&self) -> Vec<usize> {
        let mut used = vec![false; self.calls.len()];
        for call in &self.calls {
            for arg in &call.args {
                if let ArgValue::ResourceRef(r) = arg {
                    if (*r as usize) < used.len() {
                        used[*r as usize] = true;
                    }
                }
            }
        }
        used.iter()
            .enumerate()
            .filter(|(_, &u)| u)
            .map(|(i, _)| i)
            .collect()
    }

    /// Insert `call` at `idx`, shifting later calls' resource references
    /// up by one. The inserted call's own references must point into the
    /// prefix (`< idx`); the caller guarantees that by generating its
    /// arguments against the prefix.
    pub fn insert_call(&mut self, idx: usize, call: Call) {
        let idx = idx.min(self.calls.len());
        for c in self.calls[idx..].iter_mut() {
            for arg in &mut c.args {
                if let ArgValue::ResourceRef(r) = arg {
                    if *r as usize >= idx {
                        *r += 1;
                    }
                }
            }
        }
        self.calls.insert(idx, call);
    }

    /// Remove call `idx`, fixing up (and dropping calls with) references
    /// that become invalid. Used by the crash minimiser.
    pub fn remove_call(&mut self, idx: usize) {
        if idx >= self.calls.len() {
            return;
        }
        self.calls.remove(idx);
        let mut i = 0;
        while i < self.calls.len() {
            let mut drop_call = false;
            for arg in &mut self.calls[i].args {
                if let ArgValue::ResourceRef(r) = arg {
                    let ri = *r as usize;
                    if ri == idx {
                        drop_call = true;
                    } else if ri > idx {
                        *r -= 1;
                    }
                }
            }
            if drop_call {
                self.remove_call(i);
            } else {
                i += 1;
            }
        }
    }

    /// Serialise the prog into a self-contained canonical byte form —
    /// unlike the [`wire`](crate::wire) encoding it carries API *names*
    /// rather than table-assigned ids, so the bytes round-trip without
    /// an [`ApiTable`](crate::wire::ApiTable) and stay stable across
    /// spec regenerations. This is the form campaign stores persist and
    /// hash.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        out.push(CANONICAL_VERSION);
        out.extend_from_slice(&(self.calls.len() as u16).to_le_bytes());
        for call in &self.calls {
            out.extend_from_slice(&(call.api.len() as u16).to_le_bytes());
            out.extend_from_slice(call.api.as_bytes());
            out.extend_from_slice(&(call.args.len() as u16).to_le_bytes());
            for arg in &call.args {
                match arg {
                    ArgValue::Int(v) => {
                        out.push(0);
                        out.extend_from_slice(&v.to_le_bytes());
                    }
                    ArgValue::ResourceRef(r) => {
                        out.push(1);
                        out.extend_from_slice(&r.to_le_bytes());
                    }
                    ArgValue::Buffer(b) => {
                        out.push(2);
                        out.extend_from_slice(&(b.len() as u32).to_le_bytes());
                        out.extend_from_slice(b);
                    }
                    ArgValue::CString(s) => {
                        out.push(3);
                        out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                        out.extend_from_slice(s.as_bytes());
                    }
                }
            }
        }
        if !self.mmio.is_empty() {
            out.push(MMIO_TRAILER);
            out.extend_from_slice(&(self.mmio.len() as u32).to_le_bytes());
            out.extend_from_slice(&self.mmio);
        }
        out
    }

    /// Decode a prog from its canonical byte form. Errors describe the
    /// first malformation encountered (truncation, bad tag, bad UTF-8).
    pub fn from_canonical_bytes(bytes: &[u8]) -> Result<Prog, String> {
        let mut off = 0usize;
        let take = |off: &mut usize, n: usize| -> Result<&[u8], String> {
            let end = off
                .checked_add(n)
                .filter(|&e| e <= bytes.len())
                .ok_or_else(|| format!("truncated prog at offset {off}"))?;
            let s = &bytes[*off..end];
            *off = end;
            Ok(s)
        };
        let version = take(&mut off, 1)?[0];
        if version != CANONICAL_VERSION {
            return Err(format!("unsupported canonical prog version {version}"));
        }
        let n = take(&mut off, 2)?;
        let ncalls = u16::from_le_bytes([n[0], n[1]]) as usize;
        let mut calls = Vec::with_capacity(ncalls.min(1024));
        for _ in 0..ncalls {
            let n = take(&mut off, 2)?;
            let name_len = u16::from_le_bytes([n[0], n[1]]) as usize;
            let api = std::str::from_utf8(take(&mut off, name_len)?)
                .map_err(|e| format!("API name is not UTF-8: {e}"))?
                .to_string();
            let n = take(&mut off, 2)?;
            let nargs = u16::from_le_bytes([n[0], n[1]]) as usize;
            let mut args = Vec::with_capacity(nargs.min(1024));
            for _ in 0..nargs {
                let tag = take(&mut off, 1)?[0];
                args.push(match tag {
                    0 => {
                        let b = take(&mut off, 8)?;
                        ArgValue::Int(u64::from_le_bytes(b.try_into().unwrap()))
                    }
                    1 => {
                        let b = take(&mut off, 2)?;
                        ArgValue::ResourceRef(u16::from_le_bytes([b[0], b[1]]))
                    }
                    2 => {
                        let b = take(&mut off, 4)?;
                        let len = u32::from_le_bytes(b.try_into().unwrap()) as usize;
                        ArgValue::Buffer(take(&mut off, len)?.to_vec())
                    }
                    3 => {
                        let b = take(&mut off, 4)?;
                        let len = u32::from_le_bytes(b.try_into().unwrap()) as usize;
                        ArgValue::CString(
                            std::str::from_utf8(take(&mut off, len)?)
                                .map_err(|e| format!("CString payload is not UTF-8: {e}"))?
                                .to_string(),
                        )
                    }
                    t => return Err(format!("unknown canonical arg tag {t}")),
                });
            }
            calls.push(Call { api, args });
        }
        let mut mmio = Vec::new();
        if off != bytes.len() {
            let tag = take(&mut off, 1)?[0];
            if tag != MMIO_TRAILER {
                return Err(format!("unknown canonical trailer tag {tag}"));
            }
            let b = take(&mut off, 4)?;
            let len = u32::from_le_bytes(b.try_into().unwrap()) as usize;
            mmio = take(&mut off, len)?.to_vec();
            if mmio.is_empty() {
                // Canonical form omits the trailer entirely when empty;
                // an explicit empty trailer would break hash uniqueness.
                return Err("empty MMIO trailer is non-canonical".into());
            }
        }
        if off != bytes.len() {
            return Err(format!("{} trailing bytes after prog", bytes.len() - off));
        }
        Ok(Prog { calls, mmio })
    }

    /// Content hash over [`canonical_bytes`](Self::canonical_bytes):
    /// FNV-1a 64, identical across processes and platforms (unlike
    /// `std::hash`, whose keys are unspecified). Byte-identical progs —
    /// and only those — share a stable hash.
    pub fn stable_hash(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        for b in self.canonical_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
        h
    }
}

/// Version byte leading every canonical prog encoding.
pub const CANONICAL_VERSION: u8 = 1;

/// Tag byte introducing the optional MMIO response-stream trailer after
/// the call sequence ('M'). Deliberately distinct from every arg tag and
/// from 0x00 so legacy trailing-garbage inputs still fail to decode.
pub const MMIO_TRAILER: u8 = 0x4d;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_spec;

    fn spec() -> SpecFile {
        parse_spec(
            "resource task[int32]: -1\n\
             create(d int32[1:10]) task\n\
             delete(t task)\n\
             ping()",
        )
        .unwrap()
    }

    fn valid_prog() -> Prog {
        Prog {
            mmio: vec![],
            calls: vec![
                Call {
                    api: "create".into(),
                    args: vec![ArgValue::Int(5)],
                },
                Call {
                    api: "delete".into(),
                    args: vec![ArgValue::ResourceRef(0)],
                },
            ],
        }
    }

    #[test]
    fn forward_refs_are_invalid() {
        let mut p = valid_prog();
        p.calls[1].args[0] = ArgValue::ResourceRef(1);
        assert_eq!(p.first_invalid_ref(), Some(1));
        p.calls[1].args[0] = ArgValue::ResourceRef(0);
        assert_eq!(p.first_invalid_ref(), None);
    }

    #[test]
    fn conformance_accepts_valid() {
        assert!(valid_prog().conforms_to(&spec()));
    }

    #[test]
    fn conformance_rejects_unknown_api() {
        let mut p = valid_prog();
        p.calls[0].api = "nonsense".into();
        assert!(!p.conforms_to(&spec()));
    }

    #[test]
    fn conformance_rejects_bad_arity() {
        let mut p = valid_prog();
        p.calls[0].args.push(ArgValue::Int(1));
        assert!(!p.conforms_to(&spec()));
    }

    #[test]
    fn conformance_rejects_wrong_producer_kind() {
        let s = parse_spec(
            "resource task[int32]: -1\nresource sock[int32]: -1\n\
             mksock() sock\ndelete(t task)",
        )
        .unwrap();
        let p = Prog {
            mmio: vec![],
            calls: vec![
                Call {
                    api: "mksock".into(),
                    args: vec![],
                },
                Call {
                    api: "delete".into(),
                    args: vec![ArgValue::ResourceRef(0)],
                },
            ],
        };
        assert!(!p.conforms_to(&s));
    }

    #[test]
    fn sentinel_int_for_resource_is_allowed() {
        let p = Prog {
            mmio: vec![],
            calls: vec![Call {
                api: "delete".into(),
                args: vec![ArgValue::Int(u64::MAX)],
            }],
        };
        assert!(p.conforms_to(&spec()));
    }

    #[test]
    fn remove_call_fixes_references() {
        let mut p = Prog {
            mmio: vec![],
            calls: vec![
                Call {
                    api: "ping".into(),
                    args: vec![],
                },
                Call {
                    api: "create".into(),
                    args: vec![ArgValue::Int(3)],
                },
                Call {
                    api: "delete".into(),
                    args: vec![ArgValue::ResourceRef(1)],
                },
            ],
        };
        p.remove_call(0);
        assert_eq!(p.len(), 2);
        assert_eq!(p.calls[1].args[0], ArgValue::ResourceRef(0));
        assert!(p.conforms_to(&spec()));
    }

    #[test]
    fn remove_producer_drops_consumer() {
        let mut p = valid_prog();
        p.remove_call(0);
        assert!(p.is_empty(), "consumer of removed producer must go too");
    }

    #[test]
    fn insert_call_shifts_references() {
        let mut p = Prog {
            mmio: vec![],
            calls: vec![
                Call {
                    api: "create".into(),
                    args: vec![ArgValue::Int(3)],
                },
                Call {
                    api: "delete".into(),
                    args: vec![ArgValue::ResourceRef(0)],
                },
            ],
        };
        // Insert before the producer: the consumer's ref shifts.
        p.insert_call(
            0,
            Call {
                api: "ping".into(),
                args: vec![],
            },
        );
        assert_eq!(p.calls[2].args[0], ArgValue::ResourceRef(1));
        assert!(p.conforms_to(&spec()));
        // Insert between producer and consumer: ref shifts again.
        p.insert_call(
            2,
            Call {
                api: "ping".into(),
                args: vec![],
            },
        );
        assert_eq!(p.calls[3].args[0], ArgValue::ResourceRef(1));
        assert!(p.conforms_to(&spec()));
    }

    #[test]
    fn referenced_calls_tracking() {
        let p = valid_prog();
        assert_eq!(p.referenced_calls(), vec![0]);
    }

    fn exotic_prog() -> Prog {
        Prog {
            mmio: vec![],
            calls: vec![
                Call {
                    api: "create".into(),
                    args: vec![ArgValue::Int(u64::MAX)],
                },
                Call {
                    api: "delete".into(),
                    args: vec![
                        ArgValue::ResourceRef(0),
                        ArgValue::Buffer(vec![0, 255, 7]),
                        ArgValue::CString("héllo".into()),
                    ],
                },
            ],
        }
    }

    #[test]
    fn canonical_bytes_round_trip() {
        for p in [Prog::new(), valid_prog(), exotic_prog()] {
            let bytes = p.canonical_bytes();
            assert_eq!(Prog::from_canonical_bytes(&bytes).unwrap(), p);
        }
    }

    #[test]
    fn mmio_trailer_round_trips_and_moves_the_hash() {
        let mut p = valid_prog();
        let plain = p.canonical_bytes();
        let plain_hash = p.stable_hash();
        p.mmio = vec![0xde, 0xad, 0x00, 0xff];
        let bytes = p.canonical_bytes();
        assert_eq!(Prog::from_canonical_bytes(&bytes).unwrap(), p);
        // The trailer extends — never alters — the legacy prefix, so
        // stores of pure-API progs keep their exact bytes and hashes.
        assert_eq!(&bytes[..plain.len()], &plain[..]);
        assert_ne!(p.stable_hash(), plain_hash);
        // Truncating at exactly the calls/trailer boundary is the valid
        // trailer-free encoding; any cut *inside* the trailer errors.
        assert_eq!(
            Prog::from_canonical_bytes(&bytes[..plain.len()]).unwrap(),
            valid_prog()
        );
        for cut in plain.len() + 1..bytes.len() {
            assert!(
                Prog::from_canonical_bytes(&bytes[..cut]).is_err(),
                "cut at {cut}"
            );
        }
        // An explicit empty trailer is non-canonical (would alias the
        // trailer-free encoding under two different byte strings).
        let mut empty = plain.clone();
        empty.push(MMIO_TRAILER);
        empty.extend_from_slice(&0u32.to_le_bytes());
        assert!(Prog::from_canonical_bytes(&empty).is_err());
    }

    #[test]
    fn canonical_decode_rejects_malformed_input() {
        let bytes = exotic_prog().canonical_bytes();
        // Truncation anywhere must error, never panic.
        for cut in 0..bytes.len() {
            assert!(
                Prog::from_canonical_bytes(&bytes[..cut]).is_err(),
                "cut at {cut}"
            );
        }
        // Trailing garbage.
        let mut long = bytes.clone();
        long.push(0);
        assert!(Prog::from_canonical_bytes(&long).is_err());
        // Foreign version byte.
        let mut fv = bytes.clone();
        fv[0] = 99;
        assert!(Prog::from_canonical_bytes(&fv)
            .unwrap_err()
            .contains("version"));
        // Bad arg tag: version(1) + ncalls(2) + len(2) + "create"(6) +
        // nargs(2) puts the first call's first arg tag at offset 13.
        let mut enc = valid_prog().canonical_bytes();
        enc[13] = 9;
        assert!(Prog::from_canonical_bytes(&enc)
            .unwrap_err()
            .contains("tag"));
    }

    #[test]
    fn stable_hash_distinguishes_and_reproduces() {
        let a = valid_prog();
        let b = exotic_prog();
        assert_eq!(a.stable_hash(), valid_prog().stable_hash());
        assert_ne!(a.stable_hash(), b.stable_hash());
        // A one-argument tweak must move the hash.
        let mut c = valid_prog();
        c.calls[0].args[0] = ArgValue::Int(6);
        assert_ne!(a.stable_hash(), c.stable_hash());
        // Pinned value: the hash is part of the on-disk store contract —
        // if this changes, persisted corpora stop deduplicating against
        // freshly generated progs.
        assert_eq!(Prog::new().stable_hash(), {
            const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
            const PRIME: u64 = 0x0000_0100_0000_01b3;
            let mut h = OFFSET;
            for b in [1u8, 0, 0] {
                h ^= b as u64;
                h = h.wrapping_mul(PRIME);
            }
            h
        });
    }
}
