//! `eof-speclang` — the API specification language of the EOF reproduction.
//!
//! EOF generates *API-aware* inputs: instead of mutating opaque byte
//! buffers, it builds sequences of typed OS API calls whose arguments
//! satisfy the constraints a specification declares (paper §4.5). The
//! specification language is adapted from Syzkaller's Syzlang; behaviours
//! Syzlang does not model well are expressed as *pseudo syscalls*
//! (`syz_`-prefixed helpers that bundle an API sequence, like
//! `syz_create_bind_socket` in the paper's Figure 6).
//!
//! The crate contains the complete language pipeline:
//!
//! * [`lexer`] / [`parser`] — Syzlang-flavoured concrete syntax → AST;
//! * [`ast`] — specification files: resources, flag sets, API signatures
//!   with typed, constrained parameters;
//! * [`typecheck`] — the post-validation gate that admits only well-formed
//!   specifications to the corpus (the paper validates LLM output the same
//!   way);
//! * [`prog`] — concrete test cases: call sequences with argument values
//!   and resource references;
//! * [`wire`] — the compact binary encoding the host sends to the
//!   on-target agent, decodable with primitive operations only;
//! * [`display`] — human-readable rendering for corpus dumps and crash
//!   reports.

pub mod ast;
pub mod display;
pub mod lexer;
pub mod parser;
pub mod prog;
pub mod typecheck;
pub mod wire;

pub use ast::{ApiSpec, FlagSet, Param, ResourceDecl, SpecFile, TypeDesc};
pub use lexer::{Lexer, Token, TokenKind};
pub use parser::{parse_spec, ParseError};
pub use prog::{ArgValue, Call, Prog};
pub use typecheck::{typecheck, TypeError};
pub use wire::{decode_prog, encode_prog, ApiBinding, ApiTable, WireError, PROG_MAGIC};
