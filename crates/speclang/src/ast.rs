//! Abstract syntax of specification files.
//!
//! A [`SpecFile`] is the parsed form of one Syzlang-flavoured description:
//! resource declarations, named flag sets, and API signatures. The fuzzer
//! converts these into its internal generation tables; the paper calls
//! this "an internal abstract syntax tree that encodes API name, typed
//! arguments, and constraints" (§4.5).

use std::collections::BTreeMap;

/// A type expression attached to a parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeDesc {
    /// Fixed-width integer with an optional inclusive value range.
    Int {
        /// Width in bits: 8, 16, 32 or 64.
        bits: u8,
        /// Inclusive `[min, max]` constraint, if declared.
        range: Option<(u64, u64)>,
    },
    /// A value drawn from a named flag set (possibly OR-combined).
    Flags {
        /// Name of the flag set.
        set: String,
    },
    /// Pointer to a pointee allocated in the test-case data area.
    Ptr(Box<TypeDesc>),
    /// Raw byte buffer of bounded length.
    Buffer {
        /// Maximum length in bytes.
        max_len: u32,
    },
    /// NUL-terminated string of bounded length (excluding the NUL).
    CString {
        /// Maximum length in bytes.
        max_len: u32,
    },
    /// Consumes a resource produced by an earlier call.
    Resource {
        /// Name of the resource kind (e.g. `"task"`, `"sock"`).
        name: String,
    },
}

impl TypeDesc {
    /// Whether values of this type refer to a prior call's result.
    pub fn is_resource(&self) -> bool {
        matches!(self, TypeDesc::Resource { .. })
    }

    /// The resource kind consumed, if any (looks through pointers).
    pub fn consumed_resource(&self) -> Option<&str> {
        match self {
            TypeDesc::Resource { name } => Some(name),
            TypeDesc::Ptr(inner) => inner.consumed_resource(),
            _ => None,
        }
    }
}

/// One named, typed parameter of an API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Parameter type and constraints.
    pub ty: TypeDesc,
}

/// An API (or pseudo-syscall) signature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiSpec {
    /// API name as exposed by the target OS (`xTaskCreate`,
    /// `k_thread_create`, `syz_create_bind_socket`, …).
    pub name: String,
    /// Ordered parameters.
    pub params: Vec<Param>,
    /// Resource kind produced by the return value, if any.
    pub returns: Option<String>,
    /// Free-form doc line (`# comment` preceding the signature).
    pub doc: Option<String>,
}

impl ApiSpec {
    /// Whether this is a pseudo-syscall (bundled API sequence).
    pub fn is_pseudo(&self) -> bool {
        self.name.starts_with("syz_")
    }

    /// Resource kinds consumed by any parameter.
    pub fn consumed_resources(&self) -> Vec<&str> {
        self.params
            .iter()
            .filter_map(|p| p.ty.consumed_resource())
            .collect()
    }
}

/// A named set of symbolic flag values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlagSet {
    /// Set name referenced by `flags[name]`.
    pub name: String,
    /// `(symbol, value)` pairs in declaration order.
    pub values: Vec<(String, u64)>,
}

impl FlagSet {
    /// All numeric values in the set.
    pub fn numeric(&self) -> Vec<u64> {
        self.values.iter().map(|(_, v)| *v).collect()
    }
}

/// A resource kind declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResourceDecl {
    /// Resource kind name.
    pub name: String,
    /// Width in bits of the underlying handle value.
    pub bits: u8,
    /// Sentinel values usable when no producer is available (e.g. `-1`).
    pub sentinels: Vec<u64>,
}

/// A parsed specification file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpecFile {
    /// Declared resource kinds, keyed by name.
    pub resources: BTreeMap<String, ResourceDecl>,
    /// Declared flag sets, keyed by name.
    pub flags: BTreeMap<String, FlagSet>,
    /// API signatures in declaration order.
    pub apis: Vec<ApiSpec>,
}

impl SpecFile {
    /// Find an API by name.
    pub fn api(&self, name: &str) -> Option<&ApiSpec> {
        self.apis.iter().find(|a| a.name == name)
    }

    /// APIs that produce the given resource kind.
    pub fn producers_of(&self, resource: &str) -> Vec<&ApiSpec> {
        self.apis
            .iter()
            .filter(|a| a.returns.as_deref() == Some(resource))
            .collect()
    }

    /// Merge another spec file into this one. Later APIs with duplicate
    /// names replace earlier ones; resources and flags are unioned.
    pub fn merge(&mut self, other: SpecFile) {
        self.resources.extend(other.resources);
        self.flags.extend(other.flags);
        for api in other.apis {
            if let Some(slot) = self.apis.iter_mut().find(|a| a.name == api.name) {
                *slot = api;
            } else {
                self.apis.push(api);
            }
        }
    }

    /// Total number of lines a textual rendering of this spec would take —
    /// the paper reports spec sizes in lines (e.g. 203 lines for FreeRTOS).
    pub fn line_count(&self) -> usize {
        self.resources.len() + self.flags.len() + self.apis.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sock_api() -> ApiSpec {
        ApiSpec {
            name: "syz_create_bind_socket".into(),
            params: vec![
                Param {
                    name: "domain".into(),
                    ty: TypeDesc::Flags {
                        set: "sock_domain".into(),
                    },
                },
                Param {
                    name: "addr".into(),
                    ty: TypeDesc::Ptr(Box::new(TypeDesc::Buffer { max_len: 64 })),
                },
            ],
            returns: Some("sock".into()),
            doc: None,
        }
    }

    #[test]
    fn pseudo_detection() {
        assert!(sock_api().is_pseudo());
        let plain = ApiSpec {
            name: "socket".into(),
            params: vec![],
            returns: None,
            doc: None,
        };
        assert!(!plain.is_pseudo());
    }

    #[test]
    fn resource_consumption_sees_through_pointers() {
        let ty = TypeDesc::Ptr(Box::new(TypeDesc::Resource {
            name: "task".into(),
        }));
        assert_eq!(ty.consumed_resource(), Some("task"));
        assert!(TypeDesc::Buffer { max_len: 4 }
            .consumed_resource()
            .is_none());
    }

    #[test]
    fn producers_lookup() {
        let mut f = SpecFile::default();
        f.apis.push(sock_api());
        assert_eq!(f.producers_of("sock").len(), 1);
        assert!(f.producers_of("task").is_empty());
    }

    #[test]
    fn merge_replaces_duplicates() {
        let mut a = SpecFile::default();
        a.apis.push(sock_api());
        let mut b = SpecFile::default();
        let mut replacement = sock_api();
        replacement.params.clear();
        b.apis.push(replacement);
        a.merge(b);
        assert_eq!(a.apis.len(), 1);
        assert!(a.apis[0].params.is_empty());
    }
}
