//! Human-readable rendering of progs and specs.
//!
//! Crash reports (like the paper's Figure 6) show the triggering test case
//! in a syscall-trace style: `syz_create_bind_socket(0xbc78, 0x0, 0x101,
//! 0x0)`. This module renders progs that way for corpus dumps, crash
//! de-duplication reports and the examples.

use crate::ast::SpecFile;
use crate::prog::{ArgValue, Call, Prog};
use std::fmt;

impl fmt::Display for ArgValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgValue::Int(v) => write!(f, "{v:#x}"),
            ArgValue::ResourceRef(r) => write!(f, "r{r}"),
            ArgValue::Buffer(b) => {
                write!(f, "&\"")?;
                for byte in b.iter().take(16) {
                    write!(f, "{byte:02x}")?;
                }
                if b.len() > 16 {
                    write!(f, "…({})", b.len())?;
                }
                write!(f, "\"")
            }
            ArgValue::CString(s) => write!(f, "{s:?}"),
        }
    }
}

impl fmt::Display for Call {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.api)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for Prog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, call) in self.calls.iter().enumerate() {
            writeln!(f, "r{i} = {call}")?;
        }
        Ok(())
    }
}

/// Render a spec file back to (canonical) source text, usable as input to
/// [`crate::parser::parse_spec`] again.
pub fn render_spec(spec: &SpecFile) -> String {
    use crate::ast::TypeDesc;

    fn ty(t: &TypeDesc) -> String {
        match t {
            TypeDesc::Int { bits, range: None } => format!("int{bits}"),
            TypeDesc::Int {
                bits,
                range: Some((lo, hi)),
            } => format!("int{bits}[{lo}:{hi}]"),
            TypeDesc::Flags { set } => format!("flags[{set}]"),
            TypeDesc::Ptr(inner) => format!("ptr[{}]", ty(inner)),
            TypeDesc::Buffer { max_len } => format!("buffer[{max_len}]"),
            TypeDesc::CString { max_len } => format!("cstring[{max_len}]"),
            TypeDesc::Resource { name } => name.clone(),
        }
    }

    let mut out = String::new();
    for r in spec.resources.values() {
        out.push_str(&format!("resource {}[int{}]", r.name, r.bits));
        if !r.sentinels.is_empty() {
            let vals: Vec<String> = r
                .sentinels
                .iter()
                .map(|&v| {
                    if (v as i64) < 0 {
                        format!("{}", v as i64)
                    } else {
                        format!("{v}")
                    }
                })
                .collect();
            out.push_str(&format!(": {}", vals.join(", ")));
        }
        out.push('\n');
    }
    for fs in spec.flags.values() {
        let vals: Vec<String> = fs
            .values
            .iter()
            .map(|(n, v)| format!("{n}:{v:#x}"))
            .collect();
        out.push_str(&format!("{} = {}\n", fs.name, vals.join(", ")));
    }
    for api in &spec.apis {
        if let Some(doc) = &api.doc {
            out.push_str(&format!("# {doc}\n"));
        }
        let params: Vec<String> = api
            .params
            .iter()
            .map(|p| format!("{} {}", p.name, ty(&p.ty)))
            .collect();
        out.push_str(&format!("{}({})", api.name, params.join(", ")));
        if let Some(ret) = &api.returns {
            out.push_str(&format!(" {ret}"));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_spec;

    #[test]
    fn call_rendering_matches_paper_style() {
        let c = Call {
            api: "syz_create_bind_socket".into(),
            args: vec![
                ArgValue::Int(0xbc78),
                ArgValue::Int(0),
                ArgValue::Int(0x101),
                ArgValue::Int(0),
            ],
        };
        assert_eq!(
            c.to_string(),
            "syz_create_bind_socket(0xbc78, 0x0, 0x101, 0x0)"
        );
    }

    #[test]
    fn prog_rendering_numbers_results() {
        let p = Prog {
            mmio: vec![],
            calls: vec![
                Call {
                    api: "create".into(),
                    args: vec![],
                },
                Call {
                    api: "use".into(),
                    args: vec![ArgValue::ResourceRef(0)],
                },
            ],
        };
        let s = p.to_string();
        assert!(s.contains("r0 = create()"));
        assert!(s.contains("r1 = use(r0)"));
    }

    #[test]
    fn long_buffers_are_abbreviated() {
        let a = ArgValue::Buffer(vec![0xab; 40]);
        let s = a.to_string();
        assert!(s.contains("…(40)"));
    }

    #[test]
    fn render_parse_roundtrip() {
        let src = "resource task[int32]: -1\n\
                   prio = LOW:0x0, HIGH:0x1\n\
                   # Creates a task.\n\
                   create(p flags[prio], d int32[1:10], n ptr[cstring[8]]) task\n\
                   delete(t task)\n";
        let spec = parse_spec(src).unwrap();
        let rendered = render_spec(&spec);
        let reparsed = parse_spec(&rendered).unwrap();
        assert_eq!(spec, reparsed);
    }
}
