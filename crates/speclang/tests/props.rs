//! Property tests of the specification language pipeline.

use eof_speclang::display::render_spec;
use eof_speclang::lexer::Lexer;
use eof_speclang::parser::parse_spec;
use eof_speclang::typecheck::typecheck;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn lexer_never_panics(src in "\\PC{0,256}") {
        let _ = Lexer::tokenize(&src);
    }

    #[test]
    fn parser_never_panics(src in "[a-z0-9_\\[\\]():,= #\n-]{0,256}") {
        let _ = parse_spec(&src);
    }

    #[test]
    fn parse_render_parse_is_identity(
        n_res in 1usize..4,
        n_api in 1usize..6,
        ranges in proptest::collection::vec((0u64..100, 100u64..10000), 6)
    ) {
        // Build a structured random spec source.
        let mut src = String::new();
        for i in 0..n_res {
            src.push_str(&format!("resource res{i}[int32]: -1\n"));
        }
        src.push_str("flagz = A:0x1, B:0x2, C:0x40\n");
        for i in 0..n_api {
            let (lo, hi) = ranges[i % ranges.len()];
            src.push_str(&format!(
                "api{i}(a int32[{lo}:{hi}], f flags[flagz], r res{}, buf ptr[buffer[64]]) res{}\n",
                i % n_res,
                i % n_res,
            ));
        }
        let spec1 = parse_spec(&src).unwrap();
        prop_assert!(typecheck(&spec1).is_empty());
        let rendered = render_spec(&spec1);
        let spec2 = parse_spec(&rendered).unwrap();
        prop_assert_eq!(spec1, spec2);
    }

    #[test]
    fn typecheck_never_panics_on_parsed_input(src in "[a-z0-9_\\[\\]():,= \n]{0,200}") {
        if let Ok(spec) = parse_spec(&src) {
            let _ = typecheck(&spec);
        }
    }
}
