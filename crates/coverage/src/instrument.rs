//! The "compile-time" instrumentation plan and its cost model.
//!
//! When an OS image is built (`eof-rtos::image`), the builder consults an
//! [`InstrumentPlan`] to decide which registered edge sites get a coverage
//! callback. Instrumentation is not free — exactly as in the paper's §5.5:
//!
//! * each instrumented site adds callback code to the image
//!   ([`InstrumentCost::IMAGE_BYTES_PER_SITE`] bytes → memory overhead);
//! * each *hit* of an instrumented site burns extra cycles
//!   ([`InstrumentCost::CYCLES_PER_HIT`] → execution overhead);
//! * the coverage buffer itself reserves RAM.

use crate::edge::{EdgeId, EdgeRegistry};
use std::collections::HashSet;

/// What to instrument.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum InstrumentMode {
    /// No instrumentation (baseline images for the overhead experiments,
    /// and fuzzers without coverage feedback).
    None,
    /// Instrument every registered site (full-system fuzzing).
    Full,
    /// Instrument only the named modules — the paper's GDBFuzz comparison
    /// confines instrumentation to the HTTP server and JSON modules.
    Modules(Vec<String>),
}

/// A resolved instrumentation plan for one image build.
#[derive(Debug, Clone)]
pub struct InstrumentPlan {
    mode: InstrumentMode,
    active: HashSet<EdgeId>,
    active_count: usize,
}

impl InstrumentPlan {
    /// Resolve `mode` against the sites in `registry`.
    pub fn resolve(mode: InstrumentMode, registry: &EdgeRegistry) -> Self {
        let active: HashSet<EdgeId> = match &mode {
            InstrumentMode::None => HashSet::new(),
            InstrumentMode::Full => registry.iter().map(|s| s.id).collect(),
            InstrumentMode::Modules(mods) => registry
                .iter()
                .filter(|s| mods.iter().any(|m| m == &s.module))
                .map(|s| s.id)
                .collect(),
        };
        let active_count = active.len();
        InstrumentPlan {
            mode,
            active,
            active_count,
        }
    }

    /// A plan with no instrumentation and no registry.
    pub fn none() -> Self {
        InstrumentPlan {
            mode: InstrumentMode::None,
            active: HashSet::new(),
            active_count: 0,
        }
    }

    /// The requested mode.
    pub fn mode(&self) -> &InstrumentMode {
        &self.mode
    }

    /// Whether a given edge site carries a callback in this build.
    pub fn is_active(&self, id: EdgeId) -> bool {
        self.active.contains(&id)
    }

    /// Number of instrumented sites.
    pub fn active_sites(&self) -> usize {
        self.active_count
    }

    /// Image size inflation in bytes caused by this plan.
    pub fn image_overhead_bytes(&self) -> u64 {
        self.active_count as u64 * InstrumentCost::IMAGE_BYTES_PER_SITE
            + if self.active_count > 0 {
                InstrumentCost::RUNTIME_BYTES
            } else {
                0
            }
    }
}

/// Cost constants of the SanCov-style instrumentation.
pub struct InstrumentCost;

impl InstrumentCost {
    /// Code bytes added per instrumented branch site (the inlined
    /// `__sanitizer_cov_trace_cmp` call + spill).
    pub const IMAGE_BYTES_PER_SITE: u64 = 14;
    /// One-time bytes for the callback runtime (`write_comp_data`,
    /// `_kcmp_buf_full`) linked into an instrumented image.
    pub const RUNTIME_BYTES: u64 = 640;
    /// Extra cycles burned each time an instrumented site is hit.
    pub const CYCLES_PER_HIT: u64 = 3;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> EdgeRegistry {
        let mut r = EdgeRegistry::new();
        r.register("os::json::parse::digit");
        r.register("os::json::parse::string");
        r.register("os::http::route::get");
        r.register("os::kernel::sched::tick");
        r
    }

    #[test]
    fn full_plan_covers_everything() {
        let reg = registry();
        let p = InstrumentPlan::resolve(InstrumentMode::Full, &reg);
        assert_eq!(p.active_sites(), 4);
        for s in reg.iter() {
            assert!(p.is_active(s.id));
        }
    }

    #[test]
    fn none_plan_covers_nothing() {
        let reg = registry();
        let p = InstrumentPlan::resolve(InstrumentMode::None, &reg);
        assert_eq!(p.active_sites(), 0);
        assert_eq!(p.image_overhead_bytes(), 0);
    }

    #[test]
    fn module_confinement() {
        let reg = registry();
        let p = InstrumentPlan::resolve(
            InstrumentMode::Modules(vec!["json".into(), "http".into()]),
            &reg,
        );
        assert_eq!(p.active_sites(), 3);
        let kernel_site = reg.iter().find(|s| s.module == "kernel").unwrap();
        assert!(!p.is_active(kernel_site.id));
    }

    #[test]
    fn overhead_scales_with_sites() {
        let reg = registry();
        let full = InstrumentPlan::resolve(InstrumentMode::Full, &reg);
        let partial = InstrumentPlan::resolve(InstrumentMode::Modules(vec!["json".into()]), &reg);
        assert!(full.image_overhead_bytes() > partial.image_overhead_bytes());
        assert!(partial.image_overhead_bytes() >= InstrumentCost::RUNTIME_BYTES);
    }
}
