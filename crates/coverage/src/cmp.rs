//! The on-device comparison-operand ring buffer (the cmplog channel).
//!
//! Redqueen-style input-to-state mutation needs the *operands* of the
//! comparisons the kernel executes, not just which branches it took.
//! The planted `trace_cmp` hooks append `(site, width, lhs, rhs)`
//! records into this RAM region; the host drains it alongside the
//! coverage buffer and feeds the observed operands back into the
//! mutator as splice candidates.
//!
//! Layout mirrors [`crate::buffer::CovRegion`] — a 12-byte header
//! (count, capacity, overflow) followed by fixed-size records — with
//! one deliberate twist: the **capacity word doubles as the arming
//! switch**. [`CmpRegion::init`] writes it as 0 (disarmed), and the
//! firmware never arms itself; only a host that wants the cmplog
//! channel writes the real capacity before an execution. The image
//! bytes are therefore identical with and without cmplog, and a
//! disarmed hook costs zero cycles and zero RAM traffic — `EOF_CMPLOG=0`
//! campaigns are bit-for-bit the campaigns this PR inherited.

use crate::buffer::RecordOutcome;
use eof_hal::{Endianness, HalError, Ram};

/// Header: count (u32), capacity/arming word (u32), overflow (u32).
pub const CMP_HEADER_BYTES: u32 = 12;

/// One record: site id (u32), operand width in bits (u32), lhs (u64),
/// rhs (u64).
pub const CMP_RECORD_BYTES: u32 = 24;

/// One drained comparison observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CmpRecord {
    /// Stable site id (truncated edge id of the hook's site string).
    pub site: u32,
    /// Operand width in bits (8/16/32/64).
    pub width: u32,
    /// Left operand (the value the kernel computed from the input).
    pub lhs: u64,
    /// Right operand (usually the constant the input is compared to).
    pub rhs: u64,
}

/// The comparison ring buffer region in target RAM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CmpRegion {
    /// Base address of the header.
    pub base: u32,
    /// Maximum records the region can hold when armed.
    pub capacity: u32,
}

impl CmpRegion {
    /// Describe a region (does not touch memory).
    pub fn new(base: u32, capacity: u32) -> Self {
        CmpRegion { base, capacity }
    }

    /// Total footprint in RAM, header included.
    pub fn footprint(&self) -> u32 {
        CMP_HEADER_BYTES + self.capacity * CMP_RECORD_BYTES
    }

    /// Initialise the header **disarmed**: count 0, capacity word 0,
    /// overflow 0. Arming is the host's move, never the firmware's.
    pub fn init(&self, ram: &mut Ram, e: Endianness) -> Result<(), HalError> {
        ram.write_u32(self.base, 0, e)?;
        ram.write_u32(self.base + 4, 0, e)?;
        ram.write_u32(self.base + 8, 0, e)?;
        Ok(())
    }

    /// Arm the channel for one execution: a fresh header with the real
    /// capacity in the arming word. The host's move — on the wire this
    /// rides the prog-upload transaction as [`CmpRegion::armed_header`].
    pub fn arm(&self, ram: &mut Ram, e: Endianness) -> Result<(), HalError> {
        ram.write(self.base, &self.armed_header(e))
    }

    /// The 12-byte armed header image (count 0, capacity, overflow 0).
    /// Writing this before every execution guarantees the ring starts
    /// empty even if the previous drain was lost mid-transaction.
    pub fn armed_header(&self, e: Endianness) -> [u8; 12] {
        let mut h = [0u8; 12];
        h[4..8].copy_from_slice(&e.u32_bytes(self.capacity));
        h
    }

    /// Whether the host has armed the channel (nonzero capacity word).
    /// A read failure reads as disarmed — the hook must never trap.
    pub fn armed(&self, ram: &Ram, e: Endianness) -> bool {
        ram.read_u32(self.base + 4, e).is_ok_and(|cap| cap != 0)
    }

    /// Append one record. The capacity is read back from RAM (the
    /// arming word), clamped by the descriptor's own capacity so a
    /// hostile value cannot push writes past the region. Disarmed or
    /// full, the record is dropped; the hook never traps.
    pub fn record(
        &self,
        ram: &mut Ram,
        e: Endianness,
        rec: CmpRecord,
    ) -> Result<RecordOutcome, HalError> {
        let cap = ram.read_u32(self.base + 4, e)?.min(self.capacity);
        if cap == 0 {
            return Ok(RecordOutcome::Dropped);
        }
        let count = ram.read_u32(self.base, e)?;
        if count >= cap {
            let overflow = ram.read_u32(self.base + 8, e)?;
            ram.write_u32(self.base + 8, overflow.saturating_add(1), e)?;
            return Ok(RecordOutcome::Dropped);
        }
        let slot = self.base + CMP_HEADER_BYTES + count * CMP_RECORD_BYTES;
        ram.write_u32(slot, rec.site, e)?;
        ram.write_u32(slot + 4, rec.width, e)?;
        ram.write_u64(slot + 8, rec.lhs, e)?;
        ram.write_u64(slot + 16, rec.rhs, e)?;
        ram.write_u32(self.base, count + 1, e)?;
        Ok(if count + 1 >= cap {
            RecordOutcome::Full
        } else {
            RecordOutcome::Stored
        })
    }

    /// Bytes a full drain reads: header plus every possible record.
    pub fn drain_len(&self) -> usize {
        self.footprint() as usize
    }

    /// Parse a drained byte image (header + records) into records and
    /// the overflow count. Tolerates truncation and hostile counts: the
    /// count is clamped to the descriptor capacity and a record that
    /// runs past the slice ends the parse.
    pub fn parse_drain(&self, bytes: &[u8], e: Endianness) -> (Vec<CmpRecord>, u32) {
        if bytes.len() < CMP_HEADER_BYTES as usize {
            return (Vec::new(), 0);
        }
        let word =
            |off: usize| e.u32_from([bytes[off], bytes[off + 1], bytes[off + 2], bytes[off + 3]]);
        let count = word(0).min(self.capacity);
        let overflow = word(8);
        let mut records = Vec::with_capacity(count as usize);
        for i in 0..count {
            let off = (CMP_HEADER_BYTES + i * CMP_RECORD_BYTES) as usize;
            if off + CMP_RECORD_BYTES as usize > bytes.len() {
                break;
            }
            let wide = |o: usize| {
                let mut b = [0u8; 8];
                b.copy_from_slice(&bytes[o..o + 8]);
                e.u64_from(b)
            };
            records.push(CmpRecord {
                site: word(off),
                width: word(off + 4),
                lhs: wide(off + 8),
                rhs: wide(off + 16),
            });
        }
        (records, overflow)
    }

    /// Reset count and overflow (a host-side drain's epilogue). The
    /// arming word is left alone.
    pub fn reset(&self, ram: &mut Ram, e: Endianness) -> Result<(), HalError> {
        ram.write_u32(self.base, 0, e)?;
        ram.write_u32(self.base + 8, 0, e)?;
        Ok(())
    }

    /// Current record count.
    pub fn count(&self, ram: &Ram, e: Endianness) -> Result<u32, HalError> {
        ram.read_u32(self.base, e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const E: Endianness = Endianness::Little;

    fn rec(site: u32, lhs: u64, rhs: u64) -> CmpRecord {
        CmpRecord {
            site,
            width: 32,
            lhs,
            rhs,
        }
    }

    fn armed_region(ram: &mut Ram, capacity: u32) -> CmpRegion {
        let r = CmpRegion::new(0x2000_0100, capacity);
        r.init(ram, E).unwrap();
        ram.write_u32(r.base + 4, capacity, E).unwrap();
        r
    }

    #[test]
    fn disarmed_region_records_nothing() {
        let mut ram = Ram::new(0x2000_0000, 0x1000);
        let r = CmpRegion::new(0x2000_0100, 8);
        r.init(&mut ram, E).unwrap();
        assert!(!r.armed(&ram, E));
        assert_eq!(
            r.record(&mut ram, E, rec(1, 2, 3)).unwrap(),
            RecordOutcome::Dropped
        );
        assert_eq!(r.count(&ram, E).unwrap(), 0);
        // Overflow untouched: a disarmed drop is free, not an overflow.
        assert_eq!(ram.read_u32(r.base + 8, E).unwrap(), 0);
    }

    #[test]
    fn armed_region_records_until_full_then_drops() {
        let mut ram = Ram::new(0x2000_0000, 0x1000);
        let r = armed_region(&mut ram, 3);
        assert!(r.armed(&ram, E));
        assert_eq!(
            r.record(&mut ram, E, rec(1, 10, 20)).unwrap(),
            RecordOutcome::Stored
        );
        assert_eq!(
            r.record(&mut ram, E, rec(2, 11, 21)).unwrap(),
            RecordOutcome::Stored
        );
        assert_eq!(
            r.record(&mut ram, E, rec(3, 12, 22)).unwrap(),
            RecordOutcome::Full
        );
        assert_eq!(
            r.record(&mut ram, E, rec(4, 13, 23)).unwrap(),
            RecordOutcome::Dropped
        );
        assert_eq!(ram.read_u32(r.base + 8, E).unwrap(), 1);
    }

    #[test]
    fn drain_roundtrip() {
        let mut ram = Ram::new(0x2000_0000, 0x1000);
        let r = armed_region(&mut ram, 8);
        let a = CmpRecord {
            site: 0xcafe,
            width: 32,
            lhs: 0xD3AD_BEA7,
            rhs: 0x0BAD_F00D,
        };
        let b = CmpRecord {
            site: 0xf00d,
            width: 8,
            lhs: 0x5A,
            rhs: 0xC3,
        };
        r.record(&mut ram, E, a).unwrap();
        r.record(&mut ram, E, b).unwrap();
        let bytes = ram.slice(r.base, r.drain_len()).unwrap().to_vec();
        let (records, overflow) = r.parse_drain(&bytes, E);
        assert_eq!(records, vec![a, b]);
        assert_eq!(overflow, 0);
    }

    #[test]
    fn big_endian_roundtrip() {
        let mut ram = Ram::new(0x8000_0000, 0x1000);
        let r = CmpRegion::new(0x8000_0100, 4);
        r.init(&mut ram, Endianness::Big).unwrap();
        ram.write_u32(r.base + 4, 4, Endianness::Big).unwrap();
        let a = rec(7, u64::MAX - 1, 0x1234_5678_9abc_def0);
        r.record(&mut ram, Endianness::Big, a).unwrap();
        let bytes = ram.slice(r.base, r.drain_len()).unwrap().to_vec();
        let (records, _) = r.parse_drain(&bytes, Endianness::Big);
        assert_eq!(records, vec![a]);
    }

    #[test]
    fn reset_reopens_buffer_and_keeps_arming() {
        let mut ram = Ram::new(0x2000_0000, 0x1000);
        let r = armed_region(&mut ram, 2);
        r.record(&mut ram, E, rec(1, 1, 1)).unwrap();
        r.record(&mut ram, E, rec(2, 2, 2)).unwrap();
        r.record(&mut ram, E, rec(3, 3, 3)).unwrap();
        r.reset(&mut ram, E).unwrap();
        assert_eq!(r.count(&ram, E).unwrap(), 0);
        assert_eq!(ram.read_u32(r.base + 8, E).unwrap(), 0);
        assert!(r.armed(&ram, E));
        assert_eq!(
            r.record(&mut ram, E, rec(4, 4, 4)).unwrap(),
            RecordOutcome::Stored
        );
    }

    #[test]
    fn truncated_drain_is_safe() {
        let mut ram = Ram::new(0x2000_0000, 0x1000);
        let r = armed_region(&mut ram, 4);
        r.record(&mut ram, E, rec(1, 1, 1)).unwrap();
        r.record(&mut ram, E, rec(2, 2, 2)).unwrap();
        let bytes = ram.slice(r.base, r.drain_len()).unwrap().to_vec();
        // Cut mid-record: only the whole first record survives.
        let (records, _) = r.parse_drain(&bytes[..CMP_HEADER_BYTES as usize + 30], E);
        assert_eq!(records.len(), 1);
        let (none, _) = r.parse_drain(&bytes[..6], E);
        assert!(none.is_empty());
    }

    #[test]
    fn hostile_counts_are_clamped() {
        let mut ram = Ram::new(0x2000_0000, 0x1000);
        let r = armed_region(&mut ram, 4);
        r.record(&mut ram, E, rec(1, 1, 1)).unwrap();
        // Corrupt the count and the arming word with huge values.
        ram.write_u32(r.base, u32::MAX, E).unwrap();
        ram.write_u32(r.base + 4, u32::MAX, E).unwrap();
        let bytes = ram.slice(r.base, r.drain_len()).unwrap().to_vec();
        let (records, _) = r.parse_drain(&bytes, E);
        assert!(records.len() <= r.capacity as usize);
        // And a record against the corrupted header drops, never traps.
        assert_eq!(
            r.record(&mut ram, E, rec(2, 2, 2)).unwrap(),
            RecordOutcome::Dropped
        );
    }

    #[test]
    fn arm_writes_a_fresh_header() {
        let mut ram = Ram::new(0x2000_0000, 0x1000);
        let r = CmpRegion::new(0x2000_0100, 4);
        r.init(&mut ram, E).unwrap();
        // Pretend a stale run left a partial count and an overflow.
        ram.write_u32(r.base, 3, E).unwrap();
        ram.write_u32(r.base + 8, 9, E).unwrap();
        r.arm(&mut ram, E).unwrap();
        assert!(r.armed(&ram, E));
        assert_eq!(r.count(&ram, E).unwrap(), 0);
        assert_eq!(ram.read_u32(r.base + 8, E).unwrap(), 0);
        let h = r.armed_header(E);
        assert_eq!(&h[0..4], &[0, 0, 0, 0]);
        assert_eq!(E.u32_from([h[4], h[5], h[6], h[7]]), 4);
    }

    #[test]
    fn footprint_math() {
        let r = CmpRegion::new(0, 128);
        assert_eq!(r.footprint(), 12 + 128 * 24);
        assert_eq!(r.drain_len(), r.footprint() as usize);
    }
}
