//! Host-side streaming decoder for the hardware trace stream.
//!
//! The device half lives in [`eof_hal::trace`]: an ETM-style unit that
//! compresses the kernel's branch events into byte packets (SYNC /
//! REPEAT / delta / ADDR / OVERFLOW) in a bounded FIFO. This is the
//! probe half: a state machine that eats drained byte chunks — packets
//! may span drain boundaries — and reconstructs the per-hit edge-id
//! sequence, in device order, exactly as the instrumented ring would
//! have recorded it.
//!
//! Degradation is explicit and lossy-safe: an OVERFLOW marker (or a
//! malformed byte) never fabricates edges. On malformed input the
//! decoder drops bytes until the next `00 A5` SYNC preamble and counts
//! a resync; on OVERFLOW it counts the gap and re-locks at the SYNC
//! the encoder guarantees next.

use eof_hal::trace::{
    PKT_ADDR, PKT_BRANCH, PKT_OVERFLOW, PKT_REPEAT, PKT_SYNC0, PKT_SYNC1, TRACE_HEADER_BYTES,
};

/// Decoder statistics, surfaced as `cov.trace.*` telemetry by the
/// executor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Packets decoded.
    pub packets: u64,
    /// Stream bytes consumed.
    pub bytes: u64,
    /// FIFO overflow gaps observed (markers plus header loss counts).
    pub overflows: u64,
    /// Times the decoder lost lock and scanned for a SYNC preamble.
    pub resyncs: u64,
}

/// Streaming packet decoder. Feed it drained chunks; it buffers
/// partial packets internally and never invents an edge.
#[derive(Debug, Clone, Default)]
pub struct TraceDecoder {
    buf: Vec<u8>,
    last: Option<u64>,
    scanning: bool,
    stats: TraceStats,
}

impl TraceDecoder {
    /// A fresh decoder, locked and waiting for the stream's first SYNC.
    pub fn new() -> Self {
        Self::default()
    }

    /// Decoder statistics so far.
    pub fn stats(&self) -> TraceStats {
        self.stats
    }

    /// Drop all stream state (partial packet, address register). Called
    /// when the target is recovered or a drain is discarded whole — the
    /// next stream the device produces will open with its own SYNC.
    pub fn reset(&mut self) {
        self.buf.clear();
        self.last = None;
        self.scanning = false;
    }

    /// Consume one drained chunk, returning the edge ids it completes.
    pub fn feed(&mut self, chunk: &[u8]) -> Vec<u64> {
        self.buf.extend_from_slice(chunk);
        let mut edges = Vec::new();
        let mut pos = 0usize;
        loop {
            if self.scanning {
                // Lost lock: skip to the next SYNC preamble.
                match self.buf[pos..]
                    .windows(2)
                    .position(|w| w == [PKT_SYNC0, PKT_SYNC1])
                {
                    Some(off) => {
                        pos += off;
                        self.scanning = false;
                    }
                    None => {
                        // Keep at most one byte in case a preamble is
                        // split across this chunk boundary.
                        pos = self.buf.len().saturating_sub(1).max(pos);
                        break;
                    }
                }
            }
            let Some(&header) = self.buf.get(pos) else {
                break;
            };
            match header {
                PKT_SYNC0 => {
                    if self.buf.len() < pos + 10 {
                        break; // partial SYNC — wait for more bytes
                    }
                    if self.buf[pos + 1] != PKT_SYNC1 {
                        self.desync(&mut pos);
                        continue;
                    }
                    let id = u64::from_le_bytes(self.buf[pos + 2..pos + 10].try_into().unwrap());
                    self.last = Some(id);
                    edges.push(id);
                    self.packet(&mut pos, 10);
                }
                PKT_REPEAT => match self.last {
                    Some(id) => {
                        edges.push(id);
                        self.packet(&mut pos, 1);
                    }
                    None => self.desync(&mut pos),
                },
                PKT_OVERFLOW => {
                    // Events were lost; the encoder re-locks with a SYNC
                    // next. Nothing to emit — gaps never become edges.
                    self.stats.overflows += 1;
                    self.packet(&mut pos, 1);
                }
                h if (h & 0xF0 == PKT_BRANCH || h & 0xF0 == PKT_ADDR)
                    && (1..=8).contains(&(h & 0x0F)) =>
                {
                    let n = (h & 0x0F) as usize;
                    if self.buf.len() < pos + 1 + n {
                        break; // partial delta — wait for more bytes
                    }
                    let Some(prev) = self.last else {
                        self.desync(&mut pos);
                        continue;
                    };
                    let mut d = [0u8; 8];
                    d[..n].copy_from_slice(&self.buf[pos + 1..pos + 1 + n]);
                    let id = prev ^ u64::from_le_bytes(d);
                    self.last = Some(id);
                    edges.push(id);
                    self.packet(&mut pos, 1 + n);
                }
                _ => self.desync(&mut pos),
            }
        }
        self.buf.drain(..pos);
        edges
    }

    fn packet(&mut self, pos: &mut usize, len: usize) {
        self.stats.packets += 1;
        self.stats.bytes += len as u64;
        *pos += len;
    }

    fn desync(&mut self, pos: &mut usize) {
        self.stats.resyncs += 1;
        self.last = None;
        self.scanning = true;
        *pos += 1;
    }

    /// Decode a full wire drain (12-byte header + stream bytes) as the
    /// transport ships it. Returns the completed edges and the header's
    /// lost-event count; a non-zero count also bumps the overflow stat,
    /// so header-reported loss is visible even if the drain races ahead
    /// of the in-stream OVERFLOW marker.
    pub fn feed_drain(&mut self, bytes: &[u8]) -> (Vec<u64>, u32) {
        if bytes.len() < TRACE_HEADER_BYTES {
            return (Vec::new(), 0);
        }
        let used = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
        let lost = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        let body_end = (TRACE_HEADER_BYTES + used).min(bytes.len());
        let edges = self.feed(&bytes[TRACE_HEADER_BYTES..body_end]);
        if lost > 0 {
            self.stats.overflows += u64::from(lost);
        }
        (edges, lost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eof_hal::TraceUnit;

    fn armed(cap: usize) -> TraceUnit {
        let mut t = TraceUnit::with_capacity(cap);
        t.set_enabled(true);
        t
    }

    #[test]
    fn roundtrip_reproduces_the_hit_sequence() {
        let mut t = armed(4096);
        let seq = [7u64, 7, 9, 0xffff_ffff_0000_0001, 9, 9, 7];
        for (i, &id) in seq.iter().enumerate() {
            t.emit(id, i % 3 == 0);
        }
        let (bytes, lost) = t.drain();
        assert_eq!(lost, 0);
        let mut d = TraceDecoder::new();
        assert_eq!(d.feed(&bytes), seq.to_vec());
        assert_eq!(d.stats().resyncs, 0);
    }

    #[test]
    fn packets_split_across_chunk_boundaries_decode_identically() {
        let mut t = armed(4096);
        let seq: Vec<u64> = (0..40).map(|i| (i as u64).wrapping_mul(0x9e37_79b9)).collect();
        for &id in &seq {
            t.emit(id, false);
        }
        let (bytes, _) = t.drain();
        for split in [1usize, 3, 7, 9, 11] {
            let mut d = TraceDecoder::new();
            let mut got = Vec::new();
            for chunk in bytes.chunks(split) {
                got.extend(d.feed(chunk));
            }
            assert_eq!(got, seq, "split {split}");
        }
    }

    #[test]
    fn stream_continues_across_drains() {
        let mut t = armed(4096);
        let mut d = TraceDecoder::new();
        t.emit(1, false);
        t.emit(2, false);
        let (b1, _) = t.drain();
        t.emit(2, false); // repeat relative to pre-drain state
        t.emit(3, false);
        let (b2, _) = t.drain();
        let mut got = d.feed(&b1);
        got.extend(d.feed(&b2));
        assert_eq!(got, vec![1, 2, 2, 3]);
    }

    #[test]
    fn overflow_gap_is_counted_and_never_invents_edges() {
        let mut t = armed(16);
        t.emit(0xAAAA, false); // sync: 10 bytes
        t.emit(0xAAAB, false); // delta: 2 bytes
        t.emit(0xBBBB, false); // 3 bytes needed, 4 left: fits
        t.emit(0xCCCC, false); // lost
        assert_eq!(t.lost(), 1);
        let (b1, lost1) = t.drain();
        let mut d = TraceDecoder::new();
        let got1 = d.feed(&b1);
        assert_eq!(got1, vec![0xAAAA, 0xAAAB, 0xBBBB]);
        assert_eq!(lost1, 1);
        // Post-drain the encoder re-locks: OVERFLOW + SYNC.
        t.emit(0xDDDD, false);
        let (b2, _) = t.drain();
        let got2 = d.feed(&b2);
        assert_eq!(got2, vec![0xDDDD]);
        assert_eq!(d.stats().overflows, 1);
        assert_eq!(d.stats().resyncs, 0);
    }

    #[test]
    fn garbage_triggers_resync_at_the_next_preamble() {
        let mut t = armed(4096);
        t.emit(42, false);
        t.emit(43, false);
        let (tail, _) = t.drain();
        let mut stream = vec![0xFEu8, 0x33, 0x07]; // line noise
        stream.extend_from_slice(&tail);
        let mut d = TraceDecoder::new();
        let got = d.feed(&stream);
        assert_eq!(got, vec![42, 43]);
        assert!(d.stats().resyncs >= 1);
    }

    #[test]
    fn wire_drain_header_framing_roundtrips() {
        let mut t = armed(4096);
        t.emit(5, false);
        t.emit(6, true);
        let mut wire = t.header().to_vec();
        let (stream, _) = t.drain();
        wire.extend_from_slice(&stream);
        let mut d = TraceDecoder::new();
        let (edges, lost) = d.feed_drain(&wire);
        assert_eq!(edges, vec![5, 6]);
        assert_eq!(lost, 0);
    }

    #[test]
    fn reset_drops_partial_state() {
        let mut t = armed(4096);
        t.emit(9, false);
        let (bytes, _) = t.drain();
        let mut d = TraceDecoder::new();
        d.feed(&bytes[..4]); // partial SYNC held
        d.reset();
        assert_eq!(d.feed(&bytes[4..]), Vec::<u64>::new());
        // A fresh stream after reset decodes cleanly.
        t.quiesce();
        t.emit(11, false);
        let (b2, _) = t.drain();
        let got = d.feed(&b2);
        assert_eq!(got, vec![11]);
    }
}
