//! Edge identities and the per-image edge registry.
//!
//! Real SanCov numbers edges by instrumentation order inside each
//! translation unit. The reproduction needs identities that are stable
//! across builds and meaningful in reports, so an edge is identified by the
//! FNV-1a hash of its fully qualified site name, e.g.
//! `"rt-thread::ipc::rt_event_send::flag_match"`. Kernel models register
//! every site they contain at image-build time; the registry is what the
//! instrumentation plan and the overhead model operate on.

use std::collections::BTreeMap;

/// A coverage edge identity (FNV-1a of the site name).
pub type EdgeId = u64;

/// Compute the stable edge id for a fully qualified site name.
pub fn edge_id(site: &str) -> EdgeId {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in site.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One instrumentable branch site in a kernel image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeSite {
    /// Stable identity.
    pub id: EdgeId,
    /// Fully qualified name, `"<os>::<module>::<function>::<branch>"`.
    pub name: String,
    /// Module component (second path segment), used for per-module
    /// instrumentation confinement.
    pub module: String,
}

/// All instrumentable sites of one OS image.
#[derive(Debug, Clone, Default)]
pub struct EdgeRegistry {
    by_id: BTreeMap<EdgeId, EdgeSite>,
}

impl EdgeRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a site by fully qualified name. Returns its id.
    /// Re-registering the same name is idempotent.
    pub fn register(&mut self, name: &str) -> EdgeId {
        let id = edge_id(name);
        self.by_id.entry(id).or_insert_with(|| {
            let module = name.split("::").nth(1).unwrap_or("").to_string();
            EdgeSite {
                id,
                name: name.to_string(),
                module,
            }
        });
        id
    }

    /// Total number of registered sites.
    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }

    /// Look up a site by id.
    pub fn get(&self, id: EdgeId) -> Option<&EdgeSite> {
        self.by_id.get(&id)
    }

    /// Iterate over all sites.
    pub fn iter(&self) -> impl Iterator<Item = &EdgeSite> {
        self.by_id.values()
    }

    /// Number of sites in a given module.
    pub fn module_len(&self, module: &str) -> usize {
        self.by_id.values().filter(|s| s.module == module).count()
    }

    /// Distinct module names, sorted.
    pub fn modules(&self) -> Vec<String> {
        let mut v: Vec<String> = self.by_id.values().map(|s| s.module.clone()).collect();
        v.sort();
        v.dedup();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_id_is_stable_and_distinct() {
        assert_eq!(edge_id("a::b::c"), edge_id("a::b::c"));
        assert_ne!(edge_id("a::b::c"), edge_id("a::b::d"));
    }

    #[test]
    fn register_extracts_module() {
        let mut r = EdgeRegistry::new();
        let id = r.register("zephyr::json::encode::nested");
        assert_eq!(r.get(id).unwrap().module, "json");
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn register_is_idempotent() {
        let mut r = EdgeRegistry::new();
        let a = r.register("os::m::f::b");
        let b = r.register("os::m::f::b");
        assert_eq!(a, b);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn module_queries() {
        let mut r = EdgeRegistry::new();
        r.register("os::json::a::x");
        r.register("os::json::b::y");
        r.register("os::http::c::z");
        assert_eq!(r.module_len("json"), 2);
        assert_eq!(r.module_len("http"), 1);
        assert_eq!(r.modules(), vec!["http".to_string(), "json".to_string()]);
    }

    #[test]
    fn missing_module_segment_is_empty() {
        let mut r = EdgeRegistry::new();
        let id = r.register("lonely");
        assert_eq!(r.get(id).unwrap().module, "");
    }
}
