//! `eof-coverage` — SanCov-style coverage instrumentation for the EOF
//! reproduction.
//!
//! The paper (§4.5.1) instruments the target OS at compile time with
//! Sanitizer Coverage: a callback at each branch writes a record into a
//! small coverage buffer in target RAM; when the buffer fills, the firmware
//! traps at `_kcmp_buf_full` so the host can drain and reset it over the
//! debug port. This crate provides all four pieces:
//!
//! * [`edge`] — stable edge identities and the per-OS registry of
//!   instrumentable sites;
//! * [`instrument`] — the "compile-time" instrumentation plan (full-image,
//!   per-module as in the GDBFuzz comparison, or none) plus its memory and
//!   cycle cost model;
//! * [`buffer`] — the on-device ring-buffer layout and the device/host
//!   halves of the drain protocol;
//! * [`cmp`] — the comparison-operand ring (the cmplog channel): the
//!   planted `trace_cmp` hooks record operand pairs here when the host
//!   arms the region, feeding Redqueen-style input-to-state mutation;
//! * [`bitmap`] — the host-side coverage map that decides "did this input
//!   find anything new?" and accumulates branch counts for the paper's
//!   tables and curves;
//! * [`trace`] — the host half of the µAFL-style hardware trace channel:
//!   a streaming decoder for the [`eof_hal::trace`] packet format;
//! * [`backend`] — the [`CoverageBackend`] trait that makes the fuzzing
//!   loop agnostic to which of the two channels (instrumented ring or
//!   hardware trace) supplied its edges.

pub mod backend;
pub mod bitmap;
pub mod buffer;
pub mod cmp;
pub mod edge;
pub mod instrument;
pub mod trace;

pub use backend::{
    backend_default, CoverageBackend, CoverageKind, DrainedCoverage, InstrumentedRing, TraceDecode,
};
pub use bitmap::{CoverageMap, Snapshot};
pub use buffer::{CovRegion, RecordOutcome, COV_HEADER_BYTES, COV_RECORD_BYTES};
pub use cmp::{CmpRecord, CmpRegion, CMP_HEADER_BYTES, CMP_RECORD_BYTES};
pub use edge::{edge_id, EdgeId, EdgeRegistry, EdgeSite};
pub use instrument::{InstrumentCost, InstrumentMode, InstrumentPlan};
pub use trace::{TraceDecoder, TraceStats};
