//! Coverage acquisition backends.
//!
//! The fuzzing loop only needs one thing from coverage: *the per-hit
//! edge-id sequence each execution produced*. How those ids got off the
//! device is a backend concern — compiled-in SanCov hooks filling an
//! in-RAM ring ([`InstrumentedRing`], the paper's §4.5.1 channel), or
//! an ETM-style hardware trace unit streaming packets that the host
//! decodes ([`TraceDecode`], the µAFL channel, which needs no
//! instrumentation in the image at all). `eof-core` selects a backend
//! via `FuzzerConfig::coverage_backend` / the `EOF_COV` env knob and
//! treats it uniformly from there.

use crate::buffer::CovRegion;
use crate::trace::{TraceDecoder, TraceStats};
use eof_hal::Endianness;
use std::sync::OnceLock;

/// Which coverage channel a campaign acquires edges over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoverageKind {
    /// Compiled-in SanCov-style hooks + on-device ring buffer.
    Ring,
    /// Hardware trace unit + host-side packet decode; the image carries
    /// no coverage instrumentation.
    Trace,
}

impl CoverageKind {
    /// Manifest/display token (`cov = ring|trace`).
    pub fn token(self) -> &'static str {
        match self {
            CoverageKind::Ring => "ring",
            CoverageKind::Trace => "trace",
        }
    }

    /// Parse a manifest token; unknown tokens read as the default ring
    /// channel (absent-tolerant, like `wire =` / `io =`).
    pub fn from_token(s: &str) -> Self {
        match s {
            "trace" => CoverageKind::Trace,
            _ => CoverageKind::Ring,
        }
    }
}

/// Default coverage backend: the `EOF_COV` environment knob, read once.
/// `EOF_COV=trace` selects hardware trace; anything else (or unset)
/// keeps the paper's instrumented ring.
pub fn backend_default() -> CoverageKind {
    static DEFAULT: OnceLock<CoverageKind> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        match std::env::var("EOF_COV") {
            Ok(v) if v == "trace" => CoverageKind::Trace,
            _ => CoverageKind::Ring,
        }
    })
}

/// One decoded coverage drain.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DrainedCoverage {
    /// Per-hit edge ids, in device emission order.
    pub edges: Vec<u64>,
    /// Events the device lost this window (ring records dropped past
    /// capacity, or trace FIFO overflow).
    pub lost: u32,
}

impl DrainedCoverage {
    /// Did this window lose events? Downstream marks the exec's
    /// coverage partial — observed edges stay valid, absence proves
    /// nothing.
    pub fn partial(&self) -> bool {
        self.lost > 0
    }
}

/// A coverage acquisition channel, as the executor sees it: raw drain
/// bytes in, edge sequence out.
pub trait CoverageBackend {
    /// Which channel this is (drives wire-op selection and manifests).
    fn kind(&self) -> CoverageKind;

    /// Decode one raw drain payload as the wire shipped it (header
    /// first, then live bytes).
    fn decode_drain(&mut self, bytes: &[u8], endianness: Endianness) -> DrainedCoverage;

    /// Drop any cross-drain streaming state. Called when the target is
    /// recovered (reset/reflash/restore) or a drain is discarded whole.
    fn reset_stream(&mut self);

    /// Decoder statistics (zero for channels without a decoder).
    fn stats(&self) -> TraceStats {
        TraceStats::default()
    }
}

/// The paper's channel: SanCov hooks + in-RAM ring, drained and parsed
/// with [`CovRegion`]. Stateless across drains.
#[derive(Debug, Clone)]
pub struct InstrumentedRing {
    region: CovRegion,
}

impl InstrumentedRing {
    /// Backend over the given ring region.
    pub fn new(region: CovRegion) -> Self {
        InstrumentedRing { region }
    }
}

impl CoverageBackend for InstrumentedRing {
    fn kind(&self) -> CoverageKind {
        CoverageKind::Ring
    }

    fn decode_drain(&mut self, bytes: &[u8], endianness: Endianness) -> DrainedCoverage {
        let (edges, lost) = self.region.parse_drain(bytes, endianness);
        DrainedCoverage { edges, lost }
    }

    fn reset_stream(&mut self) {}
}

/// The µAFL channel: hardware trace packets, decoded host-side. Holds
/// the streaming decoder (packets span drains).
#[derive(Debug, Clone, Default)]
pub struct TraceDecode {
    decoder: TraceDecoder,
}

impl TraceDecode {
    /// A fresh decode backend.
    pub fn new() -> Self {
        Self::default()
    }
}

impl CoverageBackend for TraceDecode {
    fn kind(&self) -> CoverageKind {
        CoverageKind::Trace
    }

    fn decode_drain(&mut self, bytes: &[u8], _endianness: Endianness) -> DrainedCoverage {
        // The trace unit is debug-subsystem hardware: fixed LE framing
        // regardless of core endianness.
        let (edges, lost) = self.decoder.feed_drain(bytes);
        DrainedCoverage { edges, lost }
    }

    fn reset_stream(&mut self) {
        self.decoder.reset();
    }

    fn stats(&self) -> TraceStats {
        self.decoder.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eof_hal::{Ram, TraceUnit};

    #[test]
    fn tokens_roundtrip_and_unknowns_default_to_ring() {
        assert_eq!(CoverageKind::from_token("trace"), CoverageKind::Trace);
        assert_eq!(CoverageKind::from_token("ring"), CoverageKind::Ring);
        assert_eq!(CoverageKind::from_token("???"), CoverageKind::Ring);
        assert_eq!(CoverageKind::Trace.token(), "trace");
    }

    #[test]
    fn ring_backend_matches_parse_drain() {
        let mut ram = Ram::new(0x2000_0000, 0x1000);
        let region = CovRegion::new(0x2000_0100, 8);
        let e = Endianness::Little;
        region.init(&mut ram, e).unwrap();
        for id in [3u64, 4, 3] {
            region.record(&mut ram, e, id).unwrap();
        }
        let raw = ram.slice(region.base, region.drain_len()).unwrap().to_vec();
        let mut b = InstrumentedRing::new(region);
        let d = b.decode_drain(&raw, e);
        assert_eq!(d.edges, vec![3, 4, 3]);
        assert!(!d.partial());
    }

    #[test]
    fn trace_backend_decodes_a_wire_drain_and_flags_loss() {
        let mut t = TraceUnit::with_capacity(12);
        t.set_enabled(true);
        t.emit(1, false);
        t.emit(0x100, false); // 3-byte packet: dropped (10+3 > 12)
        let mut wire = t.header().to_vec();
        let (stream, _) = t.drain();
        wire.extend_from_slice(&stream);
        let mut b = TraceDecode::new();
        let d = b.decode_drain(&wire, Endianness::Big);
        assert_eq!(d.edges, vec![1]);
        assert!(d.partial());
        assert!(b.stats().overflows >= 1);
    }
}
