//! The on-device coverage ring buffer and its drain protocol.
//!
//! Layout in target RAM (all words in the core's byte order):
//!
//! ```text
//! base + 0   u32  count      — records currently in the buffer
//! base + 4   u32  capacity   — maximum records (set at init)
//! base + 8   u32  overflow   — records dropped since last drain
//! base + 12  u64 × capacity  — edge ids, written by __sanitizer-style hooks
//! ```
//!
//! The device side ([`CovRegion::record`]) is what the instrumented kernel
//! calls (the paper's `write_comp_data()`); when the buffer is full it
//! reports [`RecordOutcome::Full`], which makes the firmware trap at
//! `_kcmp_buf_full` so the host can drain. The host side
//! ([`CovRegion::parse_drain`]) decodes bytes read over the debug port and
//! [`CovRegion::reset`] rewinds the count.

use eof_hal::{Endianness, HalError, Ram};

/// Bytes of the buffer header (count, capacity, overflow).
pub const COV_HEADER_BYTES: u32 = 12;

/// Bytes per coverage record (one 64-bit edge id).
pub const COV_RECORD_BYTES: u32 = 8;

/// Result of recording one edge on the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordOutcome {
    /// Record stored; buffer still has room.
    Stored,
    /// Record stored and the buffer passed its high-water mark — time to
    /// trap. The headroom above the mark keeps absorbing hits until the
    /// host drains, so the tail of an in-flight kernel call is not lost.
    Full,
    /// Buffer was brim-full; the record was dropped (overflow counter
    /// incremented). Happens when the host is slow to drain.
    Dropped,
}

/// A coverage buffer at a fixed location in target RAM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CovRegion {
    /// RAM address of the header.
    pub base: u32,
    /// Capacity in records.
    pub capacity: u32,
}

impl CovRegion {
    /// Construct a region descriptor.
    pub fn new(base: u32, capacity: u32) -> Self {
        CovRegion { base, capacity }
    }

    /// Total RAM footprint in bytes.
    pub fn footprint(&self) -> u32 {
        COV_HEADER_BYTES + self.capacity * COV_RECORD_BYTES
    }

    /// Device-side init: zero the header, publish the capacity.
    pub fn init(&self, ram: &mut Ram, e: Endianness) -> Result<(), HalError> {
        ram.write_u32(self.base, 0, e)?;
        ram.write_u32(self.base + 4, self.capacity, e)?;
        ram.write_u32(self.base + 8, 0, e)
    }

    /// Device-side hook: append one edge id.
    pub fn record(
        &self,
        ram: &mut Ram,
        e: Endianness,
        edge: u64,
    ) -> Result<RecordOutcome, HalError> {
        let count = ram.read_u32(self.base, e)?;
        if count >= self.capacity {
            let overflow = ram.read_u32(self.base + 8, e)?;
            ram.write_u32(self.base + 8, overflow.saturating_add(1), e)?;
            return Ok(RecordOutcome::Dropped);
        }
        let slot = self.base + COV_HEADER_BYTES + count * COV_RECORD_BYTES;
        ram.write_u64(slot, edge, e)?;
        ram.write_u32(self.base, count + 1, e)?;
        Ok(if count + 1 >= self.high_water() {
            RecordOutcome::Full
        } else {
            RecordOutcome::Stored
        })
    }

    /// The record count at which the device asks to be drained. A quarter
    /// of the capacity is held back as headroom: the trap fires between
    /// kernel calls, so the hits the current call keeps emitting after
    /// the mark must still fit or they would be dropped — and a lossy
    /// ring could never be equivalent to the lossless trace backend.
    pub fn high_water(&self) -> u32 {
        self.capacity - self.capacity / 4
    }

    /// Host-side: number of bytes to read over the debug port to capture
    /// the header plus every stored record.
    pub fn drain_len(&self) -> usize {
        self.footprint() as usize
    }

    /// Host-side: decode a raw drain (header + records) into edge ids.
    /// Returns `(edges, overflowed_records)`.
    pub fn parse_drain(&self, bytes: &[u8], e: Endianness) -> (Vec<u64>, u32) {
        if bytes.len() < COV_HEADER_BYTES as usize {
            return (Vec::new(), 0);
        }
        let word = |off: usize| -> u32 {
            let mut b = [0u8; 4];
            b.copy_from_slice(&bytes[off..off + 4]);
            e.u32_from(b)
        };
        let count = word(0).min(self.capacity);
        let overflow = word(8);
        let mut edges = Vec::with_capacity(count as usize);
        for i in 0..count {
            let off = (COV_HEADER_BYTES + i * COV_RECORD_BYTES) as usize;
            if off + 8 > bytes.len() {
                break;
            }
            let mut b = [0u8; 8];
            b.copy_from_slice(&bytes[off..off + 8]);
            edges.push(e.u64_from(b));
        }
        (edges, overflow)
    }

    /// Host-side: rewind the buffer after a drain (writes go over the
    /// debug port in practice; this is the byte image to write).
    pub fn reset(&self, ram: &mut Ram, e: Endianness) -> Result<(), HalError> {
        ram.write_u32(self.base, 0, e)?;
        ram.write_u32(self.base + 8, 0, e)
    }

    /// Device-side: current record count (used by the agent to decide
    /// whether a trap is needed).
    pub fn count(&self, ram: &Ram, e: Endianness) -> Result<u32, HalError> {
        ram.read_u32(self.base, e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(cap: u32) -> (Ram, CovRegion, Endianness) {
        let ram = Ram::new(0x2000_0000, 0x2000);
        let region = CovRegion::new(0x2000_0100, cap);
        (ram, region, Endianness::Little)
    }

    #[test]
    fn record_until_full_then_drop() {
        let (mut ram, r, e) = setup(3);
        r.init(&mut ram, e).unwrap();
        assert_eq!(r.record(&mut ram, e, 10).unwrap(), RecordOutcome::Stored);
        assert_eq!(r.record(&mut ram, e, 20).unwrap(), RecordOutcome::Stored);
        assert_eq!(r.record(&mut ram, e, 30).unwrap(), RecordOutcome::Full);
        assert_eq!(r.record(&mut ram, e, 40).unwrap(), RecordOutcome::Dropped);
        assert_eq!(r.count(&ram, e).unwrap(), 3);
    }

    #[test]
    fn drain_roundtrip() {
        let (mut ram, r, e) = setup(8);
        r.init(&mut ram, e).unwrap();
        for id in [111u64, 222, 333] {
            r.record(&mut ram, e, id).unwrap();
        }
        let raw = ram.slice(r.base, r.drain_len()).unwrap().to_vec();
        let (edges, overflow) = r.parse_drain(&raw, e);
        assert_eq!(edges, vec![111, 222, 333]);
        assert_eq!(overflow, 0);
    }

    #[test]
    fn overflow_is_visible_to_host() {
        let (mut ram, r, e) = setup(1);
        r.init(&mut ram, e).unwrap();
        r.record(&mut ram, e, 1).unwrap();
        r.record(&mut ram, e, 2).unwrap();
        r.record(&mut ram, e, 3).unwrap();
        let raw = ram.slice(r.base, r.drain_len()).unwrap().to_vec();
        let (edges, overflow) = r.parse_drain(&raw, e);
        assert_eq!(edges, vec![1]);
        assert_eq!(overflow, 2);
    }

    #[test]
    fn reset_reopens_buffer() {
        let (mut ram, r, e) = setup(2);
        r.init(&mut ram, e).unwrap();
        r.record(&mut ram, e, 1).unwrap();
        r.record(&mut ram, e, 2).unwrap();
        r.reset(&mut ram, e).unwrap();
        assert_eq!(r.count(&ram, e).unwrap(), 0);
        assert_eq!(r.record(&mut ram, e, 3).unwrap(), RecordOutcome::Stored);
    }

    #[test]
    fn big_endian_roundtrip() {
        let mut ram = Ram::new(0x8000_0000, 0x1000);
        let r = CovRegion::new(0x8000_0000, 4);
        let e = Endianness::Big;
        r.init(&mut ram, e).unwrap();
        r.record(&mut ram, e, 0xdead_beef_0000_0001).unwrap();
        let raw = ram.slice(r.base, r.drain_len()).unwrap().to_vec();
        let (edges, _) = r.parse_drain(&raw, e);
        assert_eq!(edges, vec![0xdead_beef_0000_0001]);
    }

    #[test]
    fn truncated_drain_is_safe() {
        let (mut ram, r, e) = setup(4);
        r.init(&mut ram, e).unwrap();
        r.record(&mut ram, e, 42).unwrap();
        let raw = ram.slice(r.base, 10).unwrap().to_vec();
        let (edges, _) = r.parse_drain(&raw, e);
        assert!(edges.is_empty());
    }

    #[test]
    fn hostile_count_is_clamped() {
        let (mut ram, r, e) = setup(2);
        r.init(&mut ram, e).unwrap();
        // A buggy/corrupted target claims absurd count; host must clamp.
        ram.write_u32(r.base, u32::MAX, e).unwrap();
        let raw = ram.slice(r.base, r.drain_len()).unwrap().to_vec();
        let (edges, _) = r.parse_drain(&raw, e);
        assert!(edges.len() <= 2);
    }

    #[test]
    fn footprint_math() {
        let r = CovRegion::new(0, 256);
        assert_eq!(r.footprint(), 12 + 256 * 8);
    }

    #[test]
    fn high_water_traps_early_but_keeps_storing() {
        let (mut ram, r, e) = setup(8);
        r.init(&mut ram, e).unwrap();
        assert_eq!(r.high_water(), 6);
        for id in 0..5 {
            assert_eq!(r.record(&mut ram, e, id).unwrap(), RecordOutcome::Stored);
        }
        // The mark fires with headroom to spare...
        assert_eq!(r.record(&mut ram, e, 5).unwrap(), RecordOutcome::Full);
        // ...and the headroom still stores the in-flight call's tail.
        assert_eq!(r.record(&mut ram, e, 6).unwrap(), RecordOutcome::Full);
        assert_eq!(r.record(&mut ram, e, 7).unwrap(), RecordOutcome::Full);
        assert_eq!(r.record(&mut ram, e, 8).unwrap(), RecordOutcome::Dropped);
        assert_eq!(r.count(&ram, e).unwrap(), 8);
        // Tiny rings degenerate to trap-at-full rather than underflowing.
        let tiny = CovRegion::new(0, 3);
        assert_eq!(tiny.high_water(), 3);
    }
}
