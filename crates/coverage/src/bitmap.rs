//! Host-side coverage accounting.
//!
//! The fuzzer keeps one [`CoverageMap`] per campaign. Each drained batch of
//! edge ids is merged; the map answers the two questions the fuzzing loop
//! asks — *did this input discover anything new?* and *how many distinct
//! branches have we found so far?* — and records time-stamped
//! [`Snapshot`]s for the paper's coverage-growth curves (Figures 7 and 8).

use std::collections::HashSet;

/// A `(simulated time, branches found)` point on a coverage curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Snapshot {
    /// Simulated time in hours since campaign start.
    pub hours: f64,
    /// Distinct branches discovered by this time.
    pub branches: usize,
}

/// Accumulated set of discovered edges plus the growth history.
#[derive(Debug, Clone, Default)]
pub struct CoverageMap {
    seen: HashSet<u64>,
    history: Vec<Snapshot>,
}

impl CoverageMap {
    /// An empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Merge a batch of edge ids; returns how many were new.
    pub fn merge(&mut self, edges: &[u64]) -> usize {
        let before = self.seen.len();
        self.seen.extend(edges.iter().copied());
        self.seen.len() - before
    }

    /// Whether a specific edge has been seen.
    pub fn contains(&self, edge: u64) -> bool {
        self.seen.contains(&edge)
    }

    /// Distinct branches discovered so far.
    pub fn branches(&self) -> usize {
        self.seen.len()
    }

    /// Record a snapshot at `hours` of simulated time.
    pub fn snapshot(&mut self, hours: f64) {
        self.history.push(Snapshot {
            hours,
            branches: self.seen.len(),
        });
    }

    /// The recorded growth curve.
    pub fn history(&self) -> &[Snapshot] {
        &self.history
    }

    /// Union with another map (merging repetition runs for min/max bands).
    pub fn union(&mut self, other: &CoverageMap) {
        self.seen.extend(other.seen.iter().copied());
    }

    /// The discovered edge set in sorted order — the canonical form the
    /// equivalence gates compare two campaigns' final bitmaps in.
    pub fn sorted_edges(&self) -> Vec<u64> {
        let mut edges: Vec<u64> = self.seen.iter().copied().collect();
        edges.sort_unstable();
        edges
    }

    /// Iterate over discovered edge ids (unordered).
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.seen.iter().copied()
    }
}

/// Pointwise statistics over several runs' curves: for each sample hour,
/// the mean, min and max branch counts. Curves are sampled at each run's
/// own snapshot times; runs are aligned by snapshot index, which holds for
/// our campaigns because every run snapshots on the same schedule.
pub fn curve_band(runs: &[&[Snapshot]]) -> Vec<(f64, f64, usize, usize)> {
    let n = runs.iter().map(|r| r.len()).min().unwrap_or(0);
    (0..n)
        .map(|i| {
            let hours = runs[0][i].hours;
            let vals: Vec<usize> = runs.iter().map(|r| r[i].branches).collect();
            let mean = vals.iter().sum::<usize>() as f64 / vals.len() as f64;
            let min = *vals.iter().min().unwrap();
            let max = *vals.iter().max().unwrap();
            (hours, mean, min, max)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_counts_new_only() {
        let mut m = CoverageMap::new();
        assert_eq!(m.merge(&[1, 2, 3]), 3);
        assert_eq!(m.merge(&[2, 3, 4]), 1);
        assert_eq!(m.branches(), 4);
        assert!(m.contains(4));
        assert!(!m.contains(5));
    }

    #[test]
    fn snapshots_form_monotone_curve() {
        let mut m = CoverageMap::new();
        m.merge(&[1]);
        m.snapshot(1.0);
        m.merge(&[2, 3]);
        m.snapshot(2.0);
        let h = m.history();
        assert_eq!(h.len(), 2);
        assert!(h[0].branches <= h[1].branches);
        assert_eq!(h[1].branches, 3);
    }

    #[test]
    fn union_merges_runs() {
        let mut a = CoverageMap::new();
        a.merge(&[1, 2]);
        let mut b = CoverageMap::new();
        b.merge(&[2, 3]);
        a.union(&b);
        assert_eq!(a.branches(), 3);
    }

    #[test]
    fn band_statistics() {
        let r1 = [
            Snapshot {
                hours: 1.0,
                branches: 10,
            },
            Snapshot {
                hours: 2.0,
                branches: 20,
            },
        ];
        let r2 = [
            Snapshot {
                hours: 1.0,
                branches: 14,
            },
            Snapshot {
                hours: 2.0,
                branches: 30,
            },
        ];
        let band = curve_band(&[&r1, &r2]);
        assert_eq!(band.len(), 2);
        let (h, mean, min, max) = band[1];
        assert_eq!(h, 2.0);
        assert_eq!(mean, 25.0);
        assert_eq!(min, 20);
        assert_eq!(max, 30);
    }

    #[test]
    fn band_of_empty_is_empty() {
        assert!(curve_band(&[]).is_empty());
    }
}
