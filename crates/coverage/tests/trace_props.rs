//! Property tests for the hardware-trace packet codec: whatever branch
//! sequence the device emits, the host decoder reconstructs it exactly
//! — across arbitrary drain chunking, FIFO overflow truncation, and
//! mid-packet resync — and never invents an edge.

use eof_coverage::TraceDecoder;
use eof_hal::TraceUnit;
use proptest::prelude::*;

fn armed(cap: usize) -> TraceUnit {
    let mut t = TraceUnit::with_capacity(cap);
    t.set_enabled(true);
    t
}

/// Branch sequences biased toward the shapes real runs produce: small
/// site pools (lots of repeats and short deltas) mixed with arbitrary
/// 64-bit ids, each hit tagged direct or indirect.
fn branch_seq() -> impl Strategy<Value = Vec<(u64, bool)>> {
    proptest::collection::vec(
        (
            prop_oneof![
                3 => (0u64..32).prop_map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15)),
                1 => any::<u64>(),
            ],
            any::<bool>(),
        ),
        0..200,
    )
}

proptest! {
    /// Encode → decode is the identity on the hit sequence.
    #[test]
    fn encode_decode_identity(seq in branch_seq()) {
        let mut t = armed(1 << 20);
        for &(id, ind) in &seq {
            t.emit(id, ind);
        }
        let (bytes, lost) = t.drain();
        prop_assert_eq!(lost, 0);
        let mut d = TraceDecoder::new();
        let got = d.feed(&bytes);
        let want: Vec<u64> = seq.iter().map(|&(id, _)| id).collect();
        prop_assert_eq!(got, want);
        prop_assert_eq!(d.stats().resyncs, 0);
    }

    /// Chunking the stream at arbitrary points (packets split across
    /// drain boundaries) changes nothing.
    #[test]
    fn chunked_feed_is_identical(seq in branch_seq(), splits in proptest::collection::vec(1usize..16, 1..8)) {
        let mut t = armed(1 << 20);
        for &(id, ind) in &seq {
            t.emit(id, ind);
        }
        let (bytes, _) = t.drain();
        let mut d = TraceDecoder::new();
        let mut got = Vec::new();
        let mut pos = 0usize;
        let mut i = 0usize;
        while pos < bytes.len() {
            let end = (pos + splits[i % splits.len()]).min(bytes.len());
            got.extend(d.feed(&bytes[pos..end]));
            pos = end;
            i += 1;
        }
        let want: Vec<u64> = seq.iter().map(|&(id, _)| id).collect();
        prop_assert_eq!(got, want);
    }

    /// A FIFO too small for the sequence truncates it: the decode is a
    /// strict prefix of the true hit sequence (never an invented edge), the
    /// loss is counted, and the post-drain stream re-locks so later
    /// hits decode exactly.
    #[test]
    fn overflow_truncates_to_a_prefix_and_relocks(
        seq in proptest::collection::vec((any::<u64>(), any::<bool>()), 1..120),
        // ≥ 11: a FIFO smaller than one OVERFLOW + SYNC re-lock packet
        // can never recover from overflow — degenerate by construction.
        cap in 11usize..64,
    ) {
        let mut t = armed(cap);
        for &(id, ind) in &seq {
            t.emit(id, ind);
        }
        let lost_live = t.lost();
        let mut wire = t.header().to_vec();
        let (stream, lost) = t.drain();
        wire.extend_from_slice(&stream);
        prop_assert_eq!(lost, lost_live);
        let mut d = TraceDecoder::new();
        let (got, lost_hdr) = d.feed_drain(&wire);
        prop_assert_eq!(lost_hdr, lost);
        let want: Vec<u64> = seq.iter().map(|&(id, _)| id).collect();
        prop_assert_eq!(got.len() + lost as usize, want.len());
        prop_assert_eq!(&got[..], &want[..got.len()]);
        // After the drain, the stream must re-lock and decode cleanly.
        t.emit(0x5157, false);
        let mut wire2 = t.header().to_vec();
        let (stream2, _) = t.drain();
        wire2.extend_from_slice(&stream2);
        let (got2, _) = d.feed_drain(&wire2);
        prop_assert_eq!(got2, vec![0x5157]);
        if lost > 0 {
            prop_assert!(d.stats().overflows > 0);
        }
    }

    /// Arbitrary line noise — including a true stream cut mid-packet —
    /// never panics the decoder, and a `reset` drops every trace of it:
    /// the next intact stream decodes to the exact hit sequence. (The
    /// transport never feeds torn drains to the decoder — a given-up
    /// drain is discarded whole — so garbage-feeding is strictly a
    /// robustness property, not an equivalence path.)
    #[test]
    fn garbage_never_panics_and_reset_recovers(
        noise in proptest::collection::vec(any::<u8>(), 0..200),
        cut in 0usize..64,
        seq in branch_seq(),
    ) {
        let mut t = armed(1 << 20);
        for &(id, ind) in &seq {
            t.emit(id, ind);
        }
        let (bytes, _) = t.drain();
        let mut d = TraceDecoder::new();
        let _ = d.feed(&noise);
        let _ = d.feed(&bytes[cut.min(bytes.len())..]);
        d.reset();
        t.quiesce(); // fresh stream opens with its own SYNC
        for &(id, ind) in &seq {
            t.emit(id, ind);
        }
        let (fresh, _) = t.drain();
        let got = d.feed(&fresh);
        let want: Vec<u64> = seq.iter().map(|&(id, _)| id).collect();
        prop_assert_eq!(got, want);
    }
}
