//! API-aware test-case generation and mutation.
//!
//! The generator "constructs a test input by selecting and mutating API
//! specification sequences, scoring call adjacency by resource
//! dependencies and recent coverage" (§4.5). Resource-consuming
//! parameters are satisfied by inserting producer calls first and
//! referencing their results, which is what lets generated inputs pass
//! API preconditions and reach deep handlers (§5.4.2).
//!
//! The same type also implements the baselines' random-byte mode:
//! shape-blind values thrown at the same entry points, which the target
//! mostly rejects at the API boundary.

use crate::cmplog::{CmpJournal, MutOp};
use crate::config::GenerationMode;
use eof_speclang::ast::{SpecFile, TypeDesc};
use eof_speclang::prog::{ArgValue, Call, Prog};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashMap;

/// Dictionary payloads for buffer parameters: well-formed and slightly
/// broken JSON and HTTP fragments, so byte-level modules see structure.
const BUFFER_DICTIONARY: &[&[u8]] = &[
    br#"{"a":1}"#,
    br#"{"k":[true,null,1.5e3]}"#,
    br#"[[[[1]]]]"#,
    br#"{"deep":{"deep":{"deep":{"x":[]}}}}"#,
    br#"{"s":"A\n"}"#,
    br#"{"broken": }"#,
    br#"[1,2,"#,
    b"GET / HTTP/1.1\r\nHost: dev\r\n\r\n",
    b"GET /status HTTP/1.1\r\n\r\n",
    b"POST /api/sensors?id=3 HTTP/1.0\r\nContent-Length: 4\r\n\r\n",
    b"PUT /api/config HTTP/1.1\r\nConnection: keep-alive\r\n\r\n",
    b"DELETE /api/config HTTP/1.1\r\nX: y\r\n\r\n",
    b"HEAD /index.html HTTP/1.0\r\n\r\n",
    b"BREW /pot HTCPCP/1.0\r\n\r\n",
    b"GET noslash HTTP/1.1\r\n\r\n",
];

/// Name-ish strings for cstring parameters.
const NAME_DICTIONARY: &[&str] = &[
    "main", "tsk0", "worker", "uart1", "sem0", "evt", "mp0", "q", "a", "idle", "net_rx", "log",
    "t1", "t2", "cfg",
];

/// Status-register bytes the driver layer actually branches on (busy,
/// NACK, half-complete, error latch…). The MMIO plane biases toward
/// these so generated streams hit the drivers' status decodes instead of
/// wandering uniform byte space.
const MMIO_DICTIONARY: &[u8] = &[0x00, 0x01, 0x04, 0x08, 0x40, 0x80, 0xff];

/// Cap on a generated peripheral response stream. Replay answers
/// repeated reads from memory, so a short stream goes a long way.
const MMIO_MAX_LEN: usize = 48;

/// The test-case generator for one target's specification.
pub struct Generator {
    spec: SpecFile,
    rng: StdRng,
    mode: GenerationMode,
    max_calls: usize,
    /// Fill and mutate the peripheral response stream (`Prog::mmio`)
    /// as a second input plane. The stream draws from its own RNG
    /// (`mmio_rng`), so a pure campaign and a driver campaign with the
    /// same seed generate identical call planes throughout.
    mmio: bool,
    mmio_rng: StdRng,
    /// Adjacency score: `(prev_api_idx, next_api_idx) → weight`.
    adjacency: HashMap<(usize, usize), f64>,
    api_index: HashMap<String, usize>,
}

impl Generator {
    /// Build a generator over a validated specification.
    pub fn new(spec: SpecFile, seed: u64, mode: GenerationMode, max_calls: usize) -> Self {
        let api_index = spec
            .apis
            .iter()
            .enumerate()
            .map(|(i, a)| (a.name.clone(), i))
            .collect();
        Generator {
            spec,
            rng: StdRng::seed_from_u64(seed),
            mode,
            max_calls: max_calls.max(1),
            mmio: false,
            mmio_rng: StdRng::seed_from_u64(seed ^ 0x4d4d_494f),
            adjacency: HashMap::new(),
            api_index,
        }
    }

    /// Enable the MMIO input plane (the driver-fuzzing workload).
    pub fn with_mmio(mut self, mmio: bool) -> Self {
        self.mmio = mmio;
        self
    }

    /// The specification in use.
    pub fn spec(&self) -> &SpecFile {
        &self.spec
    }

    /// Generate a fresh prog.
    pub fn generate(&mut self) -> Prog {
        let mut prog = match self.mode {
            GenerationMode::ApiAware => self.generate_api_aware(),
            GenerationMode::RandomBytes => self.generate_random_bytes(),
        };
        if self.mmio && !prog.is_empty() {
            prog.mmio = self.gen_mmio_stream();
        }
        prog
    }

    /// Draw a fresh peripheral response stream: dictionary-biased status
    /// bytes with raw filler.
    fn gen_mmio_stream(&mut self) -> Vec<u8> {
        let len = self.mmio_rng.random_range(0..=MMIO_MAX_LEN);
        (0..len)
            .map(|_| {
                if self.mmio_rng.random_bool(0.6) {
                    MMIO_DICTIONARY[self.mmio_rng.random_range(0..MMIO_DICTIONARY.len())]
                } else {
                    self.mmio_rng.random()
                }
            })
            .collect()
    }

    /// Mutate the peripheral response stream in place.
    fn mutate_mmio(&mut self, mmio: &mut Vec<u8>) {
        match self.mmio_rng.random_range(0..5u32) {
            // Overwrite one byte (dictionary-biased).
            0 | 1 if !mmio.is_empty() => {
                let i = self.mmio_rng.random_range(0..mmio.len());
                mmio[i] = if self.mmio_rng.random_bool(0.6) {
                    MMIO_DICTIONARY[self.mmio_rng.random_range(0..MMIO_DICTIONARY.len())]
                } else {
                    self.mmio_rng.random()
                };
            }
            // Append a byte.
            2 => {
                if mmio.len() < MMIO_MAX_LEN {
                    mmio.push(
                        MMIO_DICTIONARY[self.mmio_rng.random_range(0..MMIO_DICTIONARY.len())],
                    );
                }
            }
            // Truncate.
            3 if !mmio.is_empty() => {
                let keep = self.mmio_rng.random_range(0..mmio.len());
                mmio.truncate(keep);
            }
            // Regenerate wholesale.
            _ => *mmio = self.gen_mmio_stream(),
        }
    }

    fn generate_api_aware(&mut self) -> Prog {
        let mut calls: Vec<Call> = Vec::new();
        if self.spec.apis.is_empty() {
            return Prog::new();
        }
        let want = self.rng.random_range(1..=self.max_calls);
        let mut last: Option<usize> = None;
        let mut guard = 0;
        while calls.len() < want && guard < want * 4 {
            guard += 1;
            let idx = self.pick_api(last);
            self.push_call(idx, &mut calls, 0);
            last = Some(idx);
        }
        Prog {
            mmio: vec![],
            calls,
        }
    }

    fn generate_random_bytes(&mut self) -> Prog {
        // AFL-style: one or two calls with shape-blind values.
        let mut calls = Vec::new();
        if self.spec.apis.is_empty() {
            return Prog::new();
        }
        for _ in 0..self.rng.random_range(1..=2usize) {
            let idx = self.rng.random_range(0..self.spec.apis.len());
            let api = self.spec.apis[idx].clone();
            let args = api
                .params
                .iter()
                .map(|p| match &p.ty {
                    TypeDesc::Buffer { max_len } | TypeDesc::CString { max_len } => {
                        let len = self.rng.random_range(0..=(*max_len).min(96) as usize);
                        let bytes: Vec<u8> = (0..len).map(|_| self.rng.random()).collect();
                        if matches!(p.ty, TypeDesc::CString { .. }) {
                            ArgValue::CString(String::from_utf8_lossy(&bytes).replace('\u{0}', "x"))
                        } else {
                            ArgValue::Buffer(bytes)
                        }
                    }
                    TypeDesc::Ptr(inner) => match inner.as_ref() {
                        TypeDesc::CString { max_len } => {
                            let len = self.rng.random_range(0..=(*max_len).min(32) as usize);
                            ArgValue::CString(
                                (0..len)
                                    .map(|_| (b'a' + self.rng.random_range(0..26u8)) as char)
                                    .collect(),
                            )
                        }
                        _ => {
                            let len = self.rng.random_range(0..64usize);
                            ArgValue::Buffer((0..len).map(|_| self.rng.random()).collect())
                        }
                    },
                    // Constraint-blind scalar: any bits whatsoever.
                    _ => ArgValue::Int(self.rng.random()),
                })
                .collect();
            calls.push(Call {
                api: api.name.clone(),
                args,
            });
        }
        Prog {
            mmio: vec![],
            calls,
        }
    }

    /// Pick the next API, weighted by learned adjacency.
    fn pick_api(&mut self, last: Option<usize>) -> usize {
        let n = self.spec.apis.len();
        let Some(prev) = last else {
            return self.rng.random_range(0..n);
        };
        // Weighted sample: base 1.0 per API plus adjacency bonus.
        let weights: Vec<f64> = (0..n)
            .map(|i| 1.0 + self.adjacency.get(&(prev, i)).copied().unwrap_or(0.0))
            .collect();
        let total: f64 = weights.iter().sum();
        let mut roll = self.rng.random_range(0.0..total);
        for (i, w) in weights.iter().enumerate() {
            if roll < *w {
                return i;
            }
            roll -= w;
        }
        n - 1
    }

    /// Append a call to `calls`, inserting producers for unsatisfied
    /// resource parameters first (depth-limited).
    fn push_call(&mut self, idx: usize, calls: &mut Vec<Call>, depth: usize) {
        if calls.len() >= self.max_calls * 2 || depth > 3 {
            return;
        }
        let api = self.spec.apis[idx].clone();
        let mut args = Vec::with_capacity(api.params.len());
        for p in &api.params {
            args.push(self.gen_value(&p.ty, calls, depth));
        }
        calls.push(Call {
            api: api.name,
            args,
        });
    }

    /// Generate a value for one parameter type.
    fn gen_value(&mut self, ty: &TypeDesc, calls: &mut Vec<Call>, depth: usize) -> ArgValue {
        match ty {
            TypeDesc::Int { bits, range } => ArgValue::Int(self.gen_int(*bits, *range)),
            TypeDesc::Flags { set } => {
                let values: Vec<u64> = self
                    .spec
                    .flags
                    .get(set)
                    .map(|f| f.numeric())
                    .unwrap_or_default();
                if values.is_empty() {
                    return ArgValue::Int(self.rng.random_range(0..16u64));
                }
                let a = values[self.rng.random_range(0..values.len())];
                if values.len() > 1 && self.rng.random_bool(0.2) {
                    let b = values[self.rng.random_range(0..values.len())];
                    ArgValue::Int(a | b)
                } else {
                    ArgValue::Int(a)
                }
            }
            TypeDesc::Ptr(inner) => self.gen_value(inner, calls, depth),
            TypeDesc::Buffer { max_len } => {
                if self.rng.random_bool(0.6) {
                    let tok = BUFFER_DICTIONARY[self.rng.random_range(0..BUFFER_DICTIONARY.len())];
                    let mut bytes = tok[..tok.len().min(*max_len as usize)].to_vec();
                    // Light corruption keeps the space open.
                    if !bytes.is_empty() && self.rng.random_bool(0.25) {
                        let i = self.rng.random_range(0..bytes.len());
                        bytes[i] = self.rng.random();
                    }
                    ArgValue::Buffer(bytes)
                } else {
                    let len = self.rng.random_range(0..=(*max_len).min(128) as usize);
                    ArgValue::Buffer((0..len).map(|_| self.rng.random()).collect())
                }
            }
            TypeDesc::CString { max_len } => {
                let s = if self.rng.random_bool(0.7) {
                    NAME_DICTIONARY[self.rng.random_range(0..NAME_DICTIONARY.len())].to_string()
                } else {
                    let len = self.rng.random_range(0..=(*max_len).min(48) as usize);
                    (0..len)
                        .map(|_| (b'a' + self.rng.random_range(0..26u8)) as char)
                        .collect()
                };
                let mut s = s;
                s.truncate(*max_len as usize);
                ArgValue::CString(s)
            }
            TypeDesc::Resource { name } => {
                // Reference the most recent producer if one exists.
                let producer_pos = calls.iter().rposition(|c| {
                    self.spec
                        .api(&c.api)
                        .and_then(|a| a.returns.as_deref())
                        .is_some_and(|r| r == name)
                });
                if let Some(pos) = producer_pos {
                    if self.rng.random_bool(0.9) {
                        return ArgValue::ResourceRef(pos as u16);
                    }
                }
                // No producer yet: try to insert one.
                let producers: Vec<usize> = self
                    .spec
                    .producers_of(name)
                    .iter()
                    .filter_map(|a| self.api_index.get(&a.name).copied())
                    .collect();
                if !producers.is_empty() && depth < 3 && calls.len() < self.max_calls * 2 {
                    let pidx = producers[self.rng.random_range(0..producers.len())];
                    self.push_call(pidx, calls, depth + 1);
                    // The producer is now the last call, if insertion
                    // succeeded and it really produces the resource.
                    if let Some(last) = calls.last() {
                        let produces = self
                            .spec
                            .api(&last.api)
                            .and_then(|a| a.returns.as_deref())
                            .is_some_and(|r| r == name);
                        if produces {
                            return ArgValue::ResourceRef(calls.len() as u16 - 1);
                        }
                    }
                }
                // Fall back to a declared sentinel.
                let sentinel = self
                    .spec
                    .resources
                    .get(name)
                    .and_then(|r| r.sentinels.first().copied())
                    .unwrap_or(u64::MAX);
                ArgValue::Int(sentinel)
            }
        }
    }

    fn gen_int(&mut self, bits: u8, range: Option<(u64, u64)>) -> u64 {
        let (min, max) = range.unwrap_or((
            0,
            match bits {
                8 => u8::MAX as u64,
                16 => u16::MAX as u64,
                32 => u32::MAX as u64,
                _ => u64::MAX,
            },
        ));
        let (lo, hi) = if min <= max { (min, max) } else { (max, min) };
        match self.rng.random_range(0..10u32) {
            0 => lo,
            1 => hi,
            2 => lo.saturating_add(1).min(hi),
            3 => hi.saturating_sub(1).max(lo),
            4 => (lo + (hi - lo) / 2).min(hi),
            // Bias toward small values, where most semantics live.
            5 | 6 => lo + self.rng.random_range(0..=(hi - lo).min(16)),
            _ => {
                if hi == lo {
                    lo
                } else {
                    lo + self.rng.random_range(0..=(hi - lo))
                }
            }
        }
    }

    /// Mutate an existing prog into a new variant. Random-byte fuzzers
    /// have no structured mutation — they draw fresh buffers.
    pub fn mutate(&mut self, base: &Prog) -> Prog {
        if self.mode == GenerationMode::RandomBytes {
            return self.generate();
        }
        let mut prog = base.clone();
        if prog.calls.is_empty() {
            return self.generate();
        }
        let mut prog = match self.rng.random_range(0..10u32) {
            // Regenerate one argument value.
            0..=4 => {
                let ci = self.rng.random_range(0..prog.calls.len());
                let api = self.spec.api(&prog.calls[ci].api).cloned();
                if let Some(api) = api {
                    if !api.params.is_empty() && !prog.calls[ci].args.is_empty() {
                        let ai = self
                            .rng
                            .random_range(0..prog.calls[ci].args.len().min(api.params.len()));
                        // Resource refs are kept stable; values regenerate.
                        if !matches!(prog.calls[ci].args[ai], ArgValue::ResourceRef(_)) {
                            let mut scratch = prog.calls[..ci].to_vec();
                            let v = self.gen_value(&api.params[ai].ty, &mut scratch, 3);
                            if scratch.len() == ci {
                                prog.calls[ci].args[ai] = v;
                            }
                        }
                    }
                }
                prog
            }
            // Append a call (with producers as needed).
            5 => {
                if prog.calls.len() < self.max_calls * 2 {
                    let idx = self.rng.random_range(0..self.spec.apis.len().max(1));
                    let Prog { mmio, mut calls } = prog;
                    self.push_call(idx, &mut calls, 0);
                    prog = Prog { mmio, calls };
                }
                prog
            }
            // Insert a call at a random position — the mutation that
            // extends dependency chains *inside* a sequence (another
            // wait before the destroy, another detach before the walk).
            6 => {
                if prog.calls.len() < self.max_calls * 2 {
                    let pos = self.rng.random_range(0..=prog.calls.len());
                    let idx = self.rng.random_range(0..self.spec.apis.len().max(1));
                    let api = self.spec.apis[idx].clone();
                    // Generate arguments against the prefix only, so the
                    // new call's references stay backward.
                    let mut prefix = prog.calls[..pos].to_vec();
                    let before = prefix.len();
                    let mut args = Vec::with_capacity(api.params.len());
                    for p in &api.params {
                        args.push(self.gen_value(&p.ty, &mut prefix, 3));
                    }
                    // Only a clean in-place generation is inserted;
                    // producer insertion inside a prefix would reorder.
                    if prefix.len() == before {
                        prog.insert_call(
                            pos,
                            Call {
                                api: api.name,
                                args,
                            },
                        );
                    }
                }
                prog
            }
            // Remove a call (fixing references).
            7 => {
                let ci = self.rng.random_range(0..prog.calls.len());
                prog.remove_call(ci);
                if prog.is_empty() {
                    return self.generate();
                }
                prog
            }
            // Duplicate a call at the end (references stay backward).
            8 => {
                let ci = self.rng.random_range(0..prog.calls.len());
                let dup = prog.calls[ci].clone();
                if prog.calls.len() < self.max_calls * 2 {
                    prog.calls.push(dup);
                }
                prog
            }
            // Tweak an integer in place (bit flip / off-by-one), choosing
            // uniformly among the call's integer arguments so every
            // scalar is reachable by the climb.
            _ => {
                let ci = self.rng.random_range(0..prog.calls.len());
                let int_idxs: Vec<usize> = prog.calls[ci]
                    .args
                    .iter()
                    .enumerate()
                    .filter(|(_, a)| matches!(a, ArgValue::Int(_)))
                    .map(|(i, _)| i)
                    .collect();
                if !int_idxs.is_empty() {
                    let ai = int_idxs[self.rng.random_range(0..int_idxs.len())];
                    if let ArgValue::Int(v) = &mut prog.calls[ci].args[ai] {
                        *v = match self.rng.random_range(0..3u32) {
                            0 => v.wrapping_add(1),
                            1 => v.wrapping_sub(1),
                            _ => *v ^ (1 << self.rng.random_range(0..32u32)),
                        };
                    }
                }
                prog
            }
        };
        // The MMIO plane mutates independently of the call plane — half
        // the mutants keep the stream that got the seed admitted, half
        // explore around it.
        if self.mmio && self.mmio_rng.random_bool(0.5) {
            self.mutate_mmio(&mut prog.mmio);
        }
        prog
    }

    /// Mutate under a scheduled cmplog operator. `Baseline` is exactly
    /// [`Generator::mutate`] — byte-for-byte the pre-cmplog operator,
    /// same RNG draws — and the I2S operators splice journal operands
    /// into the input. Operators that find nothing to splice fall back
    /// to the baseline mutation, so a scheduled pick is never a no-op.
    pub fn mutate_op(&mut self, base: &Prog, op: MutOp, journal: &CmpJournal) -> Prog {
        match op {
            MutOp::Baseline => self.mutate(base),
            MutOp::I2sInt => self.splice_int(base, journal),
            MutOp::I2sMmio => self.splice_mmio(base, journal),
        }
    }

    /// Input-to-state splice into the call plane: pick an observed
    /// comparison pair, find an integer argument currently holding the
    /// input-derived side (`lhs`), and replace it with the constant the
    /// kernel compared it against (`rhs`), clamped to the parameter's
    /// declared range. With no lhs match the constant lands in a random
    /// integer argument — the colorization-free fallback.
    fn splice_int(&mut self, base: &Prog, journal: &CmpJournal) -> Prog {
        if journal.is_empty() || base.calls.is_empty() {
            return self.mutate(base);
        }
        let (width, lhs, rhs) = journal.get(self.rng.random_range(0..journal.len()));
        let mask = width_mask(width);
        let mut slots: Vec<(usize, usize)> = Vec::new();
        let mut lhs_slots: Vec<(usize, usize)> = Vec::new();
        for (ci, call) in base.calls.iter().enumerate() {
            let Some(api) = self.spec.api(&call.api) else {
                continue;
            };
            for (ai, arg) in call.args.iter().enumerate().take(api.params.len()) {
                let (ArgValue::Int(v), TypeDesc::Int { .. }) = (arg, &api.params[ai].ty) else {
                    continue;
                };
                slots.push((ci, ai));
                if v & mask == lhs & mask {
                    lhs_slots.push((ci, ai));
                }
            }
        }
        let pool = if lhs_slots.is_empty() {
            &slots
        } else {
            &lhs_slots
        };
        if pool.is_empty() {
            return self.mutate(base);
        }
        let (ci, ai) = pool[self.rng.random_range(0..pool.len())];
        let mut prog = base.clone();
        let ty = self
            .spec
            .api(&prog.calls[ci].api)
            .map(|a| a.params[ai].ty.clone());
        if let Some(TypeDesc::Int { bits, range }) = ty {
            prog.calls[ci].args[ai] = ArgValue::Int(clamp_int(rhs & mask, bits, range));
        }
        prog
    }

    /// Input-to-state splice into the MMIO response stream: replace an
    /// occurrence of the observed lhs bytes (the value the driver
    /// actually consumed from the stream) with the constant — which
    /// plants the magic exactly at a position the kernel reads. Without
    /// an occurrence the bytes land at a random offset.
    fn splice_mmio(&mut self, base: &Prog, journal: &CmpJournal) -> Prog {
        if !self.mmio || journal.is_empty() {
            return self.mutate(base);
        }
        let mut prog = base.clone();
        // Positional candidates: every journal pair whose observed
        // (input-derived) side occurs verbatim in this prog's stream,
        // at every position it occurs. Splicing one plants the
        // compared-against constant at a byte offset the kernel
        // actually consumed — the I2S step proper. Wider operands are
        // rarer and more specific, so a match set is scanned whole
        // rather than sampled pair-first: a 16-bit vendor word with one
        // match must not be drowned out by an 8-bit pair that never had
        // a chance.
        let mut candidates: Vec<(usize, usize)> = Vec::new();
        for i in 0..journal.len() {
            let (width, lhs, _) = journal.get(i);
            let n = ((width / 8).max(1) as usize).min(8);
            if prog.mmio.len() < n {
                continue;
            }
            let lhs_bytes = lhs.to_le_bytes();
            for pos in 0..=prog.mmio.len() - n {
                if prog.mmio[pos..pos + n] == lhs_bytes[..n] {
                    candidates.push((i, pos));
                }
            }
        }
        if !candidates.is_empty() {
            let (i, pos) = candidates[self.mmio_rng.random_range(0..candidates.len())];
            let (width, _, rhs) = journal.get(i);
            let n = ((width / 8).max(1) as usize).min(8);
            prog.mmio[pos..pos + n].copy_from_slice(&rhs.to_le_bytes()[..n]);
            return prog;
        }
        // No positional match anywhere: plant a constant blind.
        let (width, _, rhs) = journal.get(self.mmio_rng.random_range(0..journal.len()));
        let n = ((width / 8).max(1) as usize).min(8);
        let rhs_bytes = rhs.to_le_bytes();
        if prog.mmio.len() >= n {
            let pos = self.mmio_rng.random_range(0..=prog.mmio.len() - n);
            prog.mmio[pos..pos + n].copy_from_slice(&rhs_bytes[..n]);
        } else if prog.mmio.len() + n <= MMIO_MAX_LEN {
            prog.mmio.extend_from_slice(&rhs_bytes[..n]);
        } else {
            return self.mutate(base);
        }
        prog
    }

    /// Reward the adjacencies of a prog that produced new coverage.
    pub fn reward(&mut self, prog: &Prog, strength: f64) {
        for pair in prog.calls.windows(2) {
            let (Some(&a), Some(&b)) = (
                self.api_index.get(&pair[0].api),
                self.api_index.get(&pair[1].api),
            ) else {
                continue;
            };
            let w = self.adjacency.entry((a, b)).or_insert(0.0);
            // Cap the bias: adjacency should tilt selection, not tunnel
            // the generator into one cluster of the API graph.
            *w = (*w + strength).min(2.0);
        }
    }
}

/// All-ones mask for an operand width in bits.
fn width_mask(width: u32) -> u64 {
    match width {
        8 => 0xff,
        16 => 0xffff,
        32 => 0xffff_ffff,
        _ => u64::MAX,
    }
}

/// Clamp a spliced constant into a parameter's declared domain.
fn clamp_int(v: u64, bits: u8, range: Option<(u64, u64)>) -> u64 {
    let ceiling = match bits {
        8 => u8::MAX as u64,
        16 => u16::MAX as u64,
        32 => u32::MAX as u64,
        _ => u64::MAX,
    };
    let (min, max) = range.unwrap_or((0, ceiling));
    let (lo, hi) = if min <= max { (min, max) } else { (max, min) };
    v.clamp(lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eof_rtos::OsKind;
    use eof_specgen::extract_spec_text;
    use eof_speclang::parser::parse_spec;

    fn generator(os: OsKind, mode: GenerationMode) -> Generator {
        let spec = parse_spec(&extract_spec_text(os)).unwrap();
        Generator::new(spec, 42, mode, 6)
    }

    #[test]
    fn api_aware_progs_conform_to_spec() {
        let mut g = generator(OsKind::RtThread, GenerationMode::ApiAware);
        for _ in 0..200 {
            let p = g.generate();
            assert!(!p.is_empty());
            assert!(p.conforms_to(g.spec()), "nonconforming: {p}");
        }
    }

    #[test]
    fn api_aware_satisfies_resource_dependencies() {
        let mut g = generator(OsKind::FreeRtos, GenerationMode::ApiAware);
        let mut refs = 0;
        for _ in 0..300 {
            let p = g.generate();
            for (i, call) in p.calls.iter().enumerate() {
                for arg in &call.args {
                    if let ArgValue::ResourceRef(r) = arg {
                        assert!((*r as usize) < i, "forward ref in {p}");
                        refs += 1;
                    }
                }
            }
        }
        assert!(refs > 50, "generator almost never uses resources: {refs}");
    }

    #[test]
    fn int_values_respect_ranges() {
        let spec = parse_spec("f(x int32[10:20])").unwrap();
        let mut g = Generator::new(spec, 7, GenerationMode::ApiAware, 4);
        for _ in 0..100 {
            let p = g.generate();
            for c in &p.calls {
                if let ArgValue::Int(v) = &c.args[0] {
                    assert!((10..=20).contains(v), "{v}");
                }
            }
        }
    }

    #[test]
    fn random_bytes_mode_ignores_constraints() {
        let spec = parse_spec("f(x int32[10:20])").unwrap();
        let mut g = Generator::new(spec, 7, GenerationMode::RandomBytes, 4);
        let mut out_of_range = 0;
        for _ in 0..100 {
            let p = g.generate();
            for c in &p.calls {
                if let Some(ArgValue::Int(v)) = c.args.first() {
                    if !(10..=20).contains(v) {
                        out_of_range += 1;
                    }
                }
            }
        }
        assert!(out_of_range > 80, "random mode should violate constraints");
    }

    #[test]
    fn mutation_preserves_conformance() {
        let mut g = generator(OsKind::NuttX, GenerationMode::ApiAware);
        let mut p = g.generate();
        for _ in 0..300 {
            p = g.mutate(&p);
            assert!(p.conforms_to(g.spec()), "nonconforming after mutation: {p}");
        }
    }

    #[test]
    fn determinism_per_seed() {
        let spec = parse_spec(&extract_spec_text(OsKind::Zephyr)).unwrap();
        let mut a = Generator::new(spec.clone(), 9, GenerationMode::ApiAware, 6);
        let mut b = Generator::new(spec, 9, GenerationMode::ApiAware, 6);
        for _ in 0..50 {
            assert_eq!(a.generate(), b.generate());
        }
    }

    #[test]
    fn adjacency_reward_biases_selection() {
        let spec = parse_spec("a()\nb()\nc()").unwrap();
        let mut g = Generator::new(spec, 3, GenerationMode::ApiAware, 2);
        // Heavily reward a→b.
        let pattern = Prog {
            mmio: vec![],
            calls: vec![
                Call {
                    api: "a".into(),
                    args: vec![],
                },
                Call {
                    api: "b".into(),
                    args: vec![],
                },
            ],
        };
        for _ in 0..10 {
            g.reward(&pattern, 1.0);
        }
        // After "a", "b" should be picked much more often than "c".
        let mut b_count = 0;
        let mut c_count = 0;
        let a_idx = 0;
        for _ in 0..600 {
            match g.pick_api(Some(a_idx)) {
                1 => b_count += 1,
                2 => c_count += 1,
                _ => {}
            }
        }
        assert!(
            b_count > c_count * 2,
            "adjacency not biasing: b={b_count} c={c_count}"
        );
    }

    #[test]
    fn mmio_plane_rides_behind_the_call_plane() {
        // Same seed, mmio off vs on: the call sequences are identical —
        // the stream is drawn after call construction — and the on-side
        // eventually produces nonempty streams.
        let spec = parse_spec(&extract_spec_text(OsKind::FreeRtos)).unwrap();
        let mut plain = Generator::new(spec.clone(), 21, GenerationMode::ApiAware, 6);
        let mut drv = Generator::new(spec, 21, GenerationMode::ApiAware, 6).with_mmio(true);
        let mut nonempty = 0;
        for _ in 0..50 {
            let a = plain.generate();
            let b = drv.generate();
            assert_eq!(a.calls, b.calls);
            assert!(a.mmio.is_empty());
            if !b.mmio.is_empty() {
                nonempty += 1;
            }
            assert!(b.mmio.len() <= MMIO_MAX_LEN);
        }
        assert!(nonempty > 20, "mmio plane almost never fills: {nonempty}");
    }

    #[test]
    fn mmio_mutation_explores_and_preserves() {
        let spec = parse_spec(&extract_spec_text(OsKind::RtThread)).unwrap();
        let mut g = Generator::new(spec, 5, GenerationMode::ApiAware, 6).with_mmio(true);
        let base = g.generate();
        let mut changed = 0;
        let mut kept = 0;
        let mut p = base.clone();
        for _ in 0..200 {
            let next = g.mutate(&p);
            assert!(next.mmio.len() <= MMIO_MAX_LEN);
            if next.mmio == p.mmio {
                kept += 1;
            } else {
                changed += 1;
            }
            p = next;
            if p.is_empty() {
                p = g.generate();
            }
        }
        assert!(changed > 20, "stream never mutates: {changed}");
        assert!(kept > 20, "stream never survives a mutant: {kept}");
    }

    #[test]
    fn empty_spec_yields_empty_prog() {
        let mut g = Generator::new(SpecFile::default(), 1, GenerationMode::ApiAware, 4);
        assert!(g.generate().is_empty());
    }

    fn journal_with(pairs: &[(u32, u64, u64)]) -> CmpJournal {
        let mut j = CmpJournal::new();
        let records: Vec<eof_coverage::CmpRecord> = pairs
            .iter()
            .map(|&(width, lhs, rhs)| eof_coverage::CmpRecord {
                site: 0,
                width,
                lhs,
                rhs,
            })
            .collect();
        j.absorb(&records);
        j
    }

    #[test]
    fn baseline_op_is_byte_identical_to_plain_mutate() {
        let spec = parse_spec(&extract_spec_text(OsKind::FreeRtos)).unwrap();
        let mut plain = Generator::new(spec.clone(), 17, GenerationMode::ApiAware, 6);
        let mut scheduled = Generator::new(spec, 17, GenerationMode::ApiAware, 6);
        let journal = journal_with(&[(32, 1, 0xD3AD_BEA7)]);
        let mut a = plain.generate();
        let mut b = scheduled.generate();
        assert_eq!(a, b);
        for _ in 0..100 {
            a = plain.mutate(&a);
            b = scheduled.mutate_op(&b, MutOp::Baseline, &journal);
            assert_eq!(a, b, "Baseline diverged from mutate()");
        }
    }

    #[test]
    fn i2s_int_splice_plants_the_constant_within_range() {
        let spec = parse_spec("f(x int32[0:4294967295])").unwrap();
        let mut g = Generator::new(spec, 11, GenerationMode::ApiAware, 2);
        let journal = journal_with(&[(32, 7, 0xD3AD_BEA7)]);
        let base = g.generate();
        let mut hit = false;
        for _ in 0..50 {
            let m = g.mutate_op(&base, MutOp::I2sInt, &journal);
            assert!(m.conforms_to(g.spec()), "nonconforming splice: {m}");
            if m.calls
                .iter()
                .any(|c| c.args.first() == Some(&ArgValue::Int(0xD3AD_BEA7)))
            {
                hit = true;
            }
        }
        assert!(hit, "splice never planted the constant");
        // A range that excludes the magic clamps instead of violating.
        let spec = parse_spec("f(x int32[10:20])").unwrap();
        let mut g = Generator::new(spec, 11, GenerationMode::ApiAware, 2);
        let base = g.generate();
        for _ in 0..30 {
            let m = g.mutate_op(&base, MutOp::I2sInt, &journal);
            assert!(m.conforms_to(g.spec()), "clamp violated range: {m}");
        }
    }

    #[test]
    fn i2s_mmio_splice_replaces_the_consumed_byte() {
        let spec = parse_spec(&extract_spec_text(OsKind::Zephyr)).unwrap();
        let mut g = Generator::new(spec, 13, GenerationMode::ApiAware, 4).with_mmio(true);
        // The driver read 0x11 and compared it to the 0x5A tag.
        let journal = journal_with(&[(8, 0x11, 0x5A)]);
        let mut base = g.generate();
        base.mmio = vec![0x00, 0x11, 0x22, 0x11];
        let mut replaced = false;
        for _ in 0..40 {
            let m = g.mutate_op(&base, MutOp::I2sMmio, &journal);
            // The splice overwrites an occurrence of the consumed value
            // in place — stream length never changes on the match path.
            if m.mmio.len() == base.mmio.len() && m.mmio.contains(&0x5A) {
                let changed: Vec<usize> = (0..m.mmio.len())
                    .filter(|&i| m.mmio[i] != base.mmio[i])
                    .collect();
                assert_eq!(changed.len(), 1);
                assert_eq!(base.mmio[changed[0]], 0x11);
                assert_eq!(m.mmio[changed[0]], 0x5A);
                replaced = true;
            }
        }
        assert!(replaced, "mmio splice never replaced the lhs byte");
    }

    #[test]
    fn i2s_ops_fall_back_to_mutation_without_candidates() {
        let spec = parse_spec(&extract_spec_text(OsKind::FreeRtos)).unwrap();
        let mut g = Generator::new(spec, 19, GenerationMode::ApiAware, 6);
        let empty = CmpJournal::new();
        let base = g.generate();
        for op in [MutOp::I2sInt, MutOp::I2sMmio] {
            let m = g.mutate_op(&base, op, &empty);
            assert!(m.conforms_to(g.spec()));
        }
    }
}
