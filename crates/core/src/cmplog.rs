//! Redqueen/I2S cmplog: the host half of the comparison-operand channel.
//!
//! The on-device ring ([`eof_coverage::CmpRegion`]) hands the executor
//! `(site, width, lhs, rhs)` records; this module turns them into
//! mutations. [`CmpJournal`] is the per-campaign operand store — a
//! bounded, deduplicated FIFO of observed comparison pairs. [`MutOp`]
//! names the mutation operators the cmplog fuzzer schedules between,
//! and [`OpScheduler`] reweights them MOpt-style by their observed
//! interesting-rates, never starving an operator below a floor.
//!
//! Everything here is deterministic per seed: the journal iterates in
//! insertion order, and the scheduler draws from its own `StdRng` plane
//! so the generator's streams stay untouched.

use eof_coverage::CmpRecord;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::{HashSet, VecDeque};

/// Journal capacity: enough for every distinct comparison the kernel
/// models expose, small enough that candidate picks stay sharp.
const JOURNAL_CAP: usize = 256;

/// Reweight the operator distribution every this many picks (MOpt's
/// pilot/core cadence, collapsed to one period).
const REWEIGHT_EVERY: u32 = 64;

/// No operator's sampling weight ever drops below this: an operator
/// that looks useless today keeps enough probes to prove itself when
/// the campaign reaches inputs it can help with.
pub const WEIGHT_FLOOR: f64 = 0.05;

/// The per-campaign store of observed comparison operand pairs,
/// deduplicated by `(width, lhs, rhs)` and bounded FIFO — the oldest
/// pair falls out when a fresh one arrives at capacity. Iteration
/// order is insertion order, so candidate picks are deterministic.
#[derive(Debug, Clone, Default)]
pub struct CmpJournal {
    pairs: VecDeque<(u32, u64, u64)>,
    seen: HashSet<(u32, u64, u64)>,
}

impl CmpJournal {
    /// Empty journal.
    pub fn new() -> Self {
        CmpJournal::default()
    }

    /// Fold one execution's drained records in. The site id is dropped
    /// — splicing is positional (find the lhs bytes in the input), not
    /// site-targeted — and both operands of a pair are kept together so
    /// the splice can replace the input-derived side with the constant.
    pub fn absorb(&mut self, records: &[CmpRecord]) {
        for r in records {
            let key = (r.width, r.lhs, r.rhs);
            if !self.seen.insert(key) {
                continue;
            }
            self.pairs.push_back(key);
            if self.pairs.len() > JOURNAL_CAP {
                let old = self.pairs.pop_front().expect("len > cap > 0");
                self.seen.remove(&old);
            }
        }
    }

    /// Number of distinct pairs held.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether the journal holds nothing yet.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// The `i`-th pair in insertion order: `(width, lhs, rhs)`.
    pub fn get(&self, i: usize) -> (u32, u64, u64) {
        self.pairs[i]
    }
}

/// One mutation operator the cmplog scheduler can pick.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MutOp {
    /// The pre-cmplog structural mutation (`Generator::mutate`).
    Baseline,
    /// Input-to-state splice of a journal operand into a spec-typed
    /// integer argument (magic constants, handles, lengths), clamped to
    /// the parameter's declared range.
    I2sInt,
    /// Input-to-state splice of a journal operand's bytes into the MMIO
    /// response stream (driver campaigns).
    I2sMmio,
}

impl MutOp {
    /// Every operator, in scheduler index order.
    pub const ALL: [MutOp; 3] = [MutOp::Baseline, MutOp::I2sInt, MutOp::I2sMmio];

    /// Operator count.
    pub const COUNT: usize = 3;

    /// Dense index into per-operator arrays.
    pub fn index(self) -> usize {
        match self {
            MutOp::Baseline => 0,
            MutOp::I2sInt => 1,
            MutOp::I2sMmio => 2,
        }
    }

    /// Stable short name (telemetry counter fragment).
    pub fn name(self) -> &'static str {
        match self {
            MutOp::Baseline => "baseline",
            MutOp::I2sInt => "i2s_int",
            MutOp::I2sMmio => "i2s_mmio",
        }
    }

    /// Telemetry counter mirroring this operator's executions.
    pub fn execs_counter(self) -> &'static str {
        match self {
            MutOp::Baseline => "fuzz.op.baseline.execs",
            MutOp::I2sInt => "fuzz.op.i2s_int.execs",
            MutOp::I2sMmio => "fuzz.op.i2s_mmio.execs",
        }
    }

    /// Telemetry counter mirroring this operator's interesting hits.
    pub fn interesting_counter(self) -> &'static str {
        match self {
            MutOp::Baseline => "fuzz.op.baseline.interesting",
            MutOp::I2sInt => "fuzz.op.i2s_int.interesting",
            MutOp::I2sMmio => "fuzz.op.i2s_mmio.interesting",
        }
    }
}

/// MOpt-style operator scheduler: weighted sampling over [`MutOp`],
/// where each weight tracks the operator's Laplace-smoothed
/// interesting-rate `(interesting + 1) / (execs + 1)`, renormalised to
/// shares and floored at [`WEIGHT_FLOOR`]. The distribution refreshes
/// every [`REWEIGHT_EVERY`] picks — often enough to follow the
/// campaign's phase changes, rarely enough that one lucky mutant does
/// not whipsaw the mix.
#[derive(Debug, Clone)]
pub struct OpScheduler {
    rng: StdRng,
    execs: [u64; MutOp::COUNT],
    interesting: [u64; MutOp::COUNT],
    weights: [f64; MutOp::COUNT],
    picks_since_reweight: u32,
}

impl OpScheduler {
    /// Scheduler with its own RNG plane derived from the campaign seed
    /// (the generator's and MMIO planes are untouched by scheduling).
    pub fn new(seed: u64) -> Self {
        OpScheduler {
            rng: StdRng::seed_from_u64(seed ^ 0x4d4f_5054),
            execs: [0; MutOp::COUNT],
            interesting: [0; MutOp::COUNT],
            weights: [1.0 / MutOp::COUNT as f64; MutOp::COUNT],
            picks_since_reweight: 0,
        }
    }

    /// Pick the next operator by the current weights.
    pub fn pick(&mut self) -> MutOp {
        if self.picks_since_reweight >= REWEIGHT_EVERY {
            self.reweight();
            self.picks_since_reweight = 0;
        }
        self.picks_since_reweight += 1;
        let total: f64 = self.weights.iter().sum();
        let mut roll = self.rng.random_range(0.0..total);
        for op in MutOp::ALL {
            let w = self.weights[op.index()];
            if roll < w {
                return op;
            }
            roll -= w;
        }
        MutOp::ALL[MutOp::COUNT - 1]
    }

    /// Account one executed mutant of `op` and whether it was
    /// interesting (new coverage or a new crash class).
    pub fn record(&mut self, op: MutOp, interesting: bool) {
        self.execs[op.index()] += 1;
        if interesting {
            self.interesting[op.index()] += 1;
        }
    }

    /// Recompute weights from the smoothed interesting-rates.
    fn reweight(&mut self) {
        let rates: Vec<f64> = MutOp::ALL
            .iter()
            .map(|op| {
                let i = op.index();
                (self.interesting[i] + 1) as f64 / (self.execs[i] + 1) as f64
            })
            .collect();
        let sum: f64 = rates.iter().sum();
        for (i, rate) in rates.iter().enumerate() {
            self.weights[i] = (rate / sum).max(WEIGHT_FLOOR);
        }
    }

    /// The current sampling weight of an operator (floored share).
    pub fn weight(&self, op: MutOp) -> f64 {
        self.weights[op.index()]
    }

    /// Executions recorded for an operator.
    pub fn execs(&self, op: MutOp) -> u64 {
        self.execs[op.index()]
    }

    /// Interesting hits recorded for an operator.
    pub fn interesting(&self, op: MutOp) -> u64 {
        self.interesting[op.index()]
    }

    /// Smoothed interesting-rate of an operator (the reweight input).
    pub fn rate(&self, op: MutOp) -> f64 {
        let i = op.index();
        (self.interesting[i] + 1) as f64 / (self.execs[i] + 1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(width: u32, lhs: u64, rhs: u64) -> CmpRecord {
        CmpRecord {
            site: 0,
            width,
            lhs,
            rhs,
        }
    }

    #[test]
    fn journal_dedups_and_keeps_insertion_order() {
        let mut j = CmpJournal::new();
        j.absorb(&[rec(32, 1, 2), rec(32, 3, 4), rec(32, 1, 2)]);
        j.absorb(&[rec(8, 1, 2)]);
        assert_eq!(j.len(), 3);
        assert_eq!(j.get(0), (32, 1, 2));
        assert_eq!(j.get(1), (32, 3, 4));
        assert_eq!(j.get(2), (8, 1, 2));
    }

    #[test]
    fn journal_evicts_fifo_at_capacity() {
        let mut j = CmpJournal::new();
        for v in 0..(JOURNAL_CAP as u64 + 10) {
            j.absorb(&[rec(32, v, v + 1)]);
        }
        assert_eq!(j.len(), JOURNAL_CAP);
        // The first ten fell out; the eleventh is now the oldest.
        assert_eq!(j.get(0), (32, 10, 11));
        // Evicted keys may re-enter (they left `seen` with the pair).
        j.absorb(&[rec(32, 0, 1)]);
        assert_eq!(j.get(j.len() - 1), (32, 0, 1));
    }

    #[test]
    fn scheduler_is_deterministic_per_seed() {
        let mut a = OpScheduler::new(9);
        let mut b = OpScheduler::new(9);
        for step in 0..500 {
            let oa = a.pick();
            let ob = b.pick();
            assert_eq!(oa, ob, "diverged at pick {step}");
            // Identical feedback keeps the streams aligned.
            a.record(oa, step % 7 == 0);
            b.record(ob, step % 7 == 0);
        }
        assert_eq!(a.weight(MutOp::Baseline), b.weight(MutOp::Baseline));
        assert_eq!(a.weight(MutOp::I2sMmio), b.weight(MutOp::I2sMmio));
    }

    #[test]
    fn scheduler_reweights_toward_productive_operators() {
        let mut s = OpScheduler::new(3);
        // I2sInt finds something every time; the others never do.
        for _ in 0..300 {
            let op = s.pick();
            s.record(op, op == MutOp::I2sInt);
        }
        assert!(
            s.weight(MutOp::I2sInt) > s.weight(MutOp::Baseline),
            "productive operator not upweighted: {:?} vs {:?}",
            s.weight(MutOp::I2sInt),
            s.weight(MutOp::Baseline)
        );
        assert!(s.execs(MutOp::I2sInt) > s.execs(MutOp::Baseline));
    }

    #[test]
    fn scheduler_never_starves_an_operator() {
        let mut s = OpScheduler::new(4);
        // Baseline is a total dud for thousands of picks.
        let mut baseline_picks = 0u32;
        for _ in 0..4000 {
            let op = s.pick();
            s.record(op, op != MutOp::Baseline);
            if op == MutOp::Baseline {
                baseline_picks += 1;
            }
        }
        assert!(
            s.weight(MutOp::Baseline) >= WEIGHT_FLOOR,
            "weight fell through the floor: {}",
            s.weight(MutOp::Baseline)
        );
        // The floor keeps real probes flowing (≥ ~4% of picks even with
        // two maximally-favoured competitors; allow slack for sampling).
        assert!(
            baseline_picks > 80,
            "starved operator got only {baseline_picks}/4000 picks"
        );
    }

    #[test]
    fn scheduler_counters_reconcile() {
        let mut s = OpScheduler::new(5);
        let mut execs = [0u64; MutOp::COUNT];
        let mut hits = [0u64; MutOp::COUNT];
        for step in 0..200 {
            let op = s.pick();
            let interesting = step % 3 == 0;
            s.record(op, interesting);
            execs[op.index()] += 1;
            if interesting {
                hits[op.index()] += 1;
            }
        }
        for op in MutOp::ALL {
            assert_eq!(s.execs(op), execs[op.index()]);
            assert_eq!(s.interesting(op), hits[op.index()]);
            assert!(s.rate(op) > 0.0 && s.rate(op) <= 1.0);
        }
        assert_eq!(execs.iter().sum::<u64>(), 200);
    }

    #[test]
    fn operator_names_and_counters_are_stable() {
        assert_eq!(MutOp::Baseline.name(), "baseline");
        assert_eq!(MutOp::I2sInt.execs_counter(), "fuzz.op.i2s_int.execs");
        assert_eq!(
            MutOp::I2sMmio.interesting_counter(),
            "fuzz.op.i2s_mmio.interesting"
        );
        for (i, op) in MutOp::ALL.iter().enumerate() {
            assert_eq!(op.index(), i);
        }
    }
}
