//! Memoized campaign artifacts: images and validated specifications.
//!
//! A multi-rep benchmark runs the same `(os, profile, instrumentation)`
//! image build and the same `(os, noise, validation)` spec pipeline once
//! per repetition, even though both are pure functions of their inputs.
//! At bench scale (five reps × a dozen configs × five kernels) that is
//! hundreds of redundant megabyte-scale builds. This module interns both
//! artifacts in process-wide caches so each distinct key is computed
//! exactly once, no matter how many campaigns — serial or fleet-parallel
//! — ask for it.
//!
//! Concurrency model: a `parking_lot::Mutex` guards only the key → cell
//! registry; each cell is an `Arc<OnceLock<…>>`, so the (potentially
//! slow) build runs *outside* the map lock and concurrent requesters of
//! the same key block on the cell, not on each other's unrelated builds.
//! Hit/miss counters feed the bench reports.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use eof_coverage::InstrumentMode;
use eof_rtos::image::{build_image, ImageProfile};
use eof_rtos::OsKind;
use eof_specgen::{generate_validated_scoped, GenReport, NoiseConfig};
use eof_speclang::ast::SpecFile;
use parking_lot::Mutex;

/// Cache key for instrumented kernel images.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ImageKey {
    /// Target kernel.
    pub os: OsKind,
    /// Image scope (full system vs application-level).
    pub profile: ImageProfile,
    /// Coverage instrumentation baked into the image.
    pub instrument: InstrumentMode,
}

/// Cache key for validated spec pipelines. `NoiseConfig` carries an
/// `f64` rate, stored here by bit pattern to stay `Eq + Hash`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpecKey {
    /// Target kernel.
    pub os: OsKind,
    /// Noise RNG seed.
    pub noise_seed: u64,
    /// `NoiseConfig::defect_rate` bits.
    pub noise_rate_bits: u64,
    /// Whether the validation pass ran.
    pub validate: bool,
    /// Whether the SPI/I2C/DMA driver APIs are in scope.
    pub drivers: bool,
}

impl SpecKey {
    fn new(os: OsKind, noise: &NoiseConfig, validate: bool, drivers: bool) -> Self {
        SpecKey {
            os,
            noise_seed: noise.seed,
            noise_rate_bits: noise.defect_rate.to_bits(),
            validate,
            drivers,
        }
    }
}

/// One memo table: registry of per-key init cells plus counters.
struct Memo<K, V> {
    cells: Mutex<HashMap<K, Arc<OnceLock<V>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Host nanoseconds spent waiting on the registry lock — the
    /// contention cost of fleet-parallel cache lookups. The fleet bench
    /// surfaces it as the `fleet.cache.lock_wait_cycles` telemetry
    /// counter and in `BENCH_fleet.json`.
    lock_wait_nanos: AtomicU64,
}

impl<K: Eq + Hash, V: Clone> Memo<K, V> {
    fn new() -> Self {
        Memo {
            cells: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            lock_wait_nanos: AtomicU64::new(0),
        }
    }

    /// Return the cached value for `key`, building it with `build` on
    /// first request. Exactly one caller per key builds; everyone else
    /// (including callers racing the builder) counts as a hit.
    fn get_or_build(&self, key: K, build: impl FnOnce() -> V) -> V {
        let cell = {
            let wait = std::time::Instant::now();
            let mut map = self.cells.lock();
            self.lock_wait_nanos.fetch_add(
                wait.elapsed().as_nanos().min(u64::MAX as u128) as u64,
                Ordering::Relaxed,
            );
            Arc::clone(map.entry(key).or_insert_with(|| Arc::new(OnceLock::new())))
        };
        let mut built = false;
        let value = cell.get_or_init(|| {
            built = true;
            build()
        });
        if built {
            self.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        value.clone()
    }

    fn clear(&self) {
        self.cells.lock().clear();
    }

    fn reset_counters(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.lock_wait_nanos.store(0, Ordering::Relaxed);
    }
}

fn image_cache() -> &'static Memo<ImageKey, Arc<Vec<u8>>> {
    static CACHE: OnceLock<Memo<ImageKey, Arc<Vec<u8>>>> = OnceLock::new();
    CACHE.get_or_init(Memo::new)
}

fn spec_cache() -> &'static Memo<SpecKey, Arc<(SpecFile, GenReport)>> {
    static CACHE: OnceLock<Memo<SpecKey, Arc<(SpecFile, GenReport)>>> = OnceLock::new();
    CACHE.get_or_init(Memo::new)
}

/// The instrumented image for `(os, profile, instrument)`, built at most
/// once per process. The bytes are shared — clone out of the `Arc` only
/// where an owned copy is genuinely needed (e.g. the restoration golden
/// image).
pub fn cached_image(
    os: OsKind,
    profile: ImageProfile,
    instrument: &InstrumentMode,
) -> Arc<Vec<u8>> {
    image_cache().get_or_build(
        ImageKey {
            os,
            profile,
            instrument: instrument.clone(),
        },
        || Arc::new(build_image(os, profile, instrument)),
    )
}

/// The validated spec pipeline output for `(os, noise, validate)`, run
/// at most once per process. Campaigns clone the `SpecFile` out because
/// they mutate it (pseudo-API and module filtering); the expensive part
/// — extraction, noising, validation — is what the cache saves.
pub fn cached_spec(os: OsKind, noise: &NoiseConfig, validate: bool) -> Arc<(SpecFile, GenReport)> {
    cached_spec_scoped(os, noise, validate, false)
}

/// [`cached_spec`] with an explicit driver-layer scope; `drivers` keys a
/// separate cache entry carrying the SPI/I2C/DMA APIs.
pub fn cached_spec_scoped(
    os: OsKind,
    noise: &NoiseConfig,
    validate: bool,
    drivers: bool,
) -> Arc<(SpecFile, GenReport)> {
    spec_cache().get_or_build(SpecKey::new(os, noise, validate, drivers), || {
        Arc::new(generate_validated_scoped(os, noise, validate, drivers))
    })
}

/// Cache effectiveness counters (process-wide, monotonic since the last
/// [`reset_cache_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Image requests served from cache.
    pub image_hits: u64,
    /// Image requests that built.
    pub image_misses: u64,
    /// Spec requests served from cache.
    pub spec_hits: u64,
    /// Spec requests that ran the pipeline.
    pub spec_misses: u64,
    /// Host nanoseconds spent waiting on the cache registry locks
    /// (image + spec) — nonzero contention means fleet jobs are
    /// serialising on lookups rather than on builds.
    pub lock_wait_nanos: u64,
}

impl CacheStats {
    /// All requests served from cache.
    pub fn hits(&self) -> u64 {
        self.image_hits + self.spec_hits
    }

    /// All requests that had to compute.
    pub fn misses(&self) -> u64 {
        self.image_misses + self.spec_misses
    }

    /// Fraction of requests served from cache (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits() + self.misses();
        if total == 0 {
            0.0
        } else {
            self.hits() as f64 / total as f64
        }
    }
}

/// Current counter values.
pub fn cache_stats() -> CacheStats {
    CacheStats {
        image_hits: image_cache().hits.load(Ordering::Relaxed),
        image_misses: image_cache().misses.load(Ordering::Relaxed),
        spec_hits: spec_cache().hits.load(Ordering::Relaxed),
        spec_misses: spec_cache().misses.load(Ordering::Relaxed),
        lock_wait_nanos: image_cache().lock_wait_nanos.load(Ordering::Relaxed)
            + spec_cache().lock_wait_nanos.load(Ordering::Relaxed),
    }
}

/// Zero the counters (bench sections report per-phase deltas).
pub fn reset_cache_stats() {
    image_cache().reset_counters();
    spec_cache().reset_counters();
}

/// Drop every cached artifact (tests that must observe fresh builds).
/// Counters are left alone; pair with [`reset_cache_stats`] as needed.
pub fn clear_caches() {
    image_cache().clear();
    spec_cache().clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use eof_specgen::generate_validated;

    // Counter-exact assertions run against a private `Memo`: the global
    // caches are shared by every concurrently-running test (campaign
    // tests included), so their counters are only monotonic, not exact.
    #[test]
    fn memo_counts_one_miss_then_hits() {
        let memo: Memo<u32, u64> = Memo::new();
        assert_eq!(memo.get_or_build(7, || 42), 42);
        assert_eq!(memo.get_or_build(7, || unreachable!("cached")), 42);
        assert_eq!(memo.get_or_build(9, || 43), 43);
        assert_eq!(memo.misses.load(Ordering::Relaxed), 2);
        assert_eq!(memo.hits.load(Ordering::Relaxed), 1);
        memo.reset_counters();
        memo.clear();
        assert_eq!(memo.get_or_build(7, || 44), 44, "clear drops entries");
        assert_eq!(memo.misses.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn lock_wait_accounting_accumulates_and_resets() {
        let memo: Memo<u32, u64> = Memo::new();
        // Uncontended waits may round to zero nanoseconds, so only the
        // lifecycle is assertable: the counter never goes backwards and
        // reset zeroes it.
        let mut last = 0;
        for i in 0..64 {
            memo.get_or_build(i, || u64::from(i));
            let now = memo.lock_wait_nanos.load(Ordering::Relaxed);
            assert!(now >= last, "lock-wait counter went backwards");
            last = now;
        }
        memo.reset_counters();
        assert_eq!(memo.lock_wait_nanos.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn identical_keys_hit_and_share() {
        let before = cache_stats();
        let a = cached_image(
            OsKind::FreeRtos,
            ImageProfile::FullSystem,
            &InstrumentMode::Full,
        );
        let b = cached_image(
            OsKind::FreeRtos,
            ImageProfile::FullSystem,
            &InstrumentMode::Full,
        );
        assert!(Arc::ptr_eq(&a, &b), "same key must share one build");
        let after = cache_stats();
        assert!(
            after.image_hits > before.image_hits,
            "{before:?} → {after:?}"
        );
    }

    #[test]
    fn cached_images_match_fresh_builds_on_every_os() {
        for os in OsKind::ALL {
            for profile in [ImageProfile::FullSystem, ImageProfile::AppLevel] {
                let cached = cached_image(os, profile, &InstrumentMode::Full);
                let fresh = build_image(os, profile, &InstrumentMode::Full);
                assert_eq!(
                    *cached, fresh,
                    "{os} {profile:?}: cache must be bit-identical"
                );
            }
        }
    }

    #[test]
    fn distinct_instrumentation_gets_distinct_entries() {
        let full = cached_image(
            OsKind::Zephyr,
            ImageProfile::FullSystem,
            &InstrumentMode::Full,
        );
        let none = cached_image(
            OsKind::Zephyr,
            ImageProfile::FullSystem,
            &InstrumentMode::None,
        );
        assert_ne!(*full, *none, "instrumentation must change the image");
    }

    #[test]
    fn cached_specs_match_fresh_runs() {
        let noise = NoiseConfig::default_llm(9);
        let cached = cached_spec(OsKind::NuttX, &noise, true);
        let (spec, report) = generate_validated(OsKind::NuttX, &noise, true);
        assert_eq!(cached.0, spec);
        assert_eq!(cached.1.admitted_apis, report.admitted_apis);
        let again = cached_spec(OsKind::NuttX, &noise, true);
        assert!(Arc::ptr_eq(&cached, &again));
    }

    #[test]
    fn noise_rate_is_part_of_the_key() {
        let a = cached_spec(OsKind::RtThread, &NoiseConfig::default_llm(3), true);
        let b = cached_spec(OsKind::RtThread, &NoiseConfig::none(), true);
        assert!(!Arc::ptr_eq(&a, &b), "different noise must not alias");
    }

    #[test]
    fn concurrent_same_key_builds_once() {
        let memo: Memo<u8, Arc<Vec<u8>>> = Memo::new();
        let values: Vec<Arc<Vec<u8>>> = crossbeam::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    s.spawn(|_| {
                        memo.get_or_build(1, || {
                            Arc::new(build_image(
                                OsKind::PokOs,
                                ImageProfile::FullSystem,
                                &InstrumentMode::Full,
                            ))
                        })
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
        .unwrap();
        for pair in values.windows(2) {
            assert!(Arc::ptr_eq(&pair[0], &pair[1]));
        }
        assert_eq!(memo.misses.load(Ordering::Relaxed), 1);
        assert_eq!(memo.hits.load(Ordering::Relaxed), 3);
    }
}
