//! `eof-core` — the EOF fuzzing engine (the paper's primary contribution).
//!
//! EOF is a feedback-guided fuzzer for embedded operating systems running
//! on hardware, using the debug port as its single channel of control and
//! observation. This crate is the host engine:
//!
//! * [`config`] — campaign configuration: target, budget, and the knobs
//!   that also express every baseline fuzzer (detection set, generation
//!   mode, recovery policy, coverage observability, execution-cost
//!   multiplier);
//! * [`gen`] — API-aware test-case generation and mutation over parsed
//!   specifications, with resource-dependency satisfaction and
//!   adjacency scoring (§4.5), plus the random-byte mode the baselines
//!   use;
//! * [`corpus`] — seed retention and energy-weighted scheduling;
//! * [`crash`] — crash reports, de-duplication and Table-2 triage;
//! * [`executor`] — one test case end to end over the debug link:
//!   sync-point breakpoints, prog upload, coverage drain at
//!   `_kcmp_buf_full`, exception/assert classification, stall handling
//!   and state restoration;
//! * [`supervisor`] — the recovery supervisor: an escalating
//!   restoration ladder (resume → reset → verify-reflash → full
//!   reflash → power-cycle) with bounded, backed-off retries and
//!   [`supervisor::ResilienceStats`] accounting;
//! * [`cmplog`] — the Redqueen/I2S pipeline's host half: the
//!   per-campaign comparison-operand journal, the input-to-state
//!   mutation operators, and the MOpt-style operator scheduler;
//! * [`fuzzer`] — the feedback loop;
//! * [`campaign`] — image build → flash → boot → fuzz → results;
//! * [`chaos`] — seeded chaos harness: full campaigns under randomized
//!   injected-fault schedules, with invariant checking;
//! * [`artifacts`] — memoized image/spec pipeline shared by every
//!   campaign in the process (one build per distinct key);
//! * [`fleet`] — batch campaign execution over a scoped worker pool
//!   with deterministic, submission-ordered results;
//! * [`fabric`] — the fault-tolerant distributed campaign fabric:
//!   lease-based cell assignment with heartbeats and fencing epochs,
//!   checkpoint/resume through the persist store, bounded backed-off
//!   reassignment of crashed/hung workers, worker-fault chaos
//!   schedules, and an N-workers ≡ serial determinism gate;
//! * [`persist`] — the versioned on-disk campaign store: seed pool,
//!   unique-crash reproducers, coverage bitmap and manifest, written
//!   atomically and loaded tolerantly (corrupt/foreign entries are
//!   counted skips, never fatal);
//! * [`replay`] — deterministic re-execution of persisted stores: the
//!   save-time confirm/minimize pass, the CI replay gate, and
//!   replay-based campaign resume;
//! * [`report`] — serialisable result records for the benches.

// Every dependency in Cargo.toml must actually be linked against —
// declared-but-unused crates cost compile time and mislead readers
// about what the engine is built on.
#![warn(unused_crate_dependencies)]

pub mod artifacts;
pub mod campaign;
pub mod chaos;
pub mod cmplog;
pub mod config;
pub mod corpus;
pub mod crash;
pub mod executor;
pub mod fabric;
pub mod fleet;
pub mod fuzzer;
pub mod gen;
pub mod minimize;
pub mod persist;
pub mod replay;
pub mod report;
pub mod supervisor;

pub use artifacts::{cache_stats, cached_image, cached_spec, reset_cache_stats, CacheStats};
pub use campaign::{
    build_fuzzer, run_campaign, run_campaign_recorded, run_campaign_recorded_with_faults,
    run_campaign_with_coverage, run_campaign_with_faults, CampaignResult,
};
pub use chaos::{chaos_plan, run_chaos, ChaosConfig, ChaosReport};
pub use cmplog::{CmpJournal, MutOp, OpScheduler};
pub use config::{DetectionConfig, FuzzerConfig, GenerationMode, RecoveryConfig};
pub use corpus::{Corpus, Seed};
pub use crash::{triage, CrashDb, CrashReport, DetectionSource};
pub use executor::{ExecOutcome, Executor};
pub use fabric::{
    diff_against_serial, fabric_chaos_plan, fabric_grid, run_fabric, run_serial, FabricChaosPlan,
    FabricConfig, FabricFault, FabricReport, SerialMerge,
};
pub use fleet::{FleetError, FleetResult, FleetRunner, FleetStats};
pub use fuzzer::{Fuzzer, FuzzerStats};
pub use gen::Generator;
pub use minimize::{minimize, MinimizeResult};
pub use persist::{
    config_fingerprint, CampaignStore, Exchange, ExchangeImport, LoadedStore, PersistedCrash,
    PersistedSeed, SkipStats, StoreError, StoreManifest, SCHEMA_VERSION,
};
pub use replay::{
    finalize_store, replay_loaded, replay_store, resume_campaign, resume_campaign_with,
    FinalizeAudit, ReplayCase, ReplayReport, ResumeOutcome,
};
pub use supervisor::{RecoveryOutcome, RecoveryReason, RecoverySupervisor, ResilienceStats, Rung};
