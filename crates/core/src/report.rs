//! Serialisable result records shared by the benches, and on-disk
//! campaign reports (crash dumps with reproducers, the artefacts a
//! fuzzing campaign hands to developers).

use crate::campaign::CampaignResult;
use eof_rtos::OsKind;
use serde::Serialize;
use std::io::Write;
use std::path::Path;

/// One row of a coverage-comparison table (Table 3 / Table 4 shape).
#[derive(Debug, Clone, Serialize)]
pub struct CoverageRow {
    /// Target label (OS name or module name).
    pub target: String,
    /// Fuzzer label.
    pub fuzzer: String,
    /// Mean branches across repetitions.
    pub mean_branches: f64,
    /// Minimum across repetitions.
    pub min_branches: usize,
    /// Maximum across repetitions.
    pub max_branches: usize,
    /// Repetitions.
    pub reps: usize,
}

/// One point of a coverage curve with min/max band (Figure 7/8 shape).
#[derive(Debug, Clone, Serialize)]
pub struct CurvePoint {
    /// Simulated hours since campaign start.
    pub hours: f64,
    /// Mean branches at this time.
    pub mean: f64,
    /// Minimum across repetitions.
    pub min: usize,
    /// Maximum across repetitions.
    pub max: usize,
}

/// Band statistics over several runs' snapshot histories, aligned by
/// snapshot index (all our campaigns snapshot on the same schedule).
pub fn curve_points_from_runs(histories: &[&[eof_coverage::Snapshot]]) -> Vec<CurvePoint> {
    eof_coverage::bitmap::curve_band(histories)
        .into_iter()
        .map(|(hours, mean, min, max)| CurvePoint {
            hours,
            mean,
            min,
            max,
        })
        .collect()
}

/// Improvement percentage `a` over `b`, as the paper reports it.
pub fn improvement_pct(a: f64, b: f64) -> f64 {
    if b == 0.0 {
        return 0.0;
    }
    (a - b) / b * 100.0
}

/// Render rows as an aligned text table.
pub fn text_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<String>, widths: &[usize]| -> String {
        let mut line = String::from("| ");
        for (i, cell) in cells.iter().enumerate() {
            line.push_str(&format!("{:width$} | ", cell, width = widths[i]));
        }
        line.trim_end().to_string() + "\n"
    };
    out.push_str(&fmt_row(
        headers.iter().map(|s| s.to_string()).collect(),
        &widths,
    ));
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    out.push_str(&fmt_row(sep, &widths));
    for row in rows {
        out.push_str(&fmt_row(row.clone(), &widths));
    }
    out
}

/// Render rows as CSV.
pub fn csv(headers: &[&str], rows: &[Vec<String>]) -> String {
    let esc = |s: &str| {
        if s.contains(',') || s.contains('"') {
            format!("\"{}\"", s.replace('"', "\"\""))
        } else {
            s.to_string()
        }
    };
    let mut out = headers.iter().map(|h| esc(h)).collect::<Vec<_>>().join(",");
    out.push('\n');
    for row in rows {
        out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
        out.push('\n');
    }
    out
}

/// Write a campaign's artefacts to `dir`: a summary, the coverage curve
/// as CSV, and one crash dump per unique crash with its Figure-6-style
/// backtrace and reproducer prog.
pub fn write_campaign_report(
    dir: &Path,
    os: OsKind,
    result: &CampaignResult,
) -> std::io::Result<()> {
    std::fs::create_dir_all(dir.join("crashes"))?;

    let mut summary = std::fs::File::create(dir.join("summary.txt"))?;
    writeln!(
        summary,
        "EOF campaign report — {} {}",
        os.display(),
        os.version()
    )?;
    writeln!(summary, "executions        : {}", result.stats.execs)?;
    writeln!(summary, "branches found    : {}", result.branches)?;
    writeln!(summary, "interesting inputs: {}", result.stats.interesting)?;
    writeln!(
        summary,
        "crash observations: {}",
        result.stats.crash_observations
    )?;
    writeln!(summary, "unique crashes    : {}", result.crashes.len())?;
    writeln!(summary, "stalls recovered  : {}", result.stats.stalls)?;
    writeln!(summary, "restorations      : {}", result.stats.restorations)?;
    writeln!(
        summary,
        "Table-2 bugs      : {:?}",
        result.bugs.iter().map(|b| b.number()).collect::<Vec<_>>()
    )?;
    let r = &result.resilience;
    writeln!(summary, "recovery episodes : {}", r.episodes)?;
    for rung in crate::supervisor::Rung::ALL {
        writeln!(
            summary,
            "  {:14}: {} ok / {} tried",
            rung.name(),
            r.rung_successes[rung.index()],
            r.rung_attempts[rung.index()]
        )?;
    }
    writeln!(summary, "manual interventions: {}", r.manual_interventions)?;
    writeln!(summary, "failed syncs      : {}", r.failed_syncs)?;
    writeln!(summary, "mttr              : {:.2} s", r.mttr_secs())?;
    writeln!(
        summary,
        "link retries      : {} ({} recovered, {} exhausted)",
        r.link.retries, r.link.recovered, r.link.exhausted
    )?;

    let mut curve = std::fs::File::create(dir.join("coverage.csv"))?;
    writeln!(curve, "hours,branches")?;
    for point in &result.history {
        writeln!(curve, "{:.3},{}", point.hours, point.branches)?;
    }

    for (i, crash) in result.crashes.iter().enumerate() {
        let tag = crash
            .bug
            .map(|b| format!("bug{:02}", b.number()))
            .unwrap_or_else(|| "untriaged".to_string());
        let mut f =
            std::fs::File::create(dir.join("crashes").join(format!("crash-{i:03}-{tag}.txt")))?;
        writeln!(f, "{}", crash.message)?;
        writeln!(f, "detected by : {:?}", crash.source)?;
        writeln!(f, "at          : {:.2} simulated hours", crash.at_hours)?;
        if let Some(bug) = crash.bug {
            let info = bug.info();
            writeln!(
                f,
                "triaged     : Table 2 #{} — {} / {} / {}",
                info.number, info.scope, info.bug_type, info.operation
            )?;
        }
        writeln!(
            f,
            "
Stack frames at BUG: unexpected stop:"
        )?;
        for (lvl, frame) in crash.backtrace.iter().enumerate() {
            writeln!(f, "Level: {}: {}", lvl + 1, frame)?;
        }
        writeln!(
            f,
            "
reproducer:
{}",
            crash.prog
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn improvement_math() {
        assert!((improvement_pct(150.0, 100.0) - 50.0).abs() < 1e-9);
        assert!((improvement_pct(100.0, 150.0) + 33.333).abs() < 0.01);
        assert_eq!(improvement_pct(5.0, 0.0), 0.0);
    }

    #[test]
    fn table_alignment() {
        let t = text_table(
            &["Fuzzer", "Branches"],
            &[
                vec!["EOF".into(), "2139.0".into()],
                vec!["Tardis".into(), "1442.6".into()],
            ],
        );
        assert!(t.contains("| EOF    |"));
        assert!(t.lines().count() == 4);
    }

    #[test]
    fn campaign_report_writes_artefacts() {
        use crate::config::FuzzerConfig;
        let mut cfg = FuzzerConfig::eof(OsKind::RtThread, 3);
        cfg.budget_hours = 0.5;
        cfg.snapshot_hours = 0.25;
        let result = crate::campaign::run_campaign(cfg);
        let dir = std::env::temp_dir().join(format!("eof-report-test-{}", std::process::id()));
        write_campaign_report(&dir, OsKind::RtThread, &result).unwrap();
        let summary = std::fs::read_to_string(dir.join("summary.txt")).unwrap();
        assert!(summary.contains("branches found"));
        assert!(dir.join("coverage.csv").exists());
        // At least one crash dump exists for this seed/budget and names
        // its reproducer.
        let crashes: Vec<_> = std::fs::read_dir(dir.join("crashes")).unwrap().collect();
        if !crashes.is_empty() {
            let first = crashes[0].as_ref().unwrap().path();
            let dump = std::fs::read_to_string(first).unwrap();
            assert!(dump.contains("reproducer:"));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn csv_escaping() {
        let c = csv(&["a", "b"], &[vec!["x,y".into(), "q\"z".into()]]);
        assert!(c.contains("\"x,y\""));
        assert!(c.contains("\"q\"\"z\""));
    }
}
