//! Campaign orchestration: image build → flash → boot → fuzz → results.
//!
//! `run_campaign` is the single entry point every example and bench uses:
//! it performs the paper's workflow steps ① analyse the memory layout
//! (kconfig), ② generate and validate the API specifications, ③ build
//! the instrumented image, then attaches over the debug interface and
//! runs the fuzzing loop to its simulated-time budget.

use crate::config::FuzzerConfig;
use crate::crash::CrashReport;
use crate::executor::Executor;
use crate::fuzzer::{Fuzzer, FuzzerStats};
use crate::gen::Generator;
use crate::supervisor::{ResilienceStats, Rung};
use eof_agent::{agent_loader, api_table_of};
use eof_coverage::Snapshot;
use eof_dap::{DebugTransport, LinkConfig};
use eof_hal::FaultPlan;
use eof_hal::Machine;
use eof_monitors::{parse_kconfig, render_kconfig, StateRestoration};
use eof_rtos::bugs::BugId;
use eof_specgen::{GenReport, NoiseConfig};
use eof_telemetry as tel;

/// Everything a campaign produced.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// Distinct branches discovered.
    pub branches: usize,
    /// Coverage-over-time curve (hours since campaign start).
    pub history: Vec<Snapshot>,
    /// De-duplicated crashes.
    pub crashes: Vec<CrashReport>,
    /// Table-2 bugs found, sorted.
    pub bugs: Vec<BugId>,
    /// Loop statistics.
    pub stats: FuzzerStats,
    /// Recovery-supervisor and link-retry accounting.
    pub resilience: ResilienceStats,
    /// Spec-generation report (admission pipeline).
    pub spec_report: GenReport,
    /// Image size flashed, in bytes.
    pub image_bytes: usize,
    /// Everything the campaign's telemetry recorder captured; `None`
    /// unless `EOF_TRACE` was set (or recording was forced). One
    /// registry per campaign — the fleet merges them in submission
    /// order, so `EOF_JOBS=1` and `EOF_JOBS=8` produce identical merged
    /// summaries for identical seeds.
    pub telemetry: Option<tel::Registry>,
    /// Stable hashes of every admitted seed, in admission order (culled
    /// seeds included). The resume path verifies persisted seed pools
    /// against this.
    pub corpus_hashes: Vec<u64>,
    /// What the end-of-campaign persistence pass did; `None` unless
    /// `config.persist` was set.
    pub persist: Option<crate::replay::FinalizeAudit>,
}

/// Run one full campaign, also returning the final coverage map (for
/// diagnostics and coverage-inspection tooling).
pub fn run_campaign_with_coverage(
    config: FuzzerConfig,
) -> (CampaignResult, eof_coverage::CoverageMap) {
    run_campaign_inner(config, FaultPlan::none())
}

/// Run one full campaign.
pub fn run_campaign(config: FuzzerConfig) -> CampaignResult {
    run_campaign_inner(config, FaultPlan::none()).0
}

/// Run one full campaign under a harness-injected fault schedule (the
/// chaos harness's entry point). Plan cycles are relative to the moment
/// the fuzzer attaches — i.e. to campaign start.
pub fn run_campaign_with_faults(config: FuzzerConfig, plan: FaultPlan) -> CampaignResult {
    run_campaign_inner(config, plan).0
}

/// Run one full campaign with telemetry recording forced on, regardless
/// of `EOF_TRACE`. For tests and tooling: mutating the process
/// environment is racy under a parallel test runner, so callers that
/// need a recorded campaign ask for one explicitly.
pub fn run_campaign_recorded(config: FuzzerConfig) -> CampaignResult {
    run_campaign_traced(config, FaultPlan::none(), true).0
}

/// [`run_campaign_recorded`] under a harness-injected fault schedule:
/// the chaos harness uses this to check telemetry-visible invariants
/// (e.g. that every discarded comparison drain was counted) while the
/// hardware misbehaves.
pub fn run_campaign_recorded_with_faults(config: FuzzerConfig, plan: FaultPlan) -> CampaignResult {
    run_campaign_traced(config, plan, true).0
}

fn run_campaign_inner(
    config: FuzzerConfig,
    plan: FaultPlan,
) -> (CampaignResult, eof_coverage::CoverageMap) {
    run_campaign_traced(config, plan, tel::enabled())
}

/// Perform the paper's setup workflow — spec pipeline, image build,
/// flash, boot, debug attach — and return a fuzzer parked at its first
/// sync point, plus the spec-generation report and flashed image size.
/// `run_campaign` drives the returned fuzzer to its time budget; tests
/// that need exec-count-exact comparisons (the vectored-equivalence
/// gate) drive [`Fuzzer::step`] themselves instead.
pub fn build_fuzzer(config: FuzzerConfig, plan: FaultPlan) -> (Fuzzer, GenReport, usize) {
    // ② Extract + validate the API specifications. The pipeline is pure
    // in (os, noise, validation), so it is interned process-wide; the
    // spec is cloned out because the config filters below mutate it.
    // (Host-side phases precede the simulated clock; their spans sit at
    // cycle 0 and carry only wall time.)
    let spec_span = tel::span_start("campaign.spec", 0);
    let noise = match config.spec_noise {
        Some(seed) => NoiseConfig::default_llm(seed),
        None => NoiseConfig::none(),
    };
    // The driver workload widens the spec scope to the SPI/I2C/DMA
    // driver APIs; the default scope reproduces the legacy pure-API
    // spec byte-for-byte.
    let (mut spec, spec_report) = (*crate::artifacts::cached_spec_scoped(
        config.os,
        &noise,
        config.spec_validation,
        config.mmio,
    ))
    .clone();

    // Baselines with hand-written specs never had LLM pseudo-syscalls.
    if config.exclude_pseudo {
        spec.apis.retain(|a| !a.is_pseudo());
    }

    // Application-level confinement: keep only the filtered modules'
    // APIs (by the kernel's own module attribution).
    if let Some(modules) = &config.module_filter {
        let kernel = eof_rtos::registry::make_kernel(config.os);
        let allowed: std::collections::BTreeSet<&str> = kernel
            .api_table()
            .iter()
            .filter(|d| modules.iter().any(|m| m == d.module))
            .map(|d| d.name)
            .collect();
        spec.apis.retain(|a| allowed.contains(a.name.as_str()));
    }
    tel::span_end(spec_span, 0);

    // ③ Build (or fetch the interned) instrumented image and flash it.
    let image_span = tel::span_start("campaign.image", 0);
    let image =
        crate::artifacts::cached_image(config.os, config.profile, &config.effective_instrument());
    let image_bytes = image.len();
    tel::span_end(image_span, 0);
    let boot_span = tel::span_start("campaign.boot", 0);
    let mut machine = Machine::new(config.board.clone(), agent_loader());
    machine
        .reflash_partition("kernel", &image)
        .expect("image fits kernel partition");
    machine.reset();
    if plan.pending() > 0 {
        // Armed after boot: the plan's cycle offsets are rebased to the
        // current bus time by the machine.
        machine.set_fault_plan(plan);
    }

    // ① Memory layout from the build configuration.
    let kconfig_text = render_kconfig(
        &config.board.arch.to_string().to_lowercase(),
        machine.flash().table(),
    );
    let kconfig = parse_kconfig(&kconfig_text).expect("rendered kconfig parses");
    // The restoration keeps its own golden copy (it re-flashes from it
    // on recovery, and the cache entry must stay pristine).
    let restoration = StateRestoration::from_kconfig(
        &kconfig,
        config.board.flash_size,
        vec![("kernel".to_string(), (*image).clone())],
    )
    .expect("golden image fits");

    // Attach over the debug interface and fuzz.
    let transport = DebugTransport::attach(machine, LinkConfig::default());
    let executor = Executor::new(
        transport,
        config.clone(),
        api_table_of(config.os),
        restoration,
    )
    .expect("executor binds to sync symbols");
    tel::span_end(boot_span, executor.now());
    let generator =
        Generator::new(spec, config.seed, config.gen_mode, config.max_calls).with_mmio(config.mmio);
    // Open the campaign store (if persistence is on) before the config
    // moves into the fuzzer; the fuzzer writes crash records into it
    // incrementally on first sighting.
    let store = config
        .persist
        .as_deref()
        .map(|dir| crate::persist::CampaignStore::create(dir, &config))
        .transpose()
        .expect("campaign store directory is writable");
    let mut fuzzer = Fuzzer::new(config, generator, executor);
    if let Some(store) = store {
        fuzzer.set_store(store);
    }
    (fuzzer, spec_report, image_bytes)
}

fn run_campaign_traced(
    config: FuzzerConfig,
    plan: FaultPlan,
    record: bool,
) -> (CampaignResult, eof_coverage::CoverageMap) {
    // Install a per-campaign recorder on this thread. Every record call
    // below (executor, supervisor, transport, HAL) checks only "is a
    // recorder installed" — never the env — so the campaign's telemetry
    // shape is fixed at entry. The guard uninstalls on panic, keeping
    // fleet workers clean across panic-isolated jobs.
    let guard = record.then(tel::begin);
    let (mut fuzzer, spec_report, image_bytes) = build_fuzzer(config, plan);
    let fuzz_span = tel::span_start("campaign.fuzz", fuzzer.executor().now());
    let history = fuzzer.run_to_budget();
    tel::span_end(fuzz_span, fuzzer.executor().now());

    let stats = fuzzer.stats().clone();
    let resilience = fuzzer.executor().resilience();
    // End-of-campaign save: confirm + minimize crashes on private fresh
    // targets, record the seed pool's fresh-boot baseline, write the
    // manifest last. The re-executions run with the campaign recorder
    // suspended so they cannot drift the campaign's own counters; only
    // the save itself is spanned and counted.
    let persist_audit = fuzzer.take_store().map(|store| {
        let span = tel::span_start("persist.save", fuzzer.executor().now());
        let audit = tel::suspended(|| {
            crate::replay::finalize_store(
                store,
                fuzzer.config(),
                fuzzer.corpus(),
                fuzzer.crashes(),
                fuzzer.executor().coverage(),
                fuzzer.config().budget_hours,
                stats.execs,
            )
        });
        tel::span_end(span, fuzzer.executor().now());
        tel::count("persist.seeds", audit.seeds_written as u64);
        tel::count("persist.crashes", audit.crashes_written as u64);
        audit
    });
    let telemetry = guard.map(|g| {
        let registry = g.finish();
        assert_no_counter_drift(&registry, &stats, &resilience);
        registry
    });

    let result = CampaignResult {
        branches: fuzzer.executor().coverage().branches(),
        history,
        crashes: fuzzer.crashes().unique().cloned().collect(),
        bugs: fuzzer.crashes().bugs_found(),
        stats,
        resilience,
        spec_report,
        image_bytes,
        telemetry,
        corpus_hashes: fuzzer.corpus().admitted_hashes(),
        persist: persist_audit,
    };
    (result, fuzzer.executor().coverage().clone())
}

/// The two accounting paths — hand-maintained `FuzzerStats` /
/// `ResilienceStats` and the telemetry counters mirrored at the same
/// increment sites — must agree exactly at campaign end. A divergence
/// means one path silently missed an event; fail loudly instead of
/// publishing inconsistent numbers.
fn assert_no_counter_drift(
    registry: &tel::Registry,
    stats: &FuzzerStats,
    resilience: &ResilienceStats,
) {
    let checks: [(&str, u64); 15] = [
        ("dap.txn.partial", resilience.txn_partial),
        ("fuzz.execs", stats.execs),
        ("fuzz.interesting", stats.interesting),
        ("fuzz.crash_observations", stats.crash_observations),
        ("fuzz.stalls", stats.stalls),
        ("fuzz.restorations", stats.restorations),
        ("fuzz.failed_syncs", stats.failed_syncs),
        ("recovery.episodes", resilience.episodes),
        ("recovery.backoff_cycles", resilience.backoff_cycles),
        (
            "recovery.manual_interventions",
            resilience.manual_interventions,
        ),
        ("exec.failed_syncs", resilience.failed_syncs),
        ("dap.retry.attempts", resilience.link.attempts),
        ("dap.retry.retries", resilience.link.retries),
        ("dap.retry.recovered", resilience.link.recovered),
        ("dap.retry.exhausted", resilience.link.exhausted),
    ];
    for (name, expected) in checks {
        assert_eq!(
            registry.counter(name),
            expected,
            "telemetry counter {name:?} drifted from the stats structs"
        );
    }
    for rung in Rung::ALL {
        assert_eq!(
            registry.counter(rung.attempts_counter()),
            resilience.rung_attempts[rung.index()],
            "rung {} attempt accounting drifted",
            rung.name()
        );
        assert_eq!(
            registry.counter(rung.successes_counter()),
            resilience.rung_successes[rung.index()],
            "rung {} success accounting drifted",
            rung.name()
        );
    }
    for op in crate::cmplog::MutOp::ALL {
        assert_eq!(
            registry.counter(op.execs_counter()),
            stats.op_execs[op.index()],
            "operator {} exec accounting drifted",
            op.name()
        );
        assert_eq!(
            registry.counter(op.interesting_counter()),
            stats.op_interesting[op.index()],
            "operator {} interesting accounting drifted",
            op.name()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eof_rtos::OsKind;

    fn short(os: OsKind, seed: u64, hours: f64) -> FuzzerConfig {
        let mut c = FuzzerConfig::eof(os, seed);
        c.budget_hours = hours;
        c.snapshot_hours = hours / 4.0;
        c
    }

    #[test]
    fn campaign_runs_on_every_os() {
        for os in OsKind::ALL {
            let r = run_campaign(short(os, 7, 0.02));
            assert!(r.stats.execs > 5, "{os}: {} execs", r.stats.execs);
            assert!(r.branches > 5, "{os}: {} branches", r.branches);
            assert!(r.spec_report.admitted_apis > 0, "{os}");
            assert!(r.image_bytes > 500_000, "{os}");
        }
    }

    #[test]
    fn campaigns_are_deterministic() {
        let a = run_campaign(short(OsKind::Zephyr, 11, 0.02));
        let b = run_campaign(short(OsKind::Zephyr, 11, 0.02));
        assert_eq!(a.branches, b.branches);
        assert_eq!(a.stats.execs, b.stats.execs);
        assert_eq!(a.bugs, b.bugs);
        assert_eq!(a.resilience, b.resilience);
    }

    #[test]
    fn fault_free_campaigns_keep_the_supervisor_quiet() {
        use crate::supervisor::Rung;
        // Without injected faults the only degraded states are the
        // target's own hangs: every recovery episode is a stall, recovers
        // on the first reset, and the connection-loss machinery (resume
        // rung, link retries, manual escalation) never fires. This pins
        // the refactored recovery path to the old ad-hoc behaviour on
        // fault-free schedules.
        let r = run_campaign(short(OsKind::FreeRtos, 7, 0.02));
        let res = &r.resilience;
        assert_eq!(res.rung_attempts[Rung::Resume.index()], 0, "{res:?}");
        assert_eq!(
            res.episodes,
            res.rung_successes[Rung::Reset.index()],
            "{res:?}"
        );
        assert_eq!(res.manual_interventions, 0, "{res:?}");
        assert_eq!(res.failed_syncs, 0, "{res:?}");
        assert_eq!(res.link.retries, 0, "{res:?}");
        assert_eq!(res.backoff_cycles, 0, "{res:?}");
    }

    #[test]
    fn recorded_campaigns_are_deterministic_and_drift_free() {
        // `run_campaign_recorded` exercises the whole telemetry path:
        // recorder install, span/counter capture across every layer, and
        // the end-of-campaign counter-drift assertion (which runs inside
        // the call — reaching this point means it held).
        let a = run_campaign_recorded(short(OsKind::FreeRtos, 11, 0.02));
        let b = run_campaign_recorded(short(OsKind::FreeRtos, 11, 0.02));
        let ta = a
            .telemetry
            .as_ref()
            .expect("recorded campaign captures telemetry");
        let tb = b
            .telemetry
            .as_ref()
            .expect("recorded campaign captures telemetry");
        assert!(ta.counter("fuzz.execs") > 0);
        assert_eq!(ta.counter("fuzz.execs"), a.stats.execs);
        // The campaign phases were spanned.
        for phase in ["campaign.boot", "campaign.fuzz", "exec", "fuzz.gen"] {
            assert!(
                ta.span_aggs.contains_key(phase),
                "missing span {phase}: {:?}",
                ta.span_aggs.keys().collect::<Vec<_>>()
            );
        }
        // Identical inputs ⇒ byte-identical summaries; and recording
        // must not perturb the campaign itself.
        assert_eq!(ta.summary().to_json(), tb.summary().to_json());
        let plain = run_campaign(short(OsKind::FreeRtos, 11, 0.02));
        assert_eq!(a.branches, plain.branches);
        assert_eq!(a.stats.execs, plain.stats.execs);
        assert_eq!(a.resilience, plain.resilience);
    }

    #[test]
    fn cmplog_campaigns_run_and_account_per_operator() {
        // A cmplog campaign exercises the full Redqueen pipeline: the
        // armed ring drains into the journal, the scheduler attributes
        // every scheduled mutant to an operator, and the drift gate
        // (inside `run_campaign_recorded`) proves the `fuzz.op.*`
        // telemetry mirrors `FuzzerStats` exactly.
        let mut c = FuzzerConfig::eof_cmplog(OsKind::FreeRtos, 7);
        c.budget_hours = 0.02;
        c.snapshot_hours = 0.005;
        let r = run_campaign_recorded(c);
        let scheduled: u64 = r.stats.op_execs.iter().sum();
        assert!(scheduled > 0, "no mutants were attributed to operators");
        // Scheduled mutants are a subset of all execs (fresh generated
        // progs carry no operator).
        assert!(scheduled <= r.stats.execs, "{:?}", r.stats);
        let tel = r.telemetry.as_ref().expect("recorded");
        assert!(
            tel.counter("exec.cmp_records") > 0,
            "armed ring never produced a comparison record"
        );
    }

    #[test]
    fn different_seeds_diverge() {
        let a = run_campaign(short(OsKind::Zephyr, 1, 0.02));
        let b = run_campaign(short(OsKind::Zephyr, 2, 0.02));
        // Not a strict requirement for every pair, but for these seeds
        // the runs must not be identical.
        assert!(a.stats.execs != b.stats.execs || a.branches != b.branches);
    }
}
