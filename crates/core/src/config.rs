//! Campaign configuration.
//!
//! One configuration type expresses EOF, EOF-nf and every baseline the
//! evaluation compares against, so the comparison benches differ *only*
//! in the knobs the paper says they differ in.

use eof_coverage::{CoverageKind, InstrumentMode};
use eof_hal::BoardSpec;
use eof_rtos::image::ImageProfile;
use eof_rtos::OsKind;

/// How test cases are produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GenerationMode {
    /// API-aware: typed, constrained arguments and resource-dependency
    /// ordering from the specification (EOF, Tardis).
    ApiAware,
    /// AFL-style opaque byte buffers thrown at entry points (GDBFuzz,
    /// SHIFT, Gustave).
    RandomBytes,
}

/// Which bug/state detectors a fuzzer has.
#[derive(Debug, Clone, Copy)]
pub struct DetectionConfig {
    /// Breakpoints on the OS exception and assertion handlers.
    pub exception_breakpoints: bool,
    /// UART log signature scanning.
    pub log_monitor: bool,
    /// Timeout-only hang detection with this many simulated seconds of
    /// patience (`None` = use the PC-stall watchdog instead).
    pub timeout_only_secs: Option<u64>,
}

impl DetectionConfig {
    /// EOF's full detector set.
    pub fn eof() -> Self {
        DetectionConfig {
            exception_breakpoints: true,
            log_monitor: true,
            timeout_only_secs: None,
        }
    }

    /// Tardis-style: nothing but a timeout.
    pub fn timeout_only(secs: u64) -> Self {
        DetectionConfig {
            exception_breakpoints: false,
            log_monitor: false,
            timeout_only_secs: Some(secs),
        }
    }
}

/// How degraded states are recovered.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryConfig {
    /// Host-side PC-stall watchdog (Algorithm 1's second check).
    pub stall_watchdog: bool,
    /// Full reflash on unrecoverable state (vs reboot only).
    pub reflash: bool,
    /// Power-rail plateau detection as the stall channel (the paper's §6
    /// extension; used when the PC-stall watchdog is off or alongside it).
    pub power_liveness: bool,
}

impl RecoveryConfig {
    /// EOF's recovery: watchdogs + reflash.
    pub fn eof() -> Self {
        RecoveryConfig {
            stall_watchdog: true,
            reflash: true,
            power_liveness: false,
        }
    }

    /// Reboot-only recovery (emulator snapshot-style).
    pub fn reboot_only() -> Self {
        RecoveryConfig {
            stall_watchdog: false,
            reflash: false,
            power_liveness: false,
        }
    }

    /// The §6 extension: power-rail liveness instead of PC polling.
    pub fn power_based() -> Self {
        RecoveryConfig {
            stall_watchdog: false,
            reflash: true,
            power_liveness: true,
        }
    }
}

/// Full campaign configuration.
#[derive(Debug, Clone)]
pub struct FuzzerConfig {
    /// Target OS.
    pub os: OsKind,
    /// Target board.
    pub board: BoardSpec,
    /// Campaign RNG seed.
    pub seed: u64,
    /// Budget in simulated hours.
    pub budget_hours: f64,
    /// Coverage-guided corpus retention (EOF-nf switches this off).
    pub coverage_feedback: bool,
    /// Crash/log events boost seed energy (EOF's unified feedback).
    pub crash_feedback: bool,
    /// Input generation mode.
    pub gen_mode: GenerationMode,
    /// Image instrumentation.
    pub instrument: InstrumentMode,
    /// Image build profile.
    pub profile: ImageProfile,
    /// Detector set.
    pub detection: DetectionConfig,
    /// Recovery policy.
    pub recovery: RecoveryConfig,
    /// Fraction of drained edges actually observable as feedback
    /// (1.0 = SanCov; GDBFuzz's rotating hardware breakpoints see far
    /// less).
    pub cov_observe_fraction: f64,
    /// Extra execution cost multiplier (QEMU TCG ≈ 1.5×, semihosting
    /// traps ≈ 2×; hardware = 1.0).
    pub exec_cost_multiplier: f64,
    /// Maximum calls per generated prog.
    pub max_calls: usize,
    /// Specification noise seed (LLM imperfection); `None` = clean spec.
    pub spec_noise: Option<u64>,
    /// Whether the spec validation gate is enabled (ablation).
    pub spec_validation: bool,
    /// Coverage snapshot interval in simulated hours.
    pub snapshot_hours: f64,
    /// Restrict fuzzing to APIs of these modules (the paper's
    /// application-level comparison confines testing to the HTTP server
    /// and JSON modules). `None` = full system.
    pub module_filter: Option<Vec<String>>,
    /// Inject peripheral events (GPIO edges, serial RX) between test
    /// cases to drive interrupt paths — the §6 extension; off in the
    /// paper's headline configuration ("currently EOF does not exercise
    /// interrupt handlers").
    pub peripheral_events: bool,
    /// Drop `syz_` pseudo-syscalls from the specification. Pseudo
    /// functions are an EOF/LLM feature (§4.5); baselines with
    /// hand-written specs (Tardis, Gustave) never had them.
    pub exclude_pseudo: bool,
    /// Persist the campaign's artifacts (seed pool, unique crashes,
    /// coverage bitmap, manifest) into this directory: crashes
    /// incrementally on discovery, the rest at campaign end. `None` =
    /// keep nothing. Excluded from the store's config fingerprint, like
    /// the budget knobs.
    pub persist: Option<std::path::PathBuf>,
    /// Batch the exec hot path (prog upload, coverage drain, sync-point
    /// breakpoints, reflash verify) into vectored debug-port
    /// transactions. Defaults to the `EOF_VECTORED` environment knob
    /// (unset = on; `EOF_VECTORED=0` = scalar fallback). A pure
    /// transport-level optimisation: per-exec results are bit-identical
    /// either way (`tests/vectored_equiv.rs` enforces this), so it is
    /// excluded from the store's config fingerprint.
    pub vectored: bool,
    /// Use board-state snapshots and dirty-page delta restore as the
    /// recovery ladder's cheapest rung and for inter-exec restoration.
    /// Defaults to the `EOF_SNAPSHOT` environment knob (unset = on;
    /// `EOF_SNAPSHOT=0` = reboot/reflash-only fallback). Behaviour-
    /// neutral like `vectored` — per-exec results are bit-identical
    /// either way (`tests/snapshot_equiv.rs` enforces this), so it is
    /// excluded from the store's config fingerprint.
    pub snapshot: bool,
    /// Fuzz the model-free MMIO input plane: include the SPI/I2C/DMA
    /// driver APIs in the specification and generate/mutate the
    /// peripheral response stream (`Prog::mmio`) alongside the call
    /// sequence. Off in the headline configuration; the driver-workload
    /// campaigns (`FuzzerConfig::eof_driver`) switch it on. Part of the
    /// store's config fingerprint — reproducers depend on it.
    pub mmio: bool,
    /// Redqueen/I2S cmplog: arm the on-device comparison-operand ring,
    /// drain observed operand pairs into a per-campaign cmp journal, and
    /// run the input-to-state mutation stage with MOpt-style operator
    /// scheduling. Defaults to the `EOF_CMPLOG` environment knob —
    /// **off** unless set (`EOF_CMPLOG=1`), unlike `vectored`/`snapshot`,
    /// because cmplog changes which inputs are generated. Part of the
    /// store's config fingerprint for the same reason.
    pub cmplog: bool,
    /// How coverage leaves the device: the paper's compiled-in SanCov
    /// ring ([`CoverageKind::Ring`]) or the µAFL-style hardware trace
    /// unit ([`CoverageKind::Trace`]), which needs no instrumentation
    /// in the image at all — the campaign flashes the *plain* build
    /// (see [`FuzzerConfig::effective_instrument`]). Defaults to the
    /// `EOF_COV` environment knob (unset = ring; `EOF_COV=trace` =
    /// hardware trace). Behaviour-equivalent on the edge stream
    /// (`tests/trace_equiv.rs` enforces bit-identical campaigns), so —
    /// like `wire`/`restore` — it is recorded in persist manifests
    /// (`cov =`) but excluded from the config fingerprint.
    pub coverage_backend: CoverageKind,
}

impl FuzzerConfig {
    /// EOF's own configuration for a full-system campaign.
    pub fn eof(os: OsKind, seed: u64) -> Self {
        FuzzerConfig {
            os,
            board: eof_rtos::registry::default_board(os),
            seed,
            budget_hours: 24.0,
            coverage_feedback: true,
            crash_feedback: true,
            gen_mode: GenerationMode::ApiAware,
            instrument: InstrumentMode::Full,
            profile: ImageProfile::FullSystem,
            detection: DetectionConfig::eof(),
            recovery: RecoveryConfig::eof(),
            cov_observe_fraction: 1.0,
            exec_cost_multiplier: 1.0,
            max_calls: 8,
            spec_noise: Some(seed ^ 0x5eed),
            spec_validation: true,
            snapshot_hours: 1.0,
            module_filter: None,
            peripheral_events: false,
            exclude_pseudo: false,
            persist: None,
            vectored: eof_dap::vectored_default(),
            snapshot: eof_dap::snapshot_default(),
            mmio: false,
            cmplog: eof_dap::cmplog_default(),
            coverage_backend: eof_coverage::backend_default(),
        }
    }

    /// The instrumentation mode the flashed image actually carries.
    /// Under the trace backend coverage is the hardware's job, so the
    /// campaign flashes the plain build whatever `instrument` says —
    /// that is the point of the backend: zero image overhead. The ring
    /// backend flashes `instrument` as configured.
    pub fn effective_instrument(&self) -> InstrumentMode {
        match self.coverage_backend {
            CoverageKind::Trace => InstrumentMode::None,
            CoverageKind::Ring => self.instrument.clone(),
        }
    }

    /// The driver-fuzzing workload: EOF plus the model-free MMIO input
    /// plane (driver APIs in the spec, peripheral response stream as a
    /// second mutated plane).
    pub fn eof_driver(os: OsKind, seed: u64) -> Self {
        FuzzerConfig {
            mmio: true,
            ..Self::eof(os, seed)
        }
    }

    /// The cmplog driver workload: the driver campaign with the
    /// Redqueen/I2S pipeline armed — the "cmplog" arm of the pure-vs-
    /// cmplog A/B (`bench/src/bin/i2s.rs`).
    pub fn eof_cmplog(os: OsKind, seed: u64) -> Self {
        FuzzerConfig {
            cmplog: true,
            ..Self::eof_driver(os, seed)
        }
    }

    /// EOF-nf: EOF without feedback guidance.
    pub fn eof_nf(os: OsKind, seed: u64) -> Self {
        FuzzerConfig {
            coverage_feedback: false,
            crash_feedback: false,
            ..Self::eof(os, seed)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eof_defaults_match_paper() {
        let c = FuzzerConfig::eof(OsKind::Zephyr, 1);
        assert!(c.coverage_feedback);
        assert!(c.detection.exception_breakpoints);
        assert!(c.detection.log_monitor);
        assert!(c.detection.timeout_only_secs.is_none());
        assert!(c.recovery.reflash);
        assert_eq!(c.budget_hours, 24.0);
    }

    #[test]
    fn eof_driver_only_adds_the_mmio_plane() {
        let base = FuzzerConfig::eof(OsKind::NuttX, 7);
        let drv = FuzzerConfig::eof_driver(OsKind::NuttX, 7);
        assert!(!base.mmio);
        assert!(drv.mmio);
        assert!(drv.coverage_feedback);
        assert_eq!(drv.gen_mode, GenerationMode::ApiAware);
        assert_eq!(drv.max_calls, base.max_calls);
    }

    #[test]
    fn eof_cmplog_only_arms_the_cmp_channel() {
        let drv = FuzzerConfig::eof_driver(OsKind::FreeRtos, 3);
        let i2s = FuzzerConfig::eof_cmplog(OsKind::FreeRtos, 3);
        assert!(!drv.cmplog, "cmplog defaults off without EOF_CMPLOG");
        assert!(i2s.cmplog);
        assert!(i2s.mmio, "cmplog builds on the driver workload");
        assert!(i2s.coverage_feedback);
        assert_eq!(i2s.max_calls, drv.max_calls);
    }

    #[test]
    fn trace_backend_flashes_the_plain_build() {
        let mut c = FuzzerConfig::eof(OsKind::Zephyr, 1);
        assert_eq!(c.effective_instrument(), c.instrument);
        c.coverage_backend = CoverageKind::Trace;
        assert_eq!(c.effective_instrument(), InstrumentMode::None);
    }

    #[test]
    fn eof_nf_only_drops_feedback() {
        let c = FuzzerConfig::eof_nf(OsKind::Zephyr, 1);
        assert!(!c.coverage_feedback);
        assert!(!c.crash_feedback);
        // Everything else identical to EOF.
        assert!(c.detection.exception_breakpoints);
        assert!(c.recovery.stall_watchdog);
        assert_eq!(c.gen_mode, GenerationMode::ApiAware);
    }
}
