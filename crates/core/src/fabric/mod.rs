//! `eof_core::fabric` — the fault-tolerant distributed campaign fabric.
//!
//! The paper's throughput argument (§6) only pays off when many boards
//! fuzz concurrently, and real multi-worker campaigns die of exactly
//! three things: worker processes that crash, workers that hang without
//! dying, and stores half-written by a death mid-write. The fabric is
//! built robustness-first around those failures:
//!
//! * **cells** — one campaign per OS×seed×wire-mode grid point, each
//!   checkpointing through its own PR-4 persist store;
//! * **leases** ([`lease`]) — time-bounded ownership renewed by
//!   heartbeats, with fencing epochs so a superseded worker can never
//!   race its replacement;
//! * **workers** ([`worker`]) — slice-by-slice execution where *resume
//!   from the last valid checkpoint* is the ordinary path, so
//!   reassignment after a fault is the same code as normal progress;
//! * **the coordinator** ([`coordinator`]) — a deterministic
//!   round-based engine: crashed workers are reassigned with bounded
//!   backoff, hung workers are detected by lease expiry, corrupt
//!   checkpoints degrade via persist's counted skips, and slots that
//!   keep dying are poisoned so the fabric degrades to fewer workers
//!   instead of stalling;
//! * **chaos** ([`chaos`]) — seeded schedules of kills, stalls and torn
//!   writes, replayable bit-for-bit;
//! * **the exchange** — the persist layer's content-addressed seed pool
//!   ([`crate::persist::Exchange`]), fed per-cell on completion, plus
//!   the coverage union the coordinator merges at every heartbeat.
//!
//! The headline gate is [`run_serial`] vs [`run_fabric`]: N workers,
//! with or without injected faults, must produce the same merged
//! [`BugId`] set and coverage bitmap as a plain serial loop over the
//! same cells — the PR-5/PR-6 differential-equivalence pattern applied
//! one layer up.

pub mod chaos;
pub mod coordinator;
pub mod lease;
pub mod worker;

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use eof_rtos::bugs::BugId;
use eof_rtos::OsKind;

use crate::campaign::run_campaign_with_coverage;
use crate::config::FuzzerConfig;
use crate::persist::{Exchange, ExchangeImport};
use crate::supervisor::ResilienceStats;

pub use chaos::{fabric_chaos_plan, FabricChaosPlan, FabricFault, FABRIC_FAULT_KINDS};
pub use coordinator::{EngineRun, FabricAccounting};
pub use lease::{
    CellId, CellOutcome, CellState, Epoch, LeaseTable, ReassignReason, Reassignment, WorkerId,
};
pub use worker::{advance_cell, slice_target_hours, FinishedCell, SliceReport};

/// The fabric's shape and robustness knobs.
#[derive(Debug, Clone)]
pub struct FabricConfig {
    /// The campaign cells to shard (see [`fabric_grid`]).
    pub cells: Vec<FuzzerConfig>,
    /// Worker slots.
    pub workers: usize,
    /// Checkpoints per cell: the budget is split into this many growing
    /// slices, each landing a complete store.
    pub slices_per_cell: usize,
    /// Rounds a lease survives without a heartbeat.
    pub lease_rounds: u64,
    /// Base reassignment backoff, in rounds.
    pub backoff_base: u64,
    /// Backoff ceiling, in rounds.
    pub backoff_cap: u64,
    /// Lease grants a cell may burn before it is reported failed.
    pub max_attempts: u32,
    /// Worker deaths that permanently poison a slot.
    pub poison_kills: u32,
    /// Root directory: per-cell checkpoint stores live under `cells/`,
    /// the corpus exchange under `exchange/`.
    pub root: PathBuf,
}

impl FabricConfig {
    /// A fabric over `cells` with the default robustness envelope.
    pub fn new(cells: Vec<FuzzerConfig>, workers: usize, root: &Path) -> Self {
        FabricConfig {
            cells,
            workers,
            slices_per_cell: 4,
            lease_rounds: 4,
            backoff_base: 1,
            backoff_cap: 8,
            max_attempts: 5,
            poison_kills: 3,
            root: root.to_path_buf(),
        }
    }
}

/// Build the OS×seed×wire-mode cell grid. Wire modes ride along because
/// the vectored/scalar equivalence gate (PR 5) makes them free
/// diversity: same results, different link cost — so the fabric gets a
/// wider grid to shard without widening the oracle.
pub fn fabric_grid(
    oses: &[OsKind],
    seeds: &[u64],
    hours: f64,
    wire_modes: bool,
) -> Vec<FuzzerConfig> {
    let modes: &[bool] = if wire_modes { &[true, false] } else { &[true] };
    let mut cells = Vec::new();
    for &os in oses {
        for &seed in seeds {
            for &vectored in modes {
                let mut config = FuzzerConfig::eof(os, seed);
                config.budget_hours = hours;
                config.snapshot_hours = hours / 4.0;
                config.vectored = vectored;
                cells.push(config);
            }
        }
    }
    cells
}

/// What a fabric run produced.
#[derive(Debug)]
pub struct FabricReport {
    /// Completed cells, in cell order.
    pub outcomes: Vec<(CellId, CellOutcome)>,
    /// Failed cells with reported reasons, in cell order. Failure is an
    /// *outcome*, never silence.
    pub failures: Vec<(CellId, String, u32)>,
    /// Merged bug set over completed cells — the gate quantity.
    pub merged_bugs: BTreeSet<BugId>,
    /// Merged coverage-edge union over completed cells — the gate
    /// quantity.
    pub merged_edges: BTreeSet<u64>,
    /// Live unions merged at every heartbeat (supersets of the above
    /// when cells failed mid-flight — partial progress is not hidden).
    pub observed_bugs: BTreeSet<BugId>,
    /// Heartbeat-merged coverage union.
    pub observed_edges: BTreeSet<u64>,
    /// Fault/recovery accounting.
    pub accounting: FabricAccounting,
    /// Every reassignment, in detection order.
    pub reassignments: Vec<Reassignment>,
    /// Leases granted (first assignments + reassignments).
    pub leases_granted: u64,
    /// Heartbeats processed.
    pub heartbeats: u64,
    /// Leases that lapsed without a heartbeat.
    pub lease_expiries: u64,
    /// Corpus-exchange totals across all per-cell exports.
    pub exchange: ExchangeImport,
    /// Supervisor resilience accounting summed over completed cells'
    /// final derivations.
    pub resilience: ResilienceStats,
    /// Cross-cell telemetry merge (present when recording was on),
    /// absorbed in cell order.
    pub telemetry: Option<eof_telemetry::TelemetrySummary>,
    /// Contract violations found by [`check_fabric_invariants`]. Empty
    /// means every fault ended recovered-or-reported inside its bounds.
    pub violations: Vec<String>,
}

/// Run the fabric under a (possibly empty) fault schedule.
pub fn run_fabric(config: &FabricConfig, plan: &FabricChaosPlan) -> FabricReport {
    let engine = coordinator::run_engine(config, plan);

    let mut outcomes: Vec<(CellId, CellOutcome)> = engine
        .lease
        .outcomes()
        .map(|(id, o)| (id, o.clone()))
        .collect();

    // Export every completed cell's seed pool into the exchange, in
    // cell order — deterministic regardless of completion order, so
    // exchange totals are gate-comparable across worker counts.
    let exchange = Exchange::open(&config.root.join("exchange")).ok();
    let mut exchange_totals = ExchangeImport::default();
    for (cell, outcome) in &mut outcomes {
        let dir = coordinator::cell_dir(&config.root, *cell);
        if let (Some(ex), Ok(loaded)) = (&exchange, crate::persist::open(&dir)) {
            let stats = ex.import(&loaded.seeds, loaded.manifest.fingerprint);
            outcome.seeds_exported = stats.imported;
            exchange_totals.imported += stats.imported;
            exchange_totals.deduped += stats.deduped;
            exchange_totals.write_errors += stats.write_errors;
        }
    }

    // Supervisor accounting, summed in cell order.
    let mut sorted_res = engine.resilience;
    sorted_res.sort_by_key(|(cell, _)| *cell);
    let mut resilience = ResilienceStats::default();
    for (_, r) in &sorted_res {
        resilience.absorb(r);
    }

    // Gate quantities: unions over completed cells only.
    let mut merged_bugs = BTreeSet::new();
    let mut merged_edges = BTreeSet::new();
    for (_, outcome) in &outcomes {
        merged_bugs.extend(outcome.bugs.iter().copied());
        merged_edges.extend(outcome.coverage_edges.iter().copied());
    }

    // Cross-cell telemetry merge, in cell order.
    let mut sorted_tel = engine.telemetry;
    sorted_tel.sort_by_key(|(cell, _)| *cell);
    let telemetry = sorted_tel.into_iter().fold(None, |acc, (_, part)| {
        Some(match acc {
            None => part,
            Some(mut merged) => {
                eof_telemetry::TelemetrySummary::absorb(&mut merged, &part);
                merged
            }
        })
    });

    let mut report = FabricReport {
        failures: engine.lease.failures(),
        reassignments: engine.lease.reassignments.clone(),
        leases_granted: engine.lease.leases_granted,
        heartbeats: engine.lease.heartbeats,
        lease_expiries: engine.lease.lease_expiries,
        outcomes,
        merged_bugs,
        merged_edges,
        observed_bugs: engine.observed_bugs,
        observed_edges: engine.observed_edges,
        accounting: engine.accounting,
        exchange: exchange_totals,
        resilience,
        telemetry,
        violations: Vec::new(),
    };
    report.violations = check_fabric_invariants(&report, config, plan);
    report
}

/// The serial reference: a plain `run_campaign` loop over the same
/// cells — no fabric, no slices, no persistence — merged identically.
/// This is what the determinism gate compares a fabric run against.
#[derive(Debug)]
pub struct SerialMerge {
    /// Merged bug set.
    pub bugs: BTreeSet<BugId>,
    /// Merged coverage-edge union.
    pub coverage_edges: BTreeSet<u64>,
    /// Per-cell (branches, execs), in cell order.
    pub cells: Vec<(usize, u64)>,
    /// Supervisor resilience accounting summed over cells.
    pub resilience: ResilienceStats,
}

/// Run the serial reference over `cells`.
pub fn run_serial(cells: &[FuzzerConfig]) -> SerialMerge {
    let mut merge = SerialMerge {
        bugs: BTreeSet::new(),
        coverage_edges: BTreeSet::new(),
        cells: Vec::new(),
        resilience: ResilienceStats::default(),
    };
    for cell in cells {
        let mut config = cell.clone();
        config.persist = None;
        let (result, coverage) = run_campaign_with_coverage(config);
        merge.bugs.extend(result.bugs.iter().copied());
        merge.coverage_edges.extend(coverage.iter());
        merge.cells.push((result.branches, result.stats.execs));
        merge.resilience.absorb(&result.resilience);
    }
    merge
}

/// The fabric's robustness contract, checked after every run:
///
/// 1. every cell settled — `Done` or `Failed` with a reason (recovered
///    or reported, never silent, never stuck);
/// 2. a fault-free schedule recovers nothing because nothing fails;
/// 3. reassignment is bounded: detection-to-schedulable latency never
///    exceeds the backoff cap, and no cell burned more than
///    `max_attempts` grants;
/// 4. reassigned cells actually resumed: unless their checkpoint was
///    discarded as torn, they prefix-verified prior work;
/// 5. degradation stays sane: poisoned slots never exceed the slot
///    count, and completed work is never retracted (gate unions are
///    subsets of the heartbeat-observed unions).
pub fn check_fabric_invariants(
    report: &FabricReport,
    config: &FabricConfig,
    plan: &FabricChaosPlan,
) -> Vec<String> {
    let mut violations = Vec::new();
    let settled = report.outcomes.len() + report.failures.len();
    if settled != config.cells.len() {
        violations.push(format!(
            "unsettled cells: {} outcomes + {} failures != {} cells",
            report.outcomes.len(),
            report.failures.len(),
            config.cells.len()
        ));
    }
    for (cell, reason, _) in &report.failures {
        if reason.is_empty() {
            violations.push(format!("cell {cell} failed without a reason"));
        }
    }
    if plan.total() == 0 {
        if !report.failures.is_empty() {
            violations.push(format!(
                "fault-free run reported {} failures",
                report.failures.len()
            ));
        }
        if !report.reassignments.is_empty() {
            violations.push(format!(
                "fault-free run performed {} reassignments",
                report.reassignments.len()
            ));
        }
        if report.accounting.worker_deaths != 0 {
            violations.push(format!(
                "fault-free run observed {} worker deaths",
                report.accounting.worker_deaths
            ));
        }
    }
    for r in &report.reassignments {
        if r.ready_at != u64::MAX && r.ready_at - r.detected_at > config.backoff_cap {
            violations.push(format!(
                "cell {} reassignment backoff {} exceeds cap {}",
                r.cell,
                r.ready_at - r.detected_at,
                config.backoff_cap
            ));
        }
    }
    for (cell, outcome) in &report.outcomes {
        if outcome.attempts > config.max_attempts {
            violations.push(format!(
                "cell {cell} consumed {} attempts (max {})",
                outcome.attempts, config.max_attempts
            ));
        }
        if outcome.attempts > 1
            && outcome.prefix_verified == 0
            && outcome.checkpoints_discarded == 0
        {
            violations.push(format!(
                "cell {cell} was reassigned but neither resumed a checkpoint nor discarded one"
            ));
        }
        if !outcome
            .bugs
            .iter()
            .all(|b| report.observed_bugs.contains(b))
        {
            violations.push(format!(
                "cell {cell} holds bugs missing from the heartbeat-observed union"
            ));
        }
    }
    if report.accounting.poisoned_workers.len() > config.workers {
        violations.push(format!(
            "{} poisoned slots exceed the {}-slot pool",
            report.accounting.poisoned_workers.len(),
            config.workers
        ));
    }
    if !report.merged_edges.is_subset(&report.observed_edges) {
        violations.push("completed coverage union exceeds the observed union".to_string());
    }
    violations
}

/// Compare a fabric run against the serial reference (and, for chaos
/// runs, against a fault-free fabric run): the zero-lost-work gate.
/// Returns human-readable mismatches; empty means byte-identical merged
/// bug sets and coverage bitmaps.
pub fn diff_against_serial(report: &FabricReport, serial: &SerialMerge) -> Vec<String> {
    let mut diffs = Vec::new();
    if !report.failures.is_empty() {
        // Failed cells are reported, not silently compared away — a
        // gate run with failures is a gate failure.
        diffs.push(format!(
            "fabric reported {} failed cells; serial comparison requires all cells complete",
            report.failures.len()
        ));
        return diffs;
    }
    if report.merged_bugs != serial.bugs {
        diffs.push(format!(
            "merged BugId sets differ: fabric {:?} vs serial {:?}",
            report.merged_bugs, serial.bugs
        ));
    }
    if report.merged_edges != serial.coverage_edges {
        diffs.push(format!(
            "merged coverage differs: fabric {} edges vs serial {} edges",
            report.merged_edges.len(),
            serial.coverage_edges.len()
        ));
    }
    for (cell, outcome) in &report.outcomes {
        let (branches, execs) = serial.cells[*cell];
        if outcome.branches != branches || outcome.execs != execs {
            diffs.push(format!(
                "cell {cell}: fabric {}br/{}ex vs serial {branches}br/{execs}ex",
                outcome.branches, outcome.execs
            ));
        }
    }
    diffs
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmproot(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "eof-fabric-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn small_fabric(tag: &str, workers: usize) -> FabricConfig {
        let cells = fabric_grid(&[OsKind::FreeRtos, OsKind::Zephyr], &[7], 0.06, false);
        FabricConfig::new(cells, workers, &tmproot(tag))
    }

    #[test]
    fn fault_free_fabric_equals_serial() {
        let config = small_fabric("clean", 2);
        let report = run_fabric(&config, &FabricChaosPlan::none());
        assert_eq!(report.violations, Vec::<String>::new());
        assert!(report.failures.is_empty());
        assert_eq!(report.outcomes.len(), config.cells.len());
        let serial = run_serial(&config.cells);
        assert_eq!(diff_against_serial(&report, &serial), Vec::<String>::new());
        assert!(report.heartbeats > 0);
        assert_eq!(report.lease_expiries, 0);
        let _ = std::fs::remove_dir_all(&config.root);
    }

    #[test]
    fn worker_counts_do_not_change_the_merge() {
        let one = small_fabric("w1", 1);
        let three = small_fabric("w3", 3);
        let a = run_fabric(&one, &FabricChaosPlan::none());
        let b = run_fabric(&three, &FabricChaosPlan::none());
        assert_eq!(a.merged_bugs, b.merged_bugs);
        assert_eq!(a.merged_edges, b.merged_edges);
        assert_eq!(
            a.exchange.imported, b.exchange.imported,
            "exchange is order-independent"
        );
        let _ = std::fs::remove_dir_all(&one.root);
        let _ = std::fs::remove_dir_all(&three.root);
    }

    #[test]
    fn kill_mid_cell_is_reassigned_and_loses_nothing() {
        let mut config = small_fabric("kill", 2);
        config.slices_per_cell = 2;
        // Kill cell 0's worker after its first checkpoint lands.
        let plan = FabricChaosPlan::none().with(0, 0, FabricFault::Kill);
        let report = run_fabric(&config, &plan);
        assert_eq!(report.violations, Vec::<String>::new());
        assert!(report.failures.is_empty());
        assert_eq!(report.accounting.worker_deaths, 1);
        assert_eq!(report.reassignments.len(), 1);
        assert_eq!(report.reassignments[0].reason, ReassignReason::WorkerDeath);
        let cell0 = &report.outcomes[0].1;
        assert_eq!(cell0.attempts, 2, "one reassignment");
        assert!(
            cell0.prefix_verified > 0,
            "successor resumed the checkpoint"
        );
        let serial = run_serial(&config.cells);
        assert_eq!(diff_against_serial(&report, &serial), Vec::<String>::new());
        let _ = std::fs::remove_dir_all(&config.root);
    }

    #[test]
    fn long_stall_expires_the_lease_and_fences_the_sleeper() {
        let mut config = small_fabric("stall", 2);
        config.slices_per_cell = 2;
        let plan = FabricChaosPlan::none().with(
            0,
            0,
            FabricFault::Stall {
                rounds: config.lease_rounds + 3,
            },
        );
        let report = run_fabric(&config, &plan);
        assert_eq!(report.violations, Vec::<String>::new());
        assert!(report.failures.is_empty());
        assert_eq!(report.lease_expiries, 1, "the lease lapsed");
        assert_eq!(
            report.accounting.fenced_wakeups, 1,
            "the sleeper was fenced"
        );
        assert_eq!(report.accounting.worker_deaths, 0, "nobody died");
        let serial = run_serial(&config.cells);
        assert_eq!(diff_against_serial(&report, &serial), Vec::<String>::new());
        let _ = std::fs::remove_dir_all(&config.root);
    }

    #[test]
    fn short_stall_recovers_with_a_late_heartbeat() {
        let mut config = small_fabric("latehb", 2);
        config.slices_per_cell = 2;
        config.lease_rounds = 6;
        let plan = FabricChaosPlan::none().with(0, 0, FabricFault::Stall { rounds: 2 });
        let report = run_fabric(&config, &plan);
        assert_eq!(report.violations, Vec::<String>::new());
        assert_eq!(report.lease_expiries, 0, "lease survived the stall");
        assert_eq!(report.accounting.late_heartbeats, 1);
        assert_eq!(report.accounting.fenced_wakeups, 0);
        assert!(report.reassignments.is_empty());
        let _ = std::fs::remove_dir_all(&config.root);
    }

    #[test]
    fn torn_manifest_discards_and_torn_seed_degrades() {
        let mut config = small_fabric("torn", 2);
        config.slices_per_cell = 2;
        let plan = FabricChaosPlan::none()
            .with(0, 0, FabricFault::TornManifest)
            .with(1, 0, FabricFault::TornSeed);
        let report = run_fabric(&config, &plan);
        assert_eq!(report.violations, Vec::<String>::new());
        assert!(report.failures.is_empty());
        let cell0 = &report.outcomes[0].1;
        let cell1 = &report.outcomes[1].1;
        assert_eq!(cell0.checkpoints_discarded, 1, "torn manifest discarded");
        assert_eq!(cell1.checkpoint_skips, 1, "torn seed counted-skip");
        assert_eq!(cell1.checkpoints_discarded, 0, "store survived");
        let serial = run_serial(&config.cells);
        assert_eq!(diff_against_serial(&report, &serial), Vec::<String>::new());
        let _ = std::fs::remove_dir_all(&config.root);
    }

    #[test]
    fn repeated_kills_poison_the_slot_and_the_fabric_degrades() {
        let mut config = small_fabric("poison", 1);
        config.slices_per_cell = 4;
        config.poison_kills = 2;
        config.max_attempts = 8;
        // Two kills against the only worker poison its slot; with no
        // slots left, remaining work must fail loudly — not hang.
        let plan =
            FabricChaosPlan::none()
                .with(0, 0, FabricFault::Kill)
                .with(0, 1, FabricFault::Kill);
        let report = run_fabric(&config, &plan);
        assert_eq!(report.accounting.poisoned_workers, vec![0]);
        assert!(
            !report.failures.is_empty(),
            "zero live workers must fail the rest loudly"
        );
        assert!(report
            .failures
            .iter()
            .all(|(_, reason, _)| reason.contains("no live workers")));
        // Reported, not violated: this IS the degradation contract.
        assert_eq!(report.violations, Vec::<String>::new());
        let _ = std::fs::remove_dir_all(&config.root);
    }

    #[test]
    fn exhausted_attempts_are_a_reported_failure() {
        let mut config = small_fabric("exhaust", 2);
        config.slices_per_cell = 4;
        config.max_attempts = 2;
        config.poison_kills = 10;
        let plan =
            FabricChaosPlan::none()
                .with(0, 0, FabricFault::Kill)
                .with(0, 1, FabricFault::Kill);
        let report = run_fabric(&config, &plan);
        let failed: Vec<_> = report.failures.iter().filter(|(c, _, _)| *c == 0).collect();
        assert_eq!(failed.len(), 1, "cell 0 exhausted its attempts");
        assert!(failed[0].1.contains("lease attempts"), "{}", failed[0].1);
        // The other cell still completed.
        assert!(report.outcomes.iter().any(|(c, _)| *c == 1));
        assert_eq!(report.violations, Vec::<String>::new());
        let _ = std::fs::remove_dir_all(&config.root);
    }

    #[test]
    fn seeded_chaos_schedules_replay_bit_for_bit() {
        let mut config = small_fabric("replay", 3);
        config.slices_per_cell = 2;
        let plan = fabric_chaos_plan(
            23,
            config.cells.len(),
            config.slices_per_cell,
            4,
            config.max_attempts,
            config.lease_rounds,
        );
        let first = run_fabric(&config, &plan);
        let root2 = tmproot("replay2");
        let mut again = config.clone();
        again.root = root2.clone();
        let second = run_fabric(&again, &plan);
        assert_eq!(first.merged_bugs, second.merged_bugs);
        assert_eq!(first.merged_edges, second.merged_edges);
        assert_eq!(first.leases_granted, second.leases_granted);
        assert_eq!(first.reassignments, second.reassignments);
        assert_eq!(first.accounting.rounds, second.accounting.rounds);
        assert_eq!(first.violations, Vec::<String>::new());
        let _ = std::fs::remove_dir_all(&config.root);
        let _ = std::fs::remove_dir_all(&root2);
    }
}
