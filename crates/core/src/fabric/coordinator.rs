//! The fabric coordinator: a deterministic round-based engine that
//! shards cells across worker slots under the lease state machine.
//!
//! Each round (one coordinator tick) has a fixed phase order, and every
//! phase visits workers in ascending slot id, so the complete history —
//! which worker got which cell, which fault serial each slice drew,
//! which order reports merged — is a pure function of `(FabricConfig,
//! FabricChaosPlan)`. The only parallelism is *inside* a round: busy
//! workers execute their slices on scoped threads, but their results
//! are folded back in slot order. That is what lets CI assert an
//! N-worker fabric byte-equal to serial, and lets every chaos schedule
//! replay bit-for-bit.
//!
//! Phase order per round:
//! 1. **assign** — idle live workers lease the lowest schedulable cell;
//! 2. **execute** — busy, non-stalled workers run one checkpoint slice
//!    each (in parallel), drawing fault serials in slot order first;
//! 3. **deliver** — in slot order: stalled workers count down (waking
//!    ones heartbeat — late but live renews, fenced discards), fresh
//!    results heartbeat + merge, deaths reassign the cell and maybe
//!    poison the slot;
//! 4. **expire** — leases that lapsed without a heartbeat send their
//!    cells back to the pool with backoff (the hung owner, still
//!    holding its stale epoch, gets fenced on wake-up).

use std::collections::{BTreeMap, BTreeSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

use eof_rtos::bugs::BugId;

use super::chaos::{FabricChaosPlan, FabricFault};
use super::lease::{CellId, CellOutcome, Epoch, LeaseTable, ReassignReason, WorkerId};
use super::worker::{advance_cell, slice_target_hours, FinishedCell, SliceReport};
use super::FabricConfig;

/// Fabric-level fault and recovery accounting (the lease table carries
/// its own grant/heartbeat/expiry counters alongside).
#[derive(Debug, Clone, Default)]
pub struct FabricAccounting {
    /// Coordinator rounds executed.
    pub rounds: u64,
    /// Worker deaths observed (kills, torn-write deaths, panics).
    pub worker_deaths: u64,
    /// Stalls injected (heartbeats withheld at a slice boundary).
    pub stalls_injected: u64,
    /// Stalled workers that renewed in time (lease still live on wake).
    pub late_heartbeats: u64,
    /// Stalled workers fenced on wake (their epoch was superseded).
    pub fenced_wakeups: u64,
    /// Checkpoints left with a torn manifest by a dying worker.
    pub torn_manifests: u64,
    /// Checkpoints left with a torn seed entry by a dying worker.
    pub torn_seeds: u64,
    /// Dead worker slots restarted with a fresh process.
    pub worker_restarts: u64,
    /// Slots permanently removed after `poison_kills` deaths, in
    /// poisoning order. The fabric degrades to the survivors.
    pub poisoned_workers: Vec<WorkerId>,
}

/// What the engine hands back to [`super::run_fabric`].
#[derive(Debug)]
pub struct EngineRun {
    /// Final lease table: outcomes, failures, reassignment log.
    pub lease: LeaseTable,
    /// Fault/recovery accounting.
    pub accounting: FabricAccounting,
    /// Live coverage union, merged at every heartbeat (a superset of
    /// the completed-cell union when cells failed mid-flight).
    pub observed_edges: BTreeSet<u64>,
    /// Live bug union, merged at every heartbeat.
    pub observed_bugs: BTreeSet<BugId>,
    /// Telemetry summaries of finished cells (present when recording
    /// was on), keyed by cell.
    pub telemetry: Vec<(CellId, eof_telemetry::TelemetrySummary)>,
    /// Supervisor resilience accounting of each finished cell's final
    /// derivation, keyed by cell.
    pub resilience: Vec<(CellId, crate::supervisor::ResilienceStats)>,
}

/// One worker's in-flight assignment.
struct Task {
    cell: CellId,
    epoch: Epoch,
    /// Slice index this worker is executing (or stalled on).
    slice: usize,
    /// A completed-but-unreported slice: the stall fault. The report is
    /// held for `remaining` rounds with no heartbeat sent.
    pending: Option<(SliceReport, u64)>,
}

/// One worker slot (a restartable OS-process stand-in).
#[derive(Default)]
struct Slot {
    kills: u32,
    poisoned: bool,
    task: Option<Task>,
}

/// Coordinator-side progress of one cell, surviving reassignments.
#[derive(Debug, Clone, Default)]
struct CellProgress {
    /// Next slice to hand a (re)assigned worker. Only advanced by a
    /// delivered report — a lost report means the slice re-runs, which
    /// resume makes a cheap prefix-verify.
    next_slice: usize,
    /// Slice executions so far: the chaos fault key.
    serial: u32,
    skips: usize,
    discarded: usize,
    prefix_verified: usize,
}

enum SliceEnd {
    Report(SliceReport),
    Stalled(SliceReport, u64),
    Death { label: &'static str },
}

/// The coordinator's heartbeat-time merge state.
#[derive(Default)]
struct MergeState {
    observed_edges: BTreeSet<u64>,
    observed_bugs: BTreeSet<BugId>,
    telemetry: Vec<(CellId, eof_telemetry::TelemetrySummary)>,
    resilience: Vec<(CellId, crate::supervisor::ResilienceStats)>,
}

/// Run the fabric to completion. Deterministic in its arguments.
pub(super) fn run_engine(config: &FabricConfig, plan: &FabricChaosPlan) -> EngineRun {
    assert!(config.workers > 0, "fabric needs at least one worker slot");
    assert!(config.slices_per_cell > 0, "cells need at least one slice");
    let cells = &config.cells;
    let mut lease = LeaseTable::new(cells.len());
    let mut slots: Vec<Slot> = (0..config.workers).map(|_| Slot::default()).collect();
    let mut progress: Vec<CellProgress> = vec![CellProgress::default(); cells.len()];
    let mut acct = FabricAccounting::default();
    let mut merge = MergeState::default();

    // Wedge guard: every slice execution, retry, backoff gap and stall
    // fits far inside this bound; crossing it means the engine stopped
    // making progress, which must end in a loud report, not a hang.
    let max_rounds = (cells.len() as u64 * config.slices_per_cell as u64 + 1)
        * (config.max_attempts as u64 + 1)
        * (config.lease_rounds + config.backoff_cap + 2)
        + 64;

    let mut tick: u64 = 0;
    while !lease.all_settled() {
        tick += 1;
        acct.rounds = tick;
        if tick > max_rounds {
            lease.fail_remaining("fabric round bound exceeded (engine wedged)");
            break;
        }
        if slots.iter().all(|s| s.poisoned) {
            // Degrading to zero workers: report every unfinished cell
            // rather than spinning on an empty pool.
            lease.fail_remaining("no live workers left (all slots poisoned)");
            break;
        }

        // Phase 1: assign. Idle live workers take the lowest
        // schedulable cell, in slot order.
        for (w, slot) in slots.iter_mut().enumerate() {
            if slot.poisoned || slot.task.is_some() {
                continue;
            }
            let Some((cell, _)) = lease.next_schedulable(tick) else {
                break;
            };
            let epoch = lease.grant(cell, w, tick, config.lease_rounds);
            slot.task = Some(Task {
                cell,
                epoch,
                slice: progress[cell].next_slice,
                pending: None,
            });
        }

        // Phase 2: execute. Fault serials are drawn here in slot order,
        // before any thread runs, so the schedule depends only on the
        // (deterministic) assignment history.
        let mut jobs: Vec<(WorkerId, CellId, usize, Option<FabricFault>)> = Vec::new();
        for (w, slot) in slots.iter().enumerate() {
            if let Some(task) = &slot.task {
                if task.pending.is_none() {
                    jobs.push((
                        w,
                        task.cell,
                        task.slice,
                        plan.at(task.cell, progress[task.cell].serial),
                    ));
                }
            }
        }
        for &(_, cell, _, _) in &jobs {
            progress[cell].serial += 1;
        }
        let ends: BTreeMap<WorkerId, SliceEnd> = crossbeam::thread::scope(|s| {
            let handles: Vec<_> = jobs
                .iter()
                .map(|&(w, cell, slice, fault)| {
                    let cfg = &cells[cell];
                    let dir = cell_dir(&config.root, cell);
                    let slices = config.slices_per_cell;
                    s.spawn(move |_| (w, execute_slice(cfg, &dir, slices, slice, fault)))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("fabric worker thread"))
                .collect()
        })
        .expect("fabric scope");

        // Phase 3: deliver, in slot order.
        for (w, slot) in slots.iter_mut().enumerate() {
            if let Some((report, remaining)) = slot.task.as_mut().and_then(|t| {
                t.pending.as_mut().map(|(r, left)| {
                    *left = left.saturating_sub(1);
                    (r.clone(), *left)
                })
            }) {
                if remaining > 0 {
                    continue; // still hung
                }
                // Wake-up: heartbeat under the (possibly stale) epoch.
                let task = slot.task.as_mut().expect("stalled slot has a task");
                task.pending = None;
                let (cell, epoch) = (task.cell, task.epoch);
                if lease.heartbeat(cell, epoch, tick, config.lease_rounds) {
                    acct.late_heartbeats += 1;
                    deliver(&mut lease, &mut progress, slot, &mut merge, report);
                } else {
                    // Fenced: the cell moved on while we slept. Discard
                    // the claim — the successor owns the store now.
                    acct.fenced_wakeups += 1;
                    slot.task = None;
                }
                continue;
            }
            let Some(end) = ends.get(&w) else { continue };
            let task = slot.task.as_ref().expect("executing slot has a task");
            let (cell, epoch) = (task.cell, task.epoch);
            match end {
                SliceEnd::Report(report) => {
                    if lease.heartbeat(cell, epoch, tick, config.lease_rounds) {
                        deliver(&mut lease, &mut progress, slot, &mut merge, report.clone());
                    } else {
                        acct.fenced_wakeups += 1;
                        slot.task = None;
                    }
                }
                SliceEnd::Stalled(report, rounds) => {
                    // The slice checkpointed, but the worker hangs: the
                    // report is withheld, and so is the heartbeat.
                    acct.stalls_injected += 1;
                    let task = slot.task.as_mut().expect("slot has a task");
                    task.pending = Some((report.clone(), *rounds));
                }
                SliceEnd::Death { label } => {
                    acct.worker_deaths += 1;
                    match *label {
                        "torn-manifest" => acct.torn_manifests += 1,
                        "torn-seed" => acct.torn_seeds += 1,
                        _ => {}
                    }
                    if lease.epoch_live(cell, epoch) {
                        lease.reassign(
                            cell,
                            tick,
                            ReassignReason::WorkerDeath,
                            config.backoff_base,
                            config.backoff_cap,
                            config.max_attempts,
                        );
                    }
                    slot.task = None;
                    slot.kills += 1;
                    if slot.kills >= config.poison_kills {
                        slot.poisoned = true;
                        acct.poisoned_workers.push(w);
                    } else {
                        acct.worker_restarts += 1;
                    }
                }
            }
        }

        // Phase 4: expire. Cells whose lease lapsed with no heartbeat
        // go back to the pool; the hung owner keeps its stale epoch and
        // is fenced whenever it wakes.
        for (cell, _worker) in lease.expired(tick) {
            lease.reassign(
                cell,
                tick,
                ReassignReason::LeaseExpiry,
                config.backoff_base,
                config.backoff_cap,
                config.max_attempts,
            );
        }
    }

    EngineRun {
        lease,
        accounting: acct,
        observed_edges: merge.observed_edges,
        observed_bugs: merge.observed_bugs,
        telemetry: merge.telemetry,
        resilience: merge.resilience,
    }
}

/// The checkpoint directory of one cell.
pub(super) fn cell_dir(root: &Path, cell: CellId) -> PathBuf {
    root.join("cells").join(format!("cell-{cell:03}"))
}

/// Fold a delivered slice report into the coordinator's state: merge
/// coverage/bugs (the periodic exchange), advance the cell's slice
/// ladder, and settle the cell when the final slice landed.
fn deliver(
    lease: &mut LeaseTable,
    progress: &mut [CellProgress],
    slot: &mut Slot,
    merge: &mut MergeState,
    report: SliceReport,
) {
    let task = slot.task.as_mut().expect("delivering slot has a task");
    let cell = task.cell;
    merge
        .observed_edges
        .extend(report.coverage_edges.iter().copied());
    merge.observed_bugs.extend(report.bugs.iter().copied());
    let prog = &mut progress[cell];
    prog.skips += report.checkpoint_skips;
    prog.discarded += report.checkpoints_discarded;
    prog.prefix_verified += report.prefix_verified;
    match report.finished {
        Some(FinishedCell {
            branches,
            execs,
            crashes,
            resilience,
            telemetry: cell_tel,
        }) => {
            merge.resilience.push((cell, resilience));
            if let Some(summary) = cell_tel {
                merge.telemetry.push((cell, summary));
            }
            lease.complete(
                cell,
                CellOutcome {
                    bugs: report.bugs,
                    coverage_edges: report.coverage_edges,
                    branches,
                    execs,
                    crashes,
                    seeds_exported: 0, // filled by the exchange export
                    attempts: 0,       // filled by `complete`
                    checkpoint_skips: prog.skips,
                    checkpoints_discarded: prog.discarded,
                    prefix_verified: prog.prefix_verified,
                },
            );
            slot.task = None;
        }
        None => {
            task.slice += 1;
            prog.next_slice = task.slice;
        }
    }
}

/// Execute one slice, then apply the scheduled fault (if any) at the
/// slice boundary — after the checkpoint write, mirroring a process
/// that dies between atomic store renames, never inside one. A panic in
/// the campaign itself is a worker death too (crash isolation).
fn execute_slice(
    config: &crate::config::FuzzerConfig,
    dir: &Path,
    slices: usize,
    slice: usize,
    fault: Option<FabricFault>,
) -> SliceEnd {
    let target = slice_target_hours(config.budget_hours, slices, slice);
    let report = match catch_unwind(AssertUnwindSafe(|| advance_cell(config, dir, target))) {
        Ok(report) => report,
        Err(_) => return SliceEnd::Death { label: "panic" },
    };
    match fault {
        None => SliceEnd::Report(report),
        Some(FabricFault::Kill) => SliceEnd::Death { label: "kill" },
        Some(FabricFault::TornManifest) => {
            tear_file(&dir.join("manifest.eof"));
            SliceEnd::Death {
                label: "torn-manifest",
            }
        }
        Some(FabricFault::TornSeed) => {
            tear_first_seed(dir);
            SliceEnd::Death { label: "torn-seed" }
        }
        Some(FabricFault::Stall { rounds }) => SliceEnd::Stalled(report, rounds.max(1)),
    }
}

/// Truncate a file to half its length — the on-disk shape a dying
/// writer leaves when it never reached the atomic rename.
fn tear_file(path: &Path) {
    if let Ok(text) = std::fs::read_to_string(path) {
        let _ = std::fs::write(path, &text[..text.len() / 2]);
    }
}

/// Tear the first (hash-ordered) seed entry of a checkpoint's corpus.
fn tear_first_seed(dir: &Path) {
    let Ok(entries) = std::fs::read_dir(dir.join("corpus")) else {
        return;
    };
    let mut seeds: Vec<PathBuf> = entries
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("seed"))
        .collect();
    seeds.sort();
    if let Some(victim) = seeds.first() {
        tear_file(victim);
    }
}
