//! Lease-based cell assignment: the fabric's ownership state machine.
//!
//! Every campaign cell is owned by at most one worker at a time, and
//! ownership is *time-bounded*: a lease granted at tick `t` expires at
//! `t + lease_rounds` unless the worker renews it with a heartbeat
//! (which it does at every slice boundary). The coordinator never asks
//! a worker whether it is alive — it watches the lease:
//!
//! * a worker that crashes is detected immediately (its execution slot
//!   reports the death that round);
//! * a worker that *hangs* is detected by lease expiry — no heartbeat
//!   before the deadline means the cell goes back to the pool;
//! * a worker that was merely slow discovers on wake-up that its lease
//!   epoch was superseded (fencing) and discards its claim instead of
//!   racing the replacement.
//!
//! Reassignment is bounded: each attempt backs off exponentially and a
//! cell that keeps failing is *reported* as failed after
//! `max_attempts`, never silently dropped and never retried forever.

use std::collections::BTreeSet;

use eof_rtos::bugs::BugId;

/// Index of a cell in the fabric's cell table.
pub type CellId = usize;

/// Index of a worker slot.
pub type WorkerId = usize;

/// Monotonic fencing token: every lease grant gets a fresh epoch, and a
/// worker's writes are only honoured while its epoch is the cell's
/// current one. A worker waking from a stall with a stale epoch has
/// been fenced off and must discard its claim.
pub type Epoch = u64;

/// Why a cell moved back to the pending pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReassignReason {
    /// The owning worker's process died (crash, kill, panic).
    WorkerDeath,
    /// The lease expired without a heartbeat (hung/stalled worker).
    LeaseExpiry,
}

impl ReassignReason {
    /// Report label.
    pub fn label(&self) -> &'static str {
        match self {
            ReassignReason::WorkerDeath => "worker-death",
            ReassignReason::LeaseExpiry => "lease-expiry",
        }
    }
}

/// One recorded reassignment, for the bounded-recovery invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reassignment {
    /// The cell that lost its owner.
    pub cell: CellId,
    /// Tick at which the loss was detected.
    pub detected_at: u64,
    /// Tick at which the cell became schedulable again (after backoff).
    pub ready_at: u64,
    /// Why the cell was taken back.
    pub reason: ReassignReason,
    /// The attempt number being abandoned (0-based).
    pub attempt: u32,
}

/// What one completed cell contributed to the merge.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CellOutcome {
    /// Table-2 bugs the cell's campaign found.
    pub bugs: BTreeSet<BugId>,
    /// Final coverage bitmap edge ids, sorted ascending.
    pub coverage_edges: Vec<u64>,
    /// Distinct branches (len of `coverage_edges`'s bitmap view).
    pub branches: usize,
    /// Executions the campaign performed.
    pub execs: u64,
    /// Unique crash classes persisted in the cell's store.
    pub crashes: usize,
    /// Seeds the cell exported to the corpus exchange.
    pub seeds_exported: usize,
    /// Lease attempts the cell consumed (1 = no reassignment).
    pub attempts: u32,
    /// Checkpoint store entries persist skipped as corrupt while
    /// resuming (counted-skip degradation absorbed en route).
    pub checkpoint_skips: usize,
    /// Checkpoints discarded wholesale (torn manifest → fresh rerun).
    pub checkpoints_discarded: usize,
    /// Store prefix entries re-verified by `resume_campaign` across all
    /// resumes of this cell (seeds + crashes + coverage edges).
    pub prefix_verified: usize,
}

/// Scheduling state of one cell.
#[derive(Debug, Clone, PartialEq)]
pub enum CellState {
    /// Waiting for a worker; schedulable once `ready_at` is reached.
    Pending {
        /// Earliest tick the cell may be leased (backoff gate).
        ready_at: u64,
        /// Attempt number the next lease will carry (0-based).
        attempt: u32,
    },
    /// Owned by a worker under a live lease.
    Leased {
        /// The owning worker slot.
        worker: WorkerId,
        /// Fencing token of this grant.
        epoch: Epoch,
        /// Tick the lease lapses without a heartbeat.
        expires_at: u64,
        /// Attempt number of this grant (0-based).
        attempt: u32,
    },
    /// Completed; contribution merged.
    Done(Box<CellOutcome>),
    /// Permanently failed — *reported*, never silently lost.
    Failed {
        /// Human-readable reason (bounded retries exhausted, no live
        /// workers left, ...).
        reason: String,
        /// Attempts consumed before giving up.
        attempts: u32,
    },
}

/// The coordinator's view of every cell, plus the lease bookkeeping
/// that the failure detectors run on.
#[derive(Debug)]
pub struct LeaseTable {
    states: Vec<CellState>,
    next_epoch: Epoch,
    /// Every reassignment, in detection order.
    pub reassignments: Vec<Reassignment>,
    /// Leases granted (first assignments + reassignments).
    pub leases_granted: u64,
    /// Heartbeats processed (lease renewals).
    pub heartbeats: u64,
    /// Leases that lapsed without a heartbeat.
    pub lease_expiries: u64,
}

impl LeaseTable {
    /// A table with `cells` pending cells, all schedulable at tick 0.
    pub fn new(cells: usize) -> Self {
        LeaseTable {
            states: vec![
                CellState::Pending {
                    ready_at: 0,
                    attempt: 0
                };
                cells
            ],
            next_epoch: 1,
            reassignments: Vec::new(),
            leases_granted: 0,
            heartbeats: 0,
            lease_expiries: 0,
        }
    }

    /// Cell count.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// True when the table holds no cells at all.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Current state of one cell.
    pub fn state(&self, cell: CellId) -> &CellState {
        &self.states[cell]
    }

    /// Lowest-numbered pending cell schedulable at `tick`, if any.
    /// Deterministic: ties are impossible (ids are unique) and the scan
    /// order is fixed, so identical histories pick identical cells.
    pub fn next_schedulable(&self, tick: u64) -> Option<(CellId, u32)> {
        self.states.iter().enumerate().find_map(|(id, s)| match s {
            CellState::Pending { ready_at, attempt } if *ready_at <= tick => Some((id, *attempt)),
            _ => None,
        })
    }

    /// Grant a lease on a pending cell. Returns the fencing epoch.
    pub fn grant(&mut self, cell: CellId, worker: WorkerId, tick: u64, lease_rounds: u64) -> Epoch {
        let attempt = match &self.states[cell] {
            CellState::Pending { attempt, .. } => *attempt,
            other => panic!("granting a lease on non-pending cell {cell}: {other:?}"),
        };
        let epoch = self.next_epoch;
        self.next_epoch += 1;
        self.leases_granted += 1;
        self.states[cell] = CellState::Leased {
            worker,
            epoch,
            expires_at: tick + lease_rounds,
            attempt,
        };
        epoch
    }

    /// Renew a lease (heartbeat) — only honoured under the live epoch.
    /// Returns false when the heartbeat was fenced (stale epoch).
    pub fn heartbeat(&mut self, cell: CellId, epoch: Epoch, tick: u64, lease_rounds: u64) -> bool {
        match &mut self.states[cell] {
            CellState::Leased {
                epoch: live,
                expires_at,
                ..
            } if *live == epoch => {
                *expires_at = tick + lease_rounds;
                self.heartbeats += 1;
                true
            }
            _ => false,
        }
    }

    /// Is `epoch` still the live lease on `cell`? Workers check this on
    /// wake-up before touching the cell's store again.
    pub fn epoch_live(&self, cell: CellId, epoch: Epoch) -> bool {
        matches!(
            self.states[cell],
            CellState::Leased { epoch: live, .. } if live == epoch
        )
    }

    /// Mark a leased cell completed.
    pub fn complete(&mut self, cell: CellId, mut outcome: CellOutcome) {
        let attempt = match &self.states[cell] {
            CellState::Leased { attempt, .. } => *attempt,
            other => panic!("completing a cell that is not leased: {other:?}"),
        };
        outcome.attempts = attempt + 1;
        self.states[cell] = CellState::Done(Box::new(outcome));
    }

    /// Take a cell back after its owner died or its lease lapsed. The
    /// cell re-enters the pool after exponential backoff, or becomes
    /// `Failed` once `max_attempts` grants have been burned.
    #[allow(clippy::too_many_arguments)]
    pub fn reassign(
        &mut self,
        cell: CellId,
        tick: u64,
        reason: ReassignReason,
        backoff_base: u64,
        backoff_cap: u64,
        max_attempts: u32,
    ) {
        let attempt = match &self.states[cell] {
            CellState::Leased { attempt, .. } => *attempt,
            other => panic!("reassigning a cell that is not leased: {other:?}"),
        };
        if reason == ReassignReason::LeaseExpiry {
            self.lease_expiries += 1;
        }
        let next_attempt = attempt + 1;
        if next_attempt >= max_attempts {
            self.states[cell] = CellState::Failed {
                reason: format!(
                    "cell burned {max_attempts} lease attempts (last loss: {})",
                    reason.label()
                ),
                attempts: next_attempt,
            };
            self.reassignments.push(Reassignment {
                cell,
                detected_at: tick,
                ready_at: u64::MAX,
                reason,
                attempt,
            });
            return;
        }
        // Exponential backoff in ticks, capped: a flapping cell must not
        // monopolise the pool, but recovery latency stays bounded.
        let backoff = backoff_base
            .saturating_mul(1u64 << next_attempt.min(6))
            .min(backoff_cap);
        let ready_at = tick + backoff;
        self.states[cell] = CellState::Pending {
            ready_at,
            attempt: next_attempt,
        };
        self.reassignments.push(Reassignment {
            cell,
            detected_at: tick,
            ready_at,
            reason,
            attempt,
        });
    }

    /// Fail every cell still pending/leased — the no-live-workers exit:
    /// degrading to zero workers must end in a loud report, not a stall.
    pub fn fail_remaining(&mut self, reason: &str) {
        for state in &mut self.states {
            match state {
                CellState::Pending { attempt, .. } => {
                    *state = CellState::Failed {
                        reason: reason.to_string(),
                        attempts: *attempt,
                    };
                }
                CellState::Leased { attempt, .. } => {
                    *state = CellState::Failed {
                        reason: reason.to_string(),
                        attempts: *attempt + 1,
                    };
                }
                _ => {}
            }
        }
    }

    /// Leased cells whose lease lapsed at or before `tick`, in cell
    /// order (deterministic detection order).
    pub fn expired(&self, tick: u64) -> Vec<(CellId, WorkerId)> {
        self.states
            .iter()
            .enumerate()
            .filter_map(|(id, s)| match s {
                CellState::Leased {
                    worker, expires_at, ..
                } if *expires_at <= tick => Some((id, *worker)),
                _ => None,
            })
            .collect()
    }

    /// True once every cell is `Done` or `Failed`.
    pub fn all_settled(&self) -> bool {
        self.states
            .iter()
            .all(|s| matches!(s, CellState::Done(_) | CellState::Failed { .. }))
    }

    /// Completed outcomes in cell order.
    pub fn outcomes(&self) -> impl Iterator<Item = (CellId, &CellOutcome)> {
        self.states
            .iter()
            .enumerate()
            .filter_map(|(id, s)| match s {
                CellState::Done(o) => Some((id, o.as_ref())),
                _ => None,
            })
    }

    /// Failed cells with reasons, in cell order.
    pub fn failures(&self) -> Vec<(CellId, String, u32)> {
        self.states
            .iter()
            .enumerate()
            .filter_map(|(id, s)| match s {
                CellState::Failed { reason, attempts } => Some((id, reason.clone(), *attempts)),
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grant_heartbeat_complete_walks_the_happy_path() {
        let mut t = LeaseTable::new(2);
        assert_eq!(t.next_schedulable(0), Some((0, 0)));
        let e0 = t.grant(0, 3, 0, 4);
        assert_eq!(t.next_schedulable(0), Some((1, 0)));
        assert!(t.heartbeat(0, e0, 2, 4));
        assert!(t.epoch_live(0, e0));
        t.complete(0, CellOutcome::default());
        assert!(matches!(t.state(0), CellState::Done(o) if o.attempts == 1));
        assert_eq!(t.heartbeats, 1);
        assert_eq!(t.leases_granted, 1);
    }

    #[test]
    fn expiry_is_detected_and_fences_the_old_epoch() {
        let mut t = LeaseTable::new(1);
        let e0 = t.grant(0, 0, 0, 4);
        assert!(t.expired(3).is_empty());
        assert_eq!(t.expired(4), vec![(0, 0)]);
        t.reassign(0, 4, ReassignReason::LeaseExpiry, 1, 8, 5);
        // Backoff: attempt 1 ⇒ 1 << 1 = 2 ticks.
        assert_eq!(
            t.state(0),
            &CellState::Pending {
                ready_at: 6,
                attempt: 1
            }
        );
        assert_eq!(t.next_schedulable(5), None, "backoff gates the reassign");
        assert_eq!(t.next_schedulable(6), Some((0, 1)));
        let e1 = t.grant(0, 1, 6, 4);
        assert_ne!(e0, e1);
        assert!(!t.epoch_live(0, e0), "stale epoch is fenced");
        assert!(!t.heartbeat(0, e0, 7, 4), "stale heartbeat is refused");
        assert!(t.epoch_live(0, e1));
        assert_eq!(t.lease_expiries, 1);
        assert_eq!(t.reassignments.len(), 1);
        assert_eq!(t.reassignments[0].reason, ReassignReason::LeaseExpiry);
    }

    #[test]
    fn bounded_retries_end_in_a_reported_failure() {
        let mut t = LeaseTable::new(1);
        for attempt in 0..3u32 {
            let (cell, a) = t.next_schedulable(u64::MAX - 100).expect("schedulable");
            assert_eq!((cell, a), (0, attempt));
            t.grant(0, 0, 0, 4);
            t.reassign(0, 10, ReassignReason::WorkerDeath, 1, 8, 3);
        }
        match t.state(0) {
            CellState::Failed { reason, attempts } => {
                assert_eq!(*attempts, 3);
                assert!(reason.contains("worker-death"), "{reason}");
            }
            other => panic!("expected Failed, got {other:?}"),
        }
        assert!(t.all_settled());
        assert_eq!(t.failures().len(), 1);
    }

    #[test]
    fn backoff_is_exponential_and_capped() {
        let mut t = LeaseTable::new(1);
        let mut delays = Vec::new();
        for _ in 0..5 {
            t.grant(0, 0, 100, 4);
            t.reassign(0, 100, ReassignReason::WorkerDeath, 1, 8, 99);
            match t.state(0) {
                CellState::Pending { ready_at, .. } => delays.push(ready_at - 100),
                other => panic!("{other:?}"),
            }
            // Make it schedulable again regardless of backoff.
            if let CellState::Pending { ready_at, .. } = &mut t.states[0] {
                *ready_at = 0;
            }
        }
        assert_eq!(delays, vec![2, 4, 8, 8, 8], "doubling then capped");
    }

    #[test]
    fn fail_remaining_reports_every_unsettled_cell() {
        let mut t = LeaseTable::new(3);
        t.grant(1, 0, 0, 4);
        t.complete(1, CellOutcome::default());
        t.grant(2, 0, 0, 4);
        t.fail_remaining("no live workers");
        assert!(t.all_settled());
        let failures = t.failures();
        assert_eq!(failures.len(), 2);
        assert!(failures.iter().all(|(_, r, _)| r == "no live workers"));
        assert!(matches!(t.state(1), CellState::Done(_)));
    }
}
