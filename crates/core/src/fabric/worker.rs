//! The fabric worker: one cell advanced slice by slice through
//! checkpoints in the PR-4 persist store.
//!
//! A cell's campaign (budget `B`, `slices` checkpoints) is executed as
//! a ladder of growing budgets: slice `k` takes the campaign to
//! `B·(k+1)/slices` simulated hours and lands a *complete* store
//! (manifest last) in the cell's checkpoint directory. Because
//! campaigns are bit-deterministic in `(config, seed)` and simulated
//! time is free, every slice after the first is a
//! [`resume_campaign_with`] call: re-derive at the longer budget, then
//! prefix-verify that the persisted checkpoint is exactly what the
//! longer run re-derived. A replacement worker picking up a dead
//! worker's cell runs the *same* procedure — resuming from the last
//! valid checkpoint is the normal path, not a special recovery mode.
//!
//! Checkpoint damage degrades, never kills: a torn entry inside the
//! store is persist's counted skip (the resume still verifies the
//! surviving prefix); a torn *manifest* makes the checkpoint unusable,
//! so it is discarded and the slice re-runs from scratch — again free
//! in simulated time, and counted in the cell's outcome.

use std::path::Path;

use crate::campaign::run_campaign_with_coverage;
use crate::config::FuzzerConfig;
use crate::persist::StoreError;
use crate::replay::resume_campaign_with;
use eof_rtos::bugs::BugId;
use std::collections::BTreeSet;

/// What one executed slice reports back to the coordinator.
#[derive(Debug, Clone)]
pub struct SliceReport {
    /// Simulated hours the checkpoint now covers.
    pub consumed_hours: f64,
    /// Coverage edges after this slice, sorted ascending (the
    /// coordinator merges these into the fabric bitmap every
    /// heartbeat, not just at completion).
    pub coverage_edges: Vec<u64>,
    /// Bugs found so far.
    pub bugs: BTreeSet<BugId>,
    /// Store entries persist skipped as corrupt while resuming.
    pub checkpoint_skips: usize,
    /// 1 when a torn checkpoint was discarded and re-derived fresh.
    pub checkpoints_discarded: usize,
    /// Prefix entries `resume_campaign` verified (seeds + crashes +
    /// coverage edges re-derived by the longer run).
    pub prefix_verified: usize,
    /// Final campaign result once the last slice lands.
    pub finished: Option<FinishedCell>,
}

/// The completed cell, as the worker hands it to the merge.
#[derive(Debug, Clone)]
pub struct FinishedCell {
    /// Distinct branches of the final coverage map.
    pub branches: usize,
    /// Executions performed.
    pub execs: u64,
    /// Unique crash classes found.
    pub crashes: usize,
    /// Supervisor resilience accounting of the final full-budget
    /// derivation.
    pub resilience: crate::supervisor::ResilienceStats,
    /// Merged telemetry summary of the final full-budget derivation,
    /// when recording was on.
    pub telemetry: Option<eof_telemetry::TelemetrySummary>,
}

/// Budget the checkpoint ladder targets at slice `k` (0-based) of
/// `slices`. Pure f64 arithmetic on fixed inputs, so every worker —
/// and every *re*-worker after a reassignment — computes bit-identical
/// targets, which the resume budget checks rely on.
pub fn slice_target_hours(total_hours: f64, slices: usize, slice: usize) -> f64 {
    total_hours * (slice as f64 + 1.0) / slices as f64
}

/// Advance one cell to `target_hours`, checkpointing into `dir`.
///
/// Fresh directory (no manifest) ⇒ run the campaign from zero with
/// persistence attached. Existing checkpoint ⇒ resume and
/// prefix-verify it. A checkpoint whose manifest is torn or whose
/// prefix diverged is discarded (counted) and the slice re-runs from
/// zero — recovery is always *forward*, never wedged.
pub fn advance_cell(config: &FuzzerConfig, dir: &Path, target_hours: f64) -> SliceReport {
    let mut report = SliceReport {
        consumed_hours: target_hours,
        coverage_edges: Vec::new(),
        bugs: BTreeSet::new(),
        checkpoint_skips: 0,
        checkpoints_discarded: 0,
        prefix_verified: 0,
        finished: None,
    };
    let mut sliced = config.clone();
    sliced.budget_hours = target_hours;
    sliced.persist = Some(dir.to_path_buf());

    let has_manifest = dir.join("manifest.eof").exists();
    let resumed = if has_manifest {
        match resume_campaign_with(sliced.clone(), dir) {
            Ok(outcome) => Some(outcome),
            Err(StoreError::Io(_))
            | Err(StoreError::Corrupt(_))
            | Err(StoreError::ForeignSchema { .. })
            | Err(StoreError::MissingManifest(_))
            | Err(StoreError::Diverged(_)) => {
                // The checkpoint is unusable (torn manifest, foreign
                // bytes, or a prefix that no longer verifies). Discard
                // it and re-derive from zero — simulated time makes the
                // rerun free, and determinism makes it equivalent.
                report.checkpoints_discarded += 1;
                let _ = std::fs::remove_dir_all(dir);
                None
            }
            Err(e @ StoreError::ConfigMismatch(_)) => {
                // A config mismatch is a caller bug, not a fault to
                // absorb: the fabric handed this worker the wrong cell.
                panic!("fabric cell/checkpoint mismatch at {}: {e}", dir.display());
            }
        }
    } else {
        None
    };

    let (result, coverage) = match resumed {
        Some(outcome) => {
            report.checkpoint_skips = outcome.skips.total();
            report.prefix_verified =
                outcome.verified_seeds + outcome.verified_crashes + outcome.verified_edges;
            (outcome.result, outcome.coverage)
        }
        None => run_campaign_with_coverage(sliced),
    };

    report.coverage_edges = coverage.iter().collect();
    report.coverage_edges.sort_unstable();
    report.bugs = result.bugs.iter().copied().collect();
    if (report.consumed_hours - config.budget_hours).abs() < f64::EPSILON {
        report.finished = Some(FinishedCell {
            branches: result.branches,
            execs: result.stats.execs,
            crashes: result.crashes.len(),
            resilience: result.resilience,
            telemetry: result.telemetry.as_ref().map(|r| r.summary()),
        });
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::persist;
    use eof_rtos::OsKind;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmpdir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "eof-fabworker-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn cell(os: OsKind, seed: u64, hours: f64) -> FuzzerConfig {
        let mut c = FuzzerConfig::eof(os, seed);
        c.budget_hours = hours;
        c.snapshot_hours = hours / 4.0;
        c
    }

    #[test]
    fn slice_targets_are_monotone_and_exact() {
        let total = 0.12;
        let targets: Vec<f64> = (0..4).map(|k| slice_target_hours(total, 4, k)).collect();
        assert!(targets.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(targets[3], total, "last slice lands the full budget");
        // Recomputation is bit-identical (reassigned workers rely on it).
        assert_eq!(
            slice_target_hours(total, 4, 2).to_bits(),
            slice_target_hours(total, 4, 2).to_bits()
        );
    }

    #[test]
    fn checkpoint_ladder_matches_a_straight_run() {
        let config = cell(OsKind::FreeRtos, 7, 0.08);
        let dir = tmpdir("ladder");
        let mut last = None;
        for k in 0..4 {
            let target = slice_target_hours(config.budget_hours, 4, k);
            let report = advance_cell(&config, &dir, target);
            assert_eq!(report.checkpoints_discarded, 0);
            assert_eq!(report.checkpoint_skips, 0);
            if k > 0 {
                assert!(report.prefix_verified > 0, "slice {k} verified nothing");
            }
            last = Some(report);
        }
        let last = last.unwrap();
        let finished = last.finished.expect("final slice finishes the cell");
        // The ladder's endpoint is the plain campaign, bit for bit.
        let mut straight = config.clone();
        straight.persist = None;
        let reference = crate::campaign::run_campaign(straight);
        assert_eq!(finished.branches, reference.branches);
        assert_eq!(finished.execs, reference.stats.execs);
        assert_eq!(
            last.bugs,
            reference.bugs.iter().copied().collect::<BTreeSet<_>>()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_manifest_discards_the_checkpoint_and_recovers() {
        let config = cell(OsKind::FreeRtos, 7, 0.08);
        let dir = tmpdir("torn-manifest");
        advance_cell(&config, &dir, slice_target_hours(0.08, 4, 0));
        // Tear the manifest the way a dying writer would: truncate it.
        let path = dir.join("manifest.eof");
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() / 2]).unwrap();
        let report = advance_cell(&config, &dir, slice_target_hours(0.08, 4, 1));
        assert_eq!(report.checkpoints_discarded, 1);
        assert!(report.finished.is_none());
        // The re-derived checkpoint is complete and loadable again.
        let loaded = persist::open(&dir).unwrap();
        assert_eq!(loaded.skips.total(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_seed_entry_degrades_to_a_counted_skip() {
        let config = cell(OsKind::FreeRtos, 7, 0.08);
        let dir = tmpdir("torn-seed");
        advance_cell(&config, &dir, slice_target_hours(0.08, 4, 0));
        // Tear one persisted seed mid-record.
        let corpus = dir.join("corpus");
        let victim = std::fs::read_dir(&corpus)
            .unwrap()
            .flatten()
            .map(|e| e.path())
            .find(|p| p.extension().is_some_and(|e| e == "seed"))
            .expect("checkpoint holds at least one seed");
        let text = std::fs::read_to_string(&victim).unwrap();
        std::fs::write(&victim, &text[..text.len() / 2]).unwrap();
        let report = advance_cell(&config, &dir, slice_target_hours(0.08, 4, 1));
        assert_eq!(report.checkpoints_discarded, 0, "store itself survives");
        assert_eq!(report.checkpoint_skips, 1, "the torn entry is counted");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reassigned_worker_resumes_where_the_dead_one_stopped() {
        // Worker A checkpoints slice 0 and "dies"; worker B (a fresh
        // call) resumes from A's checkpoint and lands the same final
        // state a never-interrupted ladder produces.
        let config = cell(OsKind::Zephyr, 11, 0.08);
        let interrupted = tmpdir("handoff");
        advance_cell(&config, &interrupted, slice_target_hours(0.08, 2, 0));
        let report_b = advance_cell(&config, &interrupted, slice_target_hours(0.08, 2, 1));
        assert!(report_b.prefix_verified > 0, "B verified A's checkpoint");

        let clean = tmpdir("handoff-clean");
        advance_cell(&config, &clean, slice_target_hours(0.08, 2, 0));
        let report_clean = advance_cell(&config, &clean, slice_target_hours(0.08, 2, 1));
        assert_eq!(report_b.bugs, report_clean.bugs);
        assert_eq!(report_b.coverage_edges, report_clean.coverage_edges);
        let _ = std::fs::remove_dir_all(&interrupted);
        let _ = std::fs::remove_dir_all(&clean);
    }
}
