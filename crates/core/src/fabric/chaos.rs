//! Fabric-level chaos: seeded worker-fault schedules and the
//! recovered-or-reported contract, one layer above [`crate::chaos`].
//!
//! The hardware chaos harness tortures a *single* campaign with link
//! and board faults; this module tortures the *fabric* with the
//! failures multi-worker campaigns actually die of — worker processes
//! killed mid-cell, workers that hang without dying, and store writes
//! torn by a death mid-write. Faults are keyed by `(cell, slice
//! serial)` so a schedule is a pure function of its seed: identical
//! seeds reproduce identical fault timings, reassignments and merged
//! results, which is what lets CI gate on them.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use super::lease::CellId;

/// One injected worker fault. Every kind fires at a slice boundary,
/// *after* the slice's checkpoint write completed or was torn — a
/// worker never holds half-finished writes while another worker owns
/// the cell, mirroring how a real worker process dies between (not
/// inside) atomic store renames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FabricFault {
    /// The worker process dies right after checkpointing the slice.
    /// The report is lost; the cell's lease owner is gone.
    Kill,
    /// The worker dies mid-manifest-write: the checkpoint's manifest is
    /// truncated, making the whole checkpoint unusable (the successor
    /// discards it and re-derives).
    TornManifest,
    /// The worker dies mid-seed-write: one seed entry is truncated; the
    /// checkpoint survives and the successor degrades the entry to a
    /// counted skip.
    TornSeed,
    /// The worker hangs for this many rounds: the slice completed and
    /// checkpointed, but no heartbeat or report is sent. Shorter than
    /// the lease ⇒ a late heartbeat recovers it; longer ⇒ the lease
    /// expires, the cell is reassigned, and the waking worker is fenced.
    Stall {
        /// Rounds of withheld heartbeats.
        rounds: u64,
    },
}

impl FabricFault {
    /// Report label.
    pub fn label(&self) -> &'static str {
        match self {
            FabricFault::Kill => "kill",
            FabricFault::TornManifest => "torn-manifest",
            FabricFault::TornSeed => "torn-seed",
            FabricFault::Stall { .. } => "stall",
        }
    }

    /// Does this fault burn one of the cell's bounded lease attempts?
    /// (Stalls shorter than the lease recover without a reassignment.)
    pub fn consumes_attempt(&self, lease_rounds: u64) -> bool {
        match self {
            FabricFault::Stall { rounds } => *rounds >= lease_rounds,
            _ => true,
        }
    }
}

/// Fault kind labels in schedule-draw order.
pub const FABRIC_FAULT_KINDS: [&str; 4] = ["kill", "torn-manifest", "torn-seed", "stall"];

/// A seeded schedule of worker faults, keyed by `(cell, slice serial)`
/// where the serial counts every slice *execution* of the cell (re-runs
/// after reassignment get fresh serials, so a schedule can fault the
/// same cell repeatedly).
#[derive(Debug, Clone, Default)]
pub struct FabricChaosPlan {
    faults: BTreeMap<(CellId, u32), FabricFault>,
}

impl FabricChaosPlan {
    /// The empty (fault-free) schedule.
    pub fn none() -> Self {
        FabricChaosPlan::default()
    }

    /// Add one fault at a cell's `serial`-th slice execution.
    pub fn with(mut self, cell: CellId, serial: u32, fault: FabricFault) -> Self {
        self.faults.insert((cell, serial), fault);
        self
    }

    /// The fault scheduled for this slice execution, if any.
    pub fn at(&self, cell: CellId, serial: u32) -> Option<FabricFault> {
        self.faults.get(&(cell, serial)).copied()
    }

    /// Total faults scheduled.
    pub fn total(&self) -> usize {
        self.faults.len()
    }

    /// Scheduled faults per kind label, in [`FABRIC_FAULT_KINDS`] order.
    pub fn kind_counts(&self) -> Vec<(&'static str, usize)> {
        let mut counts = [0usize; 4];
        for fault in self.faults.values() {
            let idx = FABRIC_FAULT_KINDS
                .iter()
                .position(|k| *k == fault.label())
                .expect("label in kind table");
            counts[idx] += 1;
        }
        FABRIC_FAULT_KINDS
            .iter()
            .zip(counts)
            .map(|(k, c)| (*k, c))
            .collect()
    }

    /// All scheduled faults in key order.
    pub fn iter(&self) -> impl Iterator<Item = (CellId, u32, FabricFault)> + '_ {
        self.faults.iter().map(|(&(c, s), &f)| (c, s, f))
    }
}

/// Draw a deterministic fabric fault schedule: up to `faults` faults
/// spread over `cells` cells, each keyed to one of the cell's first
/// `slices_per_cell` slice executions.
///
/// The schedule respects the fabric's own recovery bounds so that a
/// chaos run is a *recovery* test, not a denial-of-service test: each
/// cell receives at most `max_attempts - 2` attempt-consuming faults,
/// leaving it at least two clean grants to finish on. (Degradation to
/// fewer workers via poisoning still happens when kills concentrate on
/// one slot — that path is exercised, not avoided.)
pub fn fabric_chaos_plan(
    seed: u64,
    cells: usize,
    slices_per_cell: usize,
    faults: usize,
    max_attempts: u32,
    lease_rounds: u64,
) -> FabricChaosPlan {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xfab41c);
    let mut plan = FabricChaosPlan::none();
    if cells == 0 || slices_per_cell == 0 {
        return plan;
    }
    let per_cell_cap = max_attempts.saturating_sub(2).max(1) as usize;
    let mut consuming = vec![0usize; cells];
    let mut used: BTreeMap<(CellId, u32), ()> = BTreeMap::new();
    for _ in 0..faults {
        let cell = rng.random_range(0..cells as u64) as usize;
        let serial = rng.random_range(0..slices_per_cell as u64) as u32;
        if used.contains_key(&(cell, serial)) {
            continue; // one fault per slice execution
        }
        let kind = rng.random_range(0..4u32);
        let fault = match kind {
            0 => FabricFault::Kill,
            1 => FabricFault::TornManifest,
            2 => FabricFault::TornSeed,
            // Stall lengths straddle the lease: short ones exercise the
            // late-heartbeat path, long ones the expiry/fencing path.
            _ => FabricFault::Stall {
                rounds: rng.random_range(1..=lease_rounds + 2),
            },
        };
        if fault.consumes_attempt(lease_rounds) {
            if consuming[cell] >= per_cell_cap {
                continue; // keep the cell finishable
            }
            consuming[cell] += 1;
        }
        used.insert((cell, serial), ());
        plan = plan.with(cell, serial, fault);
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_reproducible_and_seed_sensitive() {
        let a = fabric_chaos_plan(11, 5, 4, 12, 5, 4);
        let b = fabric_chaos_plan(11, 5, 4, 12, 5, 4);
        let c = fabric_chaos_plan(12, 5, 4, 12, 5, 4);
        let key = |p: &FabricChaosPlan| p.iter().collect::<Vec<_>>();
        assert_eq!(key(&a), key(&b), "same seed, same schedule");
        assert_ne!(key(&a), key(&c), "different seed, different schedule");
        assert!(a.total() > 0);
    }

    #[test]
    fn attempt_consuming_faults_stay_below_the_retry_bound() {
        for seed in 0..20u64 {
            let max_attempts = 5u32;
            let plan = fabric_chaos_plan(seed, 3, 4, 40, max_attempts, 4);
            let mut consuming = [0usize; 3];
            for (cell, _, fault) in plan.iter() {
                if fault.consumes_attempt(4) {
                    consuming[cell] += 1;
                }
            }
            assert!(
                consuming.iter().all(|&c| c + 2 <= max_attempts as usize),
                "seed {seed}: a cell could exhaust its attempts: {consuming:?}"
            );
        }
    }

    #[test]
    fn stalls_straddle_the_lease_boundary() {
        // Across a pool of seeds both stall flavours must appear —
        // otherwise the fencing path (or the late-heartbeat path) is
        // never exercised by the nightly matrix.
        let lease = 4u64;
        let (mut short, mut long) = (0, 0);
        for seed in 0..30u64 {
            for (_, _, fault) in fabric_chaos_plan(seed, 4, 4, 30, 5, lease).iter() {
                if let FabricFault::Stall { rounds } = fault {
                    if rounds < lease {
                        short += 1;
                    } else {
                        long += 1;
                    }
                }
            }
        }
        assert!(short > 0, "no recoverable stalls drawn");
        assert!(long > 0, "no lease-expiring stalls drawn");
    }
}
