//! Seed corpus and energy-weighted scheduling.
//!
//! "Inputs that trigger new coverage or a crash are marked as interesting
//! and added to the corpus for further mutation" (§4.2). Seeds carry an
//! energy that rises with the coverage they discovered (and, under EOF's
//! unified feedback, with the crash signals they triggered) and decays as
//! they are fuzzed, so the scheduler keeps pressure on fresh frontiers.

use eof_speclang::prog::Prog;
use rand::rngs::StdRng;
use rand::RngExt;

/// One corpus entry.
#[derive(Debug, Clone)]
pub struct Seed {
    /// The test case.
    pub prog: Prog,
    /// New edges it discovered when admitted.
    pub new_edges: usize,
    /// Whether it triggered a crash/log signal.
    pub crashed: bool,
    /// Scheduling energy.
    pub energy: f64,
    /// Times this seed has been picked for mutation.
    pub picks: u64,
}

/// The seed corpus.
#[derive(Debug, Clone, Default)]
pub struct Corpus {
    seeds: Vec<Seed>,
    max_seeds: usize,
    admitted: u64,
}

impl Corpus {
    /// A corpus bounded to `max_seeds` entries.
    pub fn new(max_seeds: usize) -> Self {
        Corpus {
            seeds: Vec::new(),
            max_seeds: max_seeds.max(1),
            admitted: 0,
        }
    }

    /// Number of live seeds.
    pub fn len(&self) -> usize {
        self.seeds.len()
    }

    /// Whether the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.seeds.is_empty()
    }

    /// Total seeds ever admitted.
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Admit an interesting input (by value — the fuzzing loop's hot
    /// path must not clone progs). Energy scales with discovery size;
    /// crash signals add a flat bonus (EOF's unified feedback). Returns
    /// the new seed's index, or `None` in the rare case that the corpus
    /// was full and the new seed itself was the cull victim. Indices of
    /// *other* seeds stay valid until the next `admit`.
    pub fn admit(&mut self, prog: Prog, new_edges: usize, crashed: bool) -> Option<usize> {
        let energy = 1.0 + (new_edges as f64).sqrt() + if crashed { 4.0 } else { 0.0 };
        self.seeds.push(Seed {
            prog,
            new_edges,
            crashed,
            energy,
            picks: 0,
        });
        self.admitted += 1;
        if self.seeds.len() > self.max_seeds {
            // Cull the lowest-energy seed.
            if let Some((idx, _)) = self
                .seeds
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.energy.partial_cmp(&b.1.energy).unwrap())
            {
                self.seeds.remove(idx);
                if idx == self.seeds.len() {
                    // The newcomer itself was culled.
                    return None;
                }
            }
        }
        Some(self.seeds.len() - 1)
    }

    /// The seed at `idx`, if live.
    pub fn get(&self, idx: usize) -> Option<&Seed> {
        self.seeds.get(idx)
    }

    /// Pick a seed for mutation, weighted by energy, returning its
    /// index. Picking decays the seed's energy.
    pub fn pick_index(&mut self, rng: &mut StdRng) -> Option<usize> {
        if self.seeds.is_empty() {
            return None;
        }
        let total: f64 = self.seeds.iter().map(|s| s.energy).sum();
        let mut roll = rng.random_range(0.0..total.max(f64::MIN_POSITIVE));
        let mut chosen = self.seeds.len() - 1;
        for (i, s) in self.seeds.iter().enumerate() {
            if roll < s.energy {
                chosen = i;
                break;
            }
            roll -= s.energy;
        }
        let s = &mut self.seeds[chosen];
        s.picks += 1;
        s.energy = (s.energy * 0.98).max(0.05);
        Some(chosen)
    }

    /// Pick a seed for mutation, weighted by energy. Picking decays the
    /// seed's energy.
    pub fn pick(&mut self, rng: &mut StdRng) -> Option<&Seed> {
        self.pick_index(rng).map(|i| &self.seeds[i])
    }

    /// Iterate over seeds (reporting).
    pub fn iter(&self) -> impl Iterator<Item = &Seed> {
        self.seeds.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eof_speclang::prog::Call;
    use rand::SeedableRng;

    fn prog(tag: &str) -> Prog {
        Prog {
            calls: vec![Call {
                api: tag.to_string(),
                args: vec![],
            }],
        }
    }

    #[test]
    fn admit_and_pick() {
        let mut c = Corpus::new(8);
        c.admit(prog("a"), 10, false);
        c.admit(prog("b"), 1, false);
        let mut rng = StdRng::seed_from_u64(1);
        let mut a_picks = 0;
        for _ in 0..200 {
            if c.pick(&mut rng).unwrap().prog.calls[0].api == "a" {
                a_picks += 1;
            }
        }
        // The 10-edge seed should be picked much more often.
        assert!(a_picks > 110, "energy weighting broken: {a_picks}");
    }

    #[test]
    fn crash_seeds_get_bonus_energy() {
        let mut c = Corpus::new(8);
        c.admit(prog("cov"), 4, false);
        c.admit(prog("crash"), 0, true);
        let crash_energy = c.iter().find(|s| s.crashed).unwrap().energy;
        let cov_energy = c.iter().find(|s| !s.crashed).unwrap().energy;
        assert!(crash_energy > cov_energy);
    }

    #[test]
    fn culls_lowest_energy_when_full() {
        let mut c = Corpus::new(2);
        c.admit(prog("big"), 100, false);
        c.admit(prog("mid"), 10, false);
        // The newcomer is itself the weakest: culled on arrival.
        assert_eq!(c.admit(prog("tiny"), 0, false), None);
        assert_eq!(c.len(), 2);
        assert!(c.iter().all(|s| s.prog.calls[0].api != "tiny"));
        assert_eq!(c.admitted(), 3);
    }

    #[test]
    fn admit_returns_a_live_index() {
        let mut c = Corpus::new(2);
        let a = c.admit(prog("a"), 1, false).unwrap();
        assert_eq!(c.get(a).unwrap().prog.calls[0].api, "a");
        let b = c.admit(prog("b"), 2, false).unwrap();
        assert_eq!(c.get(b).unwrap().prog.calls[0].api, "b");
        // "c" displaces the weaker "a"; its index must account for the
        // shift the cull caused.
        let idx = c.admit(prog("c"), 9, false).unwrap();
        assert_eq!(c.get(idx).unwrap().prog.calls[0].api, "c");
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn pick_decays_energy() {
        let mut c = Corpus::new(4);
        c.admit(prog("x"), 9, false);
        let before = c.iter().next().unwrap().energy;
        let mut rng = StdRng::seed_from_u64(2);
        c.pick(&mut rng);
        let after = c.iter().next().unwrap().energy;
        assert!(after < before);
    }

    #[test]
    fn empty_corpus_picks_none() {
        let mut c = Corpus::new(4);
        let mut rng = StdRng::seed_from_u64(3);
        assert!(c.pick(&mut rng).is_none());
    }
}
