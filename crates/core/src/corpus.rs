//! Seed corpus and energy-weighted scheduling.
//!
//! "Inputs that trigger new coverage or a crash are marked as interesting
//! and added to the corpus for further mutation" (§4.2). Seeds carry an
//! energy that rises with the coverage they discovered (and, under EOF's
//! unified feedback, with the crash signals they triggered) and decays as
//! they are fuzzed, so the scheduler keeps pressure on fresh frontiers.

use eof_speclang::prog::Prog;
use rand::rngs::StdRng;
use rand::RngExt;
use std::collections::BTreeSet;

/// One corpus entry.
#[derive(Debug, Clone)]
pub struct Seed {
    /// The test case.
    pub prog: Prog,
    /// New edges it discovered when admitted.
    pub new_edges: usize,
    /// Whether it triggered a crash/log signal.
    pub crashed: bool,
    /// Scheduling energy.
    pub energy: f64,
    /// Times this seed has been picked for mutation.
    pub picks: u64,
    /// Admission ordinal (0-based position in the campaign's admission
    /// sequence) — provenance for persisted pools, and the order seed
    /// replay re-executes in.
    pub ordinal: u64,
    /// Content hash of the prog ([`Prog::stable_hash`]) at admission.
    pub hash: u64,
}

/// The seed corpus.
#[derive(Debug, Clone, Default)]
pub struct Corpus {
    seeds: Vec<Seed>,
    max_seeds: usize,
    admitted: u64,
    /// Content hashes of every prog ever admitted — including culled
    /// seeds, so a once-explored input stays rejected for the rest of
    /// the campaign (and across resumes, where the set is re-derived).
    hashes: BTreeSet<u64>,
}

impl Corpus {
    /// A corpus bounded to `max_seeds` entries.
    pub fn new(max_seeds: usize) -> Self {
        Corpus {
            seeds: Vec::new(),
            max_seeds: max_seeds.max(1),
            admitted: 0,
            hashes: BTreeSet::new(),
        }
    }

    /// Number of live seeds.
    pub fn len(&self) -> usize {
        self.seeds.len()
    }

    /// Whether the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.seeds.is_empty()
    }

    /// Total seeds ever admitted.
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Admit an interesting input (by value — the fuzzing loop's hot
    /// path must not clone progs). Energy scales with discovery size;
    /// crash signals add a flat bonus (EOF's unified feedback). Returns
    /// the new seed's index; `None` when the input was rejected as a
    /// byte-identical duplicate of an already-admitted prog, or in the
    /// rare case that the corpus was full and the new seed itself was
    /// the cull victim. Indices of *other* seeds stay valid until the
    /// next `admit`.
    pub fn admit(&mut self, prog: Prog, new_edges: usize, crashed: bool) -> Option<usize> {
        let hash = prog.stable_hash();
        if !self.hashes.insert(hash) {
            // Already explored (possibly culled since): re-admitting it
            // would let persisted pools accumulate duplicates across
            // resumes and waste scheduling energy on a known input.
            return None;
        }
        let energy = 1.0 + (new_edges as f64).sqrt() + if crashed { 4.0 } else { 0.0 };
        self.seeds.push(Seed {
            prog,
            new_edges,
            crashed,
            energy,
            picks: 0,
            ordinal: self.admitted,
            hash,
        });
        self.admitted += 1;
        if self.seeds.len() > self.max_seeds {
            // Cull the lowest-energy seed.
            if let Some((idx, _)) = self
                .seeds
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.energy.partial_cmp(&b.1.energy).unwrap())
            {
                self.seeds.remove(idx);
                if idx == self.seeds.len() {
                    // The newcomer itself was culled.
                    return None;
                }
            }
        }
        Some(self.seeds.len() - 1)
    }

    /// The seed at `idx`, if live.
    pub fn get(&self, idx: usize) -> Option<&Seed> {
        self.seeds.get(idx)
    }

    /// Pick a seed for mutation, weighted by energy, returning its
    /// index. Picking decays the seed's energy.
    pub fn pick_index(&mut self, rng: &mut StdRng) -> Option<usize> {
        if self.seeds.is_empty() {
            return None;
        }
        let total: f64 = self.seeds.iter().map(|s| s.energy).sum();
        let mut roll = rng.random_range(0.0..total.max(f64::MIN_POSITIVE));
        let mut chosen = self.seeds.len() - 1;
        for (i, s) in self.seeds.iter().enumerate() {
            if roll < s.energy {
                chosen = i;
                break;
            }
            roll -= s.energy;
        }
        let s = &mut self.seeds[chosen];
        s.picks += 1;
        s.energy = (s.energy * 0.98).max(0.05);
        Some(chosen)
    }

    /// Pick a seed for mutation, weighted by energy. Picking decays the
    /// seed's energy.
    pub fn pick(&mut self, rng: &mut StdRng) -> Option<&Seed> {
        self.pick_index(rng).map(|i| &self.seeds[i])
    }

    /// Iterate over seeds (reporting).
    pub fn iter(&self) -> impl Iterator<Item = &Seed> {
        self.seeds.iter()
    }

    /// Content hashes of every prog ever admitted (including seeds
    /// culled since), in ascending hash order. Persisted stores are
    /// verified against this set on resume.
    pub fn admitted_hashes(&self) -> Vec<u64> {
        self.hashes.iter().copied().collect()
    }

    /// Whether a byte-identical prog has already been admitted.
    pub fn contains_hash(&self, hash: u64) -> bool {
        self.hashes.contains(&hash)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eof_speclang::prog::Call;
    use rand::SeedableRng;

    fn prog(tag: &str) -> Prog {
        Prog {
            mmio: vec![],
            calls: vec![Call {
                api: tag.to_string(),
                args: vec![],
            }],
        }
    }

    #[test]
    fn admit_and_pick() {
        let mut c = Corpus::new(8);
        c.admit(prog("a"), 10, false);
        c.admit(prog("b"), 1, false);
        let mut rng = StdRng::seed_from_u64(1);
        let mut a_picks = 0;
        for _ in 0..200 {
            if c.pick(&mut rng).unwrap().prog.calls[0].api == "a" {
                a_picks += 1;
            }
        }
        // The 10-edge seed should be picked much more often.
        assert!(a_picks > 110, "energy weighting broken: {a_picks}");
    }

    #[test]
    fn crash_seeds_get_bonus_energy() {
        let mut c = Corpus::new(8);
        c.admit(prog("cov"), 4, false);
        c.admit(prog("crash"), 0, true);
        let crash_energy = c.iter().find(|s| s.crashed).unwrap().energy;
        let cov_energy = c.iter().find(|s| !s.crashed).unwrap().energy;
        assert!(crash_energy > cov_energy);
    }

    #[test]
    fn culls_lowest_energy_when_full() {
        let mut c = Corpus::new(2);
        c.admit(prog("big"), 100, false);
        c.admit(prog("mid"), 10, false);
        // The newcomer is itself the weakest: culled on arrival.
        assert_eq!(c.admit(prog("tiny"), 0, false), None);
        assert_eq!(c.len(), 2);
        assert!(c.iter().all(|s| s.prog.calls[0].api != "tiny"));
        assert_eq!(c.admitted(), 3);
    }

    #[test]
    fn admit_returns_a_live_index() {
        let mut c = Corpus::new(2);
        let a = c.admit(prog("a"), 1, false).unwrap();
        assert_eq!(c.get(a).unwrap().prog.calls[0].api, "a");
        let b = c.admit(prog("b"), 2, false).unwrap();
        assert_eq!(c.get(b).unwrap().prog.calls[0].api, "b");
        // "c" displaces the weaker "a"; its index must account for the
        // shift the cull caused.
        let idx = c.admit(prog("c"), 9, false).unwrap();
        assert_eq!(c.get(idx).unwrap().prog.calls[0].api, "c");
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn pick_decays_energy() {
        let mut c = Corpus::new(4);
        c.admit(prog("x"), 9, false);
        let before = c.iter().next().unwrap().energy;
        let mut rng = StdRng::seed_from_u64(2);
        c.pick(&mut rng);
        let after = c.iter().next().unwrap().energy;
        assert!(after < before);
    }

    #[test]
    fn empty_corpus_picks_none() {
        let mut c = Corpus::new(4);
        let mut rng = StdRng::seed_from_u64(3);
        assert!(c.pick(&mut rng).is_none());
    }

    #[test]
    fn byte_identical_progs_are_rejected() {
        let mut c = Corpus::new(8);
        assert!(c.admit(prog("a"), 3, false).is_some());
        // Same bytes, different claimed discovery: still a duplicate.
        assert_eq!(c.admit(prog("a"), 9, true), None);
        assert_eq!(c.len(), 1);
        assert_eq!(c.admitted(), 1, "duplicates are not admissions");
        assert!(c.contains_hash(prog("a").stable_hash()));
    }

    #[test]
    fn dedup_survives_culling() {
        let mut c = Corpus::new(2);
        c.admit(prog("weak"), 0, false);
        c.admit(prog("big"), 100, false);
        // "weak" is culled by the next strong arrival...
        c.admit(prog("mid"), 25, false);
        assert!(c.iter().all(|s| s.prog.calls[0].api != "weak"));
        // ...but stays rejected: it was already explored once.
        assert_eq!(c.admit(prog("weak"), 50, false), None);
    }

    #[test]
    fn ordinals_follow_admission_order() {
        let mut c = Corpus::new(8);
        c.admit(prog("a"), 1, false);
        c.admit(prog("b"), 2, false);
        c.admit(prog("a"), 2, false); // duplicate: no ordinal consumed
        c.admit(prog("c"), 3, false);
        let ordinals: Vec<u64> = c.iter().map(|s| s.ordinal).collect();
        assert_eq!(ordinals, vec![0, 1, 2]);
        assert_eq!(c.admitted_hashes().len(), 3);
    }
}
