//! Campaign fleet: run many configs across a scoped worker pool.
//!
//! Every bench in the reproduction is shaped the same way — a list of
//! [`FuzzerConfig`]s (configs × repetitions) whose campaigns are fully
//! independent of each other: each owns its simulated machine, RNG
//! streams are seeded per config, and the shared artifact caches
//! ([`crate::artifacts`]) are keyed purely on inputs. [`FleetRunner`]
//! exploits that independence with a fixed pool of scoped worker
//! threads pulling jobs off a shared index, while keeping the *results*
//! in submission order so `jobs=1` and `jobs=N` output byte-identical
//! reports.
//!
//! A panicking campaign is contained to its job: the worker catches the
//! unwind and records a [`FleetError`] in that job's slot; the other
//! jobs — and the process — carry on.
//!
//! Scheduling is lock-free: the work list is a fixed array whose
//! indices are claimed through one atomic cursor (each `fetch_add` is
//! an exclusive claim), and results travel back in per-worker buffers
//! scattered into submission order after the join — no per-item mutex
//! on either side. [`FleetStats`] accounts the residual acquisition
//! cost so the fleet bench can report it.

use std::cell::UnsafeCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

use crate::campaign::{run_campaign, CampaignResult};
use crate::config::FuzzerConfig;

/// A job that did not produce a result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetError {
    /// Index of the job in the submitted batch.
    pub job: usize,
    /// The panic payload, stringified.
    pub message: String,
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "fleet job {} panicked: {}", self.job, self.message)
    }
}

impl std::error::Error for FleetError {}

/// Result of one fleet job.
pub type FleetResult<R> = Result<R, FleetError>;

/// Scheduling accounting for one [`FleetRunner::map`] batch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetStats {
    /// Workers actually spawned: `jobs.min(items)`.
    pub workers: usize,
    /// Items executed.
    pub items: usize,
    /// Wall nanoseconds workers spent acquiring work — winning the
    /// cursor and taking the item — summed across workers. The
    /// previous design paid two mutex acquisitions per item here
    /// (claim the item, store the result); the fleet bench reports
    /// this figure as `lock_wait_nanos` so the delta stays visible.
    pub sched_wait_nanos: u64,
}

/// The fixed work list for one batch, claimed through an atomic
/// cursor: winning index `i` from the cursor's `fetch_add` is the
/// exclusive claim on `items[i]`, so taking the item needs no
/// per-item lock.
struct WorkList<T> {
    items: Vec<UnsafeCell<Option<T>>>,
}

// SAFETY: a worker only touches `items[i]` after winning `i` from the
// shared cursor, and `fetch_add` yields each index to at most one
// caller — the cell is never accessed concurrently. `T: Send` because
// the claim moves the item from the submitting thread to the worker.
unsafe impl<T: Send> Sync for WorkList<T> {}

impl<T> WorkList<T> {
    fn new(items: Vec<T>) -> Self {
        WorkList {
            items: items
                .into_iter()
                .map(|t| UnsafeCell::new(Some(t)))
                .collect(),
        }
    }

    /// Take item `i` out of the list.
    ///
    /// # Safety
    /// `i` must have been won from the batch cursor, making this call
    /// the cell's only access for the lifetime of the batch.
    unsafe fn take(&self, i: usize) -> T {
        (*self.items[i].get())
            .take()
            .expect("each job claimed once")
    }
}

/// A worker pool for running batches of independent campaigns.
#[derive(Debug, Clone, Copy)]
pub struct FleetRunner {
    jobs: usize,
}

impl Default for FleetRunner {
    fn default() -> Self {
        Self::from_env()
    }
}

impl FleetRunner {
    /// A runner with exactly `jobs` workers (clamped to ≥ 1).
    pub fn new(jobs: usize) -> Self {
        FleetRunner { jobs: jobs.max(1) }
    }

    /// Worker count from the environment: `EOF_JOBS` if set to a
    /// positive integer, otherwise the host's available parallelism.
    pub fn from_env() -> Self {
        let jobs = std::env::var("EOF_JOBS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&j| j >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
        FleetRunner::new(jobs)
    }

    /// Configured worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Run `f` over every item, at most [`jobs`](Self::jobs) at a time,
    /// returning results in submission order. `f` receives the item's
    /// batch index alongside the item. A panic inside `f` becomes a
    /// `FleetError` for that slot only.
    pub fn map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<FleetResult<R>>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        self.map_with_stats(items, f).0
    }

    /// [`map`](Self::map) plus the batch's [`FleetStats`].
    pub fn map_with_stats<T, R, F>(&self, items: Vec<T>, f: F) -> (Vec<FleetResult<R>>, FleetStats)
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let n = items.len();
        if n == 0 {
            return (Vec::new(), FleetStats::default());
        }
        let workers = self.jobs.min(n);
        // Indices are claimed via the shared cursor; each worker keeps
        // its results in a private buffer handed back through the join,
        // and the scatter below restores submission order — so ordering
        // is independent of scheduling and no result slot is contended.
        let work = WorkList::new(items);
        let cursor = AtomicUsize::new(0);
        let sched_wait = AtomicU64::new(0);
        let f = &f;
        let work = &work;
        let cursor = &cursor;
        let sched_wait = &sched_wait;
        let run_worker = move |_: &crossbeam::thread::Scope<'_, '_>| {
            let mut buf: Vec<(usize, FleetResult<R>)> = Vec::new();
            let mut waited = 0u64;
            loop {
                let t0 = Instant::now();
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                // SAFETY: the `fetch_add` above handed index `i` to
                // this worker alone.
                let item = unsafe { work.take(i) };
                waited += t0.elapsed().as_nanos() as u64;
                let out =
                    catch_unwind(AssertUnwindSafe(|| f(i, item))).map_err(|payload| FleetError {
                        job: i,
                        message: panic_message(payload),
                    });
                buf.push((i, out));
            }
            sched_wait.fetch_add(waited, Ordering::Relaxed);
            buf
        };
        let buffers: Vec<Vec<(usize, FleetResult<R>)>> = crossbeam::thread::scope(|s| {
            let handles: Vec<_> = (0..workers).map(|_| s.spawn(run_worker)).collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join()
                        .expect("fleet workers contain panics via catch_unwind")
                })
                .collect()
        })
        .expect("the scope closure does not panic");
        let mut out: Vec<Option<FleetResult<R>>> = (0..n).map(|_| None).collect();
        for (i, result) in buffers.into_iter().flatten() {
            debug_assert!(out[i].is_none(), "index {i} claimed twice");
            out[i] = Some(result);
        }
        let results = out
            .into_iter()
            .map(|slot| slot.expect("every index claimed"))
            .collect();
        let stats = FleetStats {
            workers,
            items: n,
            sched_wait_nanos: sched_wait.load(Ordering::Relaxed),
        };
        (results, stats)
    }

    /// Run a batch of campaigns, results in submission order.
    pub fn run(&self, configs: Vec<FuzzerConfig>) -> Vec<FleetResult<CampaignResult>> {
        self.map(configs, |_, config| run_campaign(config))
    }

    /// Run a batch of campaigns with persistence: job `i` writes its
    /// store into `base_dir/job-<i>`, overriding whatever `persist`
    /// the config carried. The per-job directories keep concurrent
    /// workers from ever sharing a store; a shared directory would
    /// still degrade safely (per-file atomic writes, foreign entries
    /// counted and skipped) but would interleave manifests.
    pub fn run_persisted(
        &self,
        configs: Vec<FuzzerConfig>,
        base_dir: &std::path::Path,
    ) -> Vec<FleetResult<CampaignResult>> {
        let configs: Vec<FuzzerConfig> = configs
            .into_iter()
            .enumerate()
            .map(|(i, mut c)| {
                c.persist = Some(base_dir.join(format!("job-{i}")));
                c
            })
            .collect();
        self.run(configs)
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eof_rtos::OsKind;

    fn short(os: OsKind, seed: u64) -> FuzzerConfig {
        let mut c = FuzzerConfig::eof(os, seed);
        c.budget_hours = 0.02;
        c.snapshot_hours = 0.005;
        c
    }

    #[test]
    fn results_keep_submission_order() {
        let runner = FleetRunner::new(4);
        let out = runner.map((0..32).collect::<Vec<_>>(), |i, x| {
            assert_eq!(i, x);
            x * 10
        });
        let values: Vec<usize> = out.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(values, (0..32).map(|x| x * 10).collect::<Vec<_>>());
    }

    #[test]
    fn a_panicking_job_is_isolated() {
        let runner = FleetRunner::new(3);
        let out = runner.map(vec![1usize, 2, 3, 4], |_, x| {
            if x == 3 {
                panic!("job three exploded");
            }
            x
        });
        assert_eq!(out[0], Ok(1));
        assert_eq!(out[1], Ok(2));
        let err = out[2].as_ref().unwrap_err();
        assert_eq!(err.job, 2);
        assert!(err.message.contains("job three exploded"), "{err}");
        assert_eq!(out[3], Ok(4));
    }

    #[test]
    fn jobs_env_and_clamping() {
        assert_eq!(FleetRunner::new(0).jobs(), 1);
        assert_eq!(FleetRunner::new(7).jobs(), 7);
        assert!(FleetRunner::from_env().jobs() >= 1);
    }

    #[test]
    fn empty_batch_is_fine() {
        let (out, stats): (Vec<FleetResult<u8>>, FleetStats) =
            FleetRunner::new(2).map_with_stats(Vec::new(), |_, x| x);
        assert!(out.is_empty());
        assert_eq!(stats, FleetStats::default());
    }

    #[test]
    fn stats_count_workers_and_items() {
        // More jobs than items: the pool is trimmed to the batch, and
        // the scheduling-wait figure is measured (its magnitude is
        // hardware-dependent, so only its presence is asserted).
        let (out, stats) =
            FleetRunner::new(8).map_with_stats((0..5usize).collect::<Vec<_>>(), |_, x| x * 2);
        assert_eq!(
            out.into_iter().map(|r| r.unwrap()).collect::<Vec<_>>(),
            vec![0, 2, 4, 6, 8]
        );
        assert_eq!(stats.workers, 5);
        assert_eq!(stats.items, 5);
    }

    #[test]
    fn recorded_fleet_merges_identically_serial_and_parallel() {
        use crate::campaign::run_campaign_recorded;
        // The telemetry half of the fleet determinism contract: merging
        // per-campaign registries in submission order must yield the same
        // summary whether the jobs ran on 1 worker or 4.
        let configs: Vec<FuzzerConfig> = vec![
            short(OsKind::Zephyr, 21),
            short(OsKind::FreeRtos, 22),
            short(OsKind::RtThread, 23),
        ];
        let merged_summary = |results: Vec<FleetResult<CampaignResult>>| {
            let parts: Vec<eof_telemetry::Registry> = results
                .into_iter()
                .map(|r| r.expect("campaign runs").telemetry.expect("recorded"))
                .collect();
            eof_telemetry::Merged::from_parts(parts).summary().to_json()
        };
        let serial = FleetRunner::new(1).map(configs.clone(), |_, c| run_campaign_recorded(c));
        let parallel = FleetRunner::new(4).map(configs, |_, c| run_campaign_recorded(c));
        assert_eq!(merged_summary(serial), merged_summary(parallel));
    }

    #[test]
    fn persisted_fleet_writes_one_store_per_job() {
        let base = std::env::temp_dir().join(format!("eof-fleet-persist-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        let configs = vec![short(OsKind::Zephyr, 31), short(OsKind::FreeRtos, 32)];
        let out = FleetRunner::new(2).run_persisted(configs, &base);
        for (i, r) in out.iter().enumerate() {
            let r = r.as_ref().expect("persisted campaign runs");
            let audit = r.persist.as_ref().expect("job audited its store");
            assert_eq!(audit.write_errors, 0);
            let loaded = crate::persist::open(&base.join(format!("job-{i}"))).unwrap();
            assert_eq!(loaded.seeds.len(), audit.seeds_written);
            assert_eq!(loaded.manifest.branches, r.branches);
        }
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn serial_and_parallel_campaigns_are_identical() {
        let configs: Vec<FuzzerConfig> = vec![
            short(OsKind::Zephyr, 11),
            short(OsKind::Zephyr, 12),
            short(OsKind::FreeRtos, 11),
            short(OsKind::FreeRtos, 11),
        ];
        let serial = FleetRunner::new(1).run(configs.clone());
        let parallel = FleetRunner::new(4).run(configs);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(parallel.iter()) {
            let s = s.as_ref().expect("serial campaign runs");
            let p = p.as_ref().expect("parallel campaign runs");
            assert_eq!(s.branches, p.branches);
            assert_eq!(s.bugs, p.bugs);
            assert_eq!(format!("{:?}", s.stats), format!("{:?}", p.stats));
            assert_eq!(
                format!("{:?}", s.crashes),
                format!("{:?}", p.crashes),
                "parallel scheduling must not leak into results"
            );
        }
    }
}
