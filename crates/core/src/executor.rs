//! One test case, end to end, over the debug port.
//!
//! The executor owns the probe session and implements the host half of
//! the paper's Figure 4: it parks the target at `executor_main()`,
//! writes the encoded prog into the agent's buffer, resumes, services
//! `_kcmp_buf_full` drains, classifies exception halts, catches stalls
//! with the liveness watchdogs (or a bare timeout, for the baselines),
//! and restores the target when it degrades.

use crate::config::FuzzerConfig;
use crate::crash::{triage, CrashReport, DetectionSource};
use crate::supervisor::{RecoveryReason, RecoverySupervisor, ResilienceStats};
use eof_agent::AgentLayout;
use eof_coverage::{
    CmpRecord, CoverageBackend, CoverageKind, CoverageMap, InstrumentMode, InstrumentedRing,
    TraceDecode, TraceStats, CMP_RECORD_BYTES,
};
use eof_dap::{DebugTransport, LinkEvent, RetryPolicy, RetryStats, Txn, TxnResult};
use eof_hal::clock::{secs_to_cycles, CYCLES_PER_SEC};
use eof_hal::Endianness;
use eof_monitors::{
    parse_backtrace, Liveness, LivenessWatchdog, LogMonitor, PowerWatchdog, StateRestoration,
};
use eof_speclang::prog::Prog;
use eof_speclang::wire::{encode_prog, ApiTable, WireOrder};
use eof_telemetry as tel;
use std::sync::OnceLock;

/// Budget for one `continue` slice, in cycles.
const SLICE_CYCLES: u64 = 2_000;

/// Maximum slices per execution before the stall machinery engages hard.
const MAX_SLICES: u32 = 24;

/// Cycle threshold above which an execution is journalled as slow
/// (`exec.slow` telemetry event). Tunable via `EOF_SLOW_EXEC_CYCLES`;
/// printing the offending prog to stderr additionally requires
/// `EOF_DEBUG_SLOW`, so default-verbosity runs stay silent.
fn slow_exec_threshold() -> u64 {
    static THRESHOLD: OnceLock<u64> = OnceLock::new();
    *THRESHOLD.get_or_init(|| {
        std::env::var("EOF_SLOW_EXEC_CYCLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(1_000_000)
    })
}

/// Outcome of one test-case execution.
#[derive(Debug, Clone, Default)]
pub struct ExecOutcome {
    /// Edges newly discovered by this input.
    pub new_edges: usize,
    /// Total edges observed (including known ones).
    pub edges_hit: usize,
    /// Crash observed during this execution.
    pub crash: Option<CrashReport>,
    /// The target entered a degraded state (stall/timeout).
    pub stalled: bool,
    /// A restoration (reflash/reboot) was performed.
    pub restored: bool,
    /// The debug connection was lost at some point.
    pub target_lost: bool,
    /// Even after recovery the target could not be parked at the sync
    /// point — the execution was skipped (its time was still charged).
    pub sync_failed: bool,
    /// Cycles consumed by this execution, all costs included.
    pub cycles: u64,
    /// Comparison operands drained from the cmplog ring (empty unless
    /// the campaign armed the channel and the exec completed healthy).
    pub cmp_records: Vec<CmpRecord>,
    /// The coverage channel lost events this exec (ring records
    /// dropped, trace FIFO overflow, or a drain discarded whole): the
    /// edges observed are valid, but absence proves nothing.
    pub cov_partial: bool,
}

/// The host-side executor bound to one probe session.
pub struct Executor {
    transport: DebugTransport,
    config: FuzzerConfig,
    layout: AgentLayout,
    order: WireOrder,
    api_table: ApiTable,
    main_addr: u32,
    buf_full_addr: u32,
    exception_addr: Option<u32>,
    log_monitor: LogMonitor,
    watchdog: LivenessWatchdog,
    power_watchdog: PowerWatchdog,
    restoration: StateRestoration,
    supervisor: RecoverySupervisor,
    retry: RetryPolicy,
    link_retry: RetryStats,
    cov_map: CoverageMap,
    /// How edge ids leave the device: the instrumented ring or the
    /// hardware trace stream. The fuzzing loop never looks past this.
    backend: Box<dyn CoverageBackend + Send>,
    /// Sticky per-exec flag: a drain this exec reported loss.
    cov_partial_pending: bool,
    /// Trace-decoder stats already surfaced to telemetry (the decoder
    /// counts lifetime totals; we emit per-exec deltas).
    trace_seen: TraceStats,
    at_main: bool,
    execs: u64,
    restorations: u64,
    stall_events: u64,
    failed_syncs: u64,
    cmp_discards: u64,
    cov_discards: u64,
}

impl Executor {
    /// Bind an executor to a booted target. Arms the sync and monitor
    /// breakpoints and parks the target at `executor_main`.
    pub fn new(
        mut transport: DebugTransport,
        config: FuzzerConfig,
        api_table: ApiTable,
        restoration: StateRestoration,
    ) -> Result<Self, eof_dap::DapError> {
        // A mismatched board descriptor silently mis-addresses every
        // RAM transaction; fail loudly instead.
        if transport.machine().board().name != config.board.name {
            return Err(eof_dap::DapError::Protocol(format!(
                "config board {:?} does not match attached target {:?}",
                config.board.name,
                transport.machine().board().name
            )));
        }
        let layout = AgentLayout::for_board(&config.board);
        let order = eof_agent::wire_order_of(&config.board);
        let main_addr = transport
            .symbol("executor_main")
            .ok_or_else(|| eof_dap::DapError::Protocol("no executor_main symbol".into()))?;
        let buf_full_addr = transport
            .symbol("_kcmp_buf_full")
            .ok_or_else(|| eof_dap::DapError::Protocol("no _kcmp_buf_full symbol".into()))?;
        let exception_addr = if config.detection.exception_breakpoints {
            let kernel = eof_rtos::registry::make_kernel(config.os);
            let addr = transport.symbol(kernel.exception_symbol()).ok_or_else(|| {
                eof_dap::DapError::Protocol("no exception symbol on target".into())
            })?;
            Some(addr)
        } else {
            None
        };
        // What the flashed image actually carries: a trace-backend
        // campaign flashes the plain build, so the `_kcmp_buf_full`
        // trap never fires and must not be armed.
        let instrument = config.effective_instrument();
        if config.vectored {
            // Arm the sync and monitor breakpoints in one round trip.
            let mut txn = Txn::new();
            txn.set_breakpoint(main_addr);
            if instrument != InstrumentMode::None {
                txn.set_breakpoint(buf_full_addr);
            }
            if let Some(addr) = exception_addr {
                txn.set_breakpoint(addr);
            }
            transport.run_txn(&txn)?;
        } else {
            transport.set_breakpoint(main_addr)?;
            if instrument != InstrumentMode::None {
                transport.set_breakpoint(buf_full_addr)?;
            }
            if let Some(addr) = exception_addr {
                transport.set_breakpoint(addr)?;
            }
        }
        let backend: Box<dyn CoverageBackend + Send> = match config.coverage_backend {
            CoverageKind::Ring => Box::new(InstrumentedRing::new(layout.cov)),
            CoverageKind::Trace => {
                // Arm the trace unit once per session; the latch lives
                // in the debug power domain and survives every reset
                // the recovery ladder can throw at the target.
                transport.trace_set_enabled(true)?;
                Box::new(TraceDecode::new())
            }
        };
        let supervisor = RecoverySupervisor::for_policy(&config.recovery);
        let mut restoration = restoration;
        restoration.set_vectored(config.vectored);
        restoration.set_snapshot_mode(config.snapshot);
        let mut exec = Executor {
            transport,
            config,
            layout,
            order,
            api_table,
            main_addr,
            buf_full_addr,
            exception_addr,
            log_monitor: LogMonitor::new(),
            watchdog: LivenessWatchdog::new(),
            power_watchdog: PowerWatchdog::new(),
            restoration,
            supervisor,
            retry: RetryPolicy::default(),
            link_retry: RetryStats::default(),
            cov_map: CoverageMap::new(),
            backend,
            cov_partial_pending: false,
            trace_seen: TraceStats::default(),
            at_main: false,
            execs: 0,
            restorations: 0,
            stall_events: 0,
            failed_syncs: 0,
            cmp_discards: 0,
            cov_discards: 0,
        };
        exec.sync_to_main();
        Ok(exec)
    }

    /// The accumulated coverage map.
    pub fn coverage(&self) -> &CoverageMap {
        &self.cov_map
    }

    /// Mutable coverage access (for snapshots).
    pub fn coverage_mut(&mut self) -> &mut CoverageMap {
        &mut self.cov_map
    }

    /// Executions completed.
    pub fn execs(&self) -> u64 {
        self.execs
    }

    /// Restorations performed.
    pub fn restorations(&self) -> u64 {
        self.restorations
    }

    /// Stall/timeout events handled.
    pub fn stall_events(&self) -> u64 {
        self.stall_events
    }

    /// Syncs that failed even after a full recovery episode.
    pub fn failed_syncs(&self) -> u64 {
        self.failed_syncs
    }

    /// Cmp-ring drains discarded because the transaction never applied
    /// (counted, never silently swallowed — the arming header written
    /// with the next upload guarantees the ring restarts empty).
    pub fn cmp_discards(&self) -> u64 {
        self.cmp_discards
    }

    /// Coverage drains discarded whole because the transaction could
    /// not be confirmed applied even after retries (counted, never
    /// silently swallowed; the exec is marked coverage-partial).
    pub fn cov_discards(&self) -> u64 {
        self.cov_discards
    }

    /// Which coverage channel this executor acquires edges over.
    pub fn coverage_kind(&self) -> CoverageKind {
        self.backend.kind()
    }

    /// Lifetime trace-decoder statistics (all-zero on the ring
    /// backend, which has no decoder).
    pub fn trace_stats(&self) -> TraceStats {
        self.backend.stats()
    }

    /// Combined resilience accounting: supervisor ladder counters plus
    /// the link-layer retry totals and failed syncs.
    pub fn resilience(&self) -> ResilienceStats {
        let mut stats = *self.supervisor.stats();
        stats.link.absorb(&self.link_retry);
        stats.failed_syncs = self.failed_syncs;
        stats.txn_partial = self.transport.txn_partials();
        stats
    }

    /// Current simulated time in hours.
    pub fn now_hours(&self) -> f64 {
        self.transport.now() as f64 / (CYCLES_PER_SEC as f64 * 3600.0)
    }

    /// Current simulated time in cycles.
    pub fn now(&self) -> u64 {
        self.transport.now()
    }

    /// The probe session (tests).
    pub fn transport_mut(&mut self) -> &mut DebugTransport {
        &mut self.transport
    }

    /// Raise a peripheral interrupt on the target (the §6 extension).
    pub fn inject_peripheral_event(&mut self, line: u8, payload: Vec<u8>) {
        self.transport.inject_irq(line, payload);
    }

    /// Try to park the target at `executor_main` — the supervisor's
    /// health verify as well as the inter-exec sync. Intermediate
    /// breakpoint hits (coverage drains during boot) are tolerated; two
    /// consecutive budget-exhausted slices mean the target is running
    /// but not getting there (hung), and a dead target fails fast.
    fn park_at_main(pipe: &mut DebugTransport, main_addr: u32) -> bool {
        let mut still = 0u32;
        for _ in 0..8 {
            match pipe.continue_until_halt(8 * SLICE_CYCLES) {
                Ok(LinkEvent::BreakpointHit { pc }) if pc == main_addr => return true,
                Ok(LinkEvent::BreakpointHit { .. }) | Ok(LinkEvent::WatchdogReset) => {
                    still = 0;
                }
                Ok(LinkEvent::StillRunning) => {
                    still += 1;
                    if still >= 2 {
                        return false;
                    }
                }
                Ok(LinkEvent::TargetDead) | Err(_) => return false,
            }
        }
        false
    }

    /// Park the target at `executor_main`, recovering if necessary.
    /// A sync that fails even after a full supervisor episode is counted
    /// and surfaced — never swallowed.
    fn sync_to_main(&mut self) {
        if Self::park_at_main(&mut self.transport, self.main_addr) {
            self.at_main = true;
            self.rearm_snapshot();
            return;
        }
        self.recover(RecoveryReason::ConnectionLoss);
        if !self.at_main {
            self.failed_syncs += 1;
            tel::count("exec.failed_syncs", 1);
        }
    }

    /// (Re-)capture the board snapshot when the armed one no longer
    /// belongs to the current boot. Every reset is host-initiated, so
    /// the boot-epoch comparison is free host-side bookkeeping: in the
    /// fault-free steady state this never captures and the snapshot
    /// path costs nothing. Flash drift within an epoch is caught by the
    /// supervisor's recovery-time generation probe instead.
    fn rearm_snapshot(&mut self) {
        if !self.config.snapshot || !self.at_main {
            return;
        }
        if self.restoration.snapshot_current_epoch(&self.transport) {
            return;
        }
        let _ = self.restoration.capture_snapshot(&mut self.transport);
    }

    /// Run one supervisor recovery episode. The episode climbs the
    /// restoration ladder until the target verifies healthy (parked at
    /// `executor_main`) or escalates to manual intervention; either way
    /// `at_main` reflects the verified end state.
    fn recover(&mut self, reason: RecoveryReason) {
        self.restorations += 1;
        let main_addr = self.main_addr;
        let outcome =
            self.supervisor
                .recover(reason, &mut self.transport, &mut self.restoration, |pipe| {
                    Self::park_at_main(pipe, main_addr)
                });
        self.at_main = outcome.parked;
        self.watchdog.reset();
        // Whatever rung acted, the device side of the coverage stream
        // was quiesced (reset, restore and power-cycle all flush the
        // trace FIFO; a reboot re-arms the ring): drop the host
        // decoder's cross-drain state to match.
        self.backend.reset_stream();
        self.rearm_snapshot();
    }

    /// Drain the on-device coverage buffer and reset it. Transient link
    /// drops mid-drain are retried at the link layer: an interrupted
    /// drain must not silently lose the buffered edges.
    fn drain_cov(&mut self) -> Vec<u64> {
        let span = tel::span_start("exec.cov_drain", self.transport.now());
        let edges = self.drain_cov_inner();
        tel::span_end(span, self.transport.now());
        edges
    }

    /// Is any coverage channel live? The ring needs hooks compiled into
    /// the image; the trace unit watches the core itself and works on
    /// the plain build.
    fn cov_active(&self) -> bool {
        match self.backend.kind() {
            CoverageKind::Trace => true,
            CoverageKind::Ring => self.config.instrument != InstrumentMode::None,
        }
    }

    /// Decode one raw drain through the backend, folding its loss flag
    /// into the exec's coverage-partial marker. Observed edges stay
    /// valid either way; absence proves nothing once events were lost.
    fn ingest(&mut self, raw: &[u8], endian: Endianness) -> Vec<u64> {
        let drained = self.backend.decode_drain(raw, endian);
        if drained.partial() {
            self.cov_partial_pending = true;
        }
        drained.edges
    }

    /// A coverage drain that could not be confirmed applied is
    /// discarded whole — counted, marked partial, and the decoder's
    /// cross-drain state dropped (an attempt may have consumed the
    /// device FIFO with its reply lost, so the stream position is no
    /// longer trustworthy; the decoder re-locks at the next SYNC).
    fn discard_cov_drain(&mut self) -> Vec<u64> {
        self.cov_discards += 1;
        self.cov_partial_pending = true;
        tel::count("exec.cov_discarded", 1);
        self.backend.reset_stream();
        Vec::new()
    }

    fn drain_cov_inner(&mut self) -> Vec<u64> {
        if !self.cov_active() {
            return Vec::new();
        }
        if self.backend.kind() == CoverageKind::Trace {
            return self.drain_trace();
        }
        if self.config.vectored {
            return self.drain_cov_vectored();
        }
        let region = self.layout.cov;
        let endian = self.config.board.endianness;
        let policy = self.retry;
        // Header and records are read inside ONE retried closure: a
        // replay after a mid-drain drop re-reads the header and sizes the
        // record read from the *fresh* count. (Splitting them into two
        // retried ops would let a replayed record read trust a header
        // count from before the drop.)
        let Ok(raw) = policy.run(&mut self.link_retry, &mut self.transport, |p| {
            let mut header = [0u8; 12];
            p.read_mem(region.base, &mut header)?;
            let count = endian
                .u32_from([header[0], header[1], header[2], header[3]])
                .min(region.capacity);
            let mut raw = header.to_vec();
            if count > 0 {
                let mut records = vec![0u8; (count * 8) as usize];
                p.read_mem(region.base + 12, &mut records)?;
                raw.extend_from_slice(&records);
            }
            Ok(raw)
        }) else {
            return Vec::new();
        };
        if raw.len() == 12 {
            // count == 0: nothing buffered, nothing to reset.
            return Vec::new();
        }
        let edges = self.ingest(&raw, endian);
        // Reset the buffer for the agent.
        let zero = endian.u32_bytes(0);
        let _ = policy.run(&mut self.link_retry, &mut self.transport, |p| {
            p.write_mem(region.base, &zero)
        });
        let _ = policy.run(&mut self.link_retry, &mut self.transport, |p| {
            p.write_mem(region.base + 8, &zero)
        });
        edges
    }

    /// Vectored drain: one transaction peeks the header, a second reads
    /// header + records coalesced AND resets the buffer — so the drain
    /// and the reset are all-or-nothing (no torn resets; a replay after
    /// a drop re-reads everything and `parse_drain` recomputes the
    /// record count from the re-read header).
    fn drain_cov_vectored(&mut self) -> Vec<u64> {
        let region = self.layout.cov;
        let endian = self.config.board.endianness;
        let policy = self.retry;
        let mut peek = Txn::new();
        peek.read_mem(region.base, 12);
        let Ok(results) = policy.run_txn(&mut self.link_retry, &mut self.transport, &peek) else {
            return Vec::new();
        };
        let Some(TxnResult::Bytes(header)) = results.into_iter().next() else {
            return Vec::new();
        };
        let count = endian
            .u32_from([header[0], header[1], header[2], header[3]])
            .min(region.capacity);
        if count == 0 {
            return Vec::new();
        }
        let zero = endian.u32_bytes(0);
        let mut drain = Txn::new();
        drain
            .read_mem(region.base, 12 + count * 8)
            .write_mem(region.base, &zero)
            .write_mem(region.base + 8, &zero);
        let Ok(results) = policy.run_txn(&mut self.link_retry, &mut self.transport, &drain) else {
            return Vec::new();
        };
        let Some(TxnResult::Bytes(raw)) = results.into_iter().next() else {
            return Vec::new();
        };
        self.ingest(&raw, endian)
    }

    /// Drain the hardware trace FIFO: one atomic destructive wire op
    /// either way (the vectored path rides a transaction, the scalar
    /// path uses the dedicated probe command; both ship identical
    /// bytes — header first, then the live stream). There is no header
    /// peek and no reset write: the drain IS the reset, so a torn
    /// drain cannot leave host and device disagreeing about counts.
    fn drain_trace(&mut self) -> Vec<u64> {
        let endian = self.config.board.endianness;
        let policy = self.retry;
        let raw = if self.config.vectored {
            let mut txn = Txn::new();
            txn.drain_trace();
            match policy.run_txn(&mut self.link_retry, &mut self.transport, &txn) {
                Ok(results) => match results.into_iter().next() {
                    Some(TxnResult::Bytes(raw)) => raw,
                    _ => return self.discard_cov_drain(),
                },
                Err(_) => return self.discard_cov_drain(),
            }
        } else {
            match policy.run(&mut self.link_retry, &mut self.transport, |p| p.drain_trace()) {
                Ok(raw) => raw,
                Err(_) => return self.discard_cov_drain(),
            }
        };
        self.ingest(&raw, endian)
    }

    /// Vectored drain of both channels inside the coverage drain's own
    /// two wire conversations: the atomic `DrainRing` op rides the
    /// header-peek transaction, so the comparison channel costs zero
    /// extra transactions per exec — the wire advantage the scalar path
    /// cannot match.
    fn drain_cov_and_cmp(&mut self) -> (Vec<u64>, Vec<CmpRecord>) {
        let cov_span = tel::span_start("exec.cov_drain", self.transport.now());
        let cmp_span = tel::span_start("exec.cmp_drain", self.transport.now());
        let (edges, records) = if self.backend.kind() == CoverageKind::Trace {
            self.drain_trace_and_cmp_vectored()
        } else {
            self.drain_cov_and_cmp_vectored()
        };
        tel::span_end(cmp_span, self.transport.now());
        tel::span_end(cov_span, self.transport.now());
        if !records.is_empty() {
            tel::count("exec.cmp_records", records.len() as u64);
        }
        (edges, records)
    }

    fn drain_cov_and_cmp_vectored(&mut self) -> (Vec<u64>, Vec<CmpRecord>) {
        let cov = self.layout.cov;
        let cmp = self.layout.cmp;
        let endian = self.config.board.endianness;
        let policy = self.retry;
        let mut peek = Txn::new();
        peek.read_mem(cov.base, 12)
            .drain_ring(cmp.base, cmp.capacity, CMP_RECORD_BYTES);
        let Ok(results) = policy.run_txn(&mut self.link_retry, &mut self.transport, &peek) else {
            return (Vec::new(), self.discard_cmp_drain());
        };
        let mut results = results.into_iter();
        let Some(TxnResult::Bytes(header)) = results.next() else {
            return (Vec::new(), self.discard_cmp_drain());
        };
        let records = match results.next() {
            Some(TxnResult::Bytes(raw)) => {
                let (records, overflow) = cmp.parse_drain(&raw, endian);
                if overflow > 0 {
                    tel::count("exec.cmp_overflow", overflow as u64);
                }
                records
            }
            _ => self.discard_cmp_drain(),
        };
        let count = endian
            .u32_from([header[0], header[1], header[2], header[3]])
            .min(cov.capacity);
        if count == 0 {
            return (Vec::new(), records);
        }
        let zero = endian.u32_bytes(0);
        let mut drain = Txn::new();
        drain
            .read_mem(cov.base, 12 + count * 8)
            .write_mem(cov.base, &zero)
            .write_mem(cov.base + 8, &zero);
        let Ok(results) = policy.run_txn(&mut self.link_retry, &mut self.transport, &drain) else {
            return (Vec::new(), records);
        };
        let Some(TxnResult::Bytes(raw)) = results.into_iter().next() else {
            return (Vec::new(), records);
        };
        let edges = self.ingest(&raw, endian);
        (edges, records)
    }

    /// Trace-backend twin of [`Self::drain_cov_and_cmp_vectored`]: both
    /// destructive drains ride ONE transaction (`DrainTrace` +
    /// `DrainRing`), so the whole end-of-exec harvest is a single wire
    /// conversation that either applies atomically or not at all.
    fn drain_trace_and_cmp_vectored(&mut self) -> (Vec<u64>, Vec<CmpRecord>) {
        let cmp = self.layout.cmp;
        let endian = self.config.board.endianness;
        let policy = self.retry;
        let mut txn = Txn::new();
        txn.drain_trace()
            .drain_ring(cmp.base, cmp.capacity, CMP_RECORD_BYTES);
        let Ok(results) = policy.run_txn(&mut self.link_retry, &mut self.transport, &txn) else {
            return (self.discard_cov_drain(), self.discard_cmp_drain());
        };
        let mut results = results.into_iter();
        let edges = match results.next() {
            Some(TxnResult::Bytes(raw)) => self.ingest(&raw, endian),
            _ => self.discard_cov_drain(),
        };
        let records = match results.next() {
            Some(TxnResult::Bytes(raw)) => {
                let (records, overflow) = cmp.parse_drain(&raw, endian);
                if overflow > 0 {
                    tel::count("exec.cmp_overflow", overflow as u64);
                }
                records
            }
            _ => self.discard_cmp_drain(),
        };
        (edges, records)
    }

    /// Drain the cmplog operand ring. Mirrors the coverage drain's
    /// torn-drain discipline: the vectored path uses the atomic
    /// `DrainRing` op (read + reset in one transaction, so a partial
    /// application is impossible by construction), the scalar path reads
    /// header and records inside ONE retried closure so a replay re-sizes
    /// from the fresh count. A drain that still fails is discarded and
    /// counted — never a half-parsed journal entry; the next exec's
    /// arming header restarts the ring empty regardless.
    fn drain_cmp(&mut self) -> Vec<CmpRecord> {
        let span = tel::span_start("exec.cmp_drain", self.transport.now());
        let records = self.drain_cmp_inner();
        tel::span_end(span, self.transport.now());
        if !records.is_empty() {
            tel::count("exec.cmp_records", records.len() as u64);
        }
        records
    }

    fn drain_cmp_inner(&mut self) -> Vec<CmpRecord> {
        let region = self.layout.cmp;
        let endian = self.config.board.endianness;
        let policy = self.retry;
        if self.config.vectored {
            let mut txn = Txn::new();
            txn.drain_ring(region.base, region.capacity, CMP_RECORD_BYTES);
            let raw = match policy.run_txn(&mut self.link_retry, &mut self.transport, &txn) {
                Ok(results) => match results.into_iter().next() {
                    Some(TxnResult::Bytes(raw)) => raw,
                    _ => return self.discard_cmp_drain(),
                },
                Err(_) => return self.discard_cmp_drain(),
            };
            let (records, overflow) = region.parse_drain(&raw, endian);
            if overflow > 0 {
                tel::count("exec.cmp_overflow", overflow as u64);
            }
            return records;
        }
        let Ok(raw) = policy.run(&mut self.link_retry, &mut self.transport, |p| {
            let mut header = [0u8; 12];
            p.read_mem(region.base, &mut header)?;
            let count = endian
                .u32_from([header[0], header[1], header[2], header[3]])
                .min(region.capacity);
            let mut raw = header.to_vec();
            if count > 0 {
                let mut records = vec![0u8; (count * CMP_RECORD_BYTES) as usize];
                p.read_mem(region.base + 12, &mut records)?;
                raw.extend_from_slice(&records);
            }
            Ok(raw)
        }) else {
            return self.discard_cmp_drain();
        };
        let (records, overflow) = region.parse_drain(&raw, endian);
        if overflow > 0 {
            tel::count("exec.cmp_overflow", overflow as u64);
        }
        // Reset count and overflow; the arming word survives (and the
        // next upload rewrites the whole header anyway).
        let zero = endian.u32_bytes(0);
        let _ = policy.run(&mut self.link_retry, &mut self.transport, |p| {
            p.write_mem(region.base, &zero)
        });
        let _ = policy.run(&mut self.link_retry, &mut self.transport, |p| {
            p.write_mem(region.base + 8, &zero)
        });
        records
    }

    fn discard_cmp_drain(&mut self) -> Vec<CmpRecord> {
        self.cmp_discards += 1;
        tel::count("exec.cmp_discarded", 1);
        Vec::new()
    }

    /// Apply the coverage observability model (GDBFuzz's rotating
    /// hardware breakpoints see only a deterministic subset of edges).
    fn observe(&self, edges: Vec<u64>) -> Vec<u64> {
        let f = self.config.cov_observe_fraction.clamp(0.0, 1.0);
        if f >= 1.0 {
            return edges;
        }
        let threshold = (f * 1024.0) as u64;
        edges
            .into_iter()
            .filter(|e| {
                // Deterministic per-edge visibility: an edge either has a
                // breakpoint slot in the rotation or it does not.
                let h = (e ^ self.config.seed).wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 54;
                h < threshold
            })
            .collect()
    }

    /// Harvest UART output into the log monitor; returns matched lines.
    fn scan_uart(&mut self) -> Vec<eof_monitors::LogHit> {
        let bytes = self.transport.drain_uart();
        self.log_monitor.feed(&bytes)
    }

    /// Build a crash report from the current banner tail.
    fn crash_from_banner(&mut self, source: DetectionSource, prog: &Prog) -> CrashReport {
        let span = tel::span_start("exec.triage", self.transport.now());
        let report = self.crash_from_banner_inner(source, prog);
        tel::span_end(span, self.transport.now());
        report
    }

    fn crash_from_banner_inner(&mut self, source: DetectionSource, prog: &Prog) -> CrashReport {
        let tail: Vec<String> = self.log_monitor.tail().to_vec();
        let backtrace = parse_backtrace(&tail);
        // The banner's headline: the most recent crash-looking line that
        // is not a frame line.
        let message = tail
            .iter()
            .rev()
            .find(|l| !l.starts_with("Level:") && !l.starts_with("Stack frames"))
            .cloned()
            .unwrap_or_else(|| "crash".to_string());
        let bug = triage(self.config.os, &message, &backtrace).or_else(|| {
            tail.iter()
                .rev()
                .find_map(|l| triage(self.config.os, l, &backtrace))
        });
        CrashReport {
            os: self.config.os,
            message,
            backtrace,
            source,
            prog: prog.clone(),
            at_hours: self.now_hours(),
            bug,
        }
    }

    /// Execute one prog. This is the body of the fuzzing loop.
    pub fn run_one(&mut self, prog: &Prog) -> ExecOutcome {
        let span = tel::span_start("exec", self.transport.now());
        let outcome = self.run_one_inner(prog);
        tel::span_end(span, self.transport.now());
        outcome
    }

    fn run_one_inner(&mut self, prog: &Prog) -> ExecOutcome {
        let start = self.transport.now();
        let mut outcome = ExecOutcome::default();
        let mut all_edges: Vec<u64> = Vec::new();
        self.cov_partial_pending = false;
        // Scope crash attribution to this execution: stale banner lines
        // from an earlier test case must not leak into this one's
        // backtrace recovery.
        self.log_monitor.clear_tail();

        if !self.at_main {
            self.sync_to_main();
            if !self.at_main {
                // Target unreachable even after a full supervisor
                // episode; give up on this exec (time was charged) and
                // surface the failed sync instead of swallowing it.
                outcome.restored = true;
                outcome.target_lost = true;
                outcome.sync_failed = true;
                outcome.cycles = self.transport.now() - start;
                return outcome;
            }
        }

        // Upload the prog. Transient link drops are retried at the link
        // layer; only a persistent loss escalates to the supervisor.
        let translate_span = tel::span_start("exec.translate", self.transport.now());
        let encoded = encode_prog(prog, &self.api_table, self.order);
        tel::span_end(translate_span, self.transport.now());
        let Ok(bytes) = encoded else {
            outcome.cycles = self.transport.now() - start;
            return outcome;
        };
        let endian = self.config.board.endianness;
        let len_bytes = endian.u32_bytes(bytes.len() as u32);
        let prog_addr = self.layout.prog_addr;
        let policy = self.retry;
        // Cmplog campaigns arm the operand ring alongside the upload: a
        // fresh header (count 0, capacity set) every exec, so the ring
        // starts empty even if the previous drain was lost. Without
        // cmplog no extra bytes touch the wire — the exec is
        // bit-identical to the pre-cmplog pipeline.
        let armed_header = self
            .config
            .cmplog
            .then(|| self.layout.cmp.armed_header(endian));
        let uploaded = if self.config.vectored {
            // Length word, prog body (and arming header) land in one
            // round trip.
            let mut txn = Txn::new();
            txn.write_mem(prog_addr, &len_bytes)
                .write_mem(prog_addr + 4, &bytes);
            if let Some(header) = armed_header.as_ref() {
                txn.write_mem(self.layout.cmp.base, header);
            }
            policy
                .run_txn(&mut self.link_retry, &mut self.transport, &txn)
                .is_ok()
        } else {
            policy
                .run(&mut self.link_retry, &mut self.transport, |p| {
                    p.write_mem(prog_addr, &len_bytes)
                })
                .is_ok()
                && policy
                    .run(&mut self.link_retry, &mut self.transport, |p| {
                        p.write_mem(prog_addr + 4, &bytes)
                    })
                    .is_ok()
                && armed_header.as_ref().is_none_or(|header| {
                    let cmp_base = self.layout.cmp.base;
                    policy
                        .run(&mut self.link_retry, &mut self.transport, |p| {
                            p.write_mem(cmp_base, header)
                        })
                        .is_ok()
                })
        };
        if !uploaded {
            self.recover(RecoveryReason::ConnectionLoss);
            outcome.restored = true;
            outcome.target_lost = true;
            outcome.cycles = self.transport.now() - start;
            return outcome;
        }
        self.at_main = false;

        let mut crashed_this_exec = false;
        let mut parked_hits = 0u32;
        let mut slices = 0u32;
        loop {
            slices += 1;
            if slices > MAX_SLICES {
                // Pathologically long execution: treat as degraded.
                self.stall_events += 1;
                outcome.stalled = true;
                let _ = self.scan_uart();
                self.recover(RecoveryReason::Stall);
                outcome.restored = true;
                break;
            }
            // Transient link errors on the continue are retried at the
            // link layer (re-issuing a resume is idempotent); only a
            // persistent loss reaches the supervisor below.
            let step = policy.run(&mut self.link_retry, &mut self.transport, |p| {
                p.continue_until_halt(SLICE_CYCLES)
            });
            match step {
                Ok(LinkEvent::BreakpointHit { pc }) if pc == self.main_addr => {
                    // Prog finished.
                    self.at_main = true;
                    break;
                }
                Ok(LinkEvent::BreakpointHit { pc }) if pc == self.buf_full_addr => {
                    all_edges.extend(self.drain_cov());
                    continue;
                }
                Ok(LinkEvent::BreakpointHit { pc })
                    if Some(pc) == self.exception_addr && !crashed_this_exec =>
                {
                    crashed_this_exec = true;
                    // Let the handler print its banner: the banner steps
                    // keep the PC on the handler, so each one re-halts.
                    for _ in 0..12 {
                        match self.transport.continue_until_halt(64) {
                            Ok(LinkEvent::BreakpointHit { pc: p })
                                if Some(p) == self.exception_addr =>
                            {
                                continue
                            }
                            _ => break,
                        }
                    }
                    let _ = self.scan_uart();
                    // Crash-path coverage matters (the paper feeds crash
                    // signals back as guidance): drain before anything
                    // resets the buffer.
                    all_edges.extend(self.drain_cov());
                    let report = self.crash_from_banner(DetectionSource::ExceptionMonitor, prog);
                    outcome.crash = Some(report);
                    continue;
                }
                Ok(LinkEvent::BreakpointHit { pc }) if Some(pc) == self.exception_addr => {
                    // Still parked in the handler after reporting. A
                    // recoverable fault walks out within a couple of
                    // resumes; a hanging one never does — apply the
                    // configured liveness channel to decide how fast the
                    // campaign notices.
                    parked_hits += 1;
                    if parked_hits < 3 {
                        continue;
                    }
                    let declare = if self.config.recovery.stall_watchdog {
                        // Algorithm 1's PC check: the PC has provably not
                        // left the handler across three resumes.
                        true
                    } else if self.config.recovery.power_liveness {
                        self.power_watchdog
                            .check(&mut self.transport)
                            .is_liveness_issue()
                    } else if let Some(secs) = self.config.detection.timeout_only_secs {
                        self.transport.now() - start >= secs_to_cycles(secs)
                    } else {
                        false
                    };
                    if declare {
                        self.stall_events += 1;
                        outcome.stalled = true;
                        all_edges.extend(self.drain_cov());
                        let _ = self.scan_uart();
                        self.recover(RecoveryReason::Stall);
                        outcome.restored = true;
                        break;
                    }
                    continue;
                }
                Ok(LinkEvent::BreakpointHit { .. }) => continue,
                Ok(LinkEvent::WatchdogReset) => {
                    outcome.stalled = true;
                    self.at_main = false;
                    break;
                }
                Ok(LinkEvent::StillRunning) => {
                    if self.config.recovery.power_liveness && !self.config.recovery.stall_watchdog {
                        // §6 extension: the current probe spots plateaus
                        // (spin loops) and idle draw (dead core) without
                        // touching the debug link.
                        if self
                            .power_watchdog
                            .check(&mut self.transport)
                            .is_liveness_issue()
                        {
                            self.stall_events += 1;
                            outcome.stalled = true;
                            let hits = self.scan_uart();
                            if self.config.detection.log_monitor {
                                if let Some(hit) = hits.first() {
                                    let mut report =
                                        self.crash_from_banner(DetectionSource::LogMonitor, prog);
                                    report.message = hit.line.clone();
                                    report.bug =
                                        triage(self.config.os, &hit.line, &report.backtrace)
                                            .or(report.bug);
                                    outcome.crash = Some(report);
                                }
                            }
                            self.recover(RecoveryReason::Stall);
                            outcome.restored = true;
                            break;
                        }
                        continue;
                    }
                    if self.config.recovery.stall_watchdog {
                        match self.watchdog.check(&mut self.transport) {
                            Liveness::Alive => continue,
                            verdict @ (Liveness::Stalled { .. } | Liveness::ConnectionTimeout) => {
                                self.stall_events += 1;
                                outcome.stalled = true;
                                all_edges.extend(self.drain_cov());
                                let hits = self.scan_uart();
                                if self.config.detection.log_monitor {
                                    if let Some(hit) = hits.first() {
                                        let mut report = self
                                            .crash_from_banner(DetectionSource::LogMonitor, prog);
                                        report.message = hit.line.clone();
                                        report.bug =
                                            triage(self.config.os, &hit.line, &report.backtrace)
                                                .or(report.bug);
                                        outcome.crash = Some(report);
                                    }
                                }
                                // Algorithm 1 distinguishes the two
                                // liveness failures; so does the ladder.
                                let reason = match verdict {
                                    Liveness::ConnectionTimeout => RecoveryReason::ConnectionLoss,
                                    _ => RecoveryReason::Stall,
                                };
                                self.recover(reason);
                                outcome.restored = true;
                                break;
                            }
                        }
                    } else if let Some(secs) = self.config.detection.timeout_only_secs {
                        // Timeout-only liveness: keep burning slices until
                        // the patience runs out.
                        if self.transport.now() - start >= secs_to_cycles(secs) {
                            self.stall_events += 1;
                            outcome.stalled = true;
                            all_edges.extend(self.drain_cov());
                            // Offline triage of whatever the UART holds.
                            let _ = self.scan_uart();
                            let tail = self.log_monitor.tail().to_vec();
                            let crash_line = tail.iter().rev().find(|l| {
                                eof_monitors::PatternSet::default_crash_patterns()
                                    .first_match(l)
                                    .is_some()
                            });
                            if let Some(line) = crash_line {
                                let backtrace = parse_backtrace(&tail);
                                let bug = triage(self.config.os, line, &backtrace);
                                outcome.crash = Some(CrashReport {
                                    os: self.config.os,
                                    message: line.clone(),
                                    backtrace,
                                    source: DetectionSource::Timeout,
                                    prog: prog.clone(),
                                    at_hours: self.now_hours(),
                                    bug,
                                });
                            }
                            self.recover(RecoveryReason::Stall);
                            outcome.restored = true;
                            break;
                        }
                        continue;
                    } else {
                        // No stall detection at all: rely on MAX_SLICES.
                        continue;
                    }
                }
                Ok(LinkEvent::TargetDead) | Err(_) => {
                    outcome.target_lost = true;
                    outcome.stalled = true;
                    let _ = self.scan_uart();
                    self.recover(RecoveryReason::ConnectionLoss);
                    outcome.restored = true;
                    break;
                }
            }
        }

        // Final coverage drain (healthy completion path). The operand
        // ring rides the same path — vectored inside the coverage
        // drain's own transactions, scalar as its own retried reads.
        // Degraded paths skip it deliberately: a restoration wipes the
        // ring with the rest of board state anyway.
        if self.at_main {
            if self.config.cmplog && self.config.vectored && self.cov_active() {
                let (edges, records) = self.drain_cov_and_cmp();
                all_edges.extend(edges);
                outcome.cmp_records = records;
            } else {
                all_edges.extend(self.drain_cov());
                if self.config.cmplog {
                    outcome.cmp_records = self.drain_cmp();
                }
            }
        }

        // Log monitor on the healthy path too (non-hanging assert spam).
        let hits = self.scan_uart();
        if self.config.detection.log_monitor && outcome.crash.is_none() {
            if let Some(hit) = hits.first() {
                let mut report = self.crash_from_banner(DetectionSource::LogMonitor, prog);
                report.message = hit.line.clone();
                report.bug = triage(self.config.os, &hit.line, &report.backtrace).or(report.bug);
                outcome.crash = Some(report);
            }
        }

        let observed = self.observe(all_edges);
        outcome.edges_hit = observed.len();
        outcome.new_edges = self.cov_map.merge(&observed);
        outcome.cov_partial = self.cov_partial_pending;
        if outcome.cov_partial {
            tel::count("exec.cov_partial", 1);
        }
        self.execs += 1;

        // Surface the trace decoder's per-exec deltas (its counters are
        // lifetime totals). Zero-cost on the ring backend: its stats
        // are all-zero and nothing is emitted.
        let stats = self.backend.stats();
        for (name, v) in [
            ("cov.trace.packets", stats.packets - self.trace_seen.packets),
            ("cov.trace.bytes", stats.bytes - self.trace_seen.bytes),
            (
                "cov.trace.overflow",
                stats.overflows - self.trace_seen.overflows,
            ),
            ("cov.trace.resyncs", stats.resyncs - self.trace_seen.resyncs),
        ] {
            if v > 0 {
                tel::count(name, v);
            }
        }
        self.trace_seen = stats;

        // Drain the MMIO-plane counters once per exec so campaign totals
        // are exact; a restoration wipes the space's stats with the rest
        // of the board state, so anything not drained here is gone.
        let mmio = self.transport.machine_mut().bus_mut().mmio.take_stats();
        for (name, v) in [
            ("mmio.reads", mmio.reads),
            ("mmio.replay_hits", mmio.replay_hits),
            ("mmio.inject_bytes", mmio.inject_bytes),
            ("mmio.irq.spi", mmio.irq_spi),
            ("mmio.irq.i2c", mmio.irq_i2c),
            ("mmio.irq.dma", mmio.irq_dma),
        ] {
            if v > 0 {
                tel::count(name, v);
            }
        }

        // Baseline execution-cost model (QEMU TCG, semihosting traps).
        let spent = self.transport.now() - start;
        if self.config.exec_cost_multiplier > 1.0 {
            let extra = ((self.config.exec_cost_multiplier - 1.0) * spent as f64) as u64;
            self.transport.sleep(extra);
        }
        outcome.cycles = self.transport.now() - start;
        if outcome.cycles >= slow_exec_threshold() {
            tel::count("exec.slow", 1);
            tel::event("exec.slow", self.transport.now(), || {
                format!("cycles={} calls={}", outcome.cycles, prog.calls.len())
            });
            if std::env::var_os("EOF_DEBUG_SLOW").is_some() {
                eprintln!("[slow exec: {} cycles]\n{prog}", outcome.cycles);
            }
        }

        if !self.at_main {
            self.sync_to_main();
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DetectionConfig, FuzzerConfig};
    use eof_agent::{api_table_of, boot_machine};
    use eof_dap::LinkConfig;
    use eof_monitors::{parse_kconfig, render_kconfig};
    use eof_rtos::image::build_image;
    use eof_rtos::OsKind;
    use eof_speclang::prog::{ArgValue, Call};

    fn executor_for(config: FuzzerConfig) -> Executor {
        // What the campaign would flash: the plain build when the trace
        // backend is selected, the instrumented build otherwise.
        let instrument = config.effective_instrument();
        let image = build_image(config.os, config.profile, &instrument);
        let machine = boot_machine(config.board.clone(), config.os, config.profile, &instrument);
        let kconfig = parse_kconfig(&render_kconfig("arm", machine.flash().table())).unwrap();
        let restoration = StateRestoration::from_kconfig(
            &kconfig,
            config.board.flash_size,
            vec![("kernel".to_string(), image)],
        )
        .unwrap();
        let transport = DebugTransport::attach(machine, LinkConfig::default());
        let table = api_table_of(config.os);
        Executor::new(transport, config, table, restoration).unwrap()
    }

    fn call(api: &str, args: Vec<ArgValue>) -> Call {
        Call {
            api: api.into(),
            args,
        }
    }

    #[test]
    fn healthy_prog_executes_and_covers() {
        let mut e = executor_for(FuzzerConfig::eof(OsKind::FreeRtos, 1));
        let prog = Prog {
            mmio: vec![],
            calls: vec![
                call("xQueueCreate", vec![ArgValue::Int(4), ArgValue::Int(16)]),
                call(
                    "xQueueSend",
                    vec![ArgValue::ResourceRef(0), ArgValue::Buffer(vec![1, 2, 3])],
                ),
                call(
                    "json_parse",
                    vec![ArgValue::Buffer(br#"{"a":[1,2]}"#.to_vec())],
                ),
            ],
        };
        let out = e.run_one(&prog);
        assert!(out.crash.is_none(), "{:?}", out.crash);
        assert!(!out.stalled);
        assert!(out.new_edges > 0, "no coverage observed");
        assert_eq!(e.execs(), 1);
        // Re-running the same prog finds nothing new.
        let out2 = e.run_one(&prog);
        assert_eq!(out2.new_edges, 0);
        assert!(out2.edges_hit > 0);
    }

    #[test]
    fn exception_bug_is_caught_and_triaged() {
        let mut e = executor_for(FuzzerConfig::eof(OsKind::FreeRtos, 2));
        let prog = Prog {
            mmio: vec![],
            calls: vec![call(
                "load_partitions",
                vec![ArgValue::Int(3), ArgValue::Int(0x10)],
            )],
        };
        let out = e.run_one(&prog);
        let crash = out.crash.expect("crash detected");
        assert_eq!(crash.source, DetectionSource::ExceptionMonitor);
        assert_eq!(crash.bug.map(|b| b.number()), Some(13));
        assert!(crash
            .backtrace
            .iter()
            .any(|f| f.contains("load_partitions")));
        // Recoverable fault: no restoration needed.
        assert!(!out.restored);
        // The target keeps fuzzing.
        let out2 = e.run_one(&Prog {
            mmio: vec![],
            calls: vec![call("json_parse", vec![ArgValue::Buffer(b"[]".to_vec())])],
        });
        assert!(out2.crash.is_none());
    }

    #[test]
    fn hanging_bug_is_caught_by_log_monitor_and_restored() {
        let mut e = executor_for(FuzzerConfig::eof(OsKind::RtThread, 3));
        // Bug #8: assert + hang; detection class is the log monitor.
        let prog = Prog {
            mmio: vec![],
            calls: vec![call(
                "rt_object_init",
                vec![ArgValue::Int(6), ArgValue::CString(String::new())],
            )],
        };
        let out = e.run_one(&prog);
        let crash = out.crash.expect("crash detected");
        assert_eq!(crash.source, DetectionSource::LogMonitor);
        assert_eq!(crash.bug.map(|b| b.number()), Some(8));
        assert!(out.stalled);
        assert!(out.restored);
        // Target restored and fuzzing continues.
        let out2 = e.run_one(&Prog {
            mmio: vec![],
            calls: vec![call("rt_malloc", vec![ArgValue::Int(64)])],
        });
        assert!(out2.crash.is_none(), "{:?}", out2.crash);
        assert!(e.restorations() >= 1);
    }

    #[test]
    fn legit_hang_is_degraded_state_not_bug() {
        let mut e = executor_for(FuzzerConfig::eof(OsKind::Zephyr, 4));
        // A K_FOREVER get on an empty queue is bounded by the agent and
        // is NOT a degraded state.
        let bounded = Prog {
            mmio: vec![],
            calls: vec![
                call(
                    "k_msgq_alloc_init",
                    vec![ArgValue::Int(4), ArgValue::Int(16)],
                ),
                call(
                    "z_impl_k_msgq_get",
                    vec![ArgValue::ResourceRef(0), ArgValue::Int(u64::MAX)],
                ),
            ],
        };
        let out = e.run_one(&bounded);
        assert!(!out.stalled);
        assert!(out.crash.is_none(), "{:?}", out.crash);
        // A frozen core (injected execution stall) IS a degraded state:
        // the watchdog recovers it without calling it a bug.
        e.transport_mut().machine_mut().set_fault_plan(
            eof_hal::FaultPlan::none().at(10, eof_hal::InjectedFault::FreezeFirmware),
        );
        let out = e.run_one(&bounded);
        assert!(out.stalled);
        assert!(out.restored);
        assert!(out.crash.is_none(), "{:?}", out.crash);
        assert!(e.stall_events() >= 1);
    }

    #[test]
    fn reset_rung_recovers_frozen_firmware() {
        use crate::supervisor::Rung;
        let mut cfg = FuzzerConfig::eof(OsKind::FreeRtos, 31);
        // With the snapshot fast path armed, SnapshotRestore would absorb
        // the episode before Reset ever runs; disable it to exercise the
        // reboot rung in isolation.
        cfg.snapshot = false;
        let mut e = executor_for(cfg);
        let prog = Prog {
            mmio: vec![],
            calls: vec![call("json_parse", vec![ArgValue::Buffer(b"[1]".to_vec())])],
        };
        e.transport_mut().machine_mut().set_fault_plan(
            eof_hal::FaultPlan::none().at(10, eof_hal::InjectedFault::FreezeFirmware),
        );
        let out = e.run_one(&prog);
        assert!(out.stalled);
        assert!(out.restored);
        let r = e.resilience();
        // Frozen firmware means the flash is intact: the first rung that
        // acts on the core — reset — must be the one that sticks, and a
        // stall must never burn the resume rung (the PC provably cannot
        // move, so re-parking without action is futile).
        assert_eq!(r.rung_successes[Rung::Reset.index()], 1, "{r:?}");
        assert_eq!(r.rung_attempts[Rung::Resume.index()], 0, "{r:?}");
        assert_eq!(r.rung_attempts[Rung::VerifyReflash.index()], 0, "{r:?}");
        // Target is healthy again.
        assert!(e.run_one(&prog).crash.is_none());
    }

    #[test]
    fn snapshot_rung_recovers_frozen_firmware_without_reboot() {
        use crate::supervisor::Rung;
        let mut cfg = FuzzerConfig::eof(OsKind::FreeRtos, 31);
        cfg.snapshot = true;
        let mut e = executor_for(cfg);
        let prog = Prog {
            mmio: vec![],
            calls: vec![call("json_parse", vec![ArgValue::Buffer(b"[1]".to_vec())])],
        };
        let resets_before = e.transport_mut().machine().reset_count();
        e.transport_mut().machine_mut().set_fault_plan(
            eof_hal::FaultPlan::none().at(10, eof_hal::InjectedFault::FreezeFirmware),
        );
        let out = e.run_one(&prog);
        assert!(out.stalled);
        assert!(out.restored);
        let r = e.resilience();
        // The armed snapshot is valid (flash untouched, same boot): the
        // delta rung must absorb the whole episode without a reboot —
        // the reset line is never pulled.
        assert_eq!(r.rung_successes[Rung::SnapshotRestore.index()], 1, "{r:?}");
        assert_eq!(r.rung_attempts[Rung::Reset.index()], 0, "{r:?}");
        assert_eq!(
            e.transport_mut().machine().reset_count(),
            resets_before,
            "snapshot restore must not reboot"
        );
        assert!(e.run_one(&prog).crash.is_none());
    }

    #[test]
    fn reflash_rung_heals_corrupted_flash() {
        use crate::supervisor::Rung;
        let mut e = executor_for(FuzzerConfig::eof(OsKind::FreeRtos, 32));
        let prog = Prog {
            mmio: vec![],
            calls: vec![call("json_parse", vec![ArgValue::Buffer(b"[1]".to_vec())])],
        };
        let kernel = e
            .transport_mut()
            .machine_mut()
            .flash()
            .table()
            .get("kernel")
            .unwrap()
            .clone();
        // Corrupt the stored image, then freeze the (still-loaded) copy:
        // the stall forces recovery, and every plain reset now boots the
        // corrupted flash — only the checksum-verify rung can heal it.
        e.transport_mut().machine_mut().set_fault_plan(
            eof_hal::FaultPlan::none()
                .at(
                    5,
                    eof_hal::InjectedFault::FlashBitFlip {
                        offset: kernel.offset + 4096,
                        bit: 2,
                    },
                )
                .at(10, eof_hal::InjectedFault::FreezeFirmware),
        );
        let out = e.run_one(&prog);
        assert!(out.restored);
        let r = e.resilience();
        assert_eq!(r.rung_successes[Rung::VerifyReflash.index()], 1, "{r:?}");
        // The reset rung was tried (its full budget) and could not help.
        assert_eq!(r.rung_attempts[Rung::Reset.index()], 2, "{r:?}");
        assert_eq!(r.rung_successes[Rung::Reset.index()], 0, "{r:?}");
        assert!(e.run_one(&prog).crash.is_none());
    }

    #[test]
    fn power_cycle_rung_revives_killed_core_under_link_outage() {
        use crate::supervisor::Rung;
        let mut e = executor_for(FuzzerConfig::eof(OsKind::FreeRtos, 33));
        let prog = Prog {
            mmio: vec![],
            calls: vec![call("json_parse", vec![ArgValue::Buffer(b"[1]".to_vec())])],
        };
        // A killed core with the probe link down defeats every rung that
        // needs the debug port: reset and reflash all fail while the
        // outage lasts, and a plain reset cannot release the lockup latch
        // anyway. The power rail is independent of the link, so the
        // power-cycle rung revives the core; by the time its verify runs
        // the outage has expired and the park succeeds.
        e.transport_mut().machine_mut().set_fault_plan(
            eof_hal::FaultPlan::none()
                .at(10, eof_hal::InjectedFault::KillCore)
                .at(10, eof_hal::InjectedFault::DropLink { cycles: 12_000 }),
        );
        let out = e.run_one(&prog);
        assert!(out.restored);
        let r = e.resilience();
        assert_eq!(r.rung_successes[Rung::PowerCycle.index()], 1, "{r:?}");
        assert_eq!(r.rung_successes[Rung::FullReflash.index()], 0, "{r:?}");
        assert_eq!(r.manual_interventions, 0, "{r:?}");
        assert!(e.transport_mut().machine_mut().power_cycles() >= 1);
        assert!(e.run_one(&prog).crash.is_none());
    }

    #[test]
    fn outage_mid_run_loses_no_coverage_or_crash() {
        // A transient link drop during the exec must be absorbed by the
        // link-layer retry: the coverage drained and the crash detected
        // must match a fault-free run of the identical prog bit-for-bit.
        let prog = Prog {
            mmio: vec![],
            calls: vec![
                call(
                    "json_parse",
                    vec![ArgValue::Buffer(br#"{"a":[1,2]}"#.to_vec())],
                ),
                call(
                    "load_partitions",
                    vec![ArgValue::Int(3), ArgValue::Int(0x10)],
                ),
            ],
        };
        let mut control = executor_for(FuzzerConfig::eof(OsKind::FreeRtos, 34));
        let clean = control.run_one(&prog);
        let mut faulted = executor_for(FuzzerConfig::eof(OsKind::FreeRtos, 34));
        faulted.transport_mut().machine_mut().set_fault_plan(
            eof_hal::FaultPlan::none().at(300, eof_hal::InjectedFault::DropLink { cycles: 600 }),
        );
        let noisy = faulted.run_one(&prog);
        let r = faulted.resilience();
        assert!(
            r.link.recovered > 0,
            "outage never hit a link op (retune the fault time): {r:?}"
        );
        assert_eq!(r.link.exhausted, 0, "{r:?}");
        // Nothing escalated to the supervisor...
        assert_eq!(r.episodes, 0, "{r:?}");
        // ...and nothing was lost: same edges, same crash class.
        assert_eq!(noisy.new_edges, clean.new_edges);
        assert_eq!(
            noisy.crash.as_ref().map(|c| c.bug),
            clean.crash.as_ref().map(|c| c.bug)
        );
        assert_eq!(faulted.coverage().branches(), control.coverage().branches());
    }

    #[test]
    fn timeout_only_detection_sees_hanging_bug_late() {
        let mut cfg = FuzzerConfig::eof(OsKind::Zephyr, 5);
        cfg.detection = DetectionConfig::timeout_only(10);
        cfg.recovery = crate::config::RecoveryConfig::reboot_only();
        let mut e = executor_for(cfg);
        // Bug #4 hangs after the fault; timeout-only tools notice the
        // hang and triage offline from the UART tail.
        let prog = Prog {
            mmio: vec![],
            calls: vec![call(
                "k_heap_init",
                vec![ArgValue::Int(12), ArgValue::Int(7)],
            )],
        };
        let before = e.now();
        let out = e.run_one(&prog);
        let crash = out.crash.expect("timeout-detected crash");
        assert_eq!(crash.source, DetectionSource::Timeout);
        assert_eq!(crash.bug.map(|b| b.number()), Some(4));
        // And it took at least the timeout patience.
        assert!(e.now() - before >= secs_to_cycles(10));
    }

    #[test]
    fn timeout_only_misses_recoverable_bug() {
        let mut cfg = FuzzerConfig::eof(OsKind::FreeRtos, 6);
        cfg.detection = DetectionConfig::timeout_only(10);
        let mut e = executor_for(cfg);
        // Bug #13 does not hang: without exception breakpoints it is
        // invisible.
        let prog = Prog {
            mmio: vec![],
            calls: vec![call(
                "load_partitions",
                vec![ArgValue::Int(3), ArgValue::Int(0x10)],
            )],
        };
        let out = e.run_one(&prog);
        assert!(out.crash.is_none());
        assert!(!out.stalled);
    }

    #[test]
    fn uninstrumented_run_sees_no_edges() {
        let mut cfg = FuzzerConfig::eof(OsKind::FreeRtos, 7);
        cfg.instrument = InstrumentMode::None;
        let mut e = executor_for(cfg);
        let out = e.run_one(&Prog {
            mmio: vec![],
            calls: vec![call("json_parse", vec![ArgValue::Buffer(b"[1]".to_vec())])],
        });
        assert_eq!(out.new_edges, 0);
        assert!(out.crash.is_none());
    }

    #[test]
    fn trace_backend_covers_an_uninstrumented_image() {
        use eof_coverage::CoverageKind;
        let mut cfg = FuzzerConfig::eof(OsKind::FreeRtos, 7);
        cfg.coverage_backend = CoverageKind::Trace;
        // The flashed image carries no hooks at all...
        assert_eq!(cfg.effective_instrument(), InstrumentMode::None);
        let mut e = executor_for(cfg);
        assert_eq!(e.coverage_kind(), CoverageKind::Trace);
        let prog = Prog {
            mmio: vec![],
            calls: vec![call(
                "json_parse",
                vec![ArgValue::Buffer(br#"{"a":[1,2]}"#.to_vec())],
            )],
        };
        // ...yet the trace unit delivers full edge feedback.
        let out = e.run_one(&prog);
        assert!(out.new_edges > 0, "trace backend observed no edges");
        assert!(!out.cov_partial, "default FIFO must not overflow");
        let stats = e.trace_stats();
        assert!(stats.packets > 0 && stats.bytes > 0);
        assert_eq!(stats.overflows, 0);
        // Re-running the same prog finds nothing new — the stream
        // decodes deterministically across drains.
        let out2 = e.run_one(&prog);
        assert_eq!(out2.new_edges, 0);
        assert!(out2.edges_hit > 0);
    }

    #[test]
    fn trace_and_ring_merge_identical_coverage() {
        use eof_coverage::CoverageKind;
        let prog = Prog {
            mmio: vec![],
            calls: vec![
                call("xQueueCreate", vec![ArgValue::Int(4), ArgValue::Int(16)]),
                call(
                    "json_parse",
                    vec![ArgValue::Buffer(br#"{"a":[1,{"b":true}]}"#.to_vec())],
                ),
            ],
        };
        let mut ring = executor_for(FuzzerConfig::eof(OsKind::FreeRtos, 41));
        let mut cfg = FuzzerConfig::eof(OsKind::FreeRtos, 41);
        cfg.coverage_backend = CoverageKind::Trace;
        let mut trace = executor_for(cfg);
        let r = ring.run_one(&prog);
        let t = trace.run_one(&prog);
        // Same edges observed, same bitmap — backend invisible above
        // the trait. (The full 4-OS campaign-level gate lives in
        // tests/trace_equiv.rs; this is the single-exec kernel of it.)
        assert_eq!(r.edges_hit, t.edges_hit);
        assert_eq!(r.new_edges, t.new_edges);
        assert_eq!(
            ring.coverage().sorted_edges(),
            trace.coverage().sorted_edges()
        );
    }

    #[test]
    fn observe_fraction_reduces_feedback() {
        let mut full_cfg = FuzzerConfig::eof(OsKind::FreeRtos, 8);
        full_cfg.instrument = InstrumentMode::Modules(vec!["json".into(), "http".into()]);
        let mut partial_cfg = full_cfg.clone();
        partial_cfg.cov_observe_fraction = 0.15;
        let prog = Prog {
            mmio: vec![],
            calls: vec![
                call(
                    "json_parse",
                    vec![ArgValue::Buffer(br#"{"k":[1,true,"s"],"m":{}}"#.to_vec())],
                ),
                call(
                    "http_request",
                    vec![ArgValue::Buffer(
                        b"GET /status HTTP/1.1\r\nHost: x\r\n\r\n".to_vec(),
                    )],
                ),
            ],
        };
        let mut full = executor_for(full_cfg);
        let mut partial = executor_for(partial_cfg);
        let f = full.run_one(&prog);
        let p = partial.run_one(&prog);
        assert!(
            p.new_edges < f.new_edges,
            "partial observation ({}) must see less than full ({})",
            p.new_edges,
            f.new_edges
        );
    }

    #[test]
    fn exec_cost_multiplier_slows_execution() {
        let mut fast_cfg = FuzzerConfig::eof(OsKind::FreeRtos, 9);
        fast_cfg.board = eof_rtos::registry::default_board(OsKind::FreeRtos);
        let mut slow_cfg = fast_cfg.clone();
        slow_cfg.exec_cost_multiplier = 2.0;
        let prog = Prog {
            mmio: vec![],
            calls: vec![call(
                "json_parse",
                vec![ArgValue::Buffer(b"[1,2]".to_vec())],
            )],
        };
        let mut fast = executor_for(fast_cfg);
        let mut slow = executor_for(slow_cfg);
        let cf = fast.run_one(&prog).cycles;
        let cs = slow.run_one(&prog).cycles;
        assert!(cs > cf + cf / 2, "multiplier not applied: {cf} vs {cs}");
    }
}
