//! The feedback-guided fuzzing loop.
//!
//! Each iteration either mutates a corpus seed or generates a fresh
//! prog, executes it via the [`Executor`], and — when feedback is
//! enabled — admits interesting inputs to the corpus and rewards their
//! call adjacencies (§4.5). Without feedback (EOF-nf) every input is
//! fresh and nothing is retained, which is exactly the ablation the
//! paper measures.

use crate::cmplog::{CmpJournal, MutOp, OpScheduler};
use crate::config::FuzzerConfig;
use crate::corpus::Corpus;
use crate::crash::CrashDb;
use crate::executor::Executor;
use crate::gen::Generator;
use crate::persist::{CampaignStore, PersistedCrash};
use eof_coverage::Snapshot;
use eof_telemetry as tel;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Aggregate counters of one campaign.
#[derive(Debug, Clone, Default)]
pub struct FuzzerStats {
    /// Test cases executed.
    pub execs: u64,
    /// Inputs that discovered new coverage.
    pub interesting: u64,
    /// Crash observations (pre-dedup).
    pub crash_observations: u64,
    /// Stall/timeout degraded states handled.
    pub stalls: u64,
    /// Restorations performed.
    pub restorations: u64,
    /// Executions skipped because the target could not be parked at the
    /// sync point even after recovery.
    pub failed_syncs: u64,
    /// Per-operator executions, indexed by [`MutOp::index`]. All zero
    /// unless the campaign runs cmplog (only scheduled mutants count).
    pub op_execs: [u64; MutOp::COUNT],
    /// Per-operator interesting hits, indexed by [`MutOp::index`].
    pub op_interesting: [u64; MutOp::COUNT],
}

/// The EOF fuzzing loop.
pub struct Fuzzer {
    config: FuzzerConfig,
    generator: Generator,
    corpus: Corpus,
    executor: Executor,
    crashes: CrashDb,
    rng: StdRng,
    stats: FuzzerStats,
    store: Option<CampaignStore>,
    /// Cmplog state: the operand journal and the operator scheduler.
    /// `None` when the campaign runs without cmplog — the loop then
    /// takes the exact pre-cmplog path, consuming identical RNG draws.
    cmplog: Option<(CmpJournal, OpScheduler)>,
}

impl Fuzzer {
    /// Assemble the loop.
    pub fn new(config: FuzzerConfig, generator: Generator, executor: Executor) -> Self {
        let rng = StdRng::seed_from_u64(config.seed ^ 0xf00d);
        let cmplog = config
            .cmplog
            .then(|| (CmpJournal::new(), OpScheduler::new(config.seed)));
        Fuzzer {
            config,
            generator,
            corpus: Corpus::new(256),
            executor,
            crashes: CrashDb::new(),
            rng,
            stats: FuzzerStats::default(),
            store: None,
            cmplog,
        }
    }

    /// Attach a persistence store: new crash classes are written the
    /// moment they are first seen, so a mid-flight outage loses no
    /// uniques. Store writes never touch the RNG or the simulated clock
    /// — a persisted campaign is bit-identical to an unpersisted one.
    pub fn set_store(&mut self, store: CampaignStore) {
        self.store = Some(store);
    }

    /// Detach the store (the campaign finalizer takes it over).
    pub fn take_store(&mut self) -> Option<CampaignStore> {
        self.store.take()
    }

    /// The campaign configuration.
    pub fn config(&self) -> &FuzzerConfig {
        &self.config
    }

    /// The crash database.
    pub fn crashes(&self) -> &CrashDb {
        &self.crashes
    }

    /// The corpus.
    pub fn corpus(&self) -> &Corpus {
        &self.corpus
    }

    /// Loop statistics.
    pub fn stats(&self) -> &FuzzerStats {
        &self.stats
    }

    /// The executor (coverage access).
    pub fn executor(&self) -> &Executor {
        &self.executor
    }

    /// Mutable executor access (fault injection in tests and the chaos
    /// harness).
    pub fn executor_mut(&mut self) -> &mut Executor {
        &mut self.executor
    }

    /// The cmplog operand journal (`None` without cmplog).
    pub fn cmp_journal(&self) -> Option<&CmpJournal> {
        self.cmplog.as_ref().map(|(j, _)| j)
    }

    /// The cmplog operator scheduler (`None` without cmplog).
    pub fn op_scheduler(&self) -> Option<&OpScheduler> {
        self.cmplog.as_ref().map(|(_, s)| s)
    }

    /// Run one fuzzing iteration: pick or generate an input, execute it,
    /// and — when it discovers new coverage — immediately exploit the
    /// frontier with a burst of follow-up mutations (the AFL-style
    /// reaction that lets guided search climb breadcrumb ladders).
    pub fn step(&mut self) {
        let gen_span = tel::span_start("fuzz.gen", self.executor.now());
        let (prog, op) = if self.config.coverage_feedback
            && !self.corpus.is_empty()
            && self.rng.random_bool(0.5)
        {
            match self.corpus.pick_index(&mut self.rng) {
                Some(i) => self.mutate_seed(i),
                None => (self.generator.generate(), None),
            }
        } else {
            (self.generator.generate(), None)
        };
        tel::span_end(gen_span, self.executor.now());
        let (mut frontier, _) = self.run_and_record(prog, op);
        if !self.config.coverage_feedback {
            return;
        }
        // Frontier burst: chase each discovery with focused mutations.
        // A stalling mutant ends the burst — hammering inputs adjacent
        // to a hang melts the budget in restorations. The frontier is a
        // corpus index; it stays valid through non-interesting mutants
        // (the corpus only changes on admit, and an admit hands back the
        // replacement frontier immediately).
        let mut burst_budget = 24u32;
        'burst: while let Some(seed_idx) = frontier.take() {
            for _ in 0..8 {
                if burst_budget == 0 {
                    break 'burst;
                }
                burst_budget -= 1;
                let gen_span = tel::span_start("fuzz.gen", self.executor.now());
                let (mutant, op) = self.mutate_seed(seed_idx);
                tel::span_end(gen_span, self.executor.now());
                let (next, stalled) = self.run_and_record(mutant, op);
                if stalled {
                    break 'burst;
                }
                if next.is_some() {
                    frontier = next;
                    continue 'burst;
                }
            }
        }
    }

    /// Mutate the corpus entry at `idx`. Cmplog campaigns route the
    /// mutation through the operator scheduler (and tag the mutant with
    /// the operator picked, for per-operator accounting); without cmplog
    /// this is exactly the pre-cmplog `Generator::mutate` call — same
    /// RNG draws, same mutants. The seed prog is only read, never cloned.
    fn mutate_seed(&mut self, idx: usize) -> (eof_speclang::prog::Prog, Option<MutOp>) {
        let base = &self.corpus.get(idx).expect("picked index is live").prog;
        match self.cmplog.as_mut() {
            Some((journal, scheduler)) => {
                let op = scheduler.pick();
                (self.generator.mutate_op(base, op, journal), Some(op))
            }
            None => (self.generator.mutate(base), None),
        }
    }

    /// Execute one prog with full bookkeeping. Returns the corpus index
    /// of the prog when it was interesting (new coverage or a new crash
    /// class) — the caller may exploit it further — plus whether the
    /// target stalled. `op` tags scheduled cmplog mutants with the
    /// operator that produced them.
    fn run_and_record(
        &mut self,
        prog: eof_speclang::prog::Prog,
        op: Option<MutOp>,
    ) -> (Option<usize>, bool) {
        if prog.is_empty() {
            return (None, false);
        }
        // §6 extension: stimulate interrupt paths alongside the test case.
        if self.config.peripheral_events {
            for _ in 0..self.rng.random_range(0..=2u32) {
                match self.rng.random_range(0..3u32) {
                    0 => self
                        .executor
                        .inject_peripheral_event(eof_hal::irq::GPIO, Vec::new()),
                    1 => {
                        let len = self.rng.random_range(0..24usize);
                        let mut payload = Vec::with_capacity(len);
                        for _ in 0..len {
                            payload.push(self.rng.random::<u8>());
                        }
                        self.executor
                            .inject_peripheral_event(eof_hal::irq::SERIAL_RX, payload);
                    }
                    _ => self
                        .executor
                        .inject_peripheral_event(eof_hal::irq::TIMER, Vec::new()),
                }
            }
        }
        let outcome = self.executor.run_one(&prog);
        // Every `FuzzerStats` increment is mirrored onto a telemetry
        // counter at the same site; the campaign asserts the two
        // accounting paths agree at the end (drift between them would
        // mean one path silently missed an event).
        self.stats.execs += 1;
        tel::count("fuzz.execs", 1);
        if outcome.stalled {
            self.stats.stalls += 1;
            tel::count("fuzz.stalls", 1);
        }
        if outcome.restored {
            self.stats.restorations += 1;
            tel::count("fuzz.restorations", 1);
        }
        if outcome.sync_failed {
            self.stats.failed_syncs += 1;
            tel::count("fuzz.failed_syncs", 1);
        }
        let crashed = outcome.crash.is_some();
        let mut new_crash_class = false;
        if let Some(report) = outcome.crash {
            self.stats.crash_observations += 1;
            tel::count("fuzz.crash_observations", 1);
            if !self.crashes.contains(&report) {
                // First sighting of this class: persist the raw
                // reproducer immediately (finalize later upgrades it to
                // a minimized + confirmed record).
                if let Some(store) = self.store.as_mut() {
                    store.record_crash(&PersistedCrash::from_report(&report, false, false));
                    tel::count("persist.crash_writes", 1);
                }
            }
            new_crash_class = self.crashes.record(report);
        }
        if outcome.new_edges > 0 {
            self.stats.interesting += 1;
            tel::count("fuzz.interesting", 1);
        }
        // Feedback: coverage always admits; crash signals admit only
        // under EOF's unified feedback. Inputs that *hang* the target are
        // quarantined (recorded but never mutated) — re-running them costs
        // a restoration every time, so keeping them hot would melt the
        // campaign budget. AFL-lineage fuzzers do the same with their
        // hangs/ directory.
        // A crash is only *interesting* the first time its class is seen
        // — re-admitting every duplicate crash floods the corpus with
        // prog-truncating inputs and starves breadth.
        let _ = crashed;
        let hangs_target = outcome.stalled;
        let interesting = !hangs_target
            && ((self.config.coverage_feedback && outcome.new_edges > 0)
                || (self.config.crash_feedback && new_crash_class));
        if let Some((journal, scheduler)) = self.cmplog.as_mut() {
            // Feed the drained operand pairs into the journal and close
            // the scheduling loop: every `FuzzerStats` per-operator
            // increment is mirrored onto its telemetry counter at the
            // same site (the campaign asserts the two paths agree).
            journal.absorb(&outcome.cmp_records);
            if let Some(op) = op {
                scheduler.record(op, interesting);
                self.stats.op_execs[op.index()] += 1;
                tel::count(op.execs_counter(), 1);
                if interesting {
                    self.stats.op_interesting[op.index()] += 1;
                    tel::count(op.interesting_counter(), 1);
                }
            }
        }
        if interesting {
            self.generator
                .reward(&prog, 0.5 + (outcome.new_edges as f64).sqrt() * 0.25);
            // By-value admission: the corpus takes the only copy and
            // hands back its index for the frontier burst.
            let idx = self.corpus.admit(prog, outcome.new_edges, new_crash_class);
            return (idx, outcome.stalled);
        }
        (None, outcome.stalled)
    }

    /// Run until the simulated-time budget is exhausted, snapshotting
    /// coverage on the configured interval. Returns the coverage curve.
    pub fn run_to_budget(&mut self) -> Vec<Snapshot> {
        let start_hours = self.executor.now_hours();
        let end_hours = start_hours + self.config.budget_hours;
        let mut next_snap = start_hours + self.config.snapshot_hours;
        while self.executor.now_hours() < end_hours {
            self.step();
            while self.executor.now_hours() >= next_snap {
                let h = next_snap - start_hours;
                self.executor.coverage_mut().snapshot(h);
                next_snap += self.config.snapshot_hours;
                if next_snap > end_hours + self.config.snapshot_hours {
                    break;
                }
            }
        }
        // Final snapshot at the budget boundary.
        self.executor
            .coverage_mut()
            .snapshot(self.config.budget_hours);
        self.executor.coverage().history().to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GenerationMode;
    use crate::executor::Executor;
    use eof_agent::{api_table_of, boot_machine};
    use eof_dap::{DebugTransport, LinkConfig};
    use eof_monitors::{parse_kconfig, render_kconfig, StateRestoration};
    use eof_rtos::image::build_image;
    use eof_rtos::OsKind;
    use eof_specgen::extract_spec_text;
    use eof_speclang::parser::parse_spec;

    fn fuzzer_for(config: FuzzerConfig) -> Fuzzer {
        let instrument = config.effective_instrument();
        let image = build_image(config.os, config.profile, &instrument);
        let machine = boot_machine(config.board.clone(), config.os, config.profile, &instrument);
        let kconfig = parse_kconfig(&render_kconfig("arm", machine.flash().table())).unwrap();
        let restoration = StateRestoration::from_kconfig(
            &kconfig,
            config.board.flash_size,
            vec![("kernel".to_string(), image)],
        )
        .unwrap();
        let transport = DebugTransport::attach(machine, LinkConfig::default());
        let executor = Executor::new(
            transport,
            config.clone(),
            api_table_of(config.os),
            restoration,
        )
        .unwrap();
        let spec = parse_spec(&extract_spec_text(config.os)).unwrap();
        let generator = Generator::new(spec, config.seed, config.gen_mode, config.max_calls);
        Fuzzer::new(config, generator, executor)
    }

    #[test]
    fn short_campaign_makes_progress() {
        let mut cfg = FuzzerConfig::eof(OsKind::FreeRtos, 101);
        cfg.budget_hours = 0.05;
        cfg.snapshot_hours = 0.01;
        let mut f = fuzzer_for(cfg);
        let curve = f.run_to_budget();
        assert!(f.stats().execs > 20, "too few execs: {}", f.stats().execs);
        assert!(f.executor().coverage().branches() > 20);
        assert!(!curve.is_empty());
        // Curve is monotone.
        for w in curve.windows(2) {
            assert!(w[0].branches <= w[1].branches);
        }
    }

    #[test]
    fn feedback_builds_a_corpus() {
        let mut cfg = FuzzerConfig::eof(OsKind::Zephyr, 102);
        cfg.budget_hours = 0.05;
        let mut f = fuzzer_for(cfg);
        f.run_to_budget();
        assert!(f.corpus().len() > 3, "corpus: {}", f.corpus().len());
        assert!(f.stats().interesting > 3);
    }

    #[test]
    fn no_feedback_keeps_corpus_empty() {
        let mut cfg = FuzzerConfig::eof_nf(OsKind::Zephyr, 102);
        cfg.budget_hours = 0.02;
        let mut f = fuzzer_for(cfg);
        f.run_to_budget();
        assert_eq!(f.corpus().len(), 0);
    }

    #[test]
    fn random_bytes_mode_covers_less() {
        let mut api_cfg = FuzzerConfig::eof(OsKind::FreeRtos, 103);
        api_cfg.budget_hours = 0.05;
        let mut rnd_cfg = api_cfg.clone();
        rnd_cfg.gen_mode = GenerationMode::RandomBytes;
        let mut api = fuzzer_for(api_cfg);
        let mut rnd = fuzzer_for(rnd_cfg);
        api.run_to_budget();
        rnd.run_to_budget();
        let api_cov = api.executor().coverage().branches();
        let rnd_cov = rnd.executor().coverage().branches();
        assert!(
            api_cov > rnd_cov,
            "API-aware ({api_cov}) must beat random bytes ({rnd_cov})"
        );
    }
}
