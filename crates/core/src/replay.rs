//! Deterministic replay of persisted campaign stores.
//!
//! The store ([`crate::persist`]) is only worth anything if its
//! contents provably re-trigger on a fresh target — µAFL and EmbedFuzz
//! both validate crashes by re-execution over the debug link, and the
//! repo's CI gate does the same. This module owns every path that
//! re-executes persisted artifacts:
//!
//! * [`finalize_store`] — the save-time pass: confirm each unique crash
//!   on a fresh boot, minimize it, confirm the minimized reproducer on
//!   a *second* fresh boot, then record the seed pool's fresh-boot
//!   coverage baseline that replay must land on exactly;
//! * [`replay_store`] — the verification pass: re-execute every
//!   confirmed reproducer (same `BugId`/class or fail) and the seed
//!   pool in admission order (same per-seed coverage contribution and
//!   final branch count, or fail), emitting `replay.case` spans and a
//!   machine-readable verdict;
//! * [`resume_campaign_with`] — replay-based resume: because campaigns
//!   are bit-deterministic in (config, seed) and simulated time is
//!   free, resuming re-derives the interrupted prefix by re-running at
//!   the full budget, then *verifies* the persisted store is an exact
//!   prefix of the re-derived history — making a resumed campaign
//!   summary-identical to an uninterrupted one by construction.

use crate::campaign::{run_campaign_with_coverage, CampaignResult};
use crate::config::FuzzerConfig;
use crate::corpus::{Corpus, Seed};
use crate::crash::{dedup_key, CrashDb, CrashReport};
use crate::executor::Executor;
use crate::minimize::minimize;
use crate::persist::{
    self, config_fingerprint, CampaignStore, LoadedStore, PersistedCrash, PersistedSeed, SkipStats,
    StoreError, StoreManifest,
};
use eof_agent::{agent_loader, api_table_of};
use eof_coverage::CoverageMap;
use eof_dap::{DebugTransport, LinkConfig};
use eof_hal::Machine;
use eof_monitors::{parse_kconfig, render_kconfig, StateRestoration};
use eof_rtos::OsKind;
use eof_telemetry as tel;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// Executions the finalize pass may spend minimising one crash.
const MINIMIZE_TRIALS: u32 = 96;

/// Boot a fresh target for replay/confirmation — same construction as a
/// campaign, minus the fuzzing loop. The machine and its simulated
/// clock are private to the returned executor, so replay work never
/// perturbs a live campaign.
pub(crate) fn fresh_executor(config: &FuzzerConfig) -> Executor {
    let image =
        crate::artifacts::cached_image(config.os, config.profile, &config.effective_instrument());
    let mut machine = Machine::new(config.board.clone(), agent_loader());
    machine
        .reflash_partition("kernel", &image)
        .expect("image fits kernel partition");
    machine.reset();
    let kconfig_text = render_kconfig(
        &config.board.arch.to_string().to_lowercase(),
        machine.flash().table(),
    );
    let kconfig = parse_kconfig(&kconfig_text).expect("rendered kconfig parses");
    let restoration = StateRestoration::from_kconfig(
        &kconfig,
        config.board.flash_size,
        vec![("kernel".to_string(), (*image).clone())],
    )
    .expect("golden image fits");
    let transport = DebugTransport::attach(machine, LinkConfig::default());
    Executor::new(
        transport,
        config.clone(),
        api_table_of(config.os),
        restoration,
    )
    .expect("executor binds to sync symbols")
}

/// Does an observed crash match a recorded class? Triaged classes match
/// by bug number (the paper's ground truth); untriaged ones by the full
/// dedup key.
fn class_matches(observed: &CrashReport, bug_number: Option<u8>, key: &str) -> bool {
    match bug_number {
        Some(n) => observed.bug.map(|b| b.number()) == Some(n),
        None => dedup_key(observed) == key,
    }
}

/// What the save-time finalize pass did. Deterministic in the campaign
/// (no clocks, no randomness), so persisted campaigns stay bit-for-bit
/// reproducible.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FinalizeAudit {
    /// Seeds written to the pool.
    pub seeds_written: usize,
    /// Crash classes written.
    pub crashes_written: usize,
    /// Crash classes whose reproducer re-triggered on a fresh boot.
    pub confirmed: usize,
    /// Crash classes that did not re-trigger (stored raw, excluded from
    /// the replay gate).
    pub unconfirmed: usize,
    /// Confirmed classes whose stored reproducer is the minimized one.
    pub minimized: usize,
    /// Final branch count of the fresh-boot seed replay baseline.
    pub replay_branches: usize,
    /// Store write failures absorbed (counted, never fatal).
    pub write_errors: usize,
}

/// The save-time pass: confirm + minimize every unique crash, record
/// the seed pool with its fresh-boot coverage baseline, write the final
/// coverage bitmap, sweep our stale entries, and write the manifest
/// last. Runs on private fresh targets — callers inside a recorded
/// campaign wrap this in [`tel::suspended`] so the re-executions don't
/// pollute the campaign's registry.
pub fn finalize_store(
    mut store: CampaignStore,
    config: &FuzzerConfig,
    corpus: &Corpus,
    crashes: &CrashDb,
    coverage: &CoverageMap,
    consumed_hours: f64,
    execs: u64,
) -> FinalizeAudit {
    let mut audit = FinalizeAudit::default();
    let mut crash_keep = BTreeSet::new();
    for report in crashes.unique() {
        let key = dedup_key(report);
        let bug_number = report.bug.map(|b| b.number());
        // Fresh boot #1: does the raw reproducer re-trigger at all?
        let mut ex = fresh_executor(config);
        let outcome = ex.run_one(&report.prog);
        let confirmed = outcome
            .crash
            .as_ref()
            .is_some_and(|c| class_matches(c, bug_number, &key));
        let persisted = if confirmed {
            // Minimize on the warm target, then gate the minimized prog
            // on fresh boot #2 — the store must never hold a reproducer
            // that only fires from dirty state.
            let min = minimize(&mut ex, &report.prog, report, MINIMIZE_TRIALS);
            let mut confirm_ex = fresh_executor(config);
            let min_confirms = confirm_ex
                .run_one(&min.prog)
                .crash
                .as_ref()
                .is_some_and(|c| class_matches(c, bug_number, &key));
            if min_confirms && min.prog != report.prog {
                audit.minimized += 1;
                let mut entry = PersistedCrash::from_report(report, true, true);
                entry.prog = min.prog;
                entry
            } else {
                PersistedCrash::from_report(report, true, false)
            }
        } else {
            PersistedCrash::from_report(report, false, false)
        };
        if persisted.confirmed {
            audit.confirmed += 1;
        } else {
            audit.unconfirmed += 1;
        }
        crash_keep.insert(persisted.key_hash);
        store.record_crash(&persisted);
        audit.crashes_written += 1;
    }

    // Seed pool + its fresh-boot baseline: one fresh target, seeds in
    // admission order. `replay_edges` is what this exact procedure will
    // recompute at replay time, so equality there is the determinism
    // gate.
    let mut ex = fresh_executor(config);
    let mut seed_keep = BTreeSet::new();
    let mut live: Vec<&Seed> = corpus.iter().collect();
    live.sort_by_key(|s| s.ordinal);
    for seed in live {
        let outcome = ex.run_one(&seed.prog);
        let entry = PersistedSeed {
            hash: seed.hash,
            ordinal: seed.ordinal,
            new_edges: seed.new_edges,
            crashed: seed.crashed,
            replay_edges: outcome.new_edges,
            prog: seed.prog.clone(),
        };
        seed_keep.insert(entry.hash);
        store.write_seed(&entry);
        audit.seeds_written += 1;
    }
    audit.replay_branches = ex.coverage().branches();

    let edges: Vec<u64> = coverage.iter().collect();
    store.write_coverage(&edges);
    store.sweep_stale(&seed_keep, &crash_keep);
    store.write_manifest(
        consumed_hours,
        coverage.branches(),
        audit.replay_branches,
        audit.seeds_written,
        audit.crashes_written,
        execs,
    );
    audit.write_errors = store.write_errors();
    audit
}

/// One re-executed artifact's verdict.
#[derive(Debug, Clone)]
pub struct ReplayCase {
    /// `"crash"`, `"seed"` or `"coverage"`.
    pub kind: &'static str,
    /// Stable identifier (crash key hash / seed hash + ordinal).
    pub id: String,
    /// Did re-execution reproduce the record?
    pub pass: bool,
    /// Human-readable outcome.
    pub detail: String,
}

/// Verdict of replaying one store.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// The store replayed.
    pub dir: PathBuf,
    /// Target OS.
    pub os: OsKind,
    /// Campaign seed.
    pub seed: u64,
    /// Per-artifact verdicts.
    pub cases: Vec<ReplayCase>,
    /// Crash records skipped because save time could not confirm them.
    pub skipped_unconfirmed: usize,
    /// Store entries skipped while loading (corrupt/foreign).
    pub skips: SkipStats,
}

impl ReplayReport {
    /// Cases that reproduced.
    pub fn passed(&self) -> usize {
        self.cases.iter().filter(|c| c.pass).count()
    }

    /// Cases that failed to reproduce.
    pub fn failed(&self) -> usize {
        self.cases.len() - self.passed()
    }

    /// The gate: every case reproduced.
    pub fn all_passed(&self) -> bool {
        self.failed() == 0
    }

    /// Machine-readable verdict (the CI artifact).
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::new();
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out
        }
        let cases: Vec<String> = self
            .cases
            .iter()
            .map(|c| {
                format!(
                    "    {{\"kind\": \"{}\", \"id\": \"{}\", \"pass\": {}, \"detail\": \"{}\"}}",
                    c.kind,
                    esc(&c.id),
                    c.pass,
                    esc(&c.detail)
                )
            })
            .collect();
        format!(
            "{{\n  \"store\": \"{}\",\n  \"os\": \"{}\",\n  \"seed\": {},\n  \"verdict\": \"{}\",\n  \
             \"passed\": {},\n  \"failed\": {},\n  \"skipped_unconfirmed\": {},\n  \
             \"skipped_corrupt\": {},\n  \"skipped_foreign_schema\": {},\n  \
             \"skipped_foreign_config\": {},\n  \"cases\": [\n{}\n  ]\n}}\n",
            esc(&self.dir.display().to_string()),
            self.os.short(),
            self.seed,
            if self.all_passed() { "PASS" } else { "FAIL" },
            self.passed(),
            self.failed(),
            self.skipped_unconfirmed,
            self.skips.corrupt,
            self.skips.foreign_schema,
            self.skips.foreign_config,
            cases.join(",\n")
        )
    }
}

/// Reconstruct the producing configuration from a manifest. Stores
/// written by non-default configurations must be replayed via
/// [`replay_loaded`] with the producing config — the fingerprint check
/// refuses to guess.
pub fn config_for_manifest(manifest: &StoreManifest) -> Result<FuzzerConfig, StoreError> {
    let mut config = if manifest.mmio {
        FuzzerConfig::eof_driver(manifest.os, manifest.seed)
    } else {
        FuzzerConfig::eof(manifest.os, manifest.seed)
    };
    // Wire mode is not fingerprinted (per-exec behaviour is identical
    // either way), but resume re-derives a *time-budgeted* prefix, so
    // it must run at the producer's throughput.
    config.vectored = manifest.vectored;
    // Same contract for the coverage channel: equivalence-gated and
    // excluded from the fingerprint, but resume must acquire edges the
    // way the producer did.
    config.coverage_backend = manifest.coverage;
    if config.board.name != manifest.board {
        return Err(StoreError::ConfigMismatch(format!(
            "store was produced on board {:?} but {} now defaults to {:?}",
            manifest.board,
            manifest.os.display(),
            config.board.name
        )));
    }
    if config_fingerprint(&config) != manifest.fingerprint {
        return Err(StoreError::ConfigMismatch(format!(
            "store fingerprint {:016x} does not match the default {} configuration — \
             replay it with the producing config",
            manifest.fingerprint,
            manifest.os.display()
        )));
    }
    Ok(config)
}

/// Load and replay one store with the default configuration for its
/// manifest.
pub fn replay_store(dir: &Path) -> Result<ReplayReport, StoreError> {
    let loaded = persist::open(dir)?;
    let config = config_for_manifest(&loaded.manifest)?;
    Ok(replay_loaded(&loaded, &config))
}

/// Re-execute a loaded store through the real executor stack. Every
/// confirmed crash record must re-trigger its recorded `BugId`/class on
/// a fresh boot; the seed pool, replayed in admission order on one
/// fresh boot, must reproduce each seed's recorded coverage
/// contribution and the recorded final branch count exactly.
pub fn replay_loaded(loaded: &LoadedStore, config: &FuzzerConfig) -> ReplayReport {
    let mut report = ReplayReport {
        dir: loaded.dir.clone(),
        os: loaded.manifest.os,
        seed: loaded.manifest.seed,
        cases: Vec::new(),
        skipped_unconfirmed: 0,
        skips: loaded.skips,
    };
    for crash in &loaded.crashes {
        if !crash.confirmed {
            report.skipped_unconfirmed += 1;
            continue;
        }
        let span = tel::span_start("replay.case", 0);
        let mut ex = fresh_executor(config);
        let outcome = ex.run_one(&crash.prog);
        let (pass, detail) = match &outcome.crash {
            Some(observed) if class_matches(observed, crash.bug_number, &crash.key) => {
                (true, format!("re-triggered: {}", observed.message))
            }
            Some(observed) => (
                false,
                format!(
                    "crashed with a different class: got {:?} (bug {:?}), wanted bug {:?}",
                    observed.message,
                    observed.bug.map(|b| b.number()),
                    crash.bug_number
                ),
            ),
            None => (false, "did not crash on replay".to_string()),
        };
        tel::span_end(span, ex.now());
        tel::count("replay.cases", 1);
        report.cases.push(ReplayCase {
            kind: "crash",
            id: format!("{:016x}", crash.key_hash),
            pass,
            detail,
        });
    }

    let span = tel::span_start("replay.case", 0);
    let mut ex = fresh_executor(config);
    for seed in &loaded.seeds {
        let outcome = ex.run_one(&seed.prog);
        let pass = outcome.new_edges == seed.replay_edges;
        tel::count("replay.cases", 1);
        report.cases.push(ReplayCase {
            kind: "seed",
            id: format!("{:016x}@{}", seed.hash, seed.ordinal),
            pass,
            detail: if pass {
                format!("contributed {} edges as recorded", outcome.new_edges)
            } else {
                format!(
                    "coverage contribution drifted: got {} edges, recorded {}",
                    outcome.new_edges, seed.replay_edges
                )
            },
        });
    }
    let branches = ex.coverage().branches();
    tel::span_end(span, ex.now());
    let pass = branches == loaded.manifest.replay_branches;
    report.cases.push(ReplayCase {
        kind: "coverage",
        id: "seed-pool".to_string(),
        pass,
        detail: if pass {
            format!("seed pool reproduces {branches} branches")
        } else {
            format!(
                "seed pool branch count drifted: got {branches}, recorded {}",
                loaded.manifest.replay_branches
            )
        },
    });
    report
}

/// What a resume produced.
#[derive(Debug)]
pub struct ResumeOutcome {
    /// The full-budget campaign result (summary-identical to an
    /// uninterrupted run by the determinism contract).
    pub result: CampaignResult,
    /// The full-budget coverage map.
    pub coverage: CoverageMap,
    /// The interrupted store's manifest (pre-resume).
    pub prior: StoreManifest,
    /// Persisted seeds verified present in the re-derived history.
    pub verified_seeds: usize,
    /// Persisted crash classes verified re-derived.
    pub verified_crashes: usize,
    /// Persisted coverage edges verified re-derived.
    pub verified_edges: usize,
    /// Store entries persist skipped (corrupt / foreign) while loading
    /// the checkpoint — the fabric surfaces these as degraded-but-alive.
    pub skips: persist::SkipStats,
}

/// Resume a persisted campaign: re-run `config` (whose budget is the
/// *total* target, not the remainder) with persistence re-attached to
/// `dir`, then verify the interrupted store is an exact prefix of the
/// re-derived history. Simulated time makes the re-derivation free;
/// the verification is what makes resume trustworthy — any divergence
/// is a broken determinism contract and errors out loudly.
pub fn resume_campaign_with(
    mut config: FuzzerConfig,
    dir: &Path,
) -> Result<ResumeOutcome, StoreError> {
    let loaded = persist::open(dir)?;
    if config.os != loaded.manifest.os || config.seed != loaded.manifest.seed {
        return Err(StoreError::ConfigMismatch(format!(
            "store holds {} seed {}, resume config is {} seed {}",
            loaded.manifest.os.display(),
            loaded.manifest.seed,
            config.os.display(),
            config.seed
        )));
    }
    if config_fingerprint(&config) != loaded.manifest.fingerprint {
        return Err(StoreError::ConfigMismatch(
            "resume config fingerprint differs from the store's".to_string(),
        ));
    }
    if config.budget_hours < loaded.manifest.consumed_hours {
        return Err(StoreError::ConfigMismatch(format!(
            "resume budget {}h is shorter than the {}h already consumed",
            config.budget_hours, loaded.manifest.consumed_hours
        )));
    }
    config.persist = Some(dir.to_path_buf());
    let (result, coverage) = run_campaign_with_coverage(config);

    // Prefix verification: everything the interrupted run persisted
    // must have been re-derived by the longer run.
    let admitted: BTreeSet<u64> = result.corpus_hashes.iter().copied().collect();
    for seed in &loaded.seeds {
        if !admitted.contains(&seed.hash) {
            return Err(StoreError::Diverged(format!(
                "persisted seed {:016x} (ordinal {}) was not re-admitted",
                seed.hash, seed.ordinal
            )));
        }
    }
    let keys: BTreeSet<String> = result.crashes.iter().map(dedup_key).collect();
    for crash in &loaded.crashes {
        if !keys.contains(&crash.key) {
            return Err(StoreError::Diverged(format!(
                "persisted crash class {:016x} ({}) was not re-found",
                crash.key_hash, crash.message
            )));
        }
    }
    for &edge in &loaded.coverage_edges {
        if !coverage.contains(edge) {
            return Err(StoreError::Diverged(format!(
                "persisted coverage edge {edge:#x} was not re-covered"
            )));
        }
    }
    Ok(ResumeOutcome {
        verified_seeds: loaded.seeds.len(),
        verified_crashes: loaded.crashes.len(),
        verified_edges: loaded.coverage_edges.len(),
        skips: loaded.skips,
        prior: loaded.manifest,
        result,
        coverage,
    })
}

/// Resume a store produced by a default configuration, fuzzing on to
/// `total_hours` of simulated budget.
pub fn resume_campaign(dir: &Path, total_hours: f64) -> Result<ResumeOutcome, StoreError> {
    let loaded = persist::open(dir)?;
    let mut config = config_for_manifest(&loaded.manifest)?;
    config.budget_hours = total_hours;
    resume_campaign_with(config, dir)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::run_campaign;
    use crate::fleet::FleetRunner;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmpdir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "eof-replay-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn short(os: OsKind, seed: u64, hours: f64) -> FuzzerConfig {
        let mut c = FuzzerConfig::eof(os, seed);
        c.budget_hours = hours;
        c.snapshot_hours = hours / 4.0;
        c
    }

    fn summary(r: &CampaignResult) -> String {
        format!(
            "branches={} bugs={:?} stats={:?} history={:?} crashes={:?} hashes={:?}",
            r.branches, r.bugs, r.stats, r.history, r.crashes, r.corpus_hashes
        )
    }

    #[test]
    fn persisted_campaign_round_trips_and_replays_green() {
        let dir = tmpdir("roundtrip");
        let mut config = short(OsKind::FreeRtos, 9, 0.1);
        config.persist = Some(dir.clone());
        let result = run_campaign(config.clone());
        let audit = result.persist.as_ref().expect("persisted campaign audits");
        assert_eq!(audit.write_errors, 0);
        assert!(audit.seeds_written > 0, "campaign admitted no seeds");
        assert!(
            audit.crashes_written > 0,
            "campaign found no crashes — pick a longer budget"
        );
        assert!(audit.confirmed > 0, "no crash confirmed on fresh boot");

        let loaded = persist::open(&dir).unwrap();
        assert_eq!(loaded.skips, SkipStats::default());
        assert_eq!(loaded.seeds.len(), audit.seeds_written);
        assert_eq!(loaded.crashes.len(), audit.crashes_written);
        assert_eq!(loaded.manifest.branches, result.branches);
        assert_eq!(loaded.manifest.execs, result.stats.execs);

        // The gate: everything the store holds reproduces.
        let report = replay_loaded(&loaded, &config);
        assert!(
            report.all_passed(),
            "replay failures: {:?}",
            report.cases.iter().filter(|c| !c.pass).collect::<Vec<_>>()
        );
        assert!(report.to_json().contains("\"verdict\": \"PASS\""));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn persistence_never_perturbs_the_campaign() {
        let dir = tmpdir("perturb");
        let plain = run_campaign(short(OsKind::Zephyr, 11, 0.05));
        let mut config = short(OsKind::Zephyr, 11, 0.05);
        config.persist = Some(dir.clone());
        let persisted = run_campaign(config);
        assert_eq!(plain.branches, persisted.branches);
        assert_eq!(
            format!("{:?}", plain.stats),
            format!("{:?}", persisted.stats)
        );
        assert_eq!(
            format!("{:?}", plain.crashes),
            format!("{:?}", persisted.crashes)
        );
        assert_eq!(plain.corpus_hashes, persisted.corpus_hashes);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replay_fails_on_a_hand_broken_reproducer() {
        // The acceptance-criterion demonstration: tamper with a stored
        // reproducer and the gate must go red.
        let dir = tmpdir("tampered");
        let mut config = short(OsKind::FreeRtos, 9, 0.1);
        config.persist = Some(dir.clone());
        run_campaign(config.clone());
        let loaded = persist::open(&dir).unwrap();
        let victim = loaded
            .crashes
            .iter()
            .find(|c| c.confirmed)
            .expect("store holds a confirmed crash")
            .clone();
        // Swap the reproducer for a benign prog, keeping the record
        // well-formed (same key, same schema, same fingerprint).
        let mut broken = victim.clone();
        broken.prog = eof_speclang::prog::Prog {
            mmio: vec![],
            calls: vec![eof_speclang::prog::Call {
                api: "pvPortMalloc".to_string(),
                args: vec![eof_speclang::prog::ArgValue::Int(16)],
            }],
        };
        let mut store = CampaignStore::create(&dir, &config).unwrap();
        store.record_crash(&broken);
        store.write_manifest(
            loaded.manifest.consumed_hours,
            loaded.manifest.branches,
            loaded.manifest.replay_branches,
            loaded.manifest.seed_count,
            loaded.manifest.crash_count,
            loaded.manifest.execs,
        );
        let report = replay_store(&dir).unwrap();
        assert!(!report.all_passed(), "tampered reproducer replayed green");
        let failing: Vec<_> = report.cases.iter().filter(|c| !c.pass).collect();
        assert!(
            failing
                .iter()
                .any(|c| c.kind == "crash" && c.id == format!("{:016x}", victim.key_hash)),
            "the tampered case is the one that fails: {failing:?}"
        );
        assert!(report.to_json().contains("\"verdict\": \"FAIL\""));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resumed_campaign_is_summary_identical_to_uninterrupted() {
        let os = OsKind::FreeRtos;
        let seed = 7;
        // The uninterrupted reference at the full budget.
        let full = run_campaign(short(os, seed, 0.08));
        // An "interrupted" run: half the budget, persisted.
        let dir = tmpdir("resume");
        let mut half = short(os, seed, 0.04);
        half.persist = Some(dir.clone());
        run_campaign(half);
        // Resume to the full budget and verify the prefix property.
        let resumed = resume_campaign_with(short(os, seed, 0.08), &dir).unwrap();
        assert!(resumed.verified_seeds > 0);
        assert!(resumed.verified_edges > 0);
        assert_eq!(summary(&full), summary(&resumed.result));
        // The store now describes the full-budget run.
        let reloaded = persist::open(&dir).unwrap();
        assert_eq!(reloaded.manifest.consumed_hours, 0.08);
        assert_eq!(reloaded.manifest.branches, full.branches);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_is_identical_across_fleet_widths() {
        // The EOF_JOBS=1 vs EOF_JOBS=N half of the resume contract:
        // resuming a batch of interrupted stores through a 1-worker and
        // a 4-worker fleet must produce identical summaries.
        let cells = [(OsKind::FreeRtos, 7u64), (OsKind::Zephyr, 11u64)];
        let dirs: Vec<PathBuf> = cells
            .iter()
            .map(|(os, seed)| {
                let dir = tmpdir(&format!("fleetresume-{}-{seed}", os.short()));
                let mut c = short(*os, *seed, 0.03);
                c.persist = Some(dir.clone());
                run_campaign(c);
                dir
            })
            .collect();
        let resume_all = |jobs: usize| -> Vec<String> {
            FleetRunner::new(jobs)
                .map(
                    dirs.iter().cloned().zip(cells).collect::<Vec<_>>(),
                    |_, (dir, (os, seed))| {
                        // Each worker resumes into its own copy so the two
                        // fleet passes don't share store state.
                        let copy =
                            tmpdir(&format!("fleetresume-copy-{jobs}-{}-{seed}", os.short()));
                        copy_dir(&dir, &copy);
                        let out = resume_campaign_with(short(os, seed, 0.06), &copy).unwrap();
                        let _ = std::fs::remove_dir_all(&copy);
                        summary(&out.result)
                    },
                )
                .into_iter()
                .map(|r| r.unwrap())
                .collect()
        };
        let serial = resume_all(1);
        let parallel = resume_all(4);
        assert_eq!(serial, parallel);
        for dir in dirs {
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    fn copy_dir(from: &Path, to: &Path) {
        std::fs::create_dir_all(to).unwrap();
        for entry in std::fs::read_dir(from).unwrap().flatten() {
            let src = entry.path();
            let dst = to.join(entry.file_name());
            if src.is_dir() {
                copy_dir(&src, &dst);
            } else {
                std::fs::copy(&src, &dst).unwrap();
            }
        }
    }

    #[test]
    fn resume_refuses_foreign_and_shrunken_budgets() {
        let dir = tmpdir("refuse");
        let mut c = short(OsKind::FreeRtos, 7, 0.03);
        c.persist = Some(dir.clone());
        run_campaign(c);
        // Wrong seed.
        let err = resume_campaign_with(short(OsKind::FreeRtos, 8, 0.06), &dir).unwrap_err();
        assert!(matches!(err, StoreError::ConfigMismatch(_)), "{err}");
        // Budget shorter than what was already consumed.
        let err = resume_campaign_with(short(OsKind::FreeRtos, 7, 0.01), &dir).unwrap_err();
        assert!(matches!(err, StoreError::ConfigMismatch(_)), "{err}");
        // Missing store.
        let err = resume_campaign_with(short(OsKind::FreeRtos, 7, 0.06), &dir.join("nonexistent"))
            .unwrap_err();
        assert!(matches!(err, StoreError::MissingManifest(_)), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
