//! Seeded chaos harness: full campaigns under randomized fault schedules.
//!
//! Nothing else in the repo runs the fuzzer *while the hardware
//! misbehaves*, yet that is exactly the regime the paper's liveness and
//! restoration machinery (§4.4) exists for — and the regime µAFL and
//! Ember-IO report as the operational reality of on-hardware fuzzing
//! (flaky probes, brownouts, silently corrupted campaigns). The harness
//! draws a deterministic schedule of injected faults from a seed, runs a
//! normal campaign under it, and checks the supervisor's contract:
//!
//! * the campaign completes (no panic, forward progress);
//! * the coverage curve stays monotone — recovery never corrupts the map;
//! * every recovery episode ends **recovered or reported** (a manual
//!   intervention is a report, a wedged campaign is a violation);
//! * no single recovery episode exceeds a hard time bound.
//!
//! Identical seeds reproduce identical schedules, campaigns and
//! [`ResilienceStats`] — asserted by the `chaos` bench and CI.

use crate::campaign::{run_campaign_with_faults, CampaignResult};
use crate::config::FuzzerConfig;
use crate::supervisor::ResilienceStats;
use eof_hal::clock::{secs_to_cycles, CYCLES_PER_SEC};
use eof_hal::{FaultPlan, InjectedFault};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Hard bound on one recovery episode, in simulated seconds. The worst
/// legitimate path is a full ladder walk where every rung's health
/// verify burns its whole continue budget (8 rung attempts × ~130 k
/// cycles of verification) plus inter-attempt backoff, the 60 s manual
/// intervention and a final full reflash — about 1 200 s. Anything past
/// 1 800 s means the ladder is looping, not escalating.
pub const MAX_RECOVERY_SECS: u64 = 1_800;

/// Kinds the schedule draws from, with their report labels.
const KINDS: [&str; 7] = [
    "flash_bit_flip",
    "freeze_firmware",
    "kill_core",
    "drop_link",
    "flaky_link",
    "brownout",
    "uart_garbage",
];

/// A chaos run: a base campaign plus a fault-schedule seed.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Campaign to torture. Its own `seed` controls fuzzing; the chaos
    /// seed below only controls the fault schedule.
    pub base: FuzzerConfig,
    /// Fault-schedule seed.
    pub chaos_seed: u64,
    /// Number of faults to inject across the campaign budget.
    pub faults: usize,
}

/// What a chaos run produced.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// The underlying campaign result (includes `resilience`).
    pub result: CampaignResult,
    /// Faults scheduled, per kind label (same order as injected).
    pub fault_counts: Vec<(&'static str, usize)>,
    /// Total faults scheduled.
    pub planned_faults: usize,
    /// Invariant violations. Empty = the supervisor held its contract.
    pub violations: Vec<String>,
}

impl ChaosReport {
    /// Resilience accounting shorthand.
    pub fn resilience(&self) -> &ResilienceStats {
        &self.result.resilience
    }
}

/// Draw a deterministic fault schedule: `faults` faults with randomized
/// kinds, parameters and fire times spread over the first 90% of
/// `horizon_cycles` (the tail is left quiet so the last recovery can
/// finish inside the budget). Returns the plan and the per-kind counts.
pub fn chaos_plan(
    seed: u64,
    faults: usize,
    horizon_cycles: u64,
    flash_size: u32,
) -> (FaultPlan, Vec<(&'static str, usize)>) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xc4a05);
    let mut plan = FaultPlan::none();
    let mut counts = [0usize; 7];
    let window = (horizon_cycles / 10).max(1) * 9;
    for _ in 0..faults {
        let at = rng.random_range(0..window.max(2));
        let kind = rng.random_range(0..7u32) as usize;
        counts[kind] += 1;
        let fault = match kind {
            0 => InjectedFault::FlashBitFlip {
                offset: rng.random_range(0..flash_size.max(2)),
                bit: rng.random_range(0..=7u8),
            },
            1 => InjectedFault::FreezeFirmware,
            2 => InjectedFault::KillCore,
            3 => InjectedFault::DropLink {
                cycles: rng.random_range(500..40_000u64),
            },
            4 => InjectedFault::FlakyLink {
                drop_per_mille: rng.random_range(100..=700u16),
                cycles: rng.random_range(5_000..60_000u64),
            },
            5 => InjectedFault::Brownout {
                cycles: rng.random_range(2_000..20_000u64),
            },
            _ => InjectedFault::UartGarbage,
        };
        plan = plan.at(at, fault);
    }
    let labelled = KINDS.iter().zip(counts).map(|(k, c)| (*k, c)).collect();
    (plan, labelled)
}

/// Run one campaign under a seeded fault schedule and check the
/// supervisor's invariants.
pub fn run_chaos(config: &ChaosConfig) -> ChaosReport {
    let horizon = (config.base.budget_hours * 3600.0 * CYCLES_PER_SEC as f64) as u64;
    let (plan, fault_counts) = chaos_plan(
        config.chaos_seed,
        config.faults,
        horizon,
        config.base.board.flash_size,
    );
    let planned_faults = plan.pending();
    let result = run_campaign_with_faults(config.base.clone(), plan);
    let mut violations = check_invariants(&result);
    if let Some(dir) = &config.base.persist {
        violations.extend(audit_persistence(&result, dir));
    }
    ChaosReport {
        result,
        fault_counts,
        planned_faults,
        violations,
    }
}

/// The supervisor's contract, checked against a finished campaign.
pub fn check_invariants(result: &CampaignResult) -> Vec<String> {
    let mut violations = Vec::new();
    if result.stats.execs == 0 {
        violations.push("campaign made no forward progress (0 execs)".to_string());
    }
    for w in result.history.windows(2) {
        if w[1].branches < w[0].branches {
            violations.push(format!(
                "coverage regressed: {} -> {} branches at {:.2}h",
                w[0].branches, w[1].branches, w[1].hours
            ));
            break;
        }
    }
    let r = &result.resilience;
    let accounted = r.recovered() + r.manual_interventions;
    if accounted != r.episodes {
        violations.push(format!(
            "unaccounted recovery episodes: {} entered, {} recovered + {} manual",
            r.episodes,
            r.recovered(),
            r.manual_interventions
        ));
    }
    if r.max_recovery_cycles > secs_to_cycles(MAX_RECOVERY_SECS) {
        violations.push(format!(
            "recovery episode exceeded bound: {} cycles > {MAX_RECOVERY_SECS} s",
            r.max_recovery_cycles
        ));
    }
    // Transaction atomicity: a vectored batch that fails mid-apply has
    // torn target state the retry layer cannot reason about (a coverage
    // buffer half-reset, a breakpoint installed without its partner).
    // Faults must land before the apply phase — never inside it.
    if r.txn_partial > 0 {
        violations.push(format!(
            "{} vectored transaction(s) were torn mid-apply by a fault",
            r.txn_partial
        ));
    }
    violations
}

/// Persistence-under-chaos contract: a campaign that rode out injected
/// outages must still land a complete, loss-free store on disk — every
/// unique crash the campaign recorded has its record, the seed pool
/// matches the audit, and nothing was skipped as corrupt.
pub fn audit_persistence(result: &CampaignResult, dir: &std::path::Path) -> Vec<String> {
    let mut violations = Vec::new();
    let Some(audit) = &result.persist else {
        violations.push("persistence was requested but the campaign produced no audit".into());
        return violations;
    };
    if audit.write_errors > 0 {
        violations.push(format!(
            "store absorbed {} write errors during the campaign",
            audit.write_errors
        ));
    }
    let loaded = match crate::persist::open(dir) {
        Ok(loaded) => loaded,
        Err(e) => {
            violations.push(format!("store did not survive the campaign: {e}"));
            return violations;
        }
    };
    if loaded.skips.total() > 0 {
        violations.push(format!(
            "store load skipped entries after a clean campaign: {:?}",
            loaded.skips
        ));
    }
    if loaded.seeds.len() != audit.seeds_written {
        violations.push(format!(
            "seed pool lost entries: {} on disk, {} written",
            loaded.seeds.len(),
            audit.seeds_written
        ));
    }
    let on_disk: std::collections::BTreeSet<&str> =
        loaded.crashes.iter().map(|c| c.key.as_str()).collect();
    for report in &result.crashes {
        let key = crate::crash::dedup_key(report);
        if !on_disk.contains(key.as_str()) {
            violations.push(format!(
                "unique crash lost by the store: {:?} ({:?})",
                report.message, report.source
            ));
        }
    }
    if loaded.manifest.branches != result.branches {
        violations.push(format!(
            "manifest branch count drifted: {} on disk, {} in the campaign",
            loaded.manifest.branches, result.branches
        ));
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use eof_rtos::OsKind;

    fn chaos_config(os: OsKind, fuzz_seed: u64, chaos_seed: u64, faults: usize) -> ChaosConfig {
        let mut base = FuzzerConfig::eof(os, fuzz_seed);
        base.budget_hours = 0.1;
        base.snapshot_hours = 0.025;
        ChaosConfig {
            base,
            chaos_seed,
            faults,
        }
    }

    #[test]
    fn plan_is_deterministic_and_complete() {
        let (a, counts_a) = chaos_plan(42, 64, 1_000_000, 1 << 20);
        let (b, counts_b) = chaos_plan(42, 64, 1_000_000, 1 << 20);
        assert_eq!(a.pending(), 64);
        assert_eq!(counts_a, counts_b);
        let mut a = a;
        let mut b = b;
        assert_eq!(a.take_due(u64::MAX), b.take_due(u64::MAX));
    }

    #[test]
    fn different_seeds_give_different_plans() {
        let (mut a, _) = chaos_plan(1, 64, 1_000_000, 1 << 20);
        let (mut b, _) = chaos_plan(2, 64, 1_000_000, 1 << 20);
        assert_ne!(a.take_due(u64::MAX), b.take_due(u64::MAX));
    }

    #[test]
    fn chaos_campaign_survives_and_accounts_for_every_outage() {
        let report = run_chaos(&chaos_config(OsKind::FreeRtos, 21, 77, 30));
        assert!(
            report.violations.is_empty(),
            "invariant violations: {:?}",
            report.violations
        );
        assert_eq!(report.planned_faults, 30);
        // The schedule fired real faults and the ladder really climbed.
        let r = report.resilience();
        assert!(r.episodes > 0, "no recovery episodes under 30 faults");
        assert!(
            r.recovered() + r.manual_interventions == r.episodes,
            "episodes unaccounted"
        );
    }

    #[test]
    fn persistence_survives_injected_outages() {
        // Crashes are persisted incrementally, so some records land on
        // disk *between* injected link drops and brownouts; the audit
        // checks none of them (nor the end-of-campaign pool) went
        // missing.
        let dir = std::env::temp_dir().join(format!("eof-chaos-persist-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut config = chaos_config(OsKind::FreeRtos, 21, 77, 30);
        config.base.persist = Some(dir.clone());
        let report = run_chaos(&config);
        assert!(
            report.violations.is_empty(),
            "persistence-under-chaos violations: {:?}",
            report.violations
        );
        let audit = report.result.persist.as_ref().expect("store audited");
        assert!(audit.seeds_written > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn no_fault_kind_tears_a_transaction() {
        // One seeded campaign per fault kind and restore mode, each kind
        // injected repeatedly on its own: whatever the timing, a fault
        // must land a vectored transaction whole or not at all
        // (txn_partial is a `check_invariants` violation), and the
        // supervisor's contract must hold around it. Snapshot mode adds
        // a new vectored batch shape — the multi-page delta restore — so
        // the matrix covers both restore modes: a fault arriving mid-
        // delta-restore must never leave a half-restored board
        // uncounted.
        let flash_size = FuzzerConfig::eof(OsKind::FreeRtos, 11).board.flash_size;
        for snapshot in [false, true] {
            no_kind_tears(flash_size, snapshot);
        }
    }

    fn no_kind_tears(flash_size: u32, snapshot: bool) {
        use eof_hal::FaultPlan;
        for (kind, label) in KINDS.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(0xa70_0c17 + kind as u64);
            let mut plan = FaultPlan::none();
            for _ in 0..12 {
                let at = rng.random_range(0..300_000u64);
                let fault = match kind {
                    0 => InjectedFault::FlashBitFlip {
                        offset: rng.random_range(0..flash_size),
                        bit: rng.random_range(0..=7u8),
                    },
                    1 => InjectedFault::FreezeFirmware,
                    2 => InjectedFault::KillCore,
                    3 => InjectedFault::DropLink {
                        cycles: rng.random_range(500..40_000u64),
                    },
                    4 => InjectedFault::FlakyLink {
                        drop_per_mille: rng.random_range(100..=700u16),
                        cycles: rng.random_range(5_000..60_000u64),
                    },
                    5 => InjectedFault::Brownout {
                        cycles: rng.random_range(2_000..20_000u64),
                    },
                    _ => InjectedFault::UartGarbage,
                };
                plan = plan.at(at, fault);
            }
            let mut base = FuzzerConfig::eof(OsKind::FreeRtos, 11);
            base.budget_hours = 0.1;
            base.snapshot_hours = 0.025;
            base.snapshot = snapshot;
            let result = run_campaign_with_faults(base, plan);
            let violations = check_invariants(&result);
            assert!(
                violations.is_empty(),
                "fault kind {label:?} (snapshot={snapshot}): {violations:?}"
            );
            assert_eq!(
                result.resilience.txn_partial, 0,
                "fault kind {label:?} (snapshot={snapshot}) tore a vectored transaction"
            );
        }
    }

    #[test]
    fn no_fault_kind_tears_a_cmp_drain() {
        // The comparison channel adds two wire operations per exec — the
        // armed header riding the upload and the end-of-exec ring drain —
        // and each is a new place a fault can land. Same per-kind matrix
        // as the transaction-tear test, but with cmplog armed in both
        // wire modes: a fault inside the cmp drain must either deliver
        // the records whole or discard them with the discard counted —
        // never tear a transaction or wedge the campaign. Running the
        // campaigns recorded also re-checks the `fuzz.op.*` counter-drift
        // gate under every fault kind.
        use crate::campaign::run_campaign_recorded_with_faults;
        use eof_hal::FaultPlan;
        let flash_size = FuzzerConfig::eof(OsKind::FreeRtos, 11).board.flash_size;
        let mut records_total = 0u64;
        for vectored in [false, true] {
            for (kind, label) in KINDS.iter().enumerate() {
                let mut rng = StdRng::seed_from_u64(0xc3b_d4a1 + kind as u64);
                let mut plan = FaultPlan::none();
                for _ in 0..12 {
                    let at = rng.random_range(0..300_000u64);
                    let fault = match kind {
                        0 => InjectedFault::FlashBitFlip {
                            offset: rng.random_range(0..flash_size),
                            bit: rng.random_range(0..=7u8),
                        },
                        1 => InjectedFault::FreezeFirmware,
                        2 => InjectedFault::KillCore,
                        3 => InjectedFault::DropLink {
                            cycles: rng.random_range(500..40_000u64),
                        },
                        4 => InjectedFault::FlakyLink {
                            drop_per_mille: rng.random_range(100..=700u16),
                            cycles: rng.random_range(5_000..60_000u64),
                        },
                        5 => InjectedFault::Brownout {
                            cycles: rng.random_range(2_000..20_000u64),
                        },
                        _ => InjectedFault::UartGarbage,
                    };
                    plan = plan.at(at, fault);
                }
                let mut base = FuzzerConfig::eof_cmplog(OsKind::FreeRtos, 11);
                base.budget_hours = 0.1;
                base.snapshot_hours = 0.025;
                base.vectored = vectored;
                let result = run_campaign_recorded_with_faults(base, plan);
                let violations = check_invariants(&result);
                assert!(
                    violations.is_empty(),
                    "fault kind {label:?} (vectored={vectored}, cmplog): {violations:?}"
                );
                assert_eq!(
                    result.resilience.txn_partial, 0,
                    "fault kind {label:?} (vectored={vectored}) tore a cmplog transaction"
                );
                let tel = result.telemetry.as_ref().expect("recorded");
                records_total += tel.counter("exec.cmp_records");
            }
        }
        // The channel stayed live across the matrix: records kept
        // arriving despite the outages (a torn drain that silently
        // corrupted the ring would starve every subsequent exec), and
        // any drain the fault machinery gave up on is visible as a
        // counted discard rather than a wedge. No single kind is
        // required to produce records — the heavy link-outage schedules
        // legitimately spend most of their budget in recovery.
        assert!(
            records_total > 0,
            "every chaos schedule starved the cmp channel"
        );
    }

    #[test]
    fn no_fault_kind_tears_a_trace_drain() {
        // The trace backend replaces every ring read with the
        // destructive `DrainTrace` wire op — a new place for every
        // fault kind to land, in both wire modes. A fault inside the
        // drain must deliver the stream whole or discard the drain
        // whole with the discard counted (`exec.cov_discarded`); a
        // half-applied drain would surface as a torn transaction, and a
        // decoder fed torn bytes would poison the bitmap with invented
        // edges, so the invariant gate plus the live-channel check
        // below cover both layers.
        use crate::campaign::run_campaign_recorded_with_faults;
        use eof_coverage::CoverageKind;
        use eof_hal::FaultPlan;
        let flash_size = FuzzerConfig::eof(OsKind::FreeRtos, 11).board.flash_size;
        let mut packets_total = 0u64;
        for vectored in [false, true] {
            for (kind, label) in KINDS.iter().enumerate() {
                let mut rng = StdRng::seed_from_u64(0x7ace_d4a1 + kind as u64);
                let mut plan = FaultPlan::none();
                for _ in 0..12 {
                    let at = rng.random_range(0..300_000u64);
                    let fault = match kind {
                        0 => InjectedFault::FlashBitFlip {
                            offset: rng.random_range(0..flash_size),
                            bit: rng.random_range(0..=7u8),
                        },
                        1 => InjectedFault::FreezeFirmware,
                        2 => InjectedFault::KillCore,
                        3 => InjectedFault::DropLink {
                            cycles: rng.random_range(500..40_000u64),
                        },
                        4 => InjectedFault::FlakyLink {
                            drop_per_mille: rng.random_range(100..=700u16),
                            cycles: rng.random_range(5_000..60_000u64),
                        },
                        5 => InjectedFault::Brownout {
                            cycles: rng.random_range(2_000..20_000u64),
                        },
                        _ => InjectedFault::UartGarbage,
                    };
                    plan = plan.at(at, fault);
                }
                let mut base = FuzzerConfig::eof(OsKind::FreeRtos, 11);
                base.coverage_backend = CoverageKind::Trace;
                base.budget_hours = 0.1;
                base.snapshot_hours = 0.025;
                base.vectored = vectored;
                let result = run_campaign_recorded_with_faults(base, plan);
                let violations = check_invariants(&result);
                assert!(
                    violations.is_empty(),
                    "fault kind {label:?} (vectored={vectored}, trace): {violations:?}"
                );
                assert_eq!(
                    result.resilience.txn_partial, 0,
                    "fault kind {label:?} (vectored={vectored}) tore a trace drain"
                );
                // Edge feedback survived the schedule: the uninstrumented
                // image has no other coverage path, so a corrupted or
                // silently-wedged stream would show up as zero branches.
                assert!(
                    result.branches > 0,
                    "fault kind {label:?} (vectored={vectored}) starved the trace channel"
                );
                let tel = result.telemetry.as_ref().expect("recorded");
                packets_total += tel.counter("cov.trace.packets");
            }
        }
        assert!(
            packets_total > 0,
            "every chaos schedule starved the trace stream"
        );
    }

    #[test]
    fn chaos_is_reproducible() {
        let a = run_chaos(&chaos_config(OsKind::Zephyr, 5, 99, 20));
        let b = run_chaos(&chaos_config(OsKind::Zephyr, 5, 99, 20));
        assert_eq!(a.result.resilience, b.result.resilience);
        assert_eq!(a.result.branches, b.result.branches);
        assert_eq!(a.result.stats.execs, b.result.stats.execs);
    }
}
