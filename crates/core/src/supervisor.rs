//! The recovery supervisor: an escalating restoration ladder.
//!
//! Algorithm 1 (§4.4) restores a degraded target with one hammer — verify
//! the image, reflash what is damaged, reboot, settle. That is the right
//! *strongest* move, but it is wasteful as the *only* move: a transient
//! probe glitch needs nothing, a firmware hang needs a reset, and a wedged
//! debug port sometimes needs the power rail, not the flash. The
//! supervisor makes the escalation explicit:
//!
//! 1. **Snapshot-restore** — rewind the board from the armed dirty-page
//!    snapshot: ship only the pages written since capture and restart
//!    the core, no reboot, no settle. Gated by the flash generation
//!    counter — a mutated image disqualifies the snapshot and the ladder
//!    escalates straight past it.
//! 2. **Resume** — the target may be fine and only the observation was
//!    disturbed; try to re-park at the sync point.
//! 3. **Reset + settle** — reboot in place; an intact image recovers in
//!    about a second.
//! 4. **Verify-and-reflash** — Algorithm 1's checksum pass: reflash only
//!    the partitions whose target-side CRC disagrees with the golden one
//!    (§4.4.2), then reboot and settle.
//! 5. **Full golden reflash** — write everything back unconditionally,
//!    for when the checksum engine itself cannot be trusted.
//! 6. **Power-cycle** — the one action that needs no debug link at all.
//!
//! Each rung has a bounded attempt budget with exponential backoff in
//! *simulated cycles*, so slow recovery genuinely eats campaign budget.
//! A target that defeats the whole ladder is escalated to manual
//! intervention — the 60-simulated-second human visit the paper says
//! reboot-only tools need — and every step is accounted in
//! [`ResilienceStats`], which flows up into campaign results and the
//! chaos bench.

use crate::config::RecoveryConfig;
use eof_dap::{DebugTransport, RetryStats};
use eof_hal::clock::{secs_to_cycles, CYCLES_PER_SEC};
use eof_monitors::StateRestoration;
use eof_telemetry as tel;

/// Simulated seconds a manual intervention costs (a human walks over
/// with a bench flasher).
pub const MANUAL_INTERVENTION_SECS: u64 = 60;

/// Backoff between rung attempts never grows beyond this.
const MAX_RUNG_BACKOFF: u64 = 16_000;

/// One rung of the restoration ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rung {
    /// Delta-restore from the armed board snapshot: dirty pages + core
    /// registers over the debug port, no reboot. Skipped outright when
    /// no valid snapshot is armed (flash generation or boot epoch
    /// mismatch, snapshot mode off).
    SnapshotRestore,
    /// Leave the target alone and try to re-park at the sync point.
    Resume,
    /// Reset line + settle delay.
    Reset,
    /// Checksum-verify each partition, reflash the damaged ones, reboot.
    VerifyReflash,
    /// Reflash every partition from golden images unconditionally.
    FullReflash,
    /// Cut the power rail — works with the debug link completely down.
    PowerCycle,
}

/// Number of distinct rungs (array-indexed stats).
pub const RUNG_COUNT: usize = 6;

impl Rung {
    /// Stable index for per-rung stat arrays.
    pub fn index(self) -> usize {
        match self {
            Rung::SnapshotRestore => 0,
            Rung::Resume => 1,
            Rung::Reset => 2,
            Rung::VerifyReflash => 3,
            Rung::FullReflash => 4,
            Rung::PowerCycle => 5,
        }
    }

    /// Human/JSON label.
    pub fn name(self) -> &'static str {
        match self {
            Rung::SnapshotRestore => "snapshot_restore",
            Rung::Resume => "resume",
            Rung::Reset => "reset",
            Rung::VerifyReflash => "verify_reflash",
            Rung::FullReflash => "full_reflash",
            Rung::PowerCycle => "power_cycle",
        }
    }

    /// All rungs in escalation order.
    pub const ALL: [Rung; RUNG_COUNT] = [
        Rung::SnapshotRestore,
        Rung::Resume,
        Rung::Reset,
        Rung::VerifyReflash,
        Rung::FullReflash,
        Rung::PowerCycle,
    ];

    /// Telemetry counter key for attempts of this rung. A match (rather
    /// than formatting) because counters key on `&'static str`.
    pub fn attempts_counter(self) -> &'static str {
        match self {
            Rung::SnapshotRestore => "recovery.rung.snapshot_restore.attempts",
            Rung::Resume => "recovery.rung.resume.attempts",
            Rung::Reset => "recovery.rung.reset.attempts",
            Rung::VerifyReflash => "recovery.rung.verify_reflash.attempts",
            Rung::FullReflash => "recovery.rung.full_reflash.attempts",
            Rung::PowerCycle => "recovery.rung.power_cycle.attempts",
        }
    }

    /// Telemetry counter key for successful recoveries by this rung.
    pub fn successes_counter(self) -> &'static str {
        match self {
            Rung::SnapshotRestore => "recovery.rung.snapshot_restore.successes",
            Rung::Resume => "recovery.rung.resume.successes",
            Rung::Reset => "recovery.rung.reset.successes",
            Rung::VerifyReflash => "recovery.rung.verify_reflash.successes",
            Rung::FullReflash => "recovery.rung.full_reflash.successes",
            Rung::PowerCycle => "recovery.rung.power_cycle.successes",
        }
    }
}

/// Why recovery was entered — used to skip rungs that provably cannot
/// help (Algorithm 1 distinguishes the same two signals).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryReason {
    /// The PC provably stopped advancing (stall watchdog / parked in a
    /// handler). The core answers, so resuming cannot help — start at
    /// the reset rung.
    Stall,
    /// The debug connection was lost or the target timed out. May be a
    /// transient probe glitch — start at the resume rung.
    ConnectionLoss,
}

/// Budget and backoff for one rung.
#[derive(Debug, Clone, Copy)]
struct RungSpec {
    rung: Rung,
    attempts: u32,
    /// Backoff before the second attempt (doubles per retry).
    base_backoff: u64,
    /// Settle delay after the rung's action, in cycles.
    settle: u64,
}

/// How one recovery episode ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryOutcome {
    /// The rung whose action stuck; `None` means the whole ladder failed
    /// and a manual intervention was performed.
    pub rung: Option<Rung>,
    /// Whether the target verified healthy (parked at the sync point)
    /// when the episode ended.
    pub parked: bool,
    /// Simulated cycles the episode consumed.
    pub cycles: u64,
}

/// Resilience accounting for one campaign, threaded transport →
/// executor → campaign result → `BENCH_chaos.json`.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ResilienceStats {
    /// Recovery episodes entered.
    pub episodes: u64,
    /// Attempts per rung, indexed by [`Rung::index`].
    pub rung_attempts: [u64; RUNG_COUNT],
    /// Successful recoveries per rung.
    pub rung_successes: [u64; RUNG_COUNT],
    /// Cycles slept in inter-attempt backoff.
    pub backoff_cycles: u64,
    /// Episodes that exhausted the ladder and needed a human.
    pub manual_interventions: u64,
    /// Total cycles spent inside recovery episodes.
    pub recovery_cycles: u64,
    /// Longest single episode, in cycles.
    pub max_recovery_cycles: u64,
    /// Syncs that failed even after recovery (target left unparked).
    pub failed_syncs: u64,
    /// Vectored transactions that half-applied before failing. Must stay
    /// zero: validate-then-apply makes partial application unreachable,
    /// and the chaos harness treats any nonzero value as a torn-state
    /// invariant violation.
    pub txn_partial: u64,
    /// Link-layer retry accounting (transient error absorption).
    pub link: RetryStats,
}

impl ResilienceStats {
    /// Episodes that ended with the target verified healthy without a
    /// manual intervention.
    pub fn recovered(&self) -> u64 {
        self.rung_successes.iter().sum()
    }

    /// Mean time to recover, in simulated seconds. Counts every episode,
    /// manual interventions included — hiding the expensive ones would
    /// flatter the number the paper cares about.
    pub fn mttr_secs(&self) -> f64 {
        if self.episodes == 0 {
            return 0.0;
        }
        self.recovery_cycles as f64 / self.episodes as f64 / CYCLES_PER_SEC as f64
    }

    /// Fold another campaign's counters into this one.
    pub fn absorb(&mut self, other: &ResilienceStats) {
        self.episodes += other.episodes;
        for i in 0..RUNG_COUNT {
            self.rung_attempts[i] += other.rung_attempts[i];
            self.rung_successes[i] += other.rung_successes[i];
        }
        self.backoff_cycles += other.backoff_cycles;
        self.manual_interventions += other.manual_interventions;
        self.recovery_cycles += other.recovery_cycles;
        self.max_recovery_cycles = self.max_recovery_cycles.max(other.max_recovery_cycles);
        self.failed_syncs += other.failed_syncs;
        self.txn_partial += other.txn_partial;
        self.link.absorb(&other.link);
    }
}

/// The supervisor itself: a ladder derived from the campaign's
/// [`RecoveryConfig`], plus the accounting it accumulates.
#[derive(Debug, Clone)]
pub struct RecoverySupervisor {
    ladder: Vec<RungSpec>,
    stats: ResilienceStats,
}

impl RecoverySupervisor {
    /// Build the ladder for a recovery policy.
    ///
    /// * `reflash = true` (EOF): the full six-rung ladder.
    /// * reboot-only (baselines): a single reset rung — everything past
    ///   a reboot is, by the paper's framing, a manual intervention.
    pub fn for_policy(recovery: &RecoveryConfig) -> Self {
        let ladder = if recovery.reflash {
            vec![
                RungSpec {
                    rung: Rung::SnapshotRestore,
                    attempts: 1,
                    base_backoff: 0,
                    settle: 0,
                },
                RungSpec {
                    rung: Rung::Resume,
                    attempts: 1,
                    base_backoff: 0,
                    settle: 0,
                },
                RungSpec {
                    rung: Rung::Reset,
                    attempts: 2,
                    base_backoff: 2_000,
                    settle: secs_to_cycles(1),
                },
                RungSpec {
                    rung: Rung::VerifyReflash,
                    attempts: 2,
                    base_backoff: 4_000,
                    // restore() sleeps the Algorithm-1 settle itself.
                    settle: 0,
                },
                RungSpec {
                    rung: Rung::PowerCycle,
                    // Before the full golden stream, not after: pulling
                    // the plug costs a few thousand cycles against the
                    // stream's ~half a million, revives a latched core or
                    // a sagging rail that would refuse the stream anyway,
                    // and is the only rung that needs no debug link.
                    // Three attempts with a doubling 5 s backoff outlast
                    // the longest injected brownout (20 s).
                    attempts: 3,
                    base_backoff: secs_to_cycles(5),
                    settle: secs_to_cycles(1),
                },
                RungSpec {
                    rung: Rung::FullReflash,
                    attempts: 1,
                    base_backoff: 0,
                    settle: 0,
                },
            ]
        } else {
            vec![RungSpec {
                rung: Rung::Reset,
                attempts: 1,
                base_backoff: 0,
                settle: secs_to_cycles(1),
            }]
        };
        RecoverySupervisor {
            ladder,
            stats: ResilienceStats::default(),
        }
    }

    /// Accumulated resilience accounting.
    pub fn stats(&self) -> &ResilienceStats {
        &self.stats
    }

    /// Mutable stats access (the executor folds link-retry counters in).
    pub fn stats_mut(&mut self) -> &mut ResilienceStats {
        &mut self.stats
    }

    /// Run one recovery episode: climb the ladder until `verify` reports
    /// the target healthy, escalating to manual intervention if nothing
    /// sticks. `verify` should attempt to park the target at its sync
    /// point and say whether it got there.
    pub fn recover(
        &mut self,
        reason: RecoveryReason,
        pipe: &mut DebugTransport,
        restoration: &mut StateRestoration,
        mut verify: impl FnMut(&mut DebugTransport) -> bool,
    ) -> RecoveryOutcome {
        let start = pipe.now();
        self.stats.episodes += 1;
        tel::count("recovery.episodes", 1);
        let episode_span = tel::span_start("recovery.episode", start);
        // Whether a verified restore COMPLETED this episode: the flash
        // port answered, the image was verified (and repaired if need
        // be) — and the target still would not park.
        let mut flash_answered = false;
        for spec in self.ladder.clone() {
            // A stall means the core answers but the PC is stuck;
            // re-parking without any action provably cannot help.
            if reason == RecoveryReason::Stall && spec.rung == Rung::Resume {
                continue;
            }
            // The delta fast path is only sound when the armed snapshot
            // still describes this boot of this image: the flash
            // generation counter is the suspicion rule (a reflash or a
            // flipped bit disqualifies it), and an unreachable flash
            // port disqualifies it too.
            if spec.rung == Rung::SnapshotRestore && !restoration.snapshot_ready(pipe) {
                continue;
            }
            // The unconditional golden stream answers flash DISTRUST,
            // not link failure: it only runs when a verified restore
            // completed this episode — flash port answering, image
            // proven (or made) golden — yet the target still refused to
            // park, i.e. the checksum engine itself is suspect. When
            // the verified restore could not even talk to the flash,
            // the link is the problem, and a multi-megabyte stream
            // through the same port provably cannot do better than the
            // register read that just failed; the episode goes to the
            // bench operator at walk-over cost instead of stream cost.
            if spec.rung == Rung::FullReflash && !flash_answered {
                continue;
            }
            let mut backoff = spec.base_backoff;
            for attempt in 0..spec.attempts.max(1) {
                if attempt > 0 && backoff > 0 {
                    pipe.sleep(backoff);
                    self.stats.backoff_cycles += backoff;
                    tel::count("recovery.backoff_cycles", backoff);
                    backoff = backoff.saturating_mul(2).min(MAX_RUNG_BACKOFF);
                }
                self.stats.rung_attempts[spec.rung.index()] += 1;
                tel::count(spec.rung.attempts_counter(), 1);
                let applied = Self::perform(spec, pipe, restoration);
                if spec.rung == Rung::VerifyReflash && applied {
                    flash_answered = true;
                }
                let ok = verify(pipe);
                if ok {
                    self.stats.rung_successes[spec.rung.index()] += 1;
                    tel::count(spec.rung.successes_counter(), 1);
                    let cycles = pipe.now() - start;
                    self.finish_episode(cycles);
                    tel::span_end(episode_span, pipe.now());
                    tel::event("recovery.recovered", pipe.now(), || {
                        format!("rung={} cycles={cycles}", spec.rung.name())
                    });
                    return RecoveryOutcome {
                        rung: Some(spec.rung),
                        parked: true,
                        cycles,
                    };
                }
            }
        }
        // Ladder exhausted: a human walks over, power-cycles the board
        // and reflashes it with a bench programmer.
        self.stats.manual_interventions += 1;
        tel::count("recovery.manual_interventions", 1);
        tel::event("recovery.manual_intervention", pipe.now(), String::new);
        pipe.sleep(secs_to_cycles(MANUAL_INTERVENTION_SECS));
        pipe.power_cycle(secs_to_cycles(1));
        // The bench programmer verifies before it writes, like any modern
        // probe tool: partitions whose checksum already matches the
        // golden image are skipped, so an episode whose real problem was
        // power or the link (image intact all along) costs the human's
        // minute plus a checksum pass — not a full image stream.
        let _ = restoration.restore(pipe);
        let parked = verify(pipe);
        let cycles = pipe.now() - start;
        self.finish_episode(cycles);
        tel::span_end(episode_span, pipe.now());
        RecoveryOutcome {
            rung: None,
            parked,
            cycles,
        }
    }

    fn finish_episode(&mut self, cycles: u64) {
        self.stats.recovery_cycles += cycles;
        self.stats.max_recovery_cycles = self.stats.max_recovery_cycles.max(cycles);
        tel::observe("recovery.episode_cycles", cycles);
    }

    /// Execute one rung's action. Errors are deliberately swallowed — a
    /// failed action simply fails the verify that follows and the
    /// ladder escalates — but whether the action applied cleanly is
    /// reported back, so the ladder can gate the golden stream on the
    /// flash having actually answered a verified restore.
    fn perform(
        spec: RungSpec,
        pipe: &mut DebugTransport,
        restoration: &mut StateRestoration,
    ) -> bool {
        match spec.rung {
            Rung::SnapshotRestore => restoration.snapshot_restore(pipe).is_ok(),
            Rung::Resume => pipe.resume().is_ok(),
            Rung::Reset => {
                let applied = pipe.reset_target().is_ok();
                pipe.sleep(spec.settle);
                applied
            }
            Rung::VerifyReflash => restoration.restore(pipe).is_ok(),
            Rung::FullReflash => restoration.restore_full(pipe).is_ok(),
            Rung::PowerCycle => {
                pipe.power_cycle(secs_to_cycles(1));
                pipe.sleep(spec.settle);
                true
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rung_indices_are_dense_and_ordered() {
        for (i, rung) in Rung::ALL.iter().enumerate() {
            assert_eq!(rung.index(), i);
        }
        let names: std::collections::BTreeSet<_> = Rung::ALL.iter().map(|r| r.name()).collect();
        assert_eq!(names.len(), RUNG_COUNT);
    }

    #[test]
    fn full_policy_gets_full_ladder_reboot_only_gets_reset() {
        let full = RecoverySupervisor::for_policy(&RecoveryConfig::eof());
        assert_eq!(full.ladder.len(), RUNG_COUNT);
        let reboot = RecoverySupervisor::for_policy(&RecoveryConfig::reboot_only());
        assert_eq!(reboot.ladder.len(), 1);
        assert_eq!(reboot.ladder[0].rung, Rung::Reset);
    }

    #[test]
    fn stats_absorb_merges_rungs_and_max() {
        let mut a = ResilienceStats {
            episodes: 1,
            max_recovery_cycles: 100,
            ..Default::default()
        };
        a.rung_successes[Rung::Reset.index()] = 1;
        let mut b = ResilienceStats {
            episodes: 2,
            max_recovery_cycles: 50,
            manual_interventions: 1,
            ..Default::default()
        };
        b.rung_successes[Rung::PowerCycle.index()] = 1;
        a.absorb(&b);
        assert_eq!(a.episodes, 3);
        assert_eq!(a.recovered(), 2);
        assert_eq!(a.max_recovery_cycles, 100);
        assert_eq!(a.manual_interventions, 1);
    }

    #[test]
    fn mttr_counts_all_episodes() {
        let stats = ResilienceStats {
            episodes: 4,
            recovery_cycles: 4 * 2 * CYCLES_PER_SEC,
            ..Default::default()
        };
        assert!((stats.mttr_secs() - 2.0).abs() < 1e-9);
        assert_eq!(ResilienceStats::default().mttr_secs(), 0.0);
    }
}
