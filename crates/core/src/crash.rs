//! Crash reports, de-duplication and Table-2 triage.

use eof_rtos::bugs::{BugId, BUG_TABLE, DRIVER_BUG_TABLE};
use eof_rtos::OsKind;
use eof_speclang::prog::Prog;
use std::collections::BTreeMap;

/// Which monitor produced a crash observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub enum DetectionSource {
    /// Exception-handler breakpoint.
    ExceptionMonitor,
    /// UART log signature.
    LogMonitor,
    /// Hang noticed by a timeout (the only channel Tardis has).
    Timeout,
    /// PC-stall watchdog.
    StallWatchdog,
}

/// One observed crash.
#[derive(Debug, Clone)]
pub struct CrashReport {
    /// Target OS.
    pub os: OsKind,
    /// Crash banner / matched log line.
    pub message: String,
    /// Symbolised backtrace, innermost first (may be empty).
    pub backtrace: Vec<String>,
    /// How it was detected.
    pub source: DetectionSource,
    /// The test case that triggered it.
    pub prog: Prog,
    /// Simulated time (hours) at detection.
    pub at_hours: f64,
    /// Triaged Table-2 bug, if attributable.
    pub bug: Option<BugId>,
}

/// Attribute a crash to a seeded bug (Table-2 or driver inventory) by
/// matching the triggering operation's name against the backtrace and
/// banner — the offline analysis step every fuzzer does on its crash
/// dumps.
pub fn triage(os: OsKind, message: &str, backtrace: &[String]) -> Option<BugId> {
    for info in BUG_TABLE
        .iter()
        .chain(DRIVER_BUG_TABLE.iter())
        .filter(|b| b.os == os)
    {
        let op = info.operation.trim_end_matches("()");
        if backtrace.iter().any(|f| f.contains(op)) || message.contains(op) {
            return Some(info.id);
        }
    }
    None
}

/// Stable de-duplication key: message class + top frames. Public
/// because the persistence layer keys crash records by it and the
/// replay engine compares classes with it.
pub fn dedup_key(report: &CrashReport) -> String {
    let top: Vec<&str> = report
        .backtrace
        .iter()
        .take(3)
        .map(|s| s.as_str())
        .collect();
    // Message class: strip volatile digits so addresses and counters
    // do not split one bug into many buckets.
    let class: String = report
        .message
        .chars()
        .map(|c| if c.is_ascii_digit() { '#' } else { c })
        .collect();
    format!("{class}|{}", top.join(">"))
}

/// The de-duplicated crash database of one campaign.
#[derive(Debug, Clone, Default)]
pub struct CrashDb {
    unique: BTreeMap<String, CrashReport>,
    total_observed: u64,
}

impl CrashDb {
    /// An empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an observation; returns `true` if it is a new unique crash.
    pub fn record(&mut self, report: CrashReport) -> bool {
        self.total_observed += 1;
        let key = dedup_key(&report);
        match self.unique.entry(key) {
            std::collections::btree_map::Entry::Occupied(_) => false,
            std::collections::btree_map::Entry::Vacant(slot) => {
                slot.insert(report);
                true
            }
        }
    }

    /// Whether a report's crash class has already been recorded. Lets
    /// callers act on first-sighting (e.g. persist the reproducer)
    /// before `record` consumes the report.
    pub fn contains(&self, report: &CrashReport) -> bool {
        self.unique.contains_key(&dedup_key(report))
    }

    /// Unique crashes.
    pub fn unique(&self) -> impl Iterator<Item = &CrashReport> {
        self.unique.values()
    }

    /// Count of unique crashes.
    pub fn unique_count(&self) -> usize {
        self.unique.len()
    }

    /// Raw observation count (before de-duplication).
    pub fn total_observed(&self) -> u64 {
        self.total_observed
    }

    /// The set of Table-2 bugs found, sorted by table number.
    pub fn bugs_found(&self) -> Vec<BugId> {
        let mut bugs: Vec<BugId> = self.unique.values().filter_map(|r| r.bug).collect();
        bugs.sort();
        bugs.dedup();
        bugs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(msg: &str, frames: &[&str], bug: Option<BugId>) -> CrashReport {
        CrashReport {
            os: OsKind::RtThread,
            message: msg.to_string(),
            backtrace: frames.iter().map(|s| s.to_string()).collect(),
            source: DetectionSource::ExceptionMonitor,
            prog: Prog::new(),
            at_hours: 1.0,
            bug,
        }
    }

    #[test]
    fn triage_matches_figure6_backtrace() {
        let frames: Vec<String> = [
            "rt_serial_write",
            "rt_device_write",
            "_kputs",
            "rt_kprintf",
            "sal_socket",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        assert_eq!(
            triage(OsKind::RtThread, "BUG: unexpected stop", &frames),
            Some(BugId::B12SerialWrite)
        );
    }

    #[test]
    fn triage_by_message() {
        assert_eq!(
            triage(
                OsKind::NuttX,
                "PANIC: NULL dereference in gettimeofday",
                &[]
            ),
            Some(BugId::B15Gettimeofday)
        );
        assert_eq!(triage(OsKind::NuttX, "all quiet", &[]), None);
    }

    #[test]
    fn triage_respects_os() {
        // A Zephyr-looking message on RT-Thread triages to nothing.
        assert_eq!(
            triage(OsKind::RtThread, "panic in z_impl_k_msgq_get", &[]),
            None
        );
    }

    #[test]
    fn triage_reaches_driver_inventory() {
        assert_eq!(
            triage(
                OsKind::NuttX,
                "up_assert: length fault",
                &["nx_dma_setup".to_string(), "dma_channel".to_string()]
            ),
            Some(BugId::B24DmaLenTruncation)
        );
        // Same frames on the wrong OS triage to nothing.
        assert_eq!(
            triage(
                OsKind::Zephyr,
                "up_assert: length fault",
                &["nx_dma_setup".to_string()]
            ),
            None
        );
    }

    #[test]
    fn dedup_collapses_digit_variants() {
        let mut db = CrashDb::new();
        assert!(db.record(report("fault at 0x1000", &["f", "g"], None)));
        assert!(!db.record(report("fault at 0x2344", &["f", "g"], None)));
        assert_eq!(db.unique_count(), 1);
        assert_eq!(db.total_observed(), 2);
    }

    #[test]
    fn different_frames_stay_distinct() {
        let mut db = CrashDb::new();
        assert!(db.record(report("fault", &["f"], None)));
        assert!(db.record(report("fault", &["h"], None)));
        assert_eq!(db.unique_count(), 2);
    }

    #[test]
    fn bugs_found_sorted_unique() {
        let mut db = CrashDb::new();
        db.record(report("a", &["x"], Some(BugId::B12SerialWrite)));
        db.record(report("b", &["y"], Some(BugId::B05ObjectGetType)));
        db.record(report("c", &["z"], Some(BugId::B05ObjectGetType)));
        let bugs = db.bugs_found();
        assert_eq!(bugs, vec![BugId::B05ObjectGetType, BugId::B12SerialWrite]);
    }
}
