//! Versioned on-disk campaign store.
//!
//! Everything a campaign discovers — the admitted seed pool, the unique
//! crash classes with their reproducers, the final coverage bitmap — is
//! written into a directory that survives the process and flows through
//! CI (the `replay` bin re-executes it, see [`crate::replay`]). The
//! store is designed around three constraints:
//!
//! * **Atomicity.** Every file is written via temp-file + rename, and
//!   the manifest is written last — a directory with a manifest is a
//!   complete store; a directory without one is a campaign that died
//!   mid-flight (whose incrementally persisted crashes are still
//!   readable, see [`scan_crashes`]).
//! * **Versioning.** Every record carries the schema version and a
//!   fingerprint of the producing configuration. Corrupt, foreign-schema
//!   or foreign-config entries are *skipped and counted*
//!   ([`SkipStats`]), never fatal — two fleet jobs pointed at the same
//!   directory degrade to counted skips instead of corrupting each
//!   other.
//! * **Portability.** No external serialization crates: records are
//!   plain `key = value` text, progs travel as hex of
//!   [`Prog::canonical_bytes`], and floats as exact bit patterns, so a
//!   store written on one host replays bit-identically on another.
//!
//! Layout: `<dir>/manifest.eof`, `<dir>/corpus/<hash>.seed`,
//! `<dir>/crashes/<key-hash>.crash`, `<dir>/coverage`.

use crate::config::FuzzerConfig;
use crate::crash::{dedup_key, CrashReport, DetectionSource};
use eof_coverage::CoverageKind;
use eof_rtos::OsKind;
use eof_speclang::prog::Prog;
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Store format version. Bump on any incompatible record change; open()
/// refuses foreign manifests and counts foreign entries as skips.
pub const SCHEMA_VERSION: u32 = 1;

/// FNV-1a 64 over arbitrary bytes — the store's stable hash (std's
/// hasher keys are unspecified across processes).
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Fingerprint of the campaign knobs that determine a store's contents.
/// Budget, snapshot cadence and the persist path itself are deliberately
/// excluded: a resumed campaign re-runs the same configuration at a
/// longer budget and must still own the store's entries.
pub fn config_fingerprint(config: &FuzzerConfig) -> u64 {
    fnv64(config_canonical(config).as_bytes())
}

fn config_canonical(config: &FuzzerConfig) -> String {
    let mut canon = format!(
        "schema={SCHEMA_VERSION};os={};osver={};board={};seed={};covfb={};crashfb={};gen={:?};\
         instr={:?};profile={:?};detect={:?};recover={:?};covfrac={:e};costmul={:e};maxcalls={};\
         noise={:?};validation={};modules={:?};periph={};nopseudo={}",
        config.os.short(),
        config.os.version(),
        config.board.name,
        config.seed,
        config.coverage_feedback,
        config.crash_feedback,
        config.gen_mode,
        config.instrument,
        config.profile,
        config.detection,
        config.recovery,
        config.cov_observe_fraction,
        config.exec_cost_multiplier,
        config.max_calls,
        config.spec_noise,
        config.spec_validation,
        config.module_filter,
        config.peripheral_events,
        config.exclude_pseudo,
    );
    // Appended only when on, so every pre-MMIO store fingerprint stays
    // byte-identical and old stores remain owned by their configs.
    if config.mmio {
        canon.push_str(";mmio=true");
    }
    // Same scheme for cmplog: the I2S mutation stage changes which
    // inputs are generated, so the fingerprint must split, but a
    // cmplog-off campaign keeps its pre-cmplog fingerprint byte for
    // byte.
    if config.cmplog {
        canon.push_str(";cmplog=true");
    }
    canon
}

pub(crate) fn hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

pub(crate) fn unhex(s: &str) -> Result<Vec<u8>, String> {
    if !s.len().is_multiple_of(2) {
        return Err("odd-length hex".to_string());
    }
    (0..s.len() / 2)
        .map(|i| {
            u8::from_str_radix(&s[2 * i..2 * i + 2], 16).map_err(|e| format!("bad hex: {e:?}"))
        })
        .collect()
}

/// Why the store could not be used at all. Per-*entry* problems are
/// never errors — they become [`SkipStats`] counts.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreError {
    /// Filesystem failure (message includes the path).
    Io(String),
    /// The directory has no manifest — an absent or mid-flight store.
    MissingManifest(PathBuf),
    /// The manifest was written by a different store format.
    ForeignSchema {
        /// Version found in the manifest.
        found: u32,
        /// Version this build reads.
        expected: u32,
    },
    /// The manifest itself does not parse.
    Corrupt(String),
    /// The store belongs to a configuration the caller cannot
    /// reconstruct (fingerprint mismatch).
    ConfigMismatch(String),
    /// Replay-based resume re-derived a history that does not contain
    /// the persisted one — the determinism contract broke.
    Diverged(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(m) => write!(f, "store I/O error: {m}"),
            StoreError::MissingManifest(p) => {
                write!(
                    f,
                    "no manifest in {} (absent or mid-flight store)",
                    p.display()
                )
            }
            StoreError::ForeignSchema { found, expected } => {
                write!(f, "store schema {found} is not the supported {expected}")
            }
            StoreError::Corrupt(m) => write!(f, "corrupt manifest: {m}"),
            StoreError::ConfigMismatch(m) => write!(f, "config mismatch: {m}"),
            StoreError::Diverged(m) => write!(f, "resume diverged: {m}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// Per-entry problems counted (never fatal) while reading a store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SkipStats {
    /// Entries that did not parse (truncated, garbled, bad hex).
    pub corrupt: usize,
    /// Entries written by a different schema version.
    pub foreign_schema: usize,
    /// Entries written by a different configuration (e.g. a second
    /// fleet job sharing the directory).
    pub foreign_config: usize,
}

impl SkipStats {
    /// Total entries skipped.
    pub fn total(&self) -> usize {
        self.corrupt + self.foreign_schema + self.foreign_config
    }
}

enum SkipKind {
    Corrupt,
    ForeignSchema,
    ForeignConfig,
}

impl SkipStats {
    fn bump(&mut self, kind: SkipKind) {
        match kind {
            SkipKind::Corrupt => self.corrupt += 1,
            SkipKind::ForeignSchema => self.foreign_schema += 1,
            SkipKind::ForeignConfig => self.foreign_config += 1,
        }
    }
}

// ---------------------------------------------------------------------------
// Record text format
// ---------------------------------------------------------------------------

fn render_record(fields: &[(&str, String)]) -> String {
    let mut out = String::new();
    for (k, v) in fields {
        out.push_str(k);
        out.push_str(" = ");
        out.push_str(v);
        out.push('\n');
    }
    out
}

struct Record(BTreeMap<String, String>);

impl Record {
    fn parse(text: &str) -> Result<Record, String> {
        let mut map = BTreeMap::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (k, v) = line
                .split_once(" = ")
                .ok_or_else(|| format!("not a record line: {line:?}"))?;
            map.insert(k.to_string(), v.to_string());
        }
        if map.is_empty() {
            return Err("empty record".to_string());
        }
        Ok(Record(map))
    }

    fn get(&self, key: &str) -> Result<&str, String> {
        self.0
            .get(key)
            .map(|s| s.as_str())
            .ok_or_else(|| format!("missing field {key:?}"))
    }

    fn u64(&self, key: &str) -> Result<u64, String> {
        self.get(key)?
            .parse()
            .map_err(|e| format!("field {key:?}: {e:?}"))
    }

    fn usize(&self, key: &str) -> Result<usize, String> {
        self.get(key)?
            .parse()
            .map_err(|e| format!("field {key:?}: {e:?}"))
    }

    fn hex_u64(&self, key: &str) -> Result<u64, String> {
        u64::from_str_radix(self.get(key)?, 16).map_err(|e| format!("field {key:?}: {e:?}"))
    }

    fn bool(&self, key: &str) -> Result<bool, String> {
        match self.get(key)? {
            "true" => Ok(true),
            "false" => Ok(false),
            v => Err(format!("field {key:?}: not a bool: {v:?}")),
        }
    }

    /// Floats are stored as exact bit patterns — `0.1`-style decimal
    /// round-trips are not bit-exact and the store is a determinism
    /// artifact.
    fn f64_bits(&self, key: &str) -> Result<f64, String> {
        Ok(f64::from_bits(self.hex_u64(key)?))
    }

    fn prog(&self, key: &str) -> Result<Prog, String> {
        Prog::from_canonical_bytes(&unhex(self.get(key)?)?)
    }

    fn string_hex(&self, key: &str) -> Result<String, String> {
        String::from_utf8(unhex(self.get(key)?)?).map_err(|e| format!("field {key:?}: {e:?}"))
    }
}

fn os_from_short(s: &str) -> Option<OsKind> {
    OsKind::ALL.into_iter().find(|o| o.short() == s)
}

fn source_label(source: DetectionSource) -> &'static str {
    match source {
        DetectionSource::ExceptionMonitor => "exception",
        DetectionSource::LogMonitor => "log",
        DetectionSource::Timeout => "timeout",
        DetectionSource::StallWatchdog => "stall",
    }
}

fn source_from_label(s: &str) -> Result<DetectionSource, String> {
    match s {
        "exception" => Ok(DetectionSource::ExceptionMonitor),
        "log" => Ok(DetectionSource::LogMonitor),
        "timeout" => Ok(DetectionSource::Timeout),
        "stall" => Ok(DetectionSource::StallWatchdog),
        other => Err(format!("unknown detection source {other:?}")),
    }
}

// ---------------------------------------------------------------------------
// Persisted entry types
// ---------------------------------------------------------------------------

/// One persisted corpus seed with its provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct PersistedSeed {
    /// [`Prog::stable_hash`] of the prog (also the file name).
    pub hash: u64,
    /// Admission ordinal within the campaign (replay order).
    pub ordinal: u64,
    /// Edges the seed discovered when admitted live.
    pub new_edges: usize,
    /// Whether it carried a crash signal at admission.
    pub crashed: bool,
    /// Edges it contributed when replayed in ordinal order on a fresh
    /// target at save time — the value replay must reproduce.
    pub replay_edges: usize,
    /// The test case.
    pub prog: Prog,
}

impl PersistedSeed {
    fn render(&self, fingerprint: u64) -> String {
        render_record(&[
            ("schema", SCHEMA_VERSION.to_string()),
            ("fingerprint", format!("{fingerprint:016x}")),
            ("hash", format!("{:016x}", self.hash)),
            ("ordinal", self.ordinal.to_string()),
            ("new_edges", self.new_edges.to_string()),
            ("crashed", self.crashed.to_string()),
            ("replay_edges", self.replay_edges.to_string()),
            ("prog", hex(&self.prog.canonical_bytes())),
        ])
    }

    fn from_record(rec: &Record) -> Result<Self, String> {
        let prog = rec.prog("prog")?;
        let hash = rec.hex_u64("hash")?;
        if prog.stable_hash() != hash {
            return Err("seed hash does not match prog bytes".to_string());
        }
        Ok(PersistedSeed {
            hash,
            ordinal: rec.u64("ordinal")?,
            new_edges: rec.usize("new_edges")?,
            crashed: rec.bool("crashed")?,
            replay_edges: rec.usize("replay_edges")?,
            prog,
        })
    }
}

/// One persisted unique-crash class with its reproducer.
#[derive(Debug, Clone, PartialEq)]
pub struct PersistedCrash {
    /// The campaign's dedup key ([`crate::crash::dedup_key`]).
    pub key: String,
    /// FNV-64 of the key (also the file name).
    pub key_hash: u64,
    /// Target OS.
    pub os: OsKind,
    /// Crash banner / matched log line.
    pub message: String,
    /// Symbolised backtrace, innermost first.
    pub backtrace: Vec<String>,
    /// Which monitor detected it.
    pub source: DetectionSource,
    /// Triaged Table-2 bug number, if attributed.
    pub bug_number: Option<u8>,
    /// Simulated hours at first detection.
    pub at_hours: f64,
    /// The reproducer (minimized when `minimized`).
    pub prog: Prog,
    /// Whether the reproducer re-triggered the class on a fresh boot at
    /// save time. Only confirmed cases gate replay.
    pub confirmed: bool,
    /// Whether `prog` is the minimized reproducer (vs the raw one).
    pub minimized: bool,
}

impl PersistedCrash {
    /// Build the persisted form of a live report. `confirmed` and
    /// `minimized` describe what the finalize pass established.
    pub fn from_report(report: &CrashReport, confirmed: bool, minimized: bool) -> Self {
        let key = dedup_key(report);
        PersistedCrash {
            key_hash: fnv64(key.as_bytes()),
            key,
            os: report.os,
            message: report.message.clone(),
            backtrace: report.backtrace.clone(),
            source: report.source,
            bug_number: report.bug.map(|b| b.number()),
            at_hours: report.at_hours,
            prog: report.prog.clone(),
            confirmed,
            minimized,
        }
    }

    fn render(&self, fingerprint: u64) -> String {
        render_record(&[
            ("schema", SCHEMA_VERSION.to_string()),
            ("fingerprint", format!("{fingerprint:016x}")),
            ("key_hash", format!("{:016x}", self.key_hash)),
            ("key_hex", hex(self.key.as_bytes())),
            ("os", self.os.short().to_string()),
            ("message_hex", hex(self.message.as_bytes())),
            ("backtrace_hex", hex(self.backtrace.join("\n").as_bytes())),
            ("source", source_label(self.source).to_string()),
            (
                "bug",
                match self.bug_number {
                    Some(n) => n.to_string(),
                    None => "none".to_string(),
                },
            ),
            ("at_hours_bits", format!("{:016x}", self.at_hours.to_bits())),
            ("confirmed", self.confirmed.to_string()),
            ("minimized", self.minimized.to_string()),
            ("prog", hex(&self.prog.canonical_bytes())),
        ])
    }

    fn from_record(rec: &Record) -> Result<Self, String> {
        let key = rec.string_hex("key_hex")?;
        let key_hash = rec.hex_u64("key_hash")?;
        if fnv64(key.as_bytes()) != key_hash {
            return Err("crash key hash does not match key bytes".to_string());
        }
        let backtrace_joined = rec.string_hex("backtrace_hex")?;
        let backtrace = if backtrace_joined.is_empty() {
            Vec::new()
        } else {
            backtrace_joined.split('\n').map(str::to_string).collect()
        };
        Ok(PersistedCrash {
            key,
            key_hash,
            os: {
                let label = rec.get("os")?;
                os_from_short(label).ok_or_else(|| format!("unknown os {label:?}"))?
            },
            message: rec.string_hex("message_hex")?,
            backtrace,
            source: source_from_label(rec.get("source")?)?,
            bug_number: match rec.get("bug")? {
                "none" => None,
                n => Some(n.parse().map_err(|e| format!("bug number: {e:?}"))?),
            },
            at_hours: rec.f64_bits("at_hours_bits")?,
            prog: rec.prog("prog")?,
            confirmed: rec.bool("confirmed")?,
            minimized: rec.bool("minimized")?,
        })
    }
}

/// The store's manifest — written last, so its presence marks a
/// complete store.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreManifest {
    /// Configuration fingerprint ([`config_fingerprint`]).
    pub fingerprint: u64,
    /// Target OS.
    pub os: OsKind,
    /// Board name (must resolve via the board catalog on replay).
    pub board: String,
    /// Campaign RNG seed.
    pub seed: u64,
    /// Whether the producing campaign drove the debug link with
    /// vectored (batched) transactions. Deliberately *not* part of the
    /// fingerprint — per-exec behaviour is wire-mode-independent, so
    /// seeds and reproducers replay under either mode — but resume must
    /// re-derive the interrupted prefix at the producer's throughput,
    /// so the knob rides in the manifest.
    pub vectored: bool,
    /// Whether the producing campaign recovered via board snapshots and
    /// dirty-page delta restore. Like `vectored`, behaviour-neutral and
    /// excluded from the fingerprint (`tests/snapshot_equiv.rs`), but
    /// recorded so resume reproduces the producer's recovery cost.
    pub snapshot: bool,
    /// Whether the producing campaign fuzzed the MMIO input plane
    /// (driver workload). Part of the fingerprint — driver reproducers
    /// carry peripheral response streams — and carried here so replay
    /// and resume reconstruct the right configuration. Reads tolerate
    /// the key's absence (pre-MMIO stores are pure API plane).
    pub mmio: bool,
    /// Whether the producing campaign ran the Redqueen/I2S cmplog
    /// pipeline. Part of the fingerprint — cmplog changes generation —
    /// and carried here for replay/resume reconstruction. Reads
    /// tolerate the key's absence (pre-cmplog stores are pure).
    pub cmplog: bool,
    /// Which coverage channel the producing campaign acquired edges
    /// over. Like `wire`/`restore`, behaviour-neutral and excluded from
    /// the fingerprint (`tests/trace_equiv.rs` is the gate), but
    /// recorded so resume re-runs the producer's acquisition path.
    /// Reads tolerate the key's absence (pre-trace stores are ring).
    pub coverage: CoverageKind,
    /// Simulated hours the producing campaign consumed.
    pub consumed_hours: f64,
    /// Final distinct-branch count of the campaign coverage map.
    pub branches: usize,
    /// Branch count of the save-time seed-replay baseline — the value
    /// replay must land on exactly.
    pub replay_branches: usize,
    /// Seeds written at finalize.
    pub seed_count: usize,
    /// Crash classes written.
    pub crash_count: usize,
    /// Executions the producing campaign performed.
    pub execs: u64,
}

impl StoreManifest {
    fn render(&self) -> String {
        let mut out = format!(
            "# EOF campaign store manifest (schema {SCHEMA_VERSION})\n\
             # {} seed {} on {}, {} branches after {} execs\n",
            self.os.display(),
            self.seed,
            self.board,
            self.branches,
            self.execs,
        );
        out.push_str(&render_record(&[
            ("schema", SCHEMA_VERSION.to_string()),
            ("fingerprint", format!("{:016x}", self.fingerprint)),
            ("os", self.os.short().to_string()),
            ("board", self.board.clone()),
            ("seed", self.seed.to_string()),
            (
                "wire",
                if self.vectored { "vectored" } else { "scalar" }.to_string(),
            ),
            (
                "restore",
                if self.snapshot { "snapshot" } else { "reflash" }.to_string(),
            ),
            (
                "consumed_hours_bits",
                format!("{:016x}", self.consumed_hours.to_bits()),
            ),
            ("io", if self.mmio { "mmio" } else { "api" }.to_string()),
            (
                "i2s",
                if self.cmplog { "cmplog" } else { "pure" }.to_string(),
            ),
            ("cov", self.coverage.token().to_string()),
            ("branches", self.branches.to_string()),
            ("replay_branches", self.replay_branches.to_string()),
            ("seed_count", self.seed_count.to_string()),
            ("crash_count", self.crash_count.to_string()),
            ("execs", self.execs.to_string()),
        ]));
        out
    }

    fn from_record(rec: &Record) -> Result<Self, String> {
        Ok(StoreManifest {
            fingerprint: rec.hex_u64("fingerprint")?,
            os: {
                let label = rec.get("os")?;
                os_from_short(label).ok_or_else(|| format!("unknown os {label:?}"))?
            },
            board: rec.get("board")?.to_string(),
            seed: rec.u64("seed")?,
            // Stores from before the wire-mode split carry no key; they
            // were produced over a scalar link.
            vectored: rec.get("wire").map(|w| w == "vectored").unwrap_or(false),
            // Same for stores predating the snapshot fast path: they
            // recovered by reboot/reflash only.
            snapshot: rec.get("restore").map(|r| r == "snapshot").unwrap_or(false),
            // Stores predating the driver workload carry no key: pure
            // API plane only.
            mmio: rec.get("io").map(|v| v == "mmio").unwrap_or(false),
            // Stores predating the cmplog channel carry no key.
            cmplog: rec.get("i2s").map(|v| v == "cmplog").unwrap_or(false),
            // Stores predating the trace backend carry no key: they
            // were produced over the instrumented ring.
            coverage: rec
                .get("cov")
                .map(CoverageKind::from_token)
                .unwrap_or(CoverageKind::Ring),
            consumed_hours: rec.f64_bits("consumed_hours_bits")?,
            branches: rec.usize("branches")?,
            replay_branches: rec.usize("replay_branches")?,
            seed_count: rec.usize("seed_count")?,
            crash_count: rec.usize("crash_count")?,
            execs: rec.u64("execs")?,
        })
    }
}

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

static TEMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Write `contents` to `path` atomically: a uniquely named sibling temp
/// file is written first, then renamed over the destination, so readers
/// (and concurrent writers racing on the same name) only ever see whole
/// records.
fn write_atomic(path: &Path, contents: &str) -> Result<(), String> {
    let n = TEMP_COUNTER.fetch_add(1, Ordering::Relaxed);
    let file_name = path
        .file_name()
        .and_then(|f| f.to_str())
        .ok_or_else(|| format!("bad store path {}", path.display()))?;
    let tmp = path.with_file_name(format!("{file_name}.tmp-{}-{n}", std::process::id()));
    std::fs::write(&tmp, contents).map_err(|e| format!("write {}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, path).map_err(|e| {
        let _ = std::fs::remove_file(&tmp);
        format!("rename to {}: {e}", path.display())
    })
}

/// A campaign's live write handle to its store directory.
///
/// Created at campaign start; crash classes are written incrementally
/// the moment they are discovered (so a mid-flight outage loses no
/// uniques), and the rest — seed pool, coverage, manifest — is written
/// by the finalize pass ([`crate::replay::finalize_store`]). Write
/// failures are counted, never propagated: persistence must not be able
/// to kill a campaign.
#[derive(Debug)]
pub struct CampaignStore {
    dir: PathBuf,
    fingerprint: u64,
    os: OsKind,
    board: String,
    seed: u64,
    vectored: bool,
    snapshot: bool,
    mmio: bool,
    cmplog: bool,
    coverage: CoverageKind,
    crash_writes: usize,
    write_errors: usize,
}

impl CampaignStore {
    /// Open `dir` for writing (creating it and its subdirectories). Any
    /// existing manifest is removed — the store is mid-flight again
    /// until finalize rewrites it.
    pub fn create(dir: &Path, config: &FuzzerConfig) -> Result<Self, StoreError> {
        for sub in ["corpus", "crashes"] {
            std::fs::create_dir_all(dir.join(sub))
                .map_err(|e| StoreError::Io(format!("create {}/{sub}: {e}", dir.display())))?;
        }
        match std::fs::remove_file(dir.join("manifest.eof")) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(StoreError::Io(format!("clear stale manifest: {e}"))),
        }
        Ok(CampaignStore {
            dir: dir.to_path_buf(),
            fingerprint: config_fingerprint(config),
            os: config.os,
            board: config.board.name.to_string(),
            seed: config.seed,
            vectored: config.vectored,
            snapshot: config.snapshot,
            mmio: config.mmio,
            cmplog: config.cmplog,
            coverage: config.coverage_backend,
            crash_writes: 0,
            write_errors: 0,
        })
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// This store's configuration fingerprint.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Crash records written so far (incremental + finalize rewrites).
    pub fn crash_writes(&self) -> usize {
        self.crash_writes
    }

    /// Write failures absorbed so far.
    pub fn write_errors(&self) -> usize {
        self.write_errors
    }

    fn write_counted(&mut self, path: &Path, contents: &str) {
        if write_atomic(path, contents).is_err() {
            self.write_errors += 1;
        }
    }

    /// Persist one crash class (idempotent: same key overwrites).
    pub fn record_crash(&mut self, crash: &PersistedCrash) {
        let path = self
            .dir
            .join("crashes")
            .join(format!("{:016x}.crash", crash.key_hash));
        let text = crash.render(self.fingerprint);
        self.write_counted(&path, &text);
        self.crash_writes += 1;
    }

    /// Persist one corpus seed.
    pub fn write_seed(&mut self, seed: &PersistedSeed) {
        let path = self
            .dir
            .join("corpus")
            .join(format!("{:016x}.seed", seed.hash));
        let text = seed.render(self.fingerprint);
        self.write_counted(&path, &text);
    }

    /// Persist the final coverage bitmap (edge ids, sorted ascending).
    pub fn write_coverage(&mut self, edges: &[u64]) {
        let mut sorted = edges.to_vec();
        sorted.sort_unstable();
        let joined: Vec<String> = sorted.iter().map(|e| format!("{e:016x}")).collect();
        let text = render_record(&[
            ("schema", SCHEMA_VERSION.to_string()),
            ("fingerprint", format!("{:016x}", self.fingerprint)),
            ("count", sorted.len().to_string()),
            ("edges", joined.join(",")),
        ]);
        let path = self.dir.join("coverage");
        self.write_counted(&path, &text);
    }

    /// Delete *our own* stale entries: files carrying this store's
    /// fingerprint whose hash is no longer in the keep sets (a rerun
    /// into the same directory admitted a different pool). Foreign and
    /// unparseable files are left alone — they are some other writer's
    /// business and are counted at open time.
    pub fn sweep_stale(&mut self, keep_seeds: &BTreeSet<u64>, keep_crashes: &BTreeSet<u64>) {
        for (sub, ext, keep) in [
            ("corpus", "seed", keep_seeds),
            ("crashes", "crash", keep_crashes),
        ] {
            let Ok(entries) = std::fs::read_dir(self.dir.join(sub)) else {
                continue;
            };
            for entry in entries.flatten() {
                let path = entry.path();
                if path.extension().and_then(|e| e.to_str()) != Some(ext) {
                    continue;
                }
                let Ok(text) = std::fs::read_to_string(&path) else {
                    continue;
                };
                let Ok(rec) = Record::parse(&text) else {
                    continue;
                };
                if rec.hex_u64("fingerprint") != Ok(self.fingerprint) {
                    continue;
                }
                let hash_field = if ext == "seed" { "hash" } else { "key_hash" };
                match rec.hex_u64(hash_field) {
                    Ok(h) if !keep.contains(&h) => {
                        let _ = std::fs::remove_file(&path);
                    }
                    _ => {}
                }
            }
        }
    }

    /// Write the manifest — the last step; its presence marks the store
    /// complete.
    pub fn write_manifest(
        &mut self,
        consumed_hours: f64,
        branches: usize,
        replay_branches: usize,
        seed_count: usize,
        crash_count: usize,
        execs: u64,
    ) {
        let manifest = StoreManifest {
            fingerprint: self.fingerprint,
            os: self.os,
            board: self.board.clone(),
            seed: self.seed,
            vectored: self.vectored,
            snapshot: self.snapshot,
            mmio: self.mmio,
            cmplog: self.cmplog,
            coverage: self.coverage,
            consumed_hours,
            branches,
            replay_branches,
            seed_count,
            crash_count,
            execs,
        };
        let text = manifest.render();
        let path = self.dir.join("manifest.eof");
        self.write_counted(&path, &text);
    }
}

// ---------------------------------------------------------------------------
// Reading
// ---------------------------------------------------------------------------

/// A fully loaded store.
#[derive(Debug, Clone)]
pub struct LoadedStore {
    /// Where it was read from.
    pub dir: PathBuf,
    /// The manifest.
    pub manifest: StoreManifest,
    /// Seeds owned by the manifest's configuration, in ordinal order.
    pub seeds: Vec<PersistedSeed>,
    /// Crash classes owned by the manifest's configuration, sorted by
    /// dedup key.
    pub crashes: Vec<PersistedCrash>,
    /// The final coverage bitmap's edge ids, sorted ascending (empty
    /// when the coverage file was missing or corrupt — counted).
    pub coverage_edges: Vec<u64>,
    /// Entries skipped while loading.
    pub skips: SkipStats,
}

fn load_entry<T>(
    text: &str,
    fingerprint: u64,
    parse: impl FnOnce(&Record) -> Result<T, String>,
) -> Result<T, SkipKind> {
    let rec = Record::parse(text).map_err(|_| SkipKind::Corrupt)?;
    let schema = rec.u64("schema").map_err(|_| SkipKind::Corrupt)?;
    if schema != SCHEMA_VERSION as u64 {
        return Err(SkipKind::ForeignSchema);
    }
    if rec.hex_u64("fingerprint").map_err(|_| SkipKind::Corrupt)? != fingerprint {
        return Err(SkipKind::ForeignConfig);
    }
    parse(&rec).map_err(|_| SkipKind::Corrupt)
}

/// Files under `dir/sub` with extension `ext`, sorted by name for
/// deterministic load order.
fn entry_paths(dir: &Path, sub: &str, ext: &str) -> Vec<PathBuf> {
    let mut paths: Vec<PathBuf> = match std::fs::read_dir(dir.join(sub)) {
        Ok(entries) => entries
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.extension().and_then(|e| e.to_str()) == Some(ext))
            .collect(),
        Err(_) => Vec::new(),
    };
    paths.sort();
    paths
}

/// Open a complete store. Per-entry problems degrade to counted skips;
/// only a missing/corrupt/foreign manifest is an error.
pub fn open(dir: &Path) -> Result<LoadedStore, StoreError> {
    let manifest_path = dir.join("manifest.eof");
    let text = match std::fs::read_to_string(&manifest_path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Err(StoreError::MissingManifest(dir.to_path_buf()))
        }
        Err(e) => return Err(StoreError::Io(format!("{}: {e}", manifest_path.display()))),
    };
    let rec = Record::parse(&text).map_err(StoreError::Corrupt)?;
    let schema = rec.u64("schema").map_err(StoreError::Corrupt)? as u32;
    if schema != SCHEMA_VERSION {
        return Err(StoreError::ForeignSchema {
            found: schema,
            expected: SCHEMA_VERSION,
        });
    }
    let manifest = StoreManifest::from_record(&rec).map_err(StoreError::Corrupt)?;

    let mut skips = SkipStats::default();
    let mut seeds = Vec::new();
    for path in entry_paths(dir, "corpus", "seed") {
        let Ok(text) = std::fs::read_to_string(&path) else {
            skips.corrupt += 1;
            continue;
        };
        match load_entry(&text, manifest.fingerprint, PersistedSeed::from_record) {
            Ok(seed) => seeds.push(seed),
            Err(kind) => skips.bump(kind),
        }
    }
    seeds.sort_by_key(|s| s.ordinal);

    let mut crashes = Vec::new();
    for path in entry_paths(dir, "crashes", "crash") {
        let Ok(text) = std::fs::read_to_string(&path) else {
            skips.corrupt += 1;
            continue;
        };
        match load_entry(&text, manifest.fingerprint, PersistedCrash::from_record) {
            Ok(crash) => crashes.push(crash),
            Err(kind) => skips.bump(kind),
        }
    }
    crashes.sort_by(|a, b| a.key.cmp(&b.key));

    let coverage_edges = match std::fs::read_to_string(dir.join("coverage")) {
        Ok(text) => match load_entry(&text, manifest.fingerprint, |rec| {
            let joined = rec.get("edges")?;
            let mut edges: Vec<u64> = if joined.is_empty() {
                Vec::new()
            } else {
                joined
                    .split(',')
                    .map(|e| u64::from_str_radix(e, 16).map_err(|e| format!("edge: {e:?}")))
                    .collect::<Result<_, _>>()?
            };
            if edges.len() != rec.usize("count")? {
                return Err("edge count mismatch".to_string());
            }
            edges.sort_unstable();
            Ok(edges)
        }) {
            Ok(edges) => edges,
            Err(kind) => {
                skips.bump(kind);
                Vec::new()
            }
        },
        Err(_) => {
            skips.corrupt += 1;
            Vec::new()
        }
    };

    Ok(LoadedStore {
        dir: dir.to_path_buf(),
        manifest,
        seeds,
        crashes,
        coverage_edges,
        skips,
    })
}

/// Read whatever crash records a (possibly mid-flight, manifest-less)
/// store holds for `fingerprint`. The chaos harness uses this to prove
/// an interrupted campaign's incremental writes lost nothing.
pub fn scan_crashes(dir: &Path, fingerprint: u64) -> (Vec<PersistedCrash>, SkipStats) {
    let mut skips = SkipStats::default();
    let mut crashes = Vec::new();
    for path in entry_paths(dir, "crashes", "crash") {
        let Ok(text) = std::fs::read_to_string(&path) else {
            skips.corrupt += 1;
            continue;
        };
        match load_entry(&text, fingerprint, PersistedCrash::from_record) {
            Ok(crash) => crashes.push(crash),
            Err(kind) => skips.bump(kind),
        }
    }
    crashes.sort_by(|a, b| a.key.cmp(&b.key));
    (crashes, skips)
}

// ---------------------------------------------------------------------------
// Corpus exchange
// ---------------------------------------------------------------------------

/// What one [`Exchange::import`] call did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExchangeImport {
    /// Seeds newly added to the pool.
    pub imported: usize,
    /// Seeds already present under the same content hash.
    pub deduped: usize,
    /// Atomic writes that failed (counted, never fatal — the exchange
    /// inherits the store's persistence-must-not-kill rule).
    pub write_errors: usize,
}

/// A cross-campaign seed pool shared by every fabric cell.
///
/// Unlike a [`CampaignStore`], the exchange has many concurrent writers
/// (one per worker) and cross-configuration contents, so its safety
/// rests entirely on the content-addressed layout: every seed lives at
/// `corpus/<stable_hash>.seed`, written via the same temp-then-rename
/// protocol as the store. Two writers racing on *different* hashes
/// touch different files; two racing on the *same* hash rename
/// byte-identical content over each other (the hash names the bytes).
/// Either way the pool converges to the union of everything imported —
/// there is no read-modify-write anywhere on the seed path, which is
/// what the concurrent-writer property test pins down.
///
/// The `exchange.eof` marker is written manifest-last on every import
/// and records only schema + origin counts of the *writing* call; reads
/// never trust it for membership — membership is the directory scan.
#[derive(Debug, Clone)]
pub struct Exchange {
    dir: PathBuf,
}

impl Exchange {
    /// Open (creating if needed) an exchange rooted at `dir`.
    pub fn open(dir: &Path) -> Result<Exchange, StoreError> {
        std::fs::create_dir_all(dir.join("corpus"))
            .map_err(|e| StoreError::Io(format!("create exchange {}: {e}", dir.display())))?;
        Ok(Exchange {
            dir: dir.to_path_buf(),
        })
    }

    /// The exchange directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Import `seeds` from a cell whose config fingerprint is
    /// `fingerprint`, deduplicating by content hash. Safe to call from
    /// any number of writers concurrently.
    pub fn import(&self, seeds: &[PersistedSeed], fingerprint: u64) -> ExchangeImport {
        let mut stats = ExchangeImport::default();
        for seed in seeds {
            let path = self
                .dir
                .join("corpus")
                .join(format!("{:016x}.seed", seed.hash));
            if path.exists() {
                stats.deduped += 1;
                continue;
            }
            if write_atomic(&path, &seed.render(fingerprint)).is_err() {
                stats.write_errors += 1;
            } else {
                stats.imported += 1;
            }
        }
        // Manifest-last: the marker only lands after every seed write of
        // this call has landed, so a reader that sees it sees the seeds.
        let marker = render_record(&[
            ("schema", SCHEMA_VERSION.to_string()),
            ("fingerprint", format!("{fingerprint:016x}")),
            ("imported", stats.imported.to_string()),
            ("deduped", stats.deduped.to_string()),
        ]);
        if write_atomic(&self.dir.join("exchange.eof"), &marker).is_err() {
            stats.write_errors += 1;
        }
        stats
    }

    /// Load the pool: every parseable seed regardless of origin
    /// fingerprint (the exchange is cross-configuration by design),
    /// sorted by content hash. Torn or foreign-schema entries degrade
    /// to counted skips, exactly like a store read.
    pub fn load(&self) -> (Vec<PersistedSeed>, SkipStats) {
        let mut skips = SkipStats::default();
        let mut seeds = Vec::new();
        for path in entry_paths(&self.dir, "corpus", "seed") {
            let Ok(text) = std::fs::read_to_string(&path) else {
                skips.corrupt += 1;
                continue;
            };
            let parsed = Record::parse(&text)
                .map_err(|_| SkipKind::Corrupt)
                .and_then(|rec| {
                    match rec.u64("schema") {
                        Ok(s) if s == SCHEMA_VERSION as u64 => {}
                        Ok(_) => return Err(SkipKind::ForeignSchema),
                        Err(_) => return Err(SkipKind::Corrupt),
                    }
                    PersistedSeed::from_record(&rec).map_err(|_| SkipKind::Corrupt)
                });
            match parsed {
                Ok(seed) => seeds.push(seed),
                Err(kind) => skips.bump(kind),
            }
        }
        seeds.sort_by_key(|s| s.hash);
        (seeds, skips)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eof_speclang::prog::{ArgValue, Call};

    fn tmpdir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "eof-persist-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn prog(tag: &str, n: u64) -> Prog {
        Prog {
            mmio: vec![],
            calls: vec![Call {
                api: tag.to_string(),
                args: vec![ArgValue::Int(n)],
            }],
        }
    }

    fn config() -> FuzzerConfig {
        FuzzerConfig::eof(OsKind::FreeRtos, 7)
    }

    fn seed_entry(tag: &str, ordinal: u64) -> PersistedSeed {
        let prog = prog(tag, ordinal);
        PersistedSeed {
            hash: prog.stable_hash(),
            ordinal,
            new_edges: 3,
            crashed: false,
            replay_edges: 3,
            prog,
        }
    }

    fn crash_entry(msg: &str) -> PersistedCrash {
        let report = CrashReport {
            os: OsKind::FreeRtos,
            message: msg.to_string(),
            backtrace: vec!["frame_a".into(), "frame_b".into()],
            source: DetectionSource::ExceptionMonitor,
            prog: prog("crashy", 1),
            at_hours: 0.25,
            bug: None,
        };
        PersistedCrash::from_report(&report, true, false)
    }

    fn write_full_store(dir: &Path, cfg: &FuzzerConfig) -> CampaignStore {
        let mut store = CampaignStore::create(dir, cfg).unwrap();
        store.write_seed(&seed_entry("alpha", 0));
        store.write_seed(&seed_entry("beta", 1));
        store.record_crash(&crash_entry("fault at 0x40"));
        store.write_coverage(&[9, 4, 7]);
        store.write_manifest(0.5, 3, 3, 2, 1, 120);
        store
    }

    #[test]
    fn round_trips_a_full_store() {
        let dir = tmpdir("roundtrip");
        let cfg = config();
        write_full_store(&dir, &cfg);
        let loaded = open(&dir).unwrap();
        assert_eq!(loaded.manifest.fingerprint, config_fingerprint(&cfg));
        assert_eq!(loaded.manifest.os, OsKind::FreeRtos);
        assert_eq!(loaded.manifest.seed, 7);
        assert_eq!(loaded.manifest.consumed_hours, 0.5);
        assert_eq!(loaded.seeds.len(), 2);
        assert_eq!(loaded.seeds[0].ordinal, 0);
        assert_eq!(loaded.seeds[0].prog.calls[0].api, "alpha");
        assert_eq!(loaded.crashes.len(), 1);
        assert_eq!(loaded.crashes[0].message, "fault at 0x40");
        assert_eq!(loaded.crashes[0].backtrace, vec!["frame_a", "frame_b"]);
        assert!(loaded.crashes[0].confirmed);
        assert_eq!(loaded.coverage_edges, vec![4, 7, 9]);
        assert_eq!(loaded.skips, SkipStats::default());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_manifest_is_a_typed_error() {
        let dir = tmpdir("nomanifest");
        let mut store = CampaignStore::create(&dir, &config()).unwrap();
        store.record_crash(&crash_entry("interrupted"));
        // No finalize: the campaign "died" mid-flight.
        assert!(matches!(open(&dir), Err(StoreError::MissingManifest(_))));
        // But the incremental crash record is recoverable.
        let (crashes, skips) = scan_crashes(&dir, store.fingerprint());
        assert_eq!(crashes.len(), 1);
        assert_eq!(skips, SkipStats::default());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_entry_is_a_counted_skip() {
        let dir = tmpdir("truncated");
        let cfg = config();
        write_full_store(&dir, &cfg);
        // Truncate one seed mid-record.
        let victim = entry_paths(&dir, "corpus", "seed").remove(0);
        let text = std::fs::read_to_string(&victim).unwrap();
        std::fs::write(&victim, &text[..text.len() / 2]).unwrap();
        let loaded = open(&dir).unwrap();
        assert_eq!(loaded.seeds.len(), 1, "the intact seed still loads");
        assert_eq!(loaded.skips.corrupt, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flipped_schema_version_is_a_counted_skip() {
        let dir = tmpdir("schema-entry");
        let cfg = config();
        write_full_store(&dir, &cfg);
        let victim = entry_paths(&dir, "crashes", "crash").remove(0);
        let text = std::fs::read_to_string(&victim).unwrap();
        std::fs::write(&victim, text.replace("schema = 1", "schema = 99")).unwrap();
        let loaded = open(&dir).unwrap();
        assert!(loaded.crashes.is_empty());
        assert_eq!(loaded.skips.foreign_schema, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_manifest_schema_is_a_typed_error() {
        let dir = tmpdir("schema-manifest");
        write_full_store(&dir, &config());
        let path = dir.join("manifest.eof");
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, text.replace("schema = 1", "schema = 2")).unwrap();
        assert_eq!(
            open(&dir).unwrap_err(),
            StoreError::ForeignSchema {
                found: 2,
                expected: SCHEMA_VERSION
            }
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tampered_prog_bytes_fail_the_hash_check() {
        let dir = tmpdir("tamper");
        let cfg = config();
        write_full_store(&dir, &cfg);
        let victim = entry_paths(&dir, "corpus", "seed").remove(0);
        let text = std::fs::read_to_string(&victim).unwrap();
        // Flip one hex digit of the prog payload.
        let idx = text.rfind("prog = ").unwrap() + "prog = ".len() + 6;
        let mut bytes = text.into_bytes();
        bytes[idx] = if bytes[idx] == b'0' { b'1' } else { b'0' };
        std::fs::write(&victim, bytes).unwrap();
        let loaded = open(&dir).unwrap();
        assert_eq!(loaded.seeds.len(), 1);
        assert_eq!(loaded.skips.corrupt, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_writers_degrade_to_counted_foreign_skips() {
        // Two fleet jobs with different configs pointed at the SAME
        // directory: per-file atomicity + fingerprints mean whichever
        // manifest lands last owns the store; the other job's entries
        // load as counted foreign-config skips, never corruption.
        let dir = tmpdir("concurrent");
        let cfg_a = FuzzerConfig::eof(OsKind::FreeRtos, 7);
        let cfg_b = FuzzerConfig::eof(OsKind::FreeRtos, 8);
        assert_ne!(config_fingerprint(&cfg_a), config_fingerprint(&cfg_b));
        let mut store_a = CampaignStore::create(&dir, &cfg_a).unwrap();
        let mut store_b = CampaignStore::create(&dir, &cfg_b).unwrap();
        store_a.write_seed(&seed_entry("job-a", 0));
        store_a.record_crash(&crash_entry("fault in a"));
        store_b.write_seed(&seed_entry("job-b", 0));
        store_a.write_coverage(&[1, 2]);
        store_a.write_manifest(0.1, 2, 2, 1, 1, 10);
        store_b.write_coverage(&[3]);
        store_b.write_manifest(0.1, 1, 1, 1, 0, 10);
        let loaded = open(&dir).unwrap();
        assert_eq!(loaded.manifest.seed, 8, "job B's manifest landed last");
        assert_eq!(loaded.seeds.len(), 1);
        assert_eq!(loaded.seeds[0].prog.calls[0].api, "job-b");
        // Job A's seed + crash (and its coverage was overwritten, so it
        // does not count) show up as foreign-config skips.
        assert_eq!(loaded.skips.foreign_config, 2);
        assert_eq!(loaded.skips.corrupt, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sweep_removes_only_our_stale_entries() {
        let dir = tmpdir("sweep");
        let cfg = config();
        let mut store = write_full_store(&dir, &cfg);
        // A foreign writer's seed sits in the same directory.
        let foreign_cfg = FuzzerConfig::eof(OsKind::FreeRtos, 99);
        let mut foreign = CampaignStore::create(&dir, &foreign_cfg).unwrap();
        foreign.write_seed(&seed_entry("foreign", 0));
        let keep_seed = seed_entry("alpha", 0).hash;
        let keep_crash = crash_entry("fault at 0x40").key_hash;
        store.sweep_stale(&BTreeSet::from([keep_seed]), &BTreeSet::from([keep_crash]));
        // "beta" (ours, stale) is gone; "alpha" and the foreign seed stay.
        assert_eq!(entry_paths(&dir, "corpus", "seed").len(), 2);
        store.write_manifest(0.5, 3, 3, 1, 1, 120);
        let loaded = open(&dir).unwrap();
        assert_eq!(loaded.seeds.len(), 1);
        assert_eq!(loaded.seeds[0].prog.calls[0].api, "alpha");
        assert_eq!(loaded.skips.foreign_config, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn atomic_writes_leave_no_temp_droppings() {
        let dir = tmpdir("atomic");
        write_full_store(&dir, &config());
        let mut stack = vec![dir.clone()];
        while let Some(d) = stack.pop() {
            for entry in std::fs::read_dir(&d).unwrap().flatten() {
                let path = entry.path();
                if path.is_dir() {
                    stack.push(path);
                } else {
                    let name = path.file_name().unwrap().to_string_lossy().to_string();
                    assert!(!name.contains(".tmp-"), "temp file left behind: {name}");
                }
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprint_ignores_budget_but_not_knobs() {
        let base = config();
        let mut longer = base.clone();
        longer.budget_hours = 99.0;
        longer.snapshot_hours = 9.0;
        longer.persist = Some(PathBuf::from("/elsewhere"));
        assert_eq!(config_fingerprint(&base), config_fingerprint(&longer));
        let mut other = base.clone();
        other.max_calls += 1;
        assert_ne!(config_fingerprint(&base), config_fingerprint(&other));
        let mut other_seed = base.clone();
        other_seed.seed = 8;
        assert_ne!(config_fingerprint(&base), config_fingerprint(&other_seed));
    }

    #[test]
    fn cmplog_splits_the_fingerprint_and_absent_key_reads_pure() {
        let base = config();
        let mut on = base.clone();
        on.cmplog = true;
        assert_ne!(config_fingerprint(&base), config_fingerprint(&on));
        let dir = tmpdir("cmplog");
        let mut store = CampaignStore::create(&dir, &on).unwrap();
        store.write_manifest(0.1, 1, 1, 0, 0, 5);
        assert!(open(&dir).unwrap().manifest.cmplog);
        // Strip the key: a pre-cmplog manifest loads as a pure campaign.
        let path = dir.join("manifest.eof");
        let text = std::fs::read_to_string(&path).unwrap();
        let stripped: String = text
            .lines()
            .filter(|l| !l.starts_with("i2s"))
            .map(|l| format!("{l}\n"))
            .collect();
        std::fs::write(&path, stripped).unwrap();
        assert!(!open(&dir).unwrap().manifest.cmplog);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn coverage_backend_rides_the_manifest_outside_the_fingerprint() {
        let base = config();
        let mut trace = base.clone();
        trace.coverage_backend = CoverageKind::Trace;
        // Equivalence-gated knob: the store's contents are backend-
        // independent, so the fingerprint must not split on it.
        assert_eq!(config_fingerprint(&base), config_fingerprint(&trace));
        let dir = tmpdir("cov");
        let mut store = CampaignStore::create(&dir, &trace).unwrap();
        store.write_manifest(0.1, 1, 1, 0, 0, 5);
        assert_eq!(open(&dir).unwrap().manifest.coverage, CoverageKind::Trace);
        // Strip the key: a pre-trace manifest loads as a ring campaign.
        let path = dir.join("manifest.eof");
        let text = std::fs::read_to_string(&path).unwrap();
        let stripped: String = text
            .lines()
            .filter(|l| !l.starts_with("cov"))
            .map(|l| format!("{l}\n"))
            .collect();
        std::fs::write(&path, stripped).unwrap();
        assert_eq!(open(&dir).unwrap().manifest.coverage, CoverageKind::Ring);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fnv64_matches_reference_vectors() {
        // Pinned so stores stay readable across refactors.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
