//! Crash-reproducer minimisation.
//!
//! The paper's crash reports (Figure 6) show minimal triggering
//! sequences; this module produces them: given a crashing prog, it
//! repeatedly removes calls (fixing up resource references) and keeps a
//! removal when the same bug class still fires. Minimisation re-executes
//! on the live target, so hang-class crashes cost a restoration per
//! probe — the trial budget bounds that.

use crate::crash::CrashReport;
use crate::executor::Executor;
use eof_rtos::bugs::BugId;
use eof_speclang::prog::Prog;
use eof_telemetry as tel;

/// Outcome of a minimisation run.
#[derive(Debug, Clone)]
pub struct MinimizeResult {
    /// The minimised reproducer.
    pub prog: Prog,
    /// Crash report from the final confirming execution.
    pub crash: CrashReport,
    /// Executions spent minimising.
    pub trials: u32,
    /// Calls removed from the original.
    pub removed: usize,
}

/// Does a crash match the class we are minimising for? Bug-triaged
/// crashes match by bug id; untriaged ones by message class.
fn same_class(report: &CrashReport, bug: Option<BugId>, message: &str) -> bool {
    match bug {
        Some(b) => report.bug == Some(b),
        None => {
            let strip = |s: &str| -> String {
                s.chars()
                    .map(|c| if c.is_ascii_digit() { '#' } else { c })
                    .collect()
            };
            strip(&report.message) == strip(message)
        }
    }
}

/// Minimise `prog`, which is known to trigger `crash`, to the shortest
/// call sequence still triggering the same crash class. `max_trials`
/// bounds the target executions spent.
pub fn minimize(
    executor: &mut Executor,
    prog: &Prog,
    crash: &CrashReport,
    max_trials: u32,
) -> MinimizeResult {
    let span = tel::span_start("minimize", executor.now());
    let result = minimize_inner(executor, prog, crash, max_trials);
    tel::span_end(span, executor.now());
    tel::count("minimize.runs", 1);
    tel::count("minimize.trials", result.trials as u64);
    tel::count("minimize.calls_removed", result.removed as u64);
    result
}

fn minimize_inner(
    executor: &mut Executor,
    prog: &Prog,
    crash: &CrashReport,
    max_trials: u32,
) -> MinimizeResult {
    let bug = crash.bug;
    let message = crash.message.clone();
    let mut best = prog.clone();
    let mut best_crash = crash.clone();
    let mut trials = 0u32;

    // One pass of single-call removal, repeated until a fixpoint or the
    // budget runs out. Removing from the end first keeps producers (and
    // their consumers' references) intact longest.
    let mut progressed = true;
    while progressed && trials < max_trials {
        progressed = false;
        let mut idx = best.calls.len();
        while idx > 0 && trials < max_trials {
            idx -= 1;
            if best.calls.len() <= 1 {
                break;
            }
            let mut candidate = best.clone();
            candidate.remove_call(idx);
            if candidate.is_empty() || candidate == best {
                continue;
            }
            trials += 1;
            let outcome = executor.run_one(&candidate);
            match outcome.crash {
                Some(report) if same_class(&report, bug, &message) => {
                    best = candidate;
                    best_crash = report;
                    progressed = true;
                    // Re-clamp the cursor to the shrunken prog.
                    idx = idx.min(best.calls.len());
                }
                _ => {}
            }
        }
    }
    let removed = prog.calls.len() - best.calls.len();
    MinimizeResult {
        prog: best,
        crash: best_crash,
        trials,
        removed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FuzzerConfig;
    use eof_agent::{api_table_of, boot_machine};
    use eof_coverage::InstrumentMode;
    use eof_dap::{DebugTransport, LinkConfig};
    use eof_hal::BoardCatalog;
    use eof_monitors::{parse_kconfig, render_kconfig, StateRestoration};
    use eof_rtos::image::{build_image, ImageProfile};
    use eof_rtos::OsKind;
    use eof_speclang::prog::{ArgValue, Call};

    fn executor(os: OsKind) -> Executor {
        let board = BoardCatalog::qemu_virt_arm();
        let mut config = FuzzerConfig::eof(os, 1);
        config.board = board.clone();
        let image = build_image(os, ImageProfile::FullSystem, &InstrumentMode::Full);
        let machine = boot_machine(
            board.clone(),
            os,
            ImageProfile::FullSystem,
            &InstrumentMode::Full,
        );
        let kconfig = parse_kconfig(&render_kconfig("arm", machine.flash().table())).unwrap();
        let restoration = StateRestoration::from_kconfig(
            &kconfig,
            board.flash_size,
            vec![("kernel".into(), image)],
        )
        .unwrap();
        Executor::new(
            DebugTransport::attach(machine, LinkConfig::default()),
            config,
            api_table_of(os),
            restoration,
        )
        .unwrap()
    }

    fn call(api: &str, args: Vec<ArgValue>) -> Call {
        Call {
            api: api.into(),
            args,
        }
    }

    #[test]
    fn strips_noise_around_a_single_call_bug() {
        let mut ex = executor(OsKind::FreeRtos);
        // Bug #13 needs only load_partitions(3, 0x10); bury it in noise.
        let noisy = Prog {
            mmio: vec![],
            calls: vec![
                call("vTaskTickIncrement", vec![ArgValue::Int(2)]),
                call("pvPortMalloc", vec![ArgValue::Int(64)]),
                call(
                    "load_partitions",
                    vec![ArgValue::Int(3), ArgValue::Int(0x10)],
                ),
                call("json_parse", vec![ArgValue::Buffer(b"[]".to_vec())]),
            ],
        };
        let outcome = ex.run_one(&noisy);
        let crash = outcome.crash.expect("noisy prog crashes");
        let min = minimize(&mut ex, &noisy, &crash, 64);
        assert_eq!(min.prog.calls.len(), 1, "{}", min.prog);
        assert_eq!(min.prog.calls[0].api, "load_partitions");
        assert_eq!(min.crash.bug.map(|b| b.number()), Some(13));
        assert_eq!(min.removed, 3);
        assert!(min.trials > 0);
    }

    #[test]
    fn keeps_required_resource_chains() {
        let mut ex = executor(OsKind::RtThread);
        // Bug #10's chain (create → delete → send) plus two noise calls.
        let noisy = Prog {
            mmio: vec![],
            calls: vec![
                call("rt_tick_increase", vec![ArgValue::Int(1)]),
                call("rt_event_create", vec![ArgValue::CString("evt".into())]),
                call("rt_malloc", vec![ArgValue::Int(32)]),
                call("rt_event_delete", vec![ArgValue::ResourceRef(1)]),
                call(
                    "rt_event_send",
                    vec![
                        ArgValue::ResourceRef(1),
                        ArgValue::Int((u32::MAX >> 6) as u64),
                    ],
                ),
            ],
        };
        let outcome = ex.run_one(&noisy);
        let crash = outcome.crash.expect("chain crashes");
        assert_eq!(crash.bug.map(|b| b.number()), Some(10));
        let min = minimize(&mut ex, &noisy, &crash, 64);
        // The three-call dependency chain must survive.
        assert_eq!(min.prog.calls.len(), 3, "{}", min.prog);
        let apis: Vec<&str> = min.prog.calls.iter().map(|c| c.api.as_str()).collect();
        assert_eq!(
            apis,
            ["rt_event_create", "rt_event_delete", "rt_event_send"]
        );
        assert_eq!(min.crash.bug.map(|b| b.number()), Some(10));
    }

    #[test]
    fn trial_budget_is_respected() {
        let mut ex = executor(OsKind::FreeRtos);
        let noisy = Prog {
            mmio: vec![],
            calls: (0..6)
                .map(|_| call("pvPortMalloc", vec![ArgValue::Int(64)]))
                .chain(std::iter::once(call(
                    "load_partitions",
                    vec![ArgValue::Int(3), ArgValue::Int(0x10)],
                )))
                .collect(),
        };
        let outcome = ex.run_one(&noisy);
        let crash = outcome.crash.expect("crashes");
        let min = minimize(&mut ex, &noisy, &crash, 3);
        assert!(min.trials <= 3);
    }

    #[test]
    fn budget_exhaustion_still_returns_confirmed_reproducer() {
        // When the trial budget runs out mid-search, the returned prog
        // must be one that actually re-executed and crashed with the
        // original class — never an unverified speculative removal. The
        // chain prog is the adversarial case: most single-call removals
        // break the crash, so a tiny budget strands the search early.
        let mut ex = executor(OsKind::RtThread);
        let noisy = Prog {
            mmio: vec![],
            calls: vec![
                call("rt_tick_increase", vec![ArgValue::Int(1)]),
                call("rt_event_create", vec![ArgValue::CString("evt".into())]),
                call("rt_malloc", vec![ArgValue::Int(32)]),
                call("rt_event_delete", vec![ArgValue::ResourceRef(1)]),
                call(
                    "rt_event_send",
                    vec![
                        ArgValue::ResourceRef(1),
                        ArgValue::Int((u32::MAX >> 6) as u64),
                    ],
                ),
            ],
        };
        let outcome = ex.run_one(&noisy);
        let crash = outcome.crash.expect("chain crashes");
        let bug = crash.bug;
        assert!(bug.is_some());
        for budget in [1u32, 2, 3] {
            let min = minimize(&mut ex, &noisy, &crash, budget);
            assert!(min.trials <= budget);
            // The returned crash report came from a confirming run.
            assert_eq!(min.crash.bug, bug, "budget {budget}");
            // And the reproducer itself still fires when re-executed.
            let confirm = ex.run_one(&min.prog);
            let confirmed = confirm.crash.expect("returned reproducer must still crash");
            assert_eq!(confirmed.bug, bug, "budget {budget}: {}", min.prog);
        }
    }
}
