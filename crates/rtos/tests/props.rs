//! Property tests of the kernel-model subsystems.

use eof_hal::{Bus, Endianness};
use eof_rtos::ctx::{CovState, ExecCtx};
use eof_rtos::subsys::ipc::MsgQueue;
use eof_rtos::subsys::sched::{Policy, Scheduler, TaskState};
use proptest::prelude::*;
use std::collections::VecDeque;

fn with_ctx<R>(f: impl FnOnce(&mut ExecCtx<'_>) -> R) -> R {
    let mut bus = Bus::new(0x2000_0000, 0x4000, Endianness::Little);
    let mut cov = CovState::uninstrumented();
    let mut ctx = ExecCtx::new(&mut bus, &mut cov);
    f(&mut ctx)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn msgq_matches_reference_model(
        ops in proptest::collection::vec((any::<bool>(), proptest::collection::vec(any::<u8>(), 0..20)), 1..60)
    ) {
        with_ctx(|ctx| {
            let mut q = MsgQueue::new(16, 8);
            let mut model: VecDeque<Vec<u8>> = VecDeque::new();
            for (is_put, msg) in ops {
                if is_put {
                    let ok = q.put(ctx, "p::q", &msg).is_ok();
                    let model_ok = msg.len() <= 16 && model.len() < 8;
                    prop_assert_eq!(ok, model_ok);
                    if model_ok {
                        model.push_back(msg);
                    }
                } else {
                    let got = q.get(ctx, "p::q").ok();
                    prop_assert_eq!(got, model.pop_front());
                }
                prop_assert_eq!(q.len(), model.len());
            }
            Ok(())
        })?;
    }

    #[test]
    fn scheduler_has_at_most_one_running_task(
        ops in proptest::collection::vec((0u8..6, any::<u8>()), 1..80)
    ) {
        with_ctx(|ctx| {
            let mut s = Scheduler::new(Policy::TickRoundRobin, 8, 31, 16, 128);
            let mut handles: Vec<u32> = Vec::new();
            for (op, v) in ops {
                match op {
                    0 => {
                        if let Ok(h) = s.create(ctx, "p::s", "t", v % 32, 256) {
                            handles.push(h);
                        }
                    }
                    1 => {
                        if !handles.is_empty() {
                            let h = handles.remove(v as usize % handles.len());
                            let _ = s.delete(ctx, "p::s", h);
                        }
                    }
                    2 => {
                        if !handles.is_empty() {
                            let h = handles[v as usize % handles.len()];
                            let _ = s.suspend(ctx, "p::s", h);
                        }
                    }
                    3 => {
                        if !handles.is_empty() {
                            let h = handles[v as usize % handles.len()];
                            let _ = s.resume(ctx, "p::s", h);
                        }
                    }
                    4 => {
                        if !handles.is_empty() {
                            let h = handles[v as usize % handles.len()];
                            let _ = s.delay(ctx, "p::s", h, (v % 8) as u64);
                        }
                    }
                    _ => s.tick(ctx, "p::s"),
                }
                // Invariant: at most one task is Running, and it is the
                // one the scheduler reports.
                let running: Vec<u32> = handles
                    .iter()
                    .copied()
                    .filter(|&h| s.task(h).map(|t| t.state == TaskState::Running).unwrap_or(false))
                    .collect();
                prop_assert!(running.len() <= 1);
                if let Some(&h) = running.first() {
                    prop_assert_eq!(s.running(), Some(h));
                }
            }
            Ok(())
        })?;
    }

    #[test]
    fn image_build_is_deterministic_and_parseable(os_idx in 0usize..5, full in any::<bool>()) {
        use eof_coverage::InstrumentMode;
        use eof_rtos::image::{build_image, parse_image, ImageProfile};
        let os = eof_rtos::OsKind::ALL[os_idx];
        let mode = if full { InstrumentMode::Full } else { InstrumentMode::None };
        let a = build_image(os, ImageProfile::FullSystem, &mode);
        let b = build_image(os, ImageProfile::FullSystem, &mode);
        prop_assert_eq!(&a, &b);
        let info = parse_image(&a).unwrap();
        prop_assert_eq!(info.os, os);
    }
}
