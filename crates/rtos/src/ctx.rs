//! Kernel execution context: bus access, cycle metering and coverage hooks.
//!
//! Kernel model code runs with an [`ExecCtx`] in hand. Its `cov` methods
//! are the reproduction's `__sanitizer_cov_trace_cmp()`: when the build's
//! instrumentation mode covers the site's module, the hook burns the
//! instrumentation cycles and appends the edge id to the on-device
//! coverage buffer; when the buffer fills, a flag is raised so the agent
//! traps at `_kcmp_buf_full` for the host to drain (paper §4.5.1).
//!
//! Instrumentation cycles are charged through
//! [`eof_hal::Bus::charge_instr`]: campaign budgets and the throughput
//! A/B see the slowdown, but the core-visible clock does not, so an
//! instrumented build and a plain build execute identical
//! target-visible histories. Independently of instrumentation, every
//! hook first offers the branch to the bus's hardware trace unit —
//! which captures it even on a fully uninstrumented image, at zero
//! core cycles.

use eof_coverage::{
    edge_id, CmpRecord, CmpRegion, CovRegion, InstrumentCost, InstrumentMode, RecordOutcome,
};
use eof_hal::Bus;

/// Per-boot coverage state shared between the agent and the kernel.
#[derive(Debug, Clone)]
pub struct CovState {
    /// What the image build instrumented.
    pub mode: InstrumentMode,
    /// Where the on-device buffer lives (None when uninstrumented).
    pub region: Option<CovRegion>,
    /// Raised when the buffer filled; cleared after the host drains.
    pub buffer_full: bool,
    /// Total coverage callback executions (instrumentation overhead
    /// accounting).
    pub hits: u64,
    /// Records dropped because the buffer was full.
    pub dropped: u64,
    /// Suppress *every* coverage channel, the trace unit included.
    /// For internal kernel probes that model inlined, specialised
    /// helper code: its branches are not modelled edge sites, so
    /// neither the ring nor the silicon's packet engine may see them
    /// — otherwise the two acquisition backends could never observe
    /// identical campaigns.
    pub silent: bool,
    /// The comparison-operand ring (cmplog channel), if the layout has
    /// one. It boots disarmed — hooks stay free until a host arms it.
    pub cmp_region: Option<CmpRegion>,
    /// Comparison hook executions while armed.
    pub cmp_hits: u64,
    /// Comparison records dropped (ring full or broken region).
    pub cmp_dropped: u64,
}

impl CovState {
    /// State for an uninstrumented image.
    pub fn uninstrumented() -> Self {
        CovState {
            mode: InstrumentMode::None,
            region: None,
            buffer_full: false,
            hits: 0,
            dropped: 0,
            silent: false,
            cmp_region: None,
            cmp_hits: 0,
            cmp_dropped: 0,
        }
    }

    /// State for a silent internal probe: no channel — ring, counters
    /// or trace packets — observes anything executed under it.
    pub fn silent_probe() -> Self {
        let mut cov = Self::uninstrumented();
        cov.silent = true;
        cov
    }

    /// State for an instrumented image with a buffer at `region`.
    pub fn instrumented(mode: InstrumentMode, region: CovRegion) -> Self {
        CovState {
            mode,
            region: Some(region),
            buffer_full: false,
            hits: 0,
            dropped: 0,
            silent: false,
            cmp_region: None,
            cmp_hits: 0,
            cmp_dropped: 0,
        }
    }

    /// Attach the comparison-operand ring (still disarmed until a host
    /// writes its capacity word).
    pub fn with_cmp(mut self, region: CmpRegion) -> Self {
        self.cmp_region = Some(region);
        self
    }

    /// Whether a site in `module` carries a callback in this build.
    pub fn module_active(&self, module: &str) -> bool {
        match &self.mode {
            InstrumentMode::None => false,
            InstrumentMode::Full => true,
            InstrumentMode::Modules(mods) => mods.iter().any(|m| m == module),
        }
    }
}

/// The context kernel code executes in.
pub struct ExecCtx<'a> {
    /// Bus (RAM, UART, clock).
    pub bus: &'a mut Bus,
    /// Coverage state.
    pub cov: &'a mut CovState,
}

impl<'a> ExecCtx<'a> {
    /// Build a context.
    pub fn new(bus: &'a mut Bus, cov: &'a mut CovState) -> Self {
        ExecCtx { bus, cov }
    }

    /// Charge `n` cycles of kernel work.
    pub fn charge(&mut self, n: u64) {
        self.bus.charge(n);
    }

    /// Coverage hook at a static site. Site names are fully qualified:
    /// `"<os>::<module>::<function>::<branch>"`. Models a direct branch
    /// for the trace unit.
    pub fn cov(&mut self, site: &'static str) {
        self.cov_id(site, edge_id(site), false);
    }

    /// Coverage hook for a *variant* site: a family of edges derived from
    /// one static name (e.g. one edge per parser state). Cheap — no
    /// allocation — and deterministic. Models an indirect branch (the
    /// target depends on runtime data), so the trace unit emits an
    /// address packet rather than a direct-branch delta.
    pub fn cov_var(&mut self, site: &'static str, variant: u64) {
        // Mix the variant in with a splitmix-style finaliser so variants
        // of one site do not collide with other sites' base ids.
        let mut v = edge_id(site) ^ variant.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        v ^= v >> 30;
        v = v.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        self.cov_id(site, v, true);
    }

    fn cov_id(&mut self, site: &str, id: u64, indirect: bool) {
        if self.cov.silent {
            return;
        }
        // The hardware trace unit sees every branch the core retires,
        // before and regardless of what the image compiled in — tracing
        // is the silicon's job, not the image's — and at zero core
        // cycles: the packet engine runs in the debug power domain.
        self.bus.trace.emit(id, indirect);
        let module = site.split("::").nth(1).unwrap_or("");
        if !self.cov.module_active(module) {
            return;
        }
        self.cov.hits += 1;
        self.bus.charge_instr(InstrumentCost::CYCLES_PER_HIT);
        if let Some(region) = self.cov.region {
            match region.record(&mut self.bus.ram, self.bus.endianness, id) {
                Ok(RecordOutcome::Stored) => {}
                Ok(RecordOutcome::Full) => self.cov.buffer_full = true,
                Ok(RecordOutcome::Dropped) => self.cov.dropped += 1,
                // A broken region (misconfigured address) degrades to
                // counting only; never crashes the host.
                Err(_) => self.cov.dropped += 1,
            }
        }
    }

    /// Comparison hook at a static site (the planted `trace_cmp`
    /// callback). Free unless the site's module is instrumented AND the
    /// layout has a cmp ring AND a host armed it — so an image with the
    /// ring laid out but nobody listening costs zero cycles, and the
    /// `EOF_CMPLOG=0` campaign is bit-identical to a pre-cmplog one.
    pub fn cmp(&mut self, site: &'static str, width: u32, lhs: u64, rhs: u64) {
        let module = site.split("::").nth(1).unwrap_or("");
        if !self.cov.module_active(module) {
            return;
        }
        let Some(region) = self.cov.cmp_region else {
            return;
        };
        let e = self.bus.endianness;
        if !region.armed(&self.bus.ram, e) {
            return;
        }
        self.cov.cmp_hits += 1;
        self.bus.charge_instr(InstrumentCost::CYCLES_PER_HIT);
        let id = (edge_id(site) & 0xffff_ffff) as u32;
        let rec = CmpRecord {
            site: id,
            width,
            lhs,
            rhs,
        };
        match region.record(&mut self.bus.ram, e, rec) {
            Ok(RecordOutcome::Stored) | Ok(RecordOutcome::Full) => {}
            // Ring full or broken region: degrade to counting only.
            Ok(RecordOutcome::Dropped) | Err(_) => self.cov.cmp_dropped += 1,
        }
    }

    /// Emit a kernel log line over the UART.
    pub fn klog(&mut self, line: &str) {
        self.bus.charge(1 + line.len() as u64 / 8);
        self.bus.uart.tx_line(line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eof_hal::Endianness;

    fn bus() -> Bus {
        Bus::new(0x2000_0000, 0x4000, Endianness::Little)
    }

    #[test]
    fn uninstrumented_hooks_are_free() {
        let mut b = bus();
        let mut cov = CovState::uninstrumented();
        let before = b.now();
        let mut ctx = ExecCtx::new(&mut b, &mut cov);
        ctx.cov("os::kernel::f::a");
        assert_eq!(cov.hits, 0);
        assert_eq!(b.now(), before);
    }

    #[test]
    fn full_mode_records_and_charges() {
        let mut b = bus();
        let region = CovRegion::new(0x2000_0100, 8);
        region.init(&mut b.ram, Endianness::Little).unwrap();
        let mut cov = CovState::instrumented(InstrumentMode::Full, region);
        let before = b.now();
        {
            let mut ctx = ExecCtx::new(&mut b, &mut cov);
            ctx.cov("os::kernel::f::a");
            ctx.cov("os::kernel::f::b");
        }
        assert_eq!(cov.hits, 2);
        assert!(b.now() > before);
        assert_eq!(region.count(&b.ram, Endianness::Little).unwrap(), 2);
    }

    #[test]
    fn module_confinement_filters_sites() {
        let mut b = bus();
        let region = CovRegion::new(0x2000_0100, 8);
        region.init(&mut b.ram, Endianness::Little).unwrap();
        let mut cov = CovState::instrumented(InstrumentMode::Modules(vec!["json".into()]), region);
        {
            let mut ctx = ExecCtx::new(&mut b, &mut cov);
            ctx.cov("os::json::parse::digit");
            ctx.cov("os::kernel::sched::tick");
        }
        assert_eq!(cov.hits, 1);
    }

    #[test]
    fn buffer_full_raises_flag() {
        let mut b = bus();
        let region = CovRegion::new(0x2000_0100, 2);
        region.init(&mut b.ram, Endianness::Little).unwrap();
        let mut cov = CovState::instrumented(InstrumentMode::Full, region);
        {
            let mut ctx = ExecCtx::new(&mut b, &mut cov);
            ctx.cov("os::m::f::a");
            assert!(!ctx.cov.buffer_full);
            ctx.cov("os::m::f::b");
            assert!(ctx.cov.buffer_full);
            ctx.cov("os::m::f::c");
        }
        assert_eq!(cov.dropped, 1);
    }

    #[test]
    fn variant_sites_are_distinct() {
        let mut b = bus();
        let region = CovRegion::new(0x2000_0100, 16);
        region.init(&mut b.ram, Endianness::Little).unwrap();
        let mut cov = CovState::instrumented(InstrumentMode::Full, region);
        {
            let mut ctx = ExecCtx::new(&mut b, &mut cov);
            for k in 0..4 {
                ctx.cov_var("os::json::parse::state", k);
            }
        }
        let raw = b
            .ram
            .slice(0x2000_0100, region.drain_len())
            .unwrap()
            .to_vec();
        let (edges, _) = region.parse_drain(&raw, Endianness::Little);
        let mut dedup = edges.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 4, "all four variants must be distinct edges");
    }

    #[test]
    fn disarmed_cmp_hook_is_free() {
        let mut b = bus();
        let region = CovRegion::new(0x2000_0100, 8);
        region.init(&mut b.ram, Endianness::Little).unwrap();
        let cmp = CmpRegion::new(0x2000_0300, 8);
        cmp.init(&mut b.ram, Endianness::Little).unwrap();
        let mut cov = CovState::instrumented(InstrumentMode::Full, region).with_cmp(cmp);
        let before = b.now();
        ExecCtx::new(&mut b, &mut cov).cmp("os::m::f::guard", 4, 7, 0xdead_beef);
        assert_eq!(cov.cmp_hits, 0, "disarmed ring must not count hits");
        assert_eq!(b.now(), before, "disarmed hook must be free");
        assert_eq!(cmp.count(&b.ram, Endianness::Little).unwrap(), 0);
    }

    #[test]
    fn armed_cmp_hook_records_and_charges() {
        let mut b = bus();
        let region = CovRegion::new(0x2000_0100, 8);
        region.init(&mut b.ram, Endianness::Little).unwrap();
        let cmp = CmpRegion::new(0x2000_0300, 8);
        cmp.init(&mut b.ram, Endianness::Little).unwrap();
        cmp.arm(&mut b.ram, Endianness::Little).unwrap();
        let mut cov =
            CovState::instrumented(InstrumentMode::Modules(vec!["m".into()]), region).with_cmp(cmp);
        let before = b.now();
        {
            let mut ctx = ExecCtx::new(&mut b, &mut cov);
            ctx.cmp("os::m::f::guard", 4, 7, 0xdead_beef);
            // An uninstrumented module stays silent even when armed.
            ctx.cmp("other::quiet::f::guard", 8, 1, 2);
        }
        assert_eq!(cov.cmp_hits, 1);
        assert!(b.now() > before);
        let raw = b.ram.slice(0x2000_0300, cmp.drain_len()).unwrap().to_vec();
        let (recs, _) = cmp.parse_drain(&raw, Endianness::Little);
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].width, 4);
        assert_eq!(recs[0].lhs, 7);
        assert_eq!(recs[0].rhs, 0xdead_beef);
        assert_eq!(
            recs[0].site,
            (edge_id("os::m::f::guard") & 0xffff_ffff) as u32
        );
    }

    #[test]
    fn full_cmp_ring_counts_drops() {
        let mut b = bus();
        let region = CovRegion::new(0x2000_0100, 8);
        region.init(&mut b.ram, Endianness::Little).unwrap();
        let cmp = CmpRegion::new(0x2000_0300, 2);
        cmp.init(&mut b.ram, Endianness::Little).unwrap();
        cmp.arm(&mut b.ram, Endianness::Little).unwrap();
        let mut cov = CovState::instrumented(InstrumentMode::Full, region).with_cmp(cmp);
        {
            let mut ctx = ExecCtx::new(&mut b, &mut cov);
            ctx.cmp("os::m::f::a", 4, 1, 2);
            ctx.cmp("os::m::f::b", 4, 3, 4);
            ctx.cmp("os::m::f::c", 4, 5, 6);
        }
        assert_eq!(cov.cmp_hits, 3, "drops still count as hits (cycles burned)");
        assert_eq!(cov.cmp_dropped, 1);
        assert_eq!(cmp.count(&b.ram, Endianness::Little).unwrap(), 2);
    }

    #[test]
    fn instrumentation_charges_burn_budget_but_not_core_time() {
        let mut b = bus();
        let region = CovRegion::new(0x2000_0100, 8);
        region.init(&mut b.ram, Endianness::Little).unwrap();
        let mut cov = CovState::instrumented(InstrumentMode::Full, region);
        let core_before = b.core_now();
        {
            let mut ctx = ExecCtx::new(&mut b, &mut cov);
            ctx.cov("os::kernel::f::a");
            ctx.cov("os::kernel::f::b");
        }
        // The campaign clock moved (overheads A/B sees the slowdown)…
        assert_eq!(b.now(), 2 * InstrumentCost::CYCLES_PER_HIT);
        // …but the kernel-visible clock did not: an instrumented image
        // and a plain one run identical target histories.
        assert_eq!(b.core_now(), core_before);
    }

    #[test]
    fn armed_trace_captures_uninstrumented_hooks_for_free() {
        let mut b = bus();
        b.trace.set_enabled(true);
        let mut cov = CovState::uninstrumented();
        let before = b.now();
        {
            let mut ctx = ExecCtx::new(&mut b, &mut cov);
            ctx.cov("os::kernel::f::a");
            ctx.cov_var("os::json::parse::state", 3);
            ctx.cov("os::kernel::f::a");
        }
        // Trace is the hardware's job, not the image's: no hook fired,
        // no cycle burned, yet every branch is in the FIFO.
        assert_eq!(cov.hits, 0);
        assert_eq!(b.now(), before);
        assert_eq!(b.trace.packets(), 3);
        let (bytes, lost) = b.trace.drain();
        assert_eq!(lost, 0);
        let mut d = eof_coverage::TraceDecoder::new();
        let edges = d.feed(&bytes);
        assert_eq!(edges.len(), 3);
        assert_eq!(edges[0], edges[2]);
        assert_eq!(edges[0], edge_id("os::kernel::f::a"));
    }

    #[test]
    fn trace_and_ring_see_the_same_hit_sequence() {
        let mut b = bus();
        b.trace.set_enabled(true);
        let region = CovRegion::new(0x2000_0100, 32);
        region.init(&mut b.ram, Endianness::Little).unwrap();
        let mut cov = CovState::instrumented(InstrumentMode::Full, region);
        {
            let mut ctx = ExecCtx::new(&mut b, &mut cov);
            ctx.cov("os::m::f::a");
            ctx.cov_var("os::m::g::state", 1);
            ctx.cov_var("os::m::g::state", 2);
            ctx.cov("os::m::f::a");
        }
        let raw = b
            .ram
            .slice(0x2000_0100, region.drain_len())
            .unwrap()
            .to_vec();
        let (ring_edges, _) = region.parse_drain(&raw, Endianness::Little);
        let (bytes, _) = b.trace.drain();
        let mut d = eof_coverage::TraceDecoder::new();
        let trace_edges = d.feed(&bytes);
        assert_eq!(trace_edges, ring_edges, "both channels record every hit in order");
    }

    #[test]
    fn klog_reaches_uart() {
        let mut b = bus();
        let mut cov = CovState::uninstrumented();
        ExecCtx::new(&mut b, &mut cov).klog("I (0) kernel: up");
        assert_eq!(b.uart.drain(), b"I (0) kernel: up\n");
    }
}
