//! OS image building and boot-time validation.
//!
//! "Compiling" a kernel model produces a flashable byte image whose size
//! is the OS's real-world binary size (paper §5.5.1) plus the
//! instrumentation overhead of the chosen [`InstrumentMode`]. The image
//! carries a self-describing header and a trailing checksum; the
//! bootloader (the agent's firmware loader) validates both, so flash
//! corruption genuinely produces boot failures that only a reflash cures.
//!
//! Layout (all multi-byte fields little-endian, fixed regardless of
//! target endianness — this is the flash format, not a bus format):
//!
//! ```text
//! 0..4   magic "EIMG"
//! 4      os byte
//! 5      profile byte (0 = full system, 1 = app-level build)
//! 6      mode byte (0 none, 1 full, 2 modules)
//! 7      module count (mode 2 only; else 0)
//! then   per module: len u8, name bytes
//! then   code_size u32
//! then   code bytes (deterministic filler)
//! last 8 FNV-1a checksum of everything before it
//! ```

use crate::kernel::OsKind;
use eof_coverage::{InstrumentCost, InstrumentMode};
use eof_hal::flash::fnv1a;
use eof_hal::HalError;

/// Image magic bytes.
pub const IMAGE_MAGIC: [u8; 4] = *b"EIMG";

/// Build profile: how much of the OS is linked in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ImageProfile {
    /// The full OS (Table 3 / Figure 7 campaigns).
    FullSystem,
    /// A trimmed application build (Table 4 / Figure 8: HTTP + JSON on a
    /// small STM32) — roughly a quarter of the full image.
    AppLevel,
}

impl ImageProfile {
    fn to_byte(self) -> u8 {
        match self {
            ImageProfile::FullSystem => 0,
            ImageProfile::AppLevel => 1,
        }
    }

    fn from_byte(b: u8) -> Option<Self> {
        match b {
            0 => Some(ImageProfile::FullSystem),
            1 => Some(ImageProfile::AppLevel),
            _ => None,
        }
    }
}

/// Uninstrumented full-system image size per OS, in bytes — the §5.5.1
/// baselines (NuttX 3.36 MB, RT-Thread 2.53 MB, Zephyr 0.803 MB,
/// FreeRTOS 2.825 MB; PoK is not reported, estimated).
pub const OS_BASE_IMAGE_BYTES: [(OsKind, u64); 5] = [
    (OsKind::FreeRtos, 2_825_000),
    (OsKind::RtThread, 2_530_000),
    (OsKind::NuttX, 3_360_000),
    (OsKind::Zephyr, 803_000),
    (OsKind::PokOs, 1_200_000),
];

/// Declared total instrumentable branch sites of each full OS build.
/// Chosen so site-count × per-site bytes reproduces the paper's §5.5.1
/// image-size overheads (4.32 % / 7.11 % / 4.76 % / 9.58 %).
pub const OS_TOTAL_BRANCH_SITES: [(OsKind, usize); 5] = [
    (OsKind::FreeRtos, 8_700),
    (OsKind::RtThread, 12_800),
    (OsKind::NuttX, 11_380),
    (OsKind::Zephyr, 5_450),
    (OsKind::PokOs, 6_000),
];

/// Base image size for an OS.
pub fn base_bytes(os: OsKind) -> u64 {
    OS_BASE_IMAGE_BYTES
        .iter()
        .find(|(k, _)| *k == os)
        .map(|(_, b)| *b)
        .expect("all OS kinds present")
}

/// Declared branch sites for an OS.
pub fn total_sites(os: OsKind) -> usize {
    OS_TOTAL_BRANCH_SITES
        .iter()
        .find(|(k, _)| *k == os)
        .map(|(_, s)| *s)
        .expect("all OS kinds present")
}

/// Instrumented sites under a mode. Module modes instrument the fraction
/// of the image the modules represent — modelled as an even split over a
/// nominal 20 modules per OS.
pub fn instrumented_sites(os: OsKind, profile: ImageProfile, mode: &InstrumentMode) -> usize {
    let total = match profile {
        ImageProfile::FullSystem => total_sites(os),
        ImageProfile::AppLevel => total_sites(os) / 4,
    };
    match mode {
        InstrumentMode::None => 0,
        InstrumentMode::Full => total,
        InstrumentMode::Modules(mods) => (total / 20) * mods.len().min(20),
    }
}

/// Parsed image metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImageInfo {
    /// OS in the image.
    pub os: OsKind,
    /// Build profile.
    pub profile: ImageProfile,
    /// Instrumentation the image was built with.
    pub mode: InstrumentMode,
    /// Code section size in bytes.
    pub code_size: u32,
    /// Total image size in bytes.
    pub total_size: usize,
}

/// Build a flashable image.
pub fn build_image(os: OsKind, profile: ImageProfile, mode: &InstrumentMode) -> Vec<u8> {
    let base = match profile {
        ImageProfile::FullSystem => base_bytes(os),
        ImageProfile::AppLevel => base_bytes(os) / 4,
    };
    let sites = instrumented_sites(os, profile, mode) as u64;
    let overhead = if sites > 0 {
        sites * InstrumentCost::IMAGE_BYTES_PER_SITE + InstrumentCost::RUNTIME_BYTES
    } else {
        0
    };
    let code_size = (base + overhead) as u32;

    let mut out = Vec::with_capacity(code_size as usize + 64);
    out.extend_from_slice(&IMAGE_MAGIC);
    out.push(os.to_byte());
    out.push(profile.to_byte());
    match mode {
        InstrumentMode::None => {
            out.push(0);
            out.push(0);
        }
        InstrumentMode::Full => {
            out.push(1);
            out.push(0);
        }
        InstrumentMode::Modules(mods) => {
            out.push(2);
            out.push(mods.len() as u8);
            for m in mods {
                out.push(m.len() as u8);
                out.extend_from_slice(m.as_bytes());
            }
        }
    }
    out.extend_from_slice(&code_size.to_le_bytes());
    // Deterministic code filler: a cheap xorshift keyed by the OS.
    let mut x = fnv1a(os.short().as_bytes()) | 1;
    let mut remaining = code_size as usize;
    while remaining >= 8 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        out.extend_from_slice(&x.to_le_bytes());
        remaining -= 8;
    }
    out.extend(std::iter::repeat_n(0xA5u8, remaining));
    let cs = fnv1a(&out);
    out.extend_from_slice(&cs.to_le_bytes());
    out
}

/// Build the plain (uninstrumented) variant of an image: the bytes a
/// hardware-trace campaign flashes. Coverage is the trace unit's job,
/// so nothing coverage-related is compiled in — the image is
/// byte-identical to [`build_image`] with [`InstrumentMode::None`],
/// and therefore to what a no-coverage baseline run would flash.
pub fn image_plain(os: OsKind, profile: ImageProfile) -> Vec<u8> {
    build_image(os, profile, &InstrumentMode::None)
}

/// Validate and parse an image (the bootloader's job). Any corruption —
/// bad magic, bad fields, bad checksum — is a boot failure.
pub fn parse_image(bytes: &[u8]) -> Result<ImageInfo, HalError> {
    let fail = |msg: &str| HalError::BootFailure(msg.to_string());
    if bytes.len() < 16 {
        return Err(fail("image too small"));
    }
    if bytes[..4] != IMAGE_MAGIC {
        return Err(fail("bad image magic"));
    }
    let os = OsKind::from_byte(bytes[4]).ok_or_else(|| fail("unknown OS byte"))?;
    let profile = ImageProfile::from_byte(bytes[5]).ok_or_else(|| fail("unknown profile"))?;
    let mode_byte = bytes[6];
    let nmods = bytes[7] as usize;
    let mut off = 8;
    let mode = match mode_byte {
        0 => InstrumentMode::None,
        1 => InstrumentMode::Full,
        2 => {
            let mut mods = Vec::with_capacity(nmods);
            for _ in 0..nmods {
                let len = *bytes.get(off).ok_or_else(|| fail("truncated modules"))? as usize;
                off += 1;
                let name = bytes
                    .get(off..off + len)
                    .ok_or_else(|| fail("truncated module name"))?;
                mods.push(String::from_utf8_lossy(name).into_owned());
                off += len;
            }
            InstrumentMode::Modules(mods)
        }
        _ => return Err(fail("unknown instrumentation mode")),
    };
    let size_bytes = bytes
        .get(off..off + 4)
        .ok_or_else(|| fail("truncated size"))?;
    let code_size =
        u32::from_le_bytes([size_bytes[0], size_bytes[1], size_bytes[2], size_bytes[3]]);
    off += 4;
    let total = off + code_size as usize + 8;
    if bytes.len() < total {
        return Err(fail("truncated code section"));
    }
    let stored = &bytes[total - 8..total];
    let computed = fnv1a(&bytes[..total - 8]);
    if stored != computed.to_le_bytes() {
        return Err(fail("image checksum mismatch"));
    }
    Ok(ImageInfo {
        os,
        profile,
        mode,
        code_size,
        total_size: total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_parse_roundtrip_all_modes() {
        for os in OsKind::ALL {
            for mode in [
                InstrumentMode::None,
                InstrumentMode::Full,
                InstrumentMode::Modules(vec!["json".into(), "http".into()]),
            ] {
                let img = build_image(os, ImageProfile::FullSystem, &mode);
                let info = parse_image(&img).unwrap();
                assert_eq!(info.os, os);
                assert_eq!(info.mode, mode);
                assert_eq!(info.total_size, img.len());
            }
        }
    }

    #[test]
    fn instrumentation_inflates_image() {
        for os in OsKind::ALL {
            let plain = build_image(os, ImageProfile::FullSystem, &InstrumentMode::None);
            let inst = build_image(os, ImageProfile::FullSystem, &InstrumentMode::Full);
            assert!(inst.len() > plain.len(), "{os}");
            let pct = (inst.len() - plain.len()) as f64 / plain.len() as f64 * 100.0;
            assert!(
                pct > 2.0 && pct < 12.0,
                "{os}: {pct:.2}% out of paper range"
            );
        }
    }

    #[test]
    fn overhead_percentages_match_paper() {
        let pct = |os: OsKind| {
            let plain =
                build_image(os, ImageProfile::FullSystem, &InstrumentMode::None).len() as f64;
            let inst =
                build_image(os, ImageProfile::FullSystem, &InstrumentMode::Full).len() as f64;
            (inst - plain) / plain * 100.0
        };
        // Paper: NuttX 4.76 %, RT-Thread 7.11 %, Zephyr 9.58 %, FreeRTOS 4.32 %.
        assert!(
            (pct(OsKind::NuttX) - 4.76).abs() < 0.3,
            "{}",
            pct(OsKind::NuttX)
        );
        assert!(
            (pct(OsKind::RtThread) - 7.11).abs() < 0.3,
            "{}",
            pct(OsKind::RtThread)
        );
        assert!(
            (pct(OsKind::Zephyr) - 9.58).abs() < 0.4,
            "{}",
            pct(OsKind::Zephyr)
        );
        assert!(
            (pct(OsKind::FreeRtos) - 4.32).abs() < 0.3,
            "{}",
            pct(OsKind::FreeRtos)
        );
    }

    #[test]
    fn plain_image_is_byte_identical_to_uninstrumented_build() {
        for os in OsKind::ALL {
            for profile in [ImageProfile::FullSystem, ImageProfile::AppLevel] {
                assert_eq!(
                    image_plain(os, profile),
                    build_image(os, profile, &InstrumentMode::None),
                    "{os}"
                );
            }
        }
    }

    #[test]
    fn app_profile_is_smaller() {
        let full = build_image(
            OsKind::FreeRtos,
            ImageProfile::FullSystem,
            &InstrumentMode::None,
        );
        let app = build_image(
            OsKind::FreeRtos,
            ImageProfile::AppLevel,
            &InstrumentMode::None,
        );
        assert!(app.len() < full.len() / 3);
    }

    #[test]
    fn corruption_fails_boot() {
        let mut img = build_image(
            OsKind::Zephyr,
            ImageProfile::FullSystem,
            &InstrumentMode::None,
        );
        parse_image(&img).unwrap();
        // Flip one bit deep in the code section.
        let mid = img.len() / 2;
        img[mid] ^= 0x01;
        assert!(matches!(parse_image(&img), Err(HalError::BootFailure(_))));
    }

    #[test]
    fn bad_magic_and_truncation() {
        let img = build_image(
            OsKind::NuttX,
            ImageProfile::FullSystem,
            &InstrumentMode::None,
        );
        assert!(parse_image(&img[..10]).is_err());
        let mut bad = img.clone();
        bad[0] = b'X';
        assert!(parse_image(&bad).is_err());
        assert!(parse_image(&img[..img.len() - 1]).is_err());
    }

    #[test]
    fn module_names_roundtrip() {
        let mode = InstrumentMode::Modules(vec!["http".into(), "json".into()]);
        let img = build_image(OsKind::FreeRtos, ImageProfile::AppLevel, &mode);
        let info = parse_image(&img).unwrap();
        assert_eq!(info.mode, mode);
        assert_eq!(info.profile, ImageProfile::AppLevel);
    }
}
