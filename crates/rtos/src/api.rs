//! API metadata and the kernel invocation ABI.
//!
//! Every kernel model publishes [`ApiDescriptor`]s: machine-readable
//! signatures with typed, constrained parameters and resource
//! production/consumption. These are the "headers, unit test examples,
//! and API reference text" the paper feeds to its LLM — `eof-specgen`
//! extracts Syzlang specifications from them.
//!
//! At run time the agent calls [`crate::kernel::Kernel::invoke`] with
//! resolved [`KArg`]s and receives an [`InvokeResult`]: a normal return
//! value, an API error code, a raised [`KernelFault`], or a hang.

use eof_hal::FaultKind;

/// The kind (type + constraints) of one API parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgKind {
    /// Integer with width and inclusive bounds.
    Int {
        /// Width in bits (8/16/32/64).
        bits: u8,
        /// Inclusive minimum.
        min: u64,
        /// Inclusive maximum.
        max: u64,
    },
    /// Value from a named enumeration of symbolic flags.
    Enum {
        /// Flag-set name (unique per OS).
        set: &'static str,
        /// `(symbol, value)` pairs.
        values: &'static [(&'static str, u64)],
    },
    /// NUL-terminated string up to `max` bytes.
    Str {
        /// Maximum length.
        max: u32,
    },
    /// Raw byte buffer up to `max` bytes.
    Bytes {
        /// Maximum length.
        max: u32,
    },
    /// Handle to a resource produced by an earlier call.
    ResourceIn(&'static str),
}

/// One named parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgMeta {
    /// Parameter name.
    pub name: &'static str,
    /// Parameter kind.
    pub kind: ArgKind,
}

impl ArgMeta {
    /// Shorthand constructor.
    pub fn new(name: &'static str, kind: ArgKind) -> Self {
        ArgMeta { name, kind }
    }
}

/// A published API of a kernel model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiDescriptor {
    /// Stable numeric id used on the wire.
    pub id: u16,
    /// API name as the OS exposes it.
    pub name: &'static str,
    /// Parameters in order.
    pub args: Vec<ArgMeta>,
    /// Resource kind produced by the return value, if any.
    pub returns: Option<&'static str>,
    /// Module the API belongs to (for instrumentation confinement and
    /// Table-2 "Scope" reporting).
    pub module: &'static str,
    /// One-line documentation (feeds the spec generator).
    pub doc: &'static str,
}

/// A resolved runtime argument.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KArg {
    /// Scalar (ints, flags, and resource handles passed by value).
    Int(u64),
    /// String payload.
    Str(String),
    /// Byte payload.
    Bytes(Vec<u8>),
}

impl KArg {
    /// Scalar value, or 0 for non-scalars (kernels treat a non-scalar
    /// where a scalar is expected like C would: garbage in, defined out).
    pub fn as_int(&self) -> u64 {
        match self {
            KArg::Int(v) => *v,
            KArg::Str(s) => s.len() as u64,
            KArg::Bytes(b) => b.len() as u64,
        }
    }

    /// String view (empty for non-strings).
    pub fn as_str(&self) -> &str {
        match self {
            KArg::Str(s) => s.as_str(),
            _ => "",
        }
    }

    /// Byte view (empty for scalars).
    pub fn as_bytes(&self) -> &[u8] {
        match self {
            KArg::Bytes(b) => b.as_slice(),
            KArg::Str(s) => s.as_bytes(),
            KArg::Int(_) => &[],
        }
    }
}

/// A fault raised inside the kernel model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelFault {
    /// Classification (panic, assertion, memory fault, …).
    pub kind: FaultKind,
    /// The message the OS prints on its crash banner.
    pub message: String,
    /// Symbolised frames, innermost first (like the paper's Figure 6).
    pub frames: Vec<&'static str>,
    /// Whether the system hangs after the fault (making it visible to
    /// timeout-only monitors like Tardis's) or recovers to the idle loop.
    pub hangs_after: bool,
    /// The seeded Table-2 bug this fault corresponds to, if any.
    pub bug: Option<crate::bugs::BugId>,
}

impl KernelFault {
    /// Construct a fault attributed to a seeded bug.
    pub fn bug(
        bug: crate::bugs::BugId,
        kind: FaultKind,
        message: impl Into<String>,
        frames: Vec<&'static str>,
        hangs_after: bool,
    ) -> Self {
        KernelFault {
            kind,
            message: message.into(),
            frames,
            hangs_after,
            bug: Some(bug),
        }
    }
}

/// Result of one API invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InvokeResult {
    /// Success, with the return value (a resource handle for producers).
    Ok(u64),
    /// The API rejected the call with an errno-style code. This is the
    /// *normal* outcome for constraint-violating arguments — rejections
    /// are cheap and shallow, which is exactly why random byte-buffer
    /// fuzzing stalls at the API boundary.
    Err(i32),
    /// The call raised a kernel fault.
    Fault(KernelFault),
    /// The call never returns (infinite polling loop): the agent stalls.
    Hang,
}

impl InvokeResult {
    /// Whether this result is a fault.
    pub fn is_fault(&self) -> bool {
        matches!(self, InvokeResult::Fault(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn karg_coercions() {
        assert_eq!(KArg::Int(7).as_int(), 7);
        assert_eq!(KArg::Str("abc".into()).as_int(), 3);
        assert_eq!(KArg::Bytes(vec![1, 2]).as_int(), 2);
        assert_eq!(KArg::Int(7).as_str(), "");
        assert_eq!(KArg::Str("abc".into()).as_bytes(), b"abc");
        assert!(KArg::Int(7).as_bytes().is_empty());
    }

    #[test]
    fn fault_constructor_attributes_bug() {
        let f = KernelFault::bug(
            crate::bugs::BugId::B12SerialWrite,
            FaultKind::Panic,
            "unexpected stop",
            vec!["rt_serial_write", "rt_device_write"],
            true,
        );
        assert!(f.bug.is_some());
        assert!(InvokeResult::Fault(f).is_fault());
    }
}
