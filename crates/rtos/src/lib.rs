//! `eof-rtos` — kernel models of the embedded operating systems EOF tests.
//!
//! The paper evaluates EOF on FreeRTOS, RT-Thread, NuttX, Zephyr and (for
//! the Gustave comparison) POK. This crate implements a *model* of each:
//! a full API surface with genuinely branchy subsystem implementations —
//! schedulers, heap allocators, IPC primitives, timers, a JSON library, an
//! HTTP server, a socket abstraction layer, a serial device framework —
//! running on the `eof-hal` simulated boards and instrumented through
//! `eof-coverage`.
//!
//! Each OS keeps its own personality: FreeRTOS creates tasks with
//! `xTaskCreate` and tick-driven scheduling, Zephyr with
//! `k_thread_create` under preemptive scheduling, RT-Thread routes
//! everything through its kernel object registry, NuttX exposes a
//! POSIX-flavoured libc surface, and PoK partitions time and space
//! ARINC-style. The 19 previously-unknown bugs of the paper's Table 2 are
//! seeded at the exact operations the table names, with trigger conditions
//! whose depth reproduces which fuzzers could find them.
//!
//! Layout:
//!
//! * [`api`] — API metadata (names, typed/constrained parameters,
//!   produced/consumed resources) that `eof-specgen` extracts specs from;
//! * [`ctx`] — the execution context kernels run in: bus access, cycle
//!   charging and SanCov-style coverage hooks;
//! * [`kernel`] — the [`kernel::Kernel`] trait every OS model implements;
//! * [`subsys`] — the shared subsystem building blocks;
//! * [`os`] — the five OS personalities;
//! * [`image`] — flashable image building (with instrumentation cost) and
//!   boot-time validation;
//! * [`bugs`] — the Table-2 bug inventory used by triage and the benches;
//! * [`registry`] — the (OS × board) support matrix behind Table 1.

pub mod api;
pub mod bugs;
pub mod ctx;
pub mod image;
pub mod kernel;
pub mod os;
pub mod registry;
pub mod subsys;

pub use api::{ApiDescriptor, ArgKind, ArgMeta, InvokeResult, KArg, KernelFault};
pub use bugs::{BugId, BugInfo, DetectionClass, BUG_TABLE};
pub use ctx::{CovState, ExecCtx};
pub use image::{build_image, image_plain, parse_image, ImageInfo, OS_BASE_IMAGE_BYTES};
pub use kernel::{Kernel, OsKind};
pub use registry::{make_kernel, supported_boards, SupportEntry};
