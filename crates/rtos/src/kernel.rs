//! The kernel model contract.
//!
//! Every OS personality implements [`Kernel`]: it publishes its API
//! surface as [`ApiDescriptor`]s, executes invocations against its
//! internal state machines, and reports faults through the same explicit
//! signals a real embedded OS gives (exception handler entry, assertion
//! banners on the UART). The agent (`eof-agent`) owns a `Box<dyn Kernel>`
//! and drives it from the deserialised test case.

use crate::api::{ApiDescriptor, InvokeResult, KArg};
use crate::ctx::ExecCtx;
use std::fmt;

/// The operating systems modelled by the reproduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OsKind {
    /// FreeRTOS (v5.4 in the paper's evaluation).
    FreeRtos,
    /// RT-Thread (commit 2f55990).
    RtThread,
    /// Apache NuttX (commit fc99353).
    NuttX,
    /// Zephyr (commit 143b14b).
    Zephyr,
    /// POK-like partitioned OS (commit b2e1cc3; the Gustave target).
    PokOs,
}

impl OsKind {
    /// All modelled OSs.
    pub const ALL: [OsKind; 5] = [
        OsKind::FreeRtos,
        OsKind::RtThread,
        OsKind::NuttX,
        OsKind::Zephyr,
        OsKind::PokOs,
    ];

    /// Lower-case short name used in site names and reports.
    pub fn short(self) -> &'static str {
        match self {
            OsKind::FreeRtos => "freertos",
            OsKind::RtThread => "rt-thread",
            OsKind::NuttX => "nuttx",
            OsKind::Zephyr => "zephyr",
            OsKind::PokOs => "pokos",
        }
    }

    /// Display name as the paper prints it.
    pub fn display(self) -> &'static str {
        match self {
            OsKind::FreeRtos => "FreeRTOS",
            OsKind::RtThread => "Rt-Thread",
            OsKind::NuttX => "NuttX",
            OsKind::Zephyr => "Zephyr",
            OsKind::PokOs => "PoKOS",
        }
    }

    /// Version string pinned by the paper's §5.1.
    pub fn version(self) -> &'static str {
        match self {
            OsKind::FreeRtos => "v5.4",
            OsKind::RtThread => "2f55990",
            OsKind::NuttX => "fc99353",
            OsKind::Zephyr => "143b14b",
            OsKind::PokOs => "b2e1cc3",
        }
    }

    /// Encoding byte used in image headers.
    pub fn to_byte(self) -> u8 {
        match self {
            OsKind::FreeRtos => 0,
            OsKind::RtThread => 1,
            OsKind::NuttX => 2,
            OsKind::Zephyr => 3,
            OsKind::PokOs => 4,
        }
    }

    /// Decode an image header byte.
    pub fn from_byte(b: u8) -> Option<Self> {
        Self::ALL.into_iter().find(|k| k.to_byte() == b)
    }
}

impl fmt::Display for OsKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.display())
    }
}

/// A kernel model an agent can drive.
pub trait Kernel: Send {
    /// Which OS this is.
    fn os(&self) -> OsKind;

    /// The published API surface. Ids are stable for the life of the
    /// kernel and dense from 0.
    fn api_table(&self) -> &[ApiDescriptor];

    /// Execute one API call.
    fn invoke(&mut self, ctx: &mut ExecCtx<'_>, api_id: u16, args: &[KArg]) -> InvokeResult;

    /// Warm-reset all kernel state (fresh boot).
    fn reset(&mut self, ctx: &mut ExecCtx<'_>);

    /// Name of this OS's exception entry symbol (`panic_handler` on
    /// FreeRTOS, `common_exception` on RT-Thread, …) — where the
    /// exception monitor sets its breakpoint.
    fn exception_symbol(&self) -> &'static str;

    /// Name of this OS's assertion report function (logs then hangs).
    fn assert_symbol(&self) -> &'static str;

    /// Declared total instrumentable branch sites of the *whole* OS build
    /// (including code outside the modelled API surface) — determines the
    /// §5.5.1 image-size overhead.
    fn total_branch_sites(&self) -> usize;

    /// Lines the OS prints on a clean boot.
    fn boot_banner(&self) -> Vec<String>;

    /// Service a hardware interrupt (the §6 extension: peripheral models
    /// driving interrupt paths). The default is an unhandled-IRQ return;
    /// OSs with modelled ISRs override it.
    fn on_interrupt(&mut self, ctx: &mut ExecCtx<'_>, line: u8, payload: &[u8]) -> InvokeResult {
        let _ = (ctx, line, payload);
        InvokeResult::Err(-38)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn os_byte_roundtrip() {
        for os in OsKind::ALL {
            assert_eq!(OsKind::from_byte(os.to_byte()), Some(os));
        }
        assert_eq!(OsKind::from_byte(99), None);
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(OsKind::RtThread.display(), "Rt-Thread");
        assert_eq!(OsKind::FreeRtos.version(), "v5.4");
        assert_eq!(OsKind::Zephyr.short(), "zephyr");
    }
}
