//! The (OS × board) support matrix and kernel construction.
//!
//! This is the data behind Table 1: which operating systems EOF (and the
//! baseline fuzzers) can drive on which architectures, and which boards
//! each pairing is validated on.

use crate::kernel::{Kernel, OsKind};
use crate::os::{FreeRtosKernel, NuttxKernel, PokKernel, RtThreadKernel, ZephyrKernel};
use eof_hal::{Arch, BoardCatalog, BoardSpec};

/// One supported (OS, board) pairing.
#[derive(Debug, Clone)]
pub struct SupportEntry {
    /// Operating system.
    pub os: OsKind,
    /// Board it is validated on.
    pub board: BoardSpec,
}

/// Construct a kernel model for an OS.
pub fn make_kernel(os: OsKind) -> Box<dyn Kernel> {
    match os {
        OsKind::FreeRtos => Box::new(FreeRtosKernel::new()),
        OsKind::RtThread => Box::new(RtThreadKernel::new()),
        OsKind::NuttX => Box::new(NuttxKernel::new()),
        OsKind::Zephyr => Box::new(ZephyrKernel::new()),
        OsKind::PokOs => Box::new(PokKernel::new()),
    }
}

/// Boards each OS is supported on (EOF's own support matrix).
pub fn supported_boards(os: OsKind) -> Vec<BoardSpec> {
    match os {
        OsKind::FreeRtos => vec![
            BoardCatalog::esp32_devkit(),
            BoardCatalog::esp32_c3(),
            BoardCatalog::stm32f4_disco(),
            BoardCatalog::stm32h745_nucleo(),
        ],
        OsKind::RtThread => vec![
            BoardCatalog::stm32f4_disco(),
            BoardCatalog::stm32h745_nucleo(),
            BoardCatalog::qemu_virt_arm(),
        ],
        OsKind::NuttX => vec![
            BoardCatalog::stm32f4_disco(),
            BoardCatalog::stm32h745_nucleo(),
            BoardCatalog::qemu_virt_arm(),
        ],
        OsKind::Zephyr => vec![
            BoardCatalog::stm32f4_disco(),
            BoardCatalog::stm32h745_nucleo(),
            BoardCatalog::qemu_virt_arm(),
        ],
        OsKind::PokOs => vec![BoardCatalog::stm32f4_disco(), BoardCatalog::qemu_virt_arm()],
    }
}

/// The full support matrix.
pub fn support_matrix() -> Vec<SupportEntry> {
    OsKind::ALL
        .into_iter()
        .flat_map(|os| {
            supported_boards(os)
                .into_iter()
                .map(move |board| SupportEntry { os, board })
        })
        .collect()
}

/// Whether EOF supports an (OS, architecture) pair — a Table-1 cell.
pub fn eof_supports(os: OsKind, arch: Arch) -> bool {
    supported_boards(os).iter().any(|b| b.arch == arch)
}

/// The default full-system fuzzing board for an OS. EOF fuzzes real
/// silicon; only emulation-based baselines run on the QEMU machine.
pub fn default_board(os: OsKind) -> BoardSpec {
    match os {
        OsKind::FreeRtos => BoardCatalog::esp32_devkit(),
        OsKind::PokOs => BoardCatalog::stm32f4_disco(),
        _ => BoardCatalog::stm32h745_nucleo(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_os_constructs() {
        for os in OsKind::ALL {
            let k = make_kernel(os);
            assert_eq!(k.os(), os);
            assert!(!k.api_table().is_empty());
        }
    }

    #[test]
    fn api_ids_are_dense_for_every_os() {
        for os in OsKind::ALL {
            let k = make_kernel(os);
            for (i, d) in k.api_table().iter().enumerate() {
                assert_eq!(d.id as usize, i, "{os}: {0}", d.name);
            }
        }
    }

    #[test]
    fn api_names_unique_per_os() {
        for os in OsKind::ALL {
            let k = make_kernel(os);
            let mut names: Vec<&str> = k.api_table().iter().map(|d| d.name).collect();
            names.sort();
            let before = names.len();
            names.dedup();
            assert_eq!(names.len(), before, "{os}");
        }
    }

    #[test]
    fn table1_cells() {
        // EOF supports FreeRTOS on ARM and RISC-V (and Xtensa boards).
        assert!(eof_supports(OsKind::FreeRtos, Arch::Arm));
        assert!(eof_supports(OsKind::FreeRtos, Arch::RiscV));
        // But not MIPS / PowerPC (Table 1's dashes).
        assert!(!eof_supports(OsKind::FreeRtos, Arch::Mips));
        assert!(!eof_supports(OsKind::FreeRtos, Arch::PowerPc));
        // The other OSs are ARM-only in the paper's matrix.
        for os in [OsKind::RtThread, OsKind::NuttX, OsKind::Zephyr] {
            assert!(eof_supports(os, Arch::Arm));
            assert!(!eof_supports(os, Arch::RiscV));
        }
    }

    #[test]
    fn default_boards_fit_images() {
        for os in OsKind::ALL {
            let board = default_board(os);
            let img = crate::image::build_image(
                os,
                crate::image::ImageProfile::FullSystem,
                &eof_coverage::InstrumentMode::Full,
            );
            let kernel_part = board.default_partitions();
            let part = kernel_part.get("kernel").unwrap();
            assert!(
                img.len() <= part.size as usize,
                "{os}: image {} > partition {}",
                img.len(),
                part.size
            );
        }
    }

    #[test]
    fn exception_symbols_differ_across_oses() {
        let mut syms: Vec<&str> = OsKind::ALL
            .into_iter()
            .map(|os| make_kernel(os).exception_symbol())
            .collect();
        syms.sort();
        syms.dedup();
        assert_eq!(syms.len(), 5);
    }
}
