//! The Table-2 bug inventory.
//!
//! Every previously-unknown bug the paper reports is seeded in the kernel
//! models at the exact operation Table 2 names. This module is the single
//! source of truth for their metadata: scope, bug type, triggering
//! operation, confirmation status, and which monitor detects them (the
//! paper: the log monitor catches bugs #5, #8, #17; the exception monitor
//! the other sixteen).

use crate::kernel::OsKind;

/// Identifier of a seeded bug (numbering follows the paper's Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BugId {
    /// #1 Zephyr / Heap / Kernel Panic / `sys_heap_stress()`.
    B01HeapStress,
    /// #2 Zephyr / Kernel / Kernel Panic / `z_impl_k_msgq_get()`.
    B02MsgqGet,
    /// #3 Zephyr / JSON / Kernel Panic / `json_obj_encode()` (confirmed).
    B03JsonEncode,
    /// #4 Zephyr / KHeap / Kernel Panic / `k_heap_init()` (confirmed).
    B04KHeapInit,
    /// #5 RT-Thread / Kernel / Kernel Assertion / `rt_object_get_type()`.
    B05ObjectGetType,
    /// #6 RT-Thread / RTService / Kernel Panic / `rt_list_isempty()`.
    B06ListIsEmpty,
    /// #7 RT-Thread / Memory / Kernel Panic / `rt_mp_alloc()`.
    B07MpAlloc,
    /// #8 RT-Thread / Kernel / Kernel Assertion / `rt_object_init()`.
    B08ObjectInit,
    /// #9 RT-Thread / Heap / Kernel Panic / `_heap_lock()`.
    B09HeapLock,
    /// #10 RT-Thread / IPC / Kernel Panic / `rt_event_send()`.
    B10EventSend,
    /// #11 RT-Thread / Memory / Kernel Panic / `rt_smem_setname()` (confirmed).
    B11SmemSetname,
    /// #12 RT-Thread / Serial / Kernel Panic / `rt_serial_write()` — the
    /// paper's case study (Figure 6).
    B12SerialWrite,
    /// #13 FreeRTOS / Kernel / Kernel Panic / `load_partitions()`.
    B13LoadPartitions,
    /// #14 NuttX / Kernel / Kernel Panic / `setenv()` (confirmed).
    B14Setenv,
    /// #15 NuttX / Libc / Kernel Panic / `gettimeofday()`.
    B15Gettimeofday,
    /// #16 NuttX / MQueue / Kernel Panic / `nxmq_timedsend()`.
    B16MqTimedsend,
    /// #17 NuttX / Semaphore / Kernel Assertion / `nxsem_trywait()`.
    B17SemTrywait,
    /// #18 NuttX / Timer / Kernel Panic / `timer_create()`.
    B18TimerCreate,
    /// #19 NuttX / Libc / Kernel Panic / `clock_getres()`.
    B19ClockGetres,
    /// #20 FreeRTOS / SPI / Status-poll hang / `xSpiTransfer()` —
    /// driver-layer (see [`DRIVER_BUG_TABLE`]).
    B20SpiPollHang,
    /// #21 Zephyr / SPI / Kernel Panic / `spi_transceive()` RX overrun.
    B21SpiRxOverrun,
    /// #22 RT-Thread / I2C / Kernel Panic / `rt_i2c_master_recv()` NACK
    /// path double-free.
    B22I2cNackDoubleFree,
    /// #23 RT-Thread / DMA / Kernel Panic / `rt_dma_start()` descriptor
    /// reuse after completion.
    B23DmaDescReuse,
    /// #24 NuttX / DMA / Kernel Panic / `nx_dma_setup()` length
    /// truncation to 16 bits.
    B24DmaLenTruncation,
    /// #25 NuttX / I2C / Kernel Assertion / `nx_i2c_read()` NACK with
    /// pending restart.
    B25I2cNackRestart,
    /// #26 FreeRTOS / DMA / Kernel Panic / `xDmaStart()` — gated on two
    /// 32-bit magic descriptor addresses; the Redqueen/I2S showcase.
    B26DmaMagicDesc,
    /// #27 Zephyr / I2C / Kernel Panic / `i2c_read()` — gated on two
    /// consecutive magic bytes in the MMIO response stream.
    B27I2cMagicSeq,
}

/// Which monitor detects a bug's signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectionClass {
    /// The OS prints an assertion banner; detected by the log monitor.
    LogMonitor,
    /// Execution enters the OS exception handler; detected by the
    /// exception monitor's breakpoint.
    ExceptionMonitor,
}

/// Static metadata for one seeded bug.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BugInfo {
    /// Bug id.
    pub id: BugId,
    /// Table-2 row number (1-based).
    pub number: u8,
    /// Target OS.
    pub os: OsKind,
    /// Subsystem scope as Table 2 prints it.
    pub scope: &'static str,
    /// Bug type as Table 2 prints it.
    pub bug_type: &'static str,
    /// Triggering operation as Table 2 prints it.
    pub operation: &'static str,
    /// Whether maintainers confirmed it.
    pub confirmed: bool,
    /// Which monitor sees it.
    pub detection: DetectionClass,
    /// Whether the system hangs after the fault (a timeout-only monitor
    /// like Tardis's can only notice hanging bugs).
    pub hangs: bool,
    /// Minimum number of *dependent* calls needed to trigger it — a
    /// proxy for how much guided exploration the bug demands. Depth 1
    /// bugs are reachable by single-call argument search; depth ≥ 2 need
    /// state built by earlier calls.
    pub depth: u8,
}

/// The full Table-2 inventory.
pub const BUG_TABLE: [BugInfo; 19] = [
    BugInfo {
        id: BugId::B01HeapStress,
        number: 1,
        os: OsKind::Zephyr,
        scope: "Heap",
        bug_type: "Kernel Panic",
        operation: "sys_heap_stress()",
        confirmed: false,
        detection: DetectionClass::ExceptionMonitor,
        hangs: false,
        depth: 2,
    },
    BugInfo {
        id: BugId::B02MsgqGet,
        number: 2,
        os: OsKind::Zephyr,
        scope: "Kernel",
        bug_type: "Kernel Panic",
        operation: "z_impl_k_msgq_get()",
        confirmed: true,
        detection: DetectionClass::ExceptionMonitor,
        hangs: false,
        depth: 2,
    },
    BugInfo {
        id: BugId::B03JsonEncode,
        number: 3,
        os: OsKind::Zephyr,
        scope: "JSON",
        bug_type: "Kernel Panic",
        operation: "json_obj_encode()",
        confirmed: true,
        detection: DetectionClass::ExceptionMonitor,
        hangs: true,
        depth: 1,
    },
    BugInfo {
        id: BugId::B04KHeapInit,
        number: 4,
        os: OsKind::Zephyr,
        scope: "KHeap",
        bug_type: "Kernel Panic",
        operation: "k_heap_init()",
        confirmed: true,
        detection: DetectionClass::ExceptionMonitor,
        hangs: true,
        depth: 1,
    },
    BugInfo {
        id: BugId::B05ObjectGetType,
        number: 5,
        os: OsKind::RtThread,
        scope: "Kernel",
        bug_type: "Kernel Assertion",
        operation: "rt_object_get_type()",
        confirmed: false,
        detection: DetectionClass::LogMonitor,
        hangs: true,
        depth: 1,
    },
    BugInfo {
        id: BugId::B06ListIsEmpty,
        number: 6,
        os: OsKind::RtThread,
        scope: "RTService",
        bug_type: "Kernel Panic",
        operation: "rt_list_isempty()",
        confirmed: false,
        detection: DetectionClass::ExceptionMonitor,
        hangs: false,
        depth: 5,
    },
    BugInfo {
        id: BugId::B07MpAlloc,
        number: 7,
        os: OsKind::RtThread,
        scope: "Memory",
        bug_type: "Kernel Panic",
        operation: "rt_mp_alloc()",
        confirmed: false,
        detection: DetectionClass::ExceptionMonitor,
        hangs: false,
        depth: 3,
    },
    BugInfo {
        id: BugId::B08ObjectInit,
        number: 8,
        os: OsKind::RtThread,
        scope: "Kernel",
        bug_type: "Kernel Assertion",
        operation: "rt_object_init()",
        confirmed: false,
        detection: DetectionClass::LogMonitor,
        hangs: true,
        depth: 1,
    },
    BugInfo {
        id: BugId::B09HeapLock,
        number: 9,
        os: OsKind::RtThread,
        scope: "Heap",
        bug_type: "Kernel Panic",
        operation: "_heap_lock()",
        confirmed: false,
        detection: DetectionClass::ExceptionMonitor,
        hangs: false,
        depth: 2,
    },
    BugInfo {
        id: BugId::B10EventSend,
        number: 10,
        os: OsKind::RtThread,
        scope: "IPC",
        bug_type: "Kernel Panic",
        operation: "rt_event_send()",
        confirmed: false,
        detection: DetectionClass::ExceptionMonitor,
        hangs: false,
        depth: 3,
    },
    BugInfo {
        id: BugId::B11SmemSetname,
        number: 11,
        os: OsKind::RtThread,
        scope: "Memory",
        bug_type: "Kernel Panic",
        operation: "rt_smem_setname()",
        confirmed: true,
        detection: DetectionClass::ExceptionMonitor,
        hangs: false,
        depth: 2,
    },
    BugInfo {
        id: BugId::B12SerialWrite,
        number: 12,
        os: OsKind::RtThread,
        scope: "Serial",
        bug_type: "Kernel Panic",
        operation: "rt_serial_write()",
        confirmed: false,
        detection: DetectionClass::ExceptionMonitor,
        hangs: true,
        depth: 3,
    },
    BugInfo {
        id: BugId::B13LoadPartitions,
        number: 13,
        os: OsKind::FreeRtos,
        scope: "Kernel",
        bug_type: "Kernel Panic",
        operation: "load_partitions()",
        confirmed: false,
        detection: DetectionClass::ExceptionMonitor,
        hangs: false,
        depth: 1,
    },
    BugInfo {
        id: BugId::B14Setenv,
        number: 14,
        os: OsKind::NuttX,
        scope: "Kernel",
        bug_type: "Kernel Panic",
        operation: "setenv()",
        confirmed: true,
        detection: DetectionClass::ExceptionMonitor,
        hangs: false,
        depth: 2,
    },
    BugInfo {
        id: BugId::B15Gettimeofday,
        number: 15,
        os: OsKind::NuttX,
        scope: "Libc",
        bug_type: "Kernel Panic",
        operation: "gettimeofday()",
        confirmed: false,
        detection: DetectionClass::ExceptionMonitor,
        hangs: true,
        depth: 1,
    },
    BugInfo {
        id: BugId::B16MqTimedsend,
        number: 16,
        os: OsKind::NuttX,
        scope: "MQueue",
        bug_type: "Kernel Panic",
        operation: "nxmq_timedsend()",
        confirmed: false,
        detection: DetectionClass::ExceptionMonitor,
        hangs: false,
        depth: 3,
    },
    BugInfo {
        id: BugId::B17SemTrywait,
        number: 17,
        os: OsKind::NuttX,
        scope: "Semaphore",
        bug_type: "Kernel Assertion",
        operation: "nxsem_trywait()",
        confirmed: false,
        detection: DetectionClass::LogMonitor,
        hangs: true,
        depth: 4,
    },
    BugInfo {
        id: BugId::B18TimerCreate,
        number: 18,
        os: OsKind::NuttX,
        scope: "Timer",
        bug_type: "Kernel Panic",
        operation: "timer_create()",
        confirmed: false,
        detection: DetectionClass::ExceptionMonitor,
        hangs: true,
        depth: 1,
    },
    BugInfo {
        id: BugId::B19ClockGetres,
        number: 19,
        os: OsKind::NuttX,
        scope: "Libc",
        bug_type: "Kernel Panic",
        operation: "clock_getres()",
        confirmed: false,
        detection: DetectionClass::ExceptionMonitor,
        hangs: false,
        depth: 1,
    },
];

/// The driver-layer bug inventory (numbers 20+), seeded by this
/// reproduction beyond the paper's Table 2: each is reachable only
/// through the driver APIs and gated on values the model-free MMIO
/// peripheral region feeds back — the kernel↔peripheral interaction the
/// pure-API campaigns cannot exercise. Kept separate from [`BUG_TABLE`]
/// so the paper-pinned Table-2 invariants (19 rows, per-OS counts,
/// monitor split) stay byte-exact.
pub const DRIVER_BUG_TABLE: [BugInfo; 8] = [
    BugInfo {
        id: BugId::B20SpiPollHang,
        number: 20,
        os: OsKind::FreeRtos,
        scope: "SPI",
        bug_type: "Kernel Panic",
        operation: "xSpiTransfer()",
        confirmed: false,
        detection: DetectionClass::ExceptionMonitor,
        hangs: true,
        depth: 1,
    },
    BugInfo {
        id: BugId::B21SpiRxOverrun,
        number: 21,
        os: OsKind::Zephyr,
        scope: "SPI",
        bug_type: "Kernel Panic",
        operation: "spi_transceive()",
        confirmed: false,
        detection: DetectionClass::ExceptionMonitor,
        hangs: false,
        depth: 1,
    },
    BugInfo {
        id: BugId::B22I2cNackDoubleFree,
        number: 22,
        os: OsKind::RtThread,
        scope: "I2C",
        bug_type: "Kernel Panic",
        operation: "rt_i2c_master_recv()",
        confirmed: false,
        detection: DetectionClass::ExceptionMonitor,
        hangs: false,
        depth: 1,
    },
    BugInfo {
        id: BugId::B23DmaDescReuse,
        number: 23,
        os: OsKind::RtThread,
        scope: "DMA",
        bug_type: "Kernel Panic",
        operation: "rt_dma_start()",
        confirmed: false,
        detection: DetectionClass::ExceptionMonitor,
        hangs: false,
        depth: 2,
    },
    BugInfo {
        id: BugId::B24DmaLenTruncation,
        number: 24,
        os: OsKind::NuttX,
        scope: "DMA",
        bug_type: "Kernel Panic",
        operation: "nx_dma_setup()",
        confirmed: false,
        detection: DetectionClass::ExceptionMonitor,
        hangs: false,
        depth: 1,
    },
    BugInfo {
        id: BugId::B25I2cNackRestart,
        number: 25,
        os: OsKind::NuttX,
        scope: "I2C",
        bug_type: "Kernel Assertion",
        operation: "nx_i2c_read()",
        confirmed: false,
        detection: DetectionClass::LogMonitor,
        hangs: true,
        depth: 1,
    },
    // #26 and #27 are the magic-comparison-guarded rows: random argument
    // and MMIO mutation essentially never hits the exact constants, but
    // the cmplog operand ring observes them on the first near-miss and
    // the I2S splice stage closes the gap — the pure-vs-cmplog A/B
    // (`bench/src/bin/i2s.rs`) is built on exactly these two.
    BugInfo {
        id: BugId::B26DmaMagicDesc,
        number: 26,
        os: OsKind::FreeRtos,
        scope: "DMA",
        bug_type: "Kernel Panic",
        operation: "xDmaStart()",
        confirmed: false,
        detection: DetectionClass::ExceptionMonitor,
        hangs: false,
        depth: 1,
    },
    BugInfo {
        id: BugId::B27I2cMagicSeq,
        number: 27,
        os: OsKind::Zephyr,
        scope: "I2C",
        bug_type: "Kernel Panic",
        operation: "i2c_read()",
        confirmed: false,
        detection: DetectionClass::ExceptionMonitor,
        hangs: false,
        depth: 1,
    },
];

/// The magic-comparison-guarded driver bugs (the cmplog A/B targets).
pub fn magic_guarded_bugs() -> Vec<BugId> {
    vec![BugId::B26DmaMagicDesc, BugId::B27I2cMagicSeq]
}

impl BugId {
    /// Metadata for this bug (Table-2 or driver inventory).
    pub fn info(self) -> &'static BugInfo {
        BUG_TABLE
            .iter()
            .chain(DRIVER_BUG_TABLE.iter())
            .find(|b| b.id == self)
            .expect("every BugId is in BUG_TABLE or DRIVER_BUG_TABLE")
    }

    /// Row number (1-19 Table 2, 20+ driver inventory).
    pub fn number(self) -> u8 {
        self.info().number
    }

    /// Whether this is a driver-layer bug (reachable only through the
    /// driver APIs and the MMIO response plane).
    pub fn is_driver_bug(self) -> bool {
        self.number() >= 20
    }
}

/// Bugs the paper reports EOF-nf (no feedback) found: #1-5, 8-9, 13, 15,
/// 18-19. These are the shallow (depth ≤ 2) bugs.
pub fn eof_nf_expected() -> Vec<BugId> {
    BUG_TABLE
        .iter()
        .filter(|b| matches!(b.number, 1 | 2 | 3 | 4 | 5 | 8 | 9 | 13 | 15 | 18 | 19))
        .map(|b| b.id)
        .collect()
}

/// Bugs the paper reports Tardis found: #3, 4, 5, 8, 15, 18 — the
/// shallow *and hanging* bugs a timeout-only monitor can notice.
pub fn tardis_expected() -> Vec<BugId> {
    BUG_TABLE
        .iter()
        .filter(|b| matches!(b.number, 3 | 4 | 5 | 8 | 15 | 18))
        .map(|b| b.id)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_19_rows_with_unique_numbers() {
        let mut nums: Vec<u8> = BUG_TABLE.iter().map(|b| b.number).collect();
        nums.sort();
        assert_eq!(nums, (1..=19).collect::<Vec<u8>>());
    }

    #[test]
    fn per_os_counts_match_paper() {
        let count = |os: OsKind| BUG_TABLE.iter().filter(|b| b.os == os).count();
        assert_eq!(count(OsKind::Zephyr), 4);
        assert_eq!(count(OsKind::RtThread), 8);
        assert_eq!(count(OsKind::FreeRtos), 1);
        assert_eq!(count(OsKind::NuttX), 6);
        assert_eq!(count(OsKind::PokOs), 0);
    }

    #[test]
    fn five_confirmed_bugs() {
        assert_eq!(BUG_TABLE.iter().filter(|b| b.confirmed).count(), 5);
    }

    #[test]
    fn log_monitor_bugs_are_5_8_17() {
        let log: Vec<u8> = BUG_TABLE
            .iter()
            .filter(|b| b.detection == DetectionClass::LogMonitor)
            .map(|b| b.number)
            .collect();
        assert_eq!(log, vec![5, 8, 17]);
    }

    #[test]
    fn tardis_subset_of_eof_nf() {
        let nf = eof_nf_expected();
        for b in tardis_expected() {
            assert!(
                nf.contains(&b),
                "bug {b:?} found by Tardis must be in EOF-nf set"
            );
        }
    }

    #[test]
    fn tardis_bugs_all_hang() {
        for b in tardis_expected() {
            assert!(
                b.info().hangs,
                "timeout-only detection requires a hang: {b:?}"
            );
        }
    }

    #[test]
    fn eof_nf_bugs_are_shallow() {
        for b in eof_nf_expected() {
            assert!(b.info().depth <= 2, "{b:?} should be shallow");
        }
    }

    #[test]
    fn info_roundtrip() {
        assert_eq!(BugId::B12SerialWrite.number(), 12);
        assert_eq!(BugId::B12SerialWrite.info().operation, "rt_serial_write()");
    }

    #[test]
    fn driver_table_has_unique_numbers_from_20() {
        let mut nums: Vec<u8> = DRIVER_BUG_TABLE.iter().map(|b| b.number).collect();
        nums.sort();
        assert_eq!(
            nums,
            (20..20 + DRIVER_BUG_TABLE.len() as u8).collect::<Vec<u8>>()
        );
        for b in &DRIVER_BUG_TABLE {
            assert!(b.id.is_driver_bug());
            assert!(matches!(b.scope, "SPI" | "I2C" | "DMA"), "{:?}", b.id);
        }
    }

    #[test]
    fn every_fuzzed_os_has_a_driver_bug() {
        // The acceptance bar: each of the four paper OSs must be able to
        // confirm at least one driver bug (PoK deliberately has none —
        // its driver layer is bug-free surface for differential runs).
        for os in [
            OsKind::Zephyr,
            OsKind::RtThread,
            OsKind::FreeRtos,
            OsKind::NuttX,
        ] {
            assert!(
                DRIVER_BUG_TABLE.iter().any(|b| b.os == os),
                "no driver bug for {os:?}"
            );
        }
        assert!(!DRIVER_BUG_TABLE.iter().any(|b| b.os == OsKind::PokOs));
    }

    #[test]
    fn magic_guarded_bugs_span_two_oses() {
        let magic = magic_guarded_bugs();
        assert_eq!(magic.len(), 2);
        let oses: Vec<OsKind> = magic.iter().map(|b| b.info().os).collect();
        assert!(oses.contains(&OsKind::FreeRtos));
        assert!(oses.contains(&OsKind::Zephyr));
        for b in magic {
            assert!(b.is_driver_bug());
            assert_eq!(b.info().detection, DetectionClass::ExceptionMonitor);
            assert_eq!(b.info().depth, 1);
        }
    }

    #[test]
    fn driver_info_roundtrip() {
        assert_eq!(BugId::B24DmaLenTruncation.number(), 24);
        assert_eq!(
            BugId::B24DmaLenTruncation.info().operation,
            "nx_dma_setup()"
        );
        assert!(!BugId::B13LoadPartitions.is_driver_bug());
    }
}
