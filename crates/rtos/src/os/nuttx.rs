//! NuttX kernel model.
//!
//! Personality: a POSIX-compliant surface — `setenv`/`getenv`, clocks,
//! POSIX message queues and semaphores (`nxmq_*`/`nxsem_*` kernel
//! entries), POSIX timers, `task_create`. Hosts six Table-2 bugs
//! (#14–#19).

use crate::api::{ApiDescriptor, InvokeResult, KArg, KernelFault};
use crate::bugs::BugId;
use crate::ctx::ExecCtx;
use crate::kernel::{Kernel, OsKind};
use crate::os::{a_bytes, a_enum, a_int, a_int64, a_res, a_str, arg_bytes, arg_int, arg_str};
use crate::subsys::env::{clockid, EnvError, EnvSubsystem};
use crate::subsys::ipc::{IpcError, Semaphore};
use crate::subsys::mq::{MqError, MqNamespace};
use crate::subsys::sched::{Policy, Scheduler};
use crate::subsys::timer::{TimerError, TimerMode, TimerWheel};
use eof_hal::FaultKind;

const CLOCK_IDS: &[(&str, u64)] = &[
    ("CLOCK_REALTIME", 0),
    ("CLOCK_MONOTONIC", 1),
    ("CLOCK_BOOTTIME", 7),
];
const SIGEV_KINDS: &[(&str, u64)] = &[("SIGEV_NONE", 0), ("SIGEV_SIGNAL", 1), ("SIGEV_THREAD", 2)];
const MQ_NAMES: &[(&str, u64)] = &[("MQ0", 0), ("MQ1", 1), ("MQ2", 2), ("MQ3", 3)];
const NULLNESS: &[(&str, u64)] = &[("PTR_VALID", 0), ("PTR_NULL", 1)];

/// PC-site ids for the driver layer's MMIO polls (replay keys on them).
const SITE_SPI_STATUS: u32 = 0x4900;
const SITE_SPI_DATA: u32 = 0x4910;
const SITE_I2C_STATUS: u32 = 0x4920;
const SITE_I2C_DATA: u32 = 0x4930;
const SITE_DMA_STATUS: u32 = 0x4940;

fn mq_name_of(v: u64) -> &'static str {
    match v {
        1 => "/mq1",
        2 => "/mq2",
        3 => "/mq3",
        _ => "/mq0",
    }
}

/// A POSIX timer instance.
struct PosixTimer {
    wheel_handle: u32,
}

/// The NuttX model.
pub struct NuttxKernel {
    api: Vec<ApiDescriptor>,
    sched: Scheduler,
    env: EnvSubsystem,
    mq: MqNamespace,
    sems: Vec<Option<Semaphore>>,
    wheel: TimerWheel,
    timers: Vec<PosixTimer>,
    /// Waiter counts of destroyed semaphores (bug #17 gate).
    destroyed_with_waiters: std::collections::HashMap<usize, u32>,
    /// Whether CLOCK_REALTIME has been set since boot (bug #15 gate:
    /// the timezone fast-path only exists after a settime).
    clock_was_set: bool,
}

impl Default for NuttxKernel {
    fn default() -> Self {
        Self::new()
    }
}

impl NuttxKernel {
    /// A freshly booted NuttX.
    pub fn new() -> Self {
        NuttxKernel {
            api: Self::build_api(),
            sched: Scheduler::new(Policy::Preemptive, 16, 31, 31, 256),
            env: EnvSubsystem::new(16),
            mq: MqNamespace::new(4),
            sems: Vec::new(),
            wheel: TimerWheel::new(8),
            timers: Vec::new(),
            destroyed_with_waiters: std::collections::HashMap::new(),
            clock_was_set: false,
        }
    }

    fn build_api() -> Vec<ApiDescriptor> {
        let mut v = Vec::new();
        let mut id = 0u16;
        let mut api = |name: &'static str,
                       args: Vec<crate::api::ArgMeta>,
                       returns: Option<&'static str>,
                       module: &'static str,
                       doc: &'static str| {
            let d = ApiDescriptor {
                id,
                name,
                args,
                returns,
                module,
                doc,
            };
            id += 1;
            d
        };
        v.push(api(
            "task_create",
            vec![
                a_str("name", 31),
                a_int("priority", 0, 31),
                a_int("stack_size", 256, 8192),
            ],
            Some("task"),
            "task",
            "Create a NuttX task.",
        ));
        v.push(api(
            "task_delete",
            vec![a_res("task", "task")],
            None,
            "task",
            "Delete a task.",
        ));
        v.push(api(
            "setenv",
            vec![
                a_str("name", 16),
                a_str("value", 64),
                a_int("overwrite", 0, 1),
            ],
            None,
            "kernel",
            "Set an environment variable.",
        ));
        v.push(api(
            "getenv",
            vec![a_str("name", 16)],
            None,
            "kernel",
            "Read an environment variable.",
        ));
        v.push(api(
            "unsetenv",
            vec![a_str("name", 16)],
            None,
            "kernel",
            "Remove an environment variable.",
        ));
        v.push(api(
            "gettimeofday",
            vec![
                a_enum("tv", "nullness", NULLNESS),
                a_enum("tz", "nullness", NULLNESS),
            ],
            None,
            "libc",
            "Read the wall clock into tv (tz is obsolete but accepted).",
        ));
        v.push(api(
            "clock_gettime",
            vec![a_enum("clockid", "clock_ids", CLOCK_IDS)],
            None,
            "libc",
            "Read a POSIX clock.",
        ));
        v.push(api(
            "clock_getres",
            vec![
                a_enum("clockid", "clock_ids", CLOCK_IDS),
                a_int("res_align", 0, 7),
            ],
            None,
            "libc",
            "Read a clock's resolution into an aligned timespec.",
        ));
        v.push(api(
            "clock_settime",
            vec![a_int64("usec", 0, u64::MAX / 2)],
            None,
            "libc",
            "Set CLOCK_REALTIME (forward only).",
        ));
        v.push(api(
            "mq_open",
            vec![
                a_enum("name", "mq_names", MQ_NAMES),
                a_int("msg_size", 1, 64),
                a_int("maxmsg", 1, 8),
            ],
            Some("mqd"),
            "mqueue",
            "Open (or create) a named POSIX message queue.",
        ));
        v.push(api(
            "mq_send",
            vec![
                a_res("mqd", "mqd"),
                a_bytes("msg", 64),
                a_int("prio", 0, 31),
            ],
            None,
            "mqueue",
            "Send a message (non-blocking).",
        ));
        v.push(api(
            "nxmq_timedsend",
            vec![
                a_res("mqd", "mqd"),
                a_bytes("msg", 64),
                a_int("prio", 0, 31),
                a_int64("rel_deadline", 0, 10_000),
            ],
            None,
            "mqueue",
            "Send with a deadline relative to now (0 = already expired).",
        ));
        v.push(api(
            "mq_receive",
            vec![a_res("mqd", "mqd")],
            None,
            "mqueue",
            "Receive the highest-priority message.",
        ));
        v.push(api(
            "mq_close",
            vec![a_res("mqd", "mqd")],
            None,
            "mqueue",
            "Close a queue descriptor.",
        ));
        v.push(api(
            "mq_unlink",
            vec![a_enum("name", "mq_names", MQ_NAMES)],
            None,
            "mqueue",
            "Unlink a named queue.",
        ));
        v.push(api(
            "nxsem_init",
            vec![a_int("value", 0, 8)],
            Some("sem"),
            "semaphore",
            "Initialise an unnamed semaphore.",
        ));
        v.push(api(
            "nxsem_wait",
            vec![a_res("sem", "sem")],
            None,
            "semaphore",
            "Wait on a semaphore (records a waiter).",
        ));
        v.push(api(
            "nxsem_trywait",
            vec![a_res("sem", "sem")],
            None,
            "semaphore",
            "Non-blocking wait.",
        ));
        v.push(api(
            "nxsem_post",
            vec![a_res("sem", "sem")],
            None,
            "semaphore",
            "Post a semaphore.",
        ));
        v.push(api(
            "nxsem_destroy",
            vec![a_res("sem", "sem")],
            None,
            "semaphore",
            "Destroy a semaphore.",
        ));
        v.push(api(
            "timer_create",
            vec![
                a_enum("clockid", "clock_ids", CLOCK_IDS),
                a_enum("sigev_notify", "sigev", SIGEV_KINDS),
                a_int("sigev_value", 0, 1000),
            ],
            Some("timerid"),
            "timer",
            "Create a POSIX timer with a notification method and cookie.",
        ));
        v.push(api(
            "timer_settime",
            vec![a_res("timerid", "timerid"), a_int("period_ticks", 0, 1000)],
            None,
            "timer",
            "Arm (period > 0) or disarm (period 0) a timer.",
        ));
        v.push(api(
            "timer_delete",
            vec![a_res("timerid", "timerid")],
            None,
            "timer",
            "Delete a POSIX timer.",
        ));
        v.push(api(
            "sched_tick",
            vec![a_int("n", 1, 10)],
            None,
            "kernel",
            "Advance the system tick.",
        ));
        v.push(api(
            "nx_spi_exchange",
            vec![a_int("tx_len", 0, 64), a_int("rx_len", 0, 64)],
            None,
            "spi",
            "Exchange words on the SPI bus.",
        ));
        v.push(api(
            "nx_i2c_read",
            vec![
                a_int("addr", 0, 127),
                a_int("len", 0, 32),
                a_int("restart", 0, 1),
            ],
            None,
            "i2c",
            "I2C read with an optional repeated-start condition.",
        ));
        v.push(api(
            "nx_dma_setup",
            vec![
                a_int("src", 0, 65535),
                a_int("dst", 0, 65535),
                a_int64("len", 0, 131072),
            ],
            None,
            "dma",
            "Set up and start a DMA transfer descriptor.",
        ));
        v
    }

    fn map_mq(e: MqError) -> InvokeResult {
        InvokeResult::Err(match e {
            MqError::BadName => -2,
            MqError::TooMany => -24,
            MqError::BadDesc => -9,
            MqError::Full => -11,
            MqError::Empty => -11,
            MqError::TimedOut => -110,
            MqError::MsgTooBig => -90,
            MqError::NotFound => -2,
        })
    }
}

impl Kernel for NuttxKernel {
    fn os(&self) -> OsKind {
        OsKind::NuttX
    }

    fn on_interrupt(&mut self, ctx: &mut ExecCtx<'_>, line: u8, payload: &[u8]) -> InvokeResult {
        match line {
            eof_hal::irq::TIMER => {
                ctx.cov("nuttx::isr::tick::entry");
                self.sched.tick(ctx, "nuttx::kernel::tick");
                let fired = self.wheel.advance(ctx, "nuttx::timer::advance", 1);
                if fired > 0 {
                    ctx.cov("nuttx::isr::tick::timer_fired");
                }
                InvokeResult::Ok(self.sched.tick_count())
            }
            eof_hal::irq::GPIO => {
                ctx.cov("nuttx::isr::gpio::entry");
                ctx.charge(3);
                ctx.cov_var(
                    "nuttx::isr::gpio::env_vars",
                    (self.env.len() as u64).min(15),
                );
                InvokeResult::Ok(0)
            }
            eof_hal::irq::SERIAL_RX => {
                ctx.cov("nuttx::isr::uart_rx::entry");
                ctx.charge(3 + payload.len() as u64 / 4);
                InvokeResult::Ok(payload.len() as u64)
            }
            eof_hal::irq::SPI => {
                ctx.cov("nuttx::isr::spi_done::entry");
                ctx.charge(3);
                InvokeResult::Ok(0)
            }
            eof_hal::irq::I2C => {
                ctx.cov("nuttx::isr::i2c_done::entry");
                ctx.charge(3);
                InvokeResult::Ok(0)
            }
            eof_hal::irq::DMA => {
                ctx.cov("nuttx::isr::dma_done::entry");
                ctx.charge(4);
                let len = payload
                    .first_chunk::<4>()
                    .map(|b| u32::from_le_bytes(*b))
                    .unwrap_or(0);
                ctx.cov_var("nuttx::isr::dma_done::len_band", (len as u64 / 64).min(15));
                InvokeResult::Ok(len as u64)
            }
            _ => InvokeResult::Err(-38),
        }
    }

    fn api_table(&self) -> &[ApiDescriptor] {
        &self.api
    }

    fn exception_symbol(&self) -> &'static str {
        "up_assert"
    }

    fn assert_symbol(&self) -> &'static str {
        "_assert"
    }

    fn total_branch_sites(&self) -> usize {
        crate::image::total_sites(OsKind::NuttX)
    }

    fn boot_banner(&self) -> Vec<String> {
        vec![
            "NuttShell (NSH) NuttX-fc99353".into(),
            "nx_start: Entry".into(),
        ]
    }

    fn reset(&mut self, _ctx: &mut ExecCtx<'_>) {
        let api = std::mem::take(&mut self.api);
        *self = NuttxKernel::new();
        self.api = api;
    }

    fn invoke(&mut self, ctx: &mut ExecCtx<'_>, api_id: u16, args: &[KArg]) -> InvokeResult {
        match api_id {
            // task_create
            0 => match self.sched.create(
                ctx,
                "nuttx::task::task_create",
                arg_str(args, 0),
                arg_int(args, 1) as u8,
                arg_int(args, 2) as u32,
            ) {
                Ok(h) => InvokeResult::Ok(h as u64),
                Err(_) => InvokeResult::Err(-22),
            },
            // task_delete
            1 => match self
                .sched
                .delete(ctx, "nuttx::task::task_delete", arg_int(args, 0) as u32)
            {
                Ok(()) => InvokeResult::Ok(0),
                Err(_) => InvokeResult::Err(-3),
            },
            // setenv — bug #14.
            2 => {
                let name = arg_str(args, 0).to_string();
                let value = arg_str(args, 1).to_string();
                let overwrite = arg_int(args, 2) != 0;
                // Bug #14: the no-overwrite path reuses the *existing*
                // entry's buffer for a comparison but with the *new*
                // value's length — a long value overreads the old buffer,
                // and only when the first characters collide does the
                // strncmp word loop run far enough to fault.
                let existing = {
                    let mut probe_cov = crate::ctx::CovState::silent_probe();
                    let mut probe = ExecCtx::new(ctx.bus, &mut probe_cov);
                    self.env.getenv(&mut probe, "nuttx::kernel::getenv", &name)
                };
                let exists = existing.is_some();
                if exists && !overwrite {
                    // Breadcrumb ladder: the no-overwrite comparison is
                    // chunked by value length (strncmp word loop) and the
                    // entry lookup is keyed by name length.
                    ctx.cov_var(
                        "nuttx::kernel::setenv::cmp_len",
                        (value.len() as u64).min(64),
                    );
                    ctx.cov_var(
                        "nuttx::kernel::setenv::name_len",
                        (name.len() as u64).min(16),
                    );
                    let first_match = existing
                        .as_deref()
                        .and_then(|e| e.bytes().next())
                        .zip(value.bytes().next())
                        .is_some_and(|(a, b)| a == b);
                    if first_match {
                        ctx.cov("nuttx::kernel::setenv::cmp_word_entered");
                    }
                    if first_match && value.len() == 47 && name.len() <= 2 {
                        ctx.cov("nuttx::kernel::setenv::dup_long_value");
                        ctx.klog("up_assert: Assertion failed at env_setenv");
                        return InvokeResult::Fault(KernelFault::bug(
                            BugId::B14Setenv,
                            FaultKind::MemFault,
                            "PANIC: buffer overread in setenv",
                            vec!["setenv", "env_setenv", "strncmp"],
                            false,
                        ));
                    }
                }
                match self
                    .env
                    .setenv(ctx, "nuttx::kernel::setenv", &name, &value, overwrite)
                {
                    Ok(()) => InvokeResult::Ok(0),
                    Err(EnvError::BadName) => InvokeResult::Err(-22),
                    Err(EnvError::Full) => InvokeResult::Err(-12),
                    Err(_) => InvokeResult::Err(-1),
                }
            }
            // getenv
            3 => match self
                .env
                .getenv(ctx, "nuttx::kernel::getenv", arg_str(args, 0))
            {
                Some(v) => InvokeResult::Ok(v.len() as u64),
                None => InvokeResult::Err(-2),
            },
            // unsetenv
            4 => match self
                .env
                .unsetenv(ctx, "nuttx::kernel::unsetenv", arg_str(args, 0))
            {
                Ok(()) => InvokeResult::Ok(0),
                Err(_) => InvokeResult::Err(-2),
            },
            // gettimeofday — bug #15.
            5 => {
                ctx.cov("nuttx::libc::gettimeofday::entry");
                let tv_null = arg_int(args, 0) == 1;
                let tz_null = arg_int(args, 1) == 1;
                // Bug #15: once the realtime clock has been set, the
                // settime fast-path caches a tz conversion — a NULL tv
                // with a live tz then writes the cached timezone through
                // the tv pointer.
                if self.clock_was_set && tv_null && !tz_null {
                    ctx.cov("nuttx::libc::gettimeofday::null_tv_live_tz");
                    ctx.klog("up_assert: NULL pointer write in gettimeofday");
                    return InvokeResult::Fault(KernelFault::bug(
                        BugId::B15Gettimeofday,
                        FaultKind::MemFault,
                        "PANIC: NULL dereference in gettimeofday",
                        vec!["gettimeofday", "clock_gettime", "up_assert"],
                        true,
                    ));
                }
                if tv_null {
                    ctx.cov("nuttx::libc::gettimeofday::null_tv");
                    return InvokeResult::Err(-22);
                }
                match self.env.clock_gettime_us(
                    ctx,
                    "nuttx::libc::clock_gettime",
                    clockid::REALTIME,
                ) {
                    Ok(us) => InvokeResult::Ok(us),
                    Err(_) => InvokeResult::Err(-22),
                }
            }
            // clock_gettime
            6 => {
                match self
                    .env
                    .clock_gettime_us(ctx, "nuttx::libc::clock_gettime", arg_int(args, 0))
                {
                    Ok(us) => InvokeResult::Ok(us),
                    Err(_) => InvokeResult::Err(-22),
                }
            }
            // clock_getres — bug #19.
            7 => {
                let clock = arg_int(args, 0);
                let align = arg_int(args, 1);
                ctx.cov_var(
                    "nuttx::libc::clock_getres::clock_align",
                    clock.min(15) * 8 + align.min(7),
                );
                // Bug #19: the BOOTTIME branch stores the 64-bit
                // resolution with a doubleword store that traps on a
                // misaligned timespec.
                if clock == clockid::BOOTTIME && !align.is_multiple_of(4) {
                    ctx.cov("nuttx::libc::clock_getres::boottime_misaligned");
                    ctx.klog("up_assert: Unaligned access in clock_getres");
                    return InvokeResult::Fault(KernelFault::bug(
                        BugId::B19ClockGetres,
                        FaultKind::MemFault,
                        "PANIC: unaligned doubleword store in clock_getres",
                        vec!["clock_getres", "up_assert"],
                        false,
                    ));
                }
                match self
                    .env
                    .clock_getres_ns(ctx, "nuttx::libc::clock_getres", clock)
                {
                    Ok(ns) => InvokeResult::Ok(ns),
                    Err(_) => InvokeResult::Err(-22),
                }
            }
            // clock_settime
            8 => {
                match self
                    .env
                    .clock_settime_us(ctx, "nuttx::libc::clock_settime", arg_int(args, 0))
                {
                    Ok(()) => {
                        self.clock_was_set = true;
                        InvokeResult::Ok(0)
                    }
                    Err(EnvError::TimeRollback) => InvokeResult::Err(-22),
                    Err(_) => InvokeResult::Err(-1),
                }
            }
            // mq_open
            9 => {
                let name = mq_name_of(arg_int(args, 0));
                match self.mq.open(
                    ctx,
                    "nuttx::mqueue::mq_open",
                    name,
                    arg_int(args, 1) as u32,
                    arg_int(args, 2) as usize,
                ) {
                    Ok(d) => InvokeResult::Ok(d as u64),
                    Err(e) => Self::map_mq(e),
                }
            }
            // mq_send
            10 => match self.mq.send(
                ctx,
                "nuttx::mqueue::mq_send",
                arg_int(args, 0) as u32,
                arg_bytes(args, 1),
                arg_int(args, 2) as u8,
            ) {
                Ok(()) => InvokeResult::Ok(0),
                Err(e) => Self::map_mq(e),
            },
            // nxmq_timedsend — bug #16.
            11 => {
                let desc = arg_int(args, 0) as u32;
                let prio = arg_int(args, 1 + 1) as u8;
                let rel = arg_int(args, 3);
                // Breadcrumb ladder: the full-queue wait path sorts the
                // would-be waiter by priority, one comparison chain each.
                if self.mq.is_full(desc) && rel == 0 {
                    ctx.cov_var("nuttx::mqueue::nxmq_timedsend::wait_prio", prio as u64);
                }
                if self.mq.is_full(desc) && rel == 0 {
                    ctx.cov_var(
                        "nuttx::mqueue::nxmq_timedsend::inline_len",
                        (arg_bytes(args, 1).len() as u64).min(16),
                    );
                }
                // Bug #16: on a full queue with an already-expired
                // deadline, priority 27 aliases the reserved IRQ-waiter
                // slot — and only a message short enough for the inline
                // waiter record (≤ 4 bytes) takes that path — so the
                // expiry frees a record it never allocated.
                if self.mq.is_full(desc) && rel == 0 && prio == 27 && arg_bytes(args, 1).len() <= 4
                {
                    ctx.cov("nuttx::mqueue::nxmq_timedsend::expired_highprio");
                    ctx.klog("up_assert: double free in nxmq_timedsend");
                    return InvokeResult::Fault(KernelFault::bug(
                        BugId::B16MqTimedsend,
                        FaultKind::MemFault,
                        "PANIC: waiter record double-free in nxmq_timedsend",
                        vec!["nxmq_timedsend", "nxmq_wait_send", "mq_desfree"],
                        false,
                    ));
                }
                // `rel` is attacker-controlled; clamp far-future
                // deadlines instead of overflowing the tick counter.
                let deadline = ctx.bus.core_now().saturating_add(rel);
                match self.mq.timedsend(
                    ctx,
                    "nuttx::mqueue::nxmq_timedsend",
                    desc,
                    arg_bytes(args, 1),
                    prio,
                    deadline.saturating_sub(if rel == 0 { 1 } else { 0 }),
                ) {
                    Ok(()) => InvokeResult::Ok(0),
                    Err(e) => Self::map_mq(e),
                }
            }
            // mq_receive
            12 => match self
                .mq
                .receive(ctx, "nuttx::mqueue::mq_receive", arg_int(args, 0) as u32)
            {
                Ok((prio, _)) => InvokeResult::Ok(prio as u64),
                Err(e) => Self::map_mq(e),
            },
            // mq_close
            13 => match self
                .mq
                .close(ctx, "nuttx::mqueue::mq_close", arg_int(args, 0) as u32)
            {
                Ok(()) => InvokeResult::Ok(0),
                Err(e) => Self::map_mq(e),
            },
            // mq_unlink
            14 => match self.mq.unlink(
                ctx,
                "nuttx::mqueue::mq_unlink",
                mq_name_of(arg_int(args, 0)),
            ) {
                Ok(()) => InvokeResult::Ok(0),
                Err(e) => Self::map_mq(e),
            },
            // nxsem_init
            15 => {
                ctx.cov("nuttx::semaphore::nxsem_init::entry");
                let value = arg_int(args, 0).min(8) as i32;
                self.sems.push(Some(Semaphore::new(value, 8)));
                InvokeResult::Ok(self.sems.len() as u64 - 1)
            }
            // nxsem_wait
            16 => match self.sems.get_mut(arg_int(args, 0) as usize) {
                Some(Some(s)) => {
                    if s.count() > 0 {
                        let _ = s.try_take(ctx, "nuttx::semaphore::nxsem_wait");
                    } else {
                        s.take_blocking(ctx, "nuttx::semaphore::nxsem_wait");
                    }
                    InvokeResult::Ok(0)
                }
                _ => InvokeResult::Err(-22),
            },
            // nxsem_trywait — bug #17.
            17 => {
                let h = arg_int(args, 0) as usize;
                match self.sems.get_mut(h) {
                    Some(Some(s)) => match s.try_take(ctx, "nuttx::semaphore::nxsem_trywait") {
                        Ok(()) => InvokeResult::Ok(0),
                        Err(IpcError::WouldBlock) => InvokeResult::Err(-11),
                        Err(_) => InvokeResult::Err(-22),
                    },
                    Some(None) => {
                        // Destroyed. The count survived destruction; the
                        // trywait DEBUGASSERT on the wait list only fires
                        // when at least three waiters were recorded —
                        // fewer still fit the inline slots.
                        ctx.cov("nuttx::semaphore::nxsem_trywait::destroyed");
                        if let Some(waiters) = self.destroyed_with_waiters.get(&h).copied() {
                            ctx.cov_var(
                                "nuttx::semaphore::nxsem_trywait::waitlist",
                                waiters.min(7) as u64,
                            );
                            if waiters >= 3 {
                                ctx.klog("_assert: sem->semcount < 0 with empty waitlist in nxsem_trywait");
                                return InvokeResult::Fault(KernelFault::bug(
                                    BugId::B17SemTrywait,
                                    FaultKind::Assertion,
                                    "Assertion failed: waitlist consistency in nxsem_trywait",
                                    vec!["nxsem_trywait", "nxsem_wait_irq", "_assert"],
                                    true,
                                ));
                            }
                        }
                        InvokeResult::Err(-22)
                    }
                    None => InvokeResult::Err(-22),
                }
            }
            // nxsem_post
            18 => match self.sems.get_mut(arg_int(args, 0) as usize) {
                Some(Some(s)) => match s.give(ctx, "nuttx::semaphore::nxsem_post") {
                    Ok(()) => InvokeResult::Ok(0),
                    Err(_) => InvokeResult::Err(-12),
                },
                _ => InvokeResult::Err(-22),
            },
            // nxsem_destroy
            19 => {
                ctx.cov("nuttx::semaphore::nxsem_destroy::entry");
                let h = arg_int(args, 0) as usize;
                match self.sems.get_mut(h) {
                    Some(slot @ Some(_)) => {
                        let waiters = slot.as_ref().map(|s| s.waiters).unwrap_or(0);
                        self.destroyed_with_waiters.insert(h, waiters);
                        *slot = None;
                        InvokeResult::Ok(0)
                    }
                    _ => InvokeResult::Err(-22),
                }
            }
            // timer_create — bug #18.
            20 => {
                let clock = arg_int(args, 0);
                let notify = arg_int(args, 1);
                let cookie = arg_int(args, 2);
                ctx.cov_var("nuttx::timer::timer_create::notify", notify.min(7));
                ctx.cov_var(
                    "nuttx::timer::timer_create::cookie_band",
                    (cookie / 64).min(31),
                );
                // Bug #18: SIGEV_THREAD on the monotonic clock with a
                // large 16-aligned cookie lands the notification work
                // item in the wrong pool; the create itself scribbles the
                // pool header.
                if clock == clockid::MONOTONIC
                    && notify == 2
                    && cookie >= 500
                    && cookie.is_multiple_of(16)
                {
                    ctx.cov("nuttx::timer::timer_create::monotonic_thread");
                    ctx.klog("up_assert: work queue pool corrupt in timer_create");
                    return InvokeResult::Fault(KernelFault::bug(
                        BugId::B18TimerCreate,
                        FaultKind::MemFault,
                        "PANIC: wrong-pool allocation in timer_create",
                        vec!["timer_create", "timer_allocate", "work_queue"],
                        true,
                    ));
                }
                match self
                    .wheel
                    .create(ctx, "nuttx::timer::timer_create", 10, TimerMode::Periodic)
                {
                    Ok(h) => {
                        // Silicon-only: the hardware timer's prescaler is
                        // programmed per cookie band.
                        if ctx.bus.silicon {
                            ctx.cov_var("nuttx::hwtimer::prescaler", (cookie / 32).min(15));
                        }
                        self.timers.push(PosixTimer { wheel_handle: h });
                        InvokeResult::Ok(self.timers.len() as u64 - 1)
                    }
                    Err(_) => InvokeResult::Err(-12),
                }
            }
            // timer_settime
            21 => {
                let Some(t) = self.timers.get(arg_int(args, 0) as usize) else {
                    return InvokeResult::Err(-22);
                };
                let wh = t.wheel_handle;
                let period = arg_int(args, 1);
                let r = if period == 0 {
                    self.wheel.stop(ctx, "nuttx::timer::timer_settime", wh)
                } else {
                    self.wheel.start(ctx, "nuttx::timer::timer_settime", wh)
                };
                match r {
                    Ok(()) => InvokeResult::Ok(0),
                    Err(TimerError::BadHandle) => InvokeResult::Err(-22),
                    Err(_) => InvokeResult::Err(-1),
                }
            }
            // timer_delete
            22 => {
                let Some(t) = self.timers.get(arg_int(args, 0) as usize) else {
                    return InvokeResult::Err(-22);
                };
                let wh = t.wheel_handle;
                match self.wheel.delete(ctx, "nuttx::timer::timer_delete", wh) {
                    Ok(()) => InvokeResult::Ok(0),
                    Err(_) => InvokeResult::Err(-22),
                }
            }
            // sched_tick
            23 => {
                let n = arg_int(args, 0).clamp(1, 10);
                for _ in 0..n {
                    self.sched.tick(ctx, "nuttx::kernel::tick");
                }
                self.wheel.advance(ctx, "nuttx::timer::advance", n);
                InvokeResult::Ok(self.sched.tick_count())
            }
            // nx_spi_exchange
            24 => {
                use eof_hal::mmio::{periph, reg, CTRL_START};
                ctx.cov("nuttx::spi::nx_spi_exchange::entry");
                let tx_len = arg_int(args, 0).min(64);
                let rx_len = arg_int(args, 1).min(64);
                ctx.charge(8 + tx_len + rx_len);
                ctx.bus
                    .mmio_write(periph::SPI, reg::CTRL, CTRL_START | (tx_len << 8));
                let status = ctx.bus.mmio_read(SITE_SPI_STATUS, periph::SPI, reg::STATUS);
                ctx.cov_var(
                    "nuttx::spi::nx_spi_exchange::status_band",
                    (status & 0x7) as u64,
                );
                let mut sum = 0u64;
                for i in 0..rx_len.min(8) as u32 {
                    sum += ctx.bus.mmio_read(SITE_SPI_DATA + i, periph::SPI, reg::DATA) as u64;
                }
                InvokeResult::Ok(sum)
            }
            // nx_i2c_read — bug #25.
            25 => {
                use eof_hal::mmio::{periph, reg, CTRL_START};
                ctx.cov("nuttx::i2c::nx_i2c_read::entry");
                let addr = arg_int(args, 0) & 0x7f;
                let len = arg_int(args, 1).min(32);
                let restart = arg_int(args, 2) != 0;
                ctx.charge(6 + len);
                if restart {
                    ctx.cov("nuttx::i2c::nx_i2c_read::restart");
                }
                ctx.bus
                    .mmio_write(periph::I2C, reg::CTRL, CTRL_START | (addr << 1));
                let status = ctx.bus.mmio_read(SITE_I2C_STATUS, periph::I2C, reg::STATUS);
                if status & 0x1 != 0 {
                    ctx.cov("nuttx::i2c::nx_i2c_read::nack");
                    // Bug #25: a NACK while a repeated-start is pending
                    // leaves the bus state machine mid-transaction; the
                    // recovery DEBUGASSERT on the controller state trips
                    // and the bus is wedged afterwards.
                    if restart {
                        ctx.klog("_assert: i2c state machine stuck in nx_i2c_read");
                        return InvokeResult::Fault(KernelFault::bug(
                            BugId::B25I2cNackRestart,
                            FaultKind::Assertion,
                            "Assertion failed: pending restart after NACK in nx_i2c_read",
                            vec!["nx_i2c_read", "i2c_sem_waitdone", "_assert"],
                            true,
                        ));
                    }
                    return InvokeResult::Err(-5);
                }
                let mut sum = 0u64;
                for i in 0..len.min(8) as u32 {
                    sum += ctx.bus.mmio_read(SITE_I2C_DATA + i, periph::I2C, reg::DATA) as u64;
                }
                InvokeResult::Ok(sum)
            }
            // nx_dma_setup — bug #24.
            26 => {
                use eof_hal::mmio::{periph, reg, CTRL_START};
                ctx.cov("nuttx::dma::nx_dma_setup::entry");
                let src = arg_int(args, 0);
                let dst = arg_int(args, 1);
                let len = arg_int(args, 2).min(131072);
                ctx.charge(10 + len / 64);
                ctx.bus.mmio_write(periph::DMA, reg::SRC, src);
                ctx.bus.mmio_write(periph::DMA, reg::DST, dst);
                // The register write keeps the full length; the *driver's*
                // shadow copy below is what bug #24 truncates.
                ctx.bus.mmio_write(periph::DMA, reg::LEN, len);
                ctx.bus.mmio_write(periph::DMA, reg::CTRL, CTRL_START);
                let status = ctx.bus.mmio_read(SITE_DMA_STATUS, periph::DMA, reg::STATUS);
                ctx.cov_var("nuttx::dma::nx_dma_setup::chan_band", (status & 0x3) as u64);
                // Bug #24: the driver stores the length in a uint16_t
                // shadow field. Past 65535 the shadow wraps; when the
                // engine then signals a half-complete (bit 0x4) the
                // residue computation underflows and the cleanup walks
                // past the buffer.
                if len > 65535 && status & 0x4 != 0 {
                    ctx.cov("nuttx::dma::nx_dma_setup::len_wrap");
                    ctx.klog("up_assert: residue underflow in nx_dma_setup");
                    return InvokeResult::Fault(KernelFault::bug(
                        BugId::B24DmaLenTruncation,
                        FaultKind::Panic,
                        "PANIC: 16-bit length truncation in nx_dma_setup",
                        vec!["nx_dma_setup", "dma_residue", "up_assert"],
                        false,
                    ));
                }
                InvokeResult::Ok(len)
            }
            _ => InvokeResult::Err(-88),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::os::testutil::{bus, call, is_bug, ok};

    #[test]
    fn bug14_needs_colliding_first_char_short_name_47_bytes() {
        let mut k = NuttxKernel::new();
        let mut b = bus();
        let v47 = "v".repeat(47);
        // Fresh name: fine.
        ok(call(
            &mut k,
            &mut b,
            "setenv",
            &[KArg::Str("A".into()), KArg::Str(v47.clone()), KArg::Int(0)],
        ));
        // Existing + overwrite: fine.
        ok(call(
            &mut k,
            &mut b,
            "setenv",
            &[KArg::Str("A".into()), KArg::Str(v47.clone()), KArg::Int(1)],
        ));
        // No-overwrite, first chars differ: strncmp exits early.
        ok(call(
            &mut k,
            &mut b,
            "setenv",
            &[
                KArg::Str("A".into()),
                KArg::Str(format!("w{}", "v".repeat(46))),
                KArg::Int(0),
            ],
        ));
        // Colliding first char but near-miss lengths: fine.
        ok(call(
            &mut k,
            &mut b,
            "setenv",
            &[
                KArg::Str("A".into()),
                KArg::Str("v".repeat(46)),
                KArg::Int(0),
            ],
        ));
        ok(call(
            &mut k,
            &mut b,
            "setenv",
            &[
                KArg::Str("A".into()),
                KArg::Str("v".repeat(48)),
                KArg::Int(0),
            ],
        ));
        // Long name: fine.
        ok(call(
            &mut k,
            &mut b,
            "setenv",
            &[
                KArg::Str("LONGNAME".into()),
                KArg::Str(v47.clone()),
                KArg::Int(0),
            ],
        ));
        ok(call(
            &mut k,
            &mut b,
            "setenv",
            &[
                KArg::Str("LONGNAME".into()),
                KArg::Str(v47.clone()),
                KArg::Int(0),
            ],
        ));
        // Colliding first char + 47 bytes + short name: panic.
        let r = call(
            &mut k,
            &mut b,
            "setenv",
            &[KArg::Str("A".into()), KArg::Str(v47), KArg::Int(0)],
        );
        assert!(is_bug(&r, 14));
    }

    #[test]
    fn bug15_needs_settime_then_null_tv_live_tz() {
        let mut k = NuttxKernel::new();
        let mut b = bus();
        assert!(
            ok(call(
                &mut k,
                &mut b,
                "gettimeofday",
                &[KArg::Int(0), KArg::Int(0)]
            )) > 0
        );
        // Before any settime, the NULL-tv path is only EINVAL.
        assert!(matches!(
            call(
                &mut k,
                &mut b,
                "gettimeofday",
                &[KArg::Int(1), KArg::Int(0)]
            ),
            InvokeResult::Err(-22)
        ));
        // Set the clock far forward, then the combination faults.
        ok(call(
            &mut k,
            &mut b,
            "clock_settime",
            &[KArg::Int(u64::MAX / 4)],
        ));
        assert!(!call(
            &mut k,
            &mut b,
            "gettimeofday",
            &[KArg::Int(0), KArg::Int(1)]
        )
        .is_fault());
        assert!(matches!(
            call(
                &mut k,
                &mut b,
                "gettimeofday",
                &[KArg::Int(1), KArg::Int(1)]
            ),
            InvokeResult::Err(-22)
        ));
        let r = call(
            &mut k,
            &mut b,
            "gettimeofday",
            &[KArg::Int(1), KArg::Int(0)],
        );
        assert!(is_bug(&r, 15));
    }

    #[test]
    fn bug16_full_queue_expired_deadline_high_prio() {
        let mut k = NuttxKernel::new();
        let mut b = bus();
        let d = ok(call(
            &mut k,
            &mut b,
            "mq_open",
            &[KArg::Int(0), KArg::Int(16), KArg::Int(2)],
        ));
        ok(call(
            &mut k,
            &mut b,
            "mq_send",
            &[KArg::Int(d), KArg::Bytes(vec![1]), KArg::Int(1)],
        ));
        ok(call(
            &mut k,
            &mut b,
            "mq_send",
            &[KArg::Int(d), KArg::Bytes(vec![2]), KArg::Int(1)],
        ));
        // Full + expired + near-miss priorities: plain ETIMEDOUT.
        for prio in [5u64, 26, 28] {
            assert!(matches!(
                call(
                    &mut k,
                    &mut b,
                    "nxmq_timedsend",
                    &[
                        KArg::Int(d),
                        KArg::Bytes(vec![3]),
                        KArg::Int(prio),
                        KArg::Int(0)
                    ]
                ),
                InvokeResult::Err(-110)
            ));
        }
        // Full + expired + prio 27 but an over-long message: ETIMEDOUT.
        assert!(matches!(
            call(
                &mut k,
                &mut b,
                "nxmq_timedsend",
                &[
                    KArg::Int(d),
                    KArg::Bytes(vec![9; 8]),
                    KArg::Int(27),
                    KArg::Int(0)
                ]
            ),
            InvokeResult::Err(-110)
        ));
        // Not-full + expired + the magic prio: sends fine.
        ok(call(&mut k, &mut b, "mq_receive", &[KArg::Int(d)]));
        ok(call(
            &mut k,
            &mut b,
            "nxmq_timedsend",
            &[
                KArg::Int(d),
                KArg::Bytes(vec![4]),
                KArg::Int(27),
                KArg::Int(0),
            ],
        ));
        // Full + expired + priority 27 + inline-sized message: panic.
        let r = call(
            &mut k,
            &mut b,
            "nxmq_timedsend",
            &[
                KArg::Int(d),
                KArg::Bytes(vec![5]),
                KArg::Int(27),
                KArg::Int(0),
            ],
        );
        assert!(is_bug(&r, 16));
    }

    #[test]
    fn bug17_trywait_on_sem_destroyed_with_waiters() {
        let mut k = NuttxKernel::new();
        let mut b = bus();
        let s = ok(call(&mut k, &mut b, "nxsem_init", &[KArg::Int(0)]));
        // Destroy without waiters → trywait is only EINVAL.
        ok(call(&mut k, &mut b, "nxsem_destroy", &[KArg::Int(s)]));
        assert!(matches!(
            call(&mut k, &mut b, "nxsem_trywait", &[KArg::Int(s)]),
            InvokeResult::Err(-22)
        ));
        // Two recorded waiters: still only EINVAL (breadcrumb).
        let s1 = ok(call(&mut k, &mut b, "nxsem_init", &[KArg::Int(0)]));
        ok(call(&mut k, &mut b, "nxsem_wait", &[KArg::Int(s1)]));
        ok(call(&mut k, &mut b, "nxsem_wait", &[KArg::Int(s1)]));
        ok(call(&mut k, &mut b, "nxsem_destroy", &[KArg::Int(s1)]));
        assert!(matches!(
            call(&mut k, &mut b, "nxsem_trywait", &[KArg::Int(s1)]),
            InvokeResult::Err(-22)
        ));
        // Three recorded waiters overflow the inline slots: assert fires.
        let s2 = ok(call(&mut k, &mut b, "nxsem_init", &[KArg::Int(0)]));
        ok(call(&mut k, &mut b, "nxsem_wait", &[KArg::Int(s2)]));
        ok(call(&mut k, &mut b, "nxsem_wait", &[KArg::Int(s2)]));
        ok(call(&mut k, &mut b, "nxsem_wait", &[KArg::Int(s2)]));
        ok(call(&mut k, &mut b, "nxsem_destroy", &[KArg::Int(s2)]));
        let r = call(&mut k, &mut b, "nxsem_trywait", &[KArg::Int(s2)]);
        assert!(is_bug(&r, 17));
    }

    #[test]
    fn bug18_monotonic_sigev_thread_large_aligned_cookie() {
        let mut k = NuttxKernel::new();
        let mut b = bus();
        for (clock, notify, cookie) in [
            (0, 2, 512),
            (1, 1, 512),
            (1, 2, 500),
            (1, 2, 100),
            (1, 2, 513),
        ] {
            let r = call(
                &mut k,
                &mut b,
                "timer_create",
                &[KArg::Int(clock), KArg::Int(notify), KArg::Int(cookie)],
            );
            assert!(
                !r.is_fault(),
                "clock={clock} notify={notify} cookie={cookie}"
            );
        }
        let r = call(
            &mut k,
            &mut b,
            "timer_create",
            &[KArg::Int(1), KArg::Int(2), KArg::Int(512)],
        );
        assert!(is_bug(&r, 18));
    }

    #[test]
    fn bug19_boottime_misaligned() {
        let mut k = NuttxKernel::new();
        let mut b = bus();
        assert!(!call(
            &mut k,
            &mut b,
            "clock_getres",
            &[KArg::Int(7), KArg::Int(4)]
        )
        .is_fault());
        assert!(!call(
            &mut k,
            &mut b,
            "clock_getres",
            &[KArg::Int(0), KArg::Int(3)]
        )
        .is_fault());
        let r = call(
            &mut k,
            &mut b,
            "clock_getres",
            &[KArg::Int(7), KArg::Int(3)],
        );
        assert!(is_bug(&r, 19));
    }

    #[test]
    fn env_roundtrip_through_api() {
        let mut k = NuttxKernel::new();
        let mut b = bus();
        ok(call(
            &mut k,
            &mut b,
            "setenv",
            &[
                KArg::Str("HOME".into()),
                KArg::Str("/root".into()),
                KArg::Int(1),
            ],
        ));
        assert_eq!(
            ok(call(&mut k, &mut b, "getenv", &[KArg::Str("HOME".into())])),
            5
        );
        ok(call(
            &mut k,
            &mut b,
            "unsetenv",
            &[KArg::Str("HOME".into())],
        ));
        assert!(matches!(
            call(&mut k, &mut b, "getenv", &[KArg::Str("HOME".into())]),
            InvokeResult::Err(-2)
        ));
    }

    #[test]
    fn mq_priority_through_api() {
        let mut k = NuttxKernel::new();
        let mut b = bus();
        let d = ok(call(
            &mut k,
            &mut b,
            "mq_open",
            &[KArg::Int(1), KArg::Int(16), KArg::Int(4)],
        ));
        ok(call(
            &mut k,
            &mut b,
            "mq_send",
            &[KArg::Int(d), KArg::Bytes(vec![1]), KArg::Int(2)],
        ));
        ok(call(
            &mut k,
            &mut b,
            "mq_send",
            &[KArg::Int(d), KArg::Bytes(vec![2]), KArg::Int(9)],
        ));
        assert_eq!(ok(call(&mut k, &mut b, "mq_receive", &[KArg::Int(d)])), 9);
    }

    #[test]
    fn timer_lifecycle() {
        let mut k = NuttxKernel::new();
        let mut b = bus();
        let t = ok(call(
            &mut k,
            &mut b,
            "timer_create",
            &[KArg::Int(0), KArg::Int(1), KArg::Int(0)],
        ));
        ok(call(
            &mut k,
            &mut b,
            "timer_settime",
            &[KArg::Int(t), KArg::Int(5)],
        ));
        ok(call(&mut k, &mut b, "sched_tick", &[KArg::Int(10)]));
        ok(call(
            &mut k,
            &mut b,
            "timer_settime",
            &[KArg::Int(t), KArg::Int(0)],
        ));
        ok(call(&mut k, &mut b, "timer_delete", &[KArg::Int(t)]));
    }

    #[test]
    fn no_spurious_faults_on_zero_args() {
        let mut k = NuttxKernel::new();
        let mut b = bus();
        for id in 0..k.api_table().len() as u16 {
            let mut cov = crate::ctx::CovState::uninstrumented();
            let mut ctx = crate::ctx::ExecCtx::new(&mut b, &mut cov);
            let r = k.invoke(&mut ctx, id, &[]);
            assert!(!r.is_fault(), "api {id} faulted with no args: {r:?}");
        }
    }

    #[test]
    fn bug24_needs_oversize_len_and_half_complete() {
        // Oversize length on a quiet engine, in-range length with the
        // half-complete bit: both benign.
        for (stream, len) in [(0x00u8, 100_000u64), (0x04, 65_535)] {
            let mut k = NuttxKernel::new();
            let mut b = bus();
            b.mmio.load_stream(&[stream]);
            let r = call(
                &mut k,
                &mut b,
                "nx_dma_setup",
                &[KArg::Int(0x10), KArg::Int(0x20), KArg::Int(len)],
            );
            assert!(!r.is_fault(), "{stream:#x}/{len}");
        }
        let mut k = NuttxKernel::new();
        let mut b = bus();
        b.mmio.load_stream(&[0x04]);
        let r = call(
            &mut k,
            &mut b,
            "nx_dma_setup",
            &[KArg::Int(0x10), KArg::Int(0x20), KArg::Int(100_000)],
        );
        assert!(is_bug(&r, 24), "got {r:?}");
    }

    #[test]
    fn bug25_needs_nack_with_pending_restart() {
        // NACK without restart: plain error. ACK with restart: fine.
        let mut k = NuttxKernel::new();
        let mut b = bus();
        b.mmio.load_stream(&[0x01]);
        assert_eq!(
            call(
                &mut k,
                &mut b,
                "nx_i2c_read",
                &[KArg::Int(0x50), KArg::Int(4), KArg::Int(0)],
            ),
            InvokeResult::Err(-5)
        );
        b.mmio.load_stream(&[0x00, 0x05]);
        assert!(!call(
            &mut k,
            &mut b,
            "nx_i2c_read",
            &[KArg::Int(0x50), KArg::Int(1), KArg::Int(1)],
        )
        .is_fault());
        // NACK while a repeated-start is pending: assertion, bus wedged.
        b.mmio.load_stream(&[0x01]);
        let r = call(
            &mut k,
            &mut b,
            "nx_i2c_read",
            &[KArg::Int(0x50), KArg::Int(4), KArg::Int(1)],
        );
        assert!(is_bug(&r, 25), "got {r:?}");
        if let InvokeResult::Fault(f) = r {
            assert!(f.hangs_after);
        }
    }
}
