//! FreeRTOS kernel model.
//!
//! Personality: `xTaskCreate`-style CamelCase APIs, tick-driven
//! round-robin scheduling, heap_4-style allocator, queues as the universal
//! IPC primitive. Hosts the JSON and HTTP modules used by the paper's
//! application-level comparison (Table 4) and bug #13
//! (`load_partitions()`).

use crate::api::{ApiDescriptor, InvokeResult, KArg, KernelFault};
use crate::bugs::BugId;
use crate::ctx::ExecCtx;
use crate::kernel::{Kernel, OsKind};
use crate::os::{a_bytes, a_enum, a_int, a_str, arg_bytes, arg_int, arg_str};
use crate::subsys::heap::{FreeListHeap, HeapError};
use crate::subsys::http::{self, Router};
use crate::subsys::ipc::{IpcError, MsgQueue, Semaphore};
use crate::subsys::json;
use crate::subsys::sched::{Policy, SchedError, Scheduler};
use crate::subsys::timer::{TimerError, TimerMode, TimerWheel};
use eof_hal::FaultKind;

const TIMER_MODES: &[(&str, u64)] = &[("ONE_SHOT", 0), ("AUTO_RELOAD", 1)];
const SPI_FLAGS: &[(&str, u64)] = &[
    ("SPI_NONE", 0x0),
    ("SPI_LSB_FIRST", 0x1),
    ("SPI_DMA_ASSIST", 0x2),
    ("SPI_LOOPBACK", 0x4),
];

// MMIO replay/inject site ids of the driver layer (the PC stand-ins —
// each distinct read location in driver code gets its own site).
const SITE_SPI_STATUS: u32 = 0x4600;
const SITE_SPI_DATA: u32 = 0x4610;
const SITE_I2C_STATUS: u32 = 0x4620;
const SITE_I2C_DATA: u32 = 0x4630;
const SITE_DMA_STATUS: u32 = 0x4640;
const PART_FLAGS: &[(&str, u64)] = &[
    ("PART_NONE", 0x0),
    ("PART_VERIFY", 0x1),
    ("PART_FORMAT", 0x4),
    ("PART_LEGACY", 0x10),
    ("PART_WIPE", 0x20),
];

/// The FreeRTOS model.
pub struct FreeRtosKernel {
    api: Vec<ApiDescriptor>,
    sched: Scheduler,
    heap: FreeListHeap,
    queues: Vec<Option<MsgQueue>>,
    sems: Vec<Semaphore>,
    timers: TimerWheel,
    router: Router,
    partitions_loaded: [bool; 4],
    /// Bytes received by the serial RX ISR, drained by tasks.
    rx_fifo: Vec<u8>,
    /// GPIO edges latched by the ISR for deferred processing.
    gpio_edges: u32,
}

impl Default for FreeRtosKernel {
    fn default() -> Self {
        Self::new()
    }
}

impl FreeRtosKernel {
    /// A freshly booted FreeRTOS.
    pub fn new() -> Self {
        FreeRtosKernel {
            api: Self::build_api(),
            sched: Scheduler::new(Policy::TickRoundRobin, 16, 31, 16, 128),
            heap: FreeListHeap::new(64 * 1024),
            queues: Vec::new(),
            sems: Vec::new(),
            timers: TimerWheel::new(16),
            router: Router::with_default_routes(),
            partitions_loaded: [false; 4],
            rx_fifo: Vec::new(),
            gpio_edges: 0,
        }
    }

    fn build_api() -> Vec<ApiDescriptor> {
        let mut v = Vec::new();
        let mut id = 0u16;
        let mut api = |name: &'static str,
                       args: Vec<crate::api::ArgMeta>,
                       returns: Option<&'static str>,
                       module: &'static str,
                       doc: &'static str| {
            let d = ApiDescriptor {
                id,
                name,
                args,
                returns,
                module,
                doc,
            };
            id += 1;
            d
        };
        use crate::os::a_res;
        v.push(api(
            "xTaskCreate",
            vec![
                a_str("pcName", 16),
                a_int("usStackDepth", 128, 4096),
                a_int("uxPriority", 0, 31),
            ],
            Some("task"),
            "task",
            "Create a task with a bounded static stack and tick-driven scheduling.",
        ));
        v.push(api(
            "vTaskDelete",
            vec![a_res("xTask", "task")],
            None,
            "task",
            "Delete a task.",
        ));
        v.push(api(
            "vTaskSuspend",
            vec![a_res("xTask", "task")],
            None,
            "task",
            "Suspend a task.",
        ));
        v.push(api(
            "vTaskResume",
            vec![a_res("xTask", "task")],
            None,
            "task",
            "Resume a suspended task.",
        ));
        v.push(api(
            "vTaskPrioritySet",
            vec![a_res("xTask", "task"), a_int("uxNewPriority", 0, 31)],
            None,
            "task",
            "Change a task's priority.",
        ));
        v.push(api(
            "vTaskDelay",
            vec![a_res("xTask", "task"), a_int("xTicksToDelay", 0, 1000)],
            None,
            "task",
            "Block a task for a number of ticks.",
        ));
        v.push(api(
            "xQueueCreate",
            vec![a_int("uxQueueLength", 1, 32), a_int("uxItemSize", 1, 128)],
            Some("queue"),
            "queue",
            "Create a bounded queue.",
        ));
        v.push(api(
            "xQueueSend",
            vec![a_res("xQueue", "queue"), a_bytes("pvItemToQueue", 128)],
            None,
            "queue",
            "Send an item to the back of a queue.",
        ));
        v.push(api(
            "xQueueReceive",
            vec![a_res("xQueue", "queue")],
            None,
            "queue",
            "Receive the front item.",
        ));
        v.push(api(
            "vQueueDelete",
            vec![a_res("xQueue", "queue")],
            None,
            "queue",
            "Delete a queue.",
        ));
        v.push(api(
            "xSemaphoreCreateCounting",
            vec![a_int("uxMaxCount", 1, 16), a_int("uxInitialCount", 0, 16)],
            Some("sem"),
            "sem",
            "Create a counting semaphore.",
        ));
        v.push(api(
            "xSemaphoreTake",
            vec![a_res("xSemaphore", "sem")],
            None,
            "sem",
            "Take (non-blocking).",
        ));
        v.push(api(
            "xSemaphoreGive",
            vec![a_res("xSemaphore", "sem")],
            None,
            "sem",
            "Give the semaphore.",
        ));
        v.push(api(
            "xTimerCreate",
            vec![
                a_int("xTimerPeriod", 1, 1000),
                a_enum("uxAutoReload", "timer_mode", TIMER_MODES),
            ],
            Some("timer"),
            "timer",
            "Create a software timer.",
        ));
        v.push(api(
            "xTimerStart",
            vec![a_res("xTimer", "timer")],
            None,
            "timer",
            "Arm a timer.",
        ));
        v.push(api(
            "xTimerStop",
            vec![a_res("xTimer", "timer")],
            None,
            "timer",
            "Disarm a timer.",
        ));
        v.push(api(
            "pvPortMalloc",
            vec![a_int("xWantedSize", 1, 4096)],
            Some("mem"),
            "heap",
            "Allocate from the FreeRTOS heap.",
        ));
        v.push(api(
            "vPortFree",
            vec![a_res("pv", "mem")],
            None,
            "heap",
            "Free a heap allocation.",
        ));
        v.push(api(
            "load_partitions",
            vec![
                a_int("slot", 0, 3),
                a_enum("flags", "part_flags", PART_FLAGS),
            ],
            None,
            "kernel",
            "Load a flash partition table slot into the kernel.",
        ));
        v.push(api(
            "json_parse",
            vec![a_bytes("buf", 256)],
            None,
            "json",
            "Parse a JSON document with the bundled coreJSON-style parser.",
        ));
        v.push(api(
            "json_encode",
            vec![a_int("depth", 0, 16), a_int("width", 1, 4)],
            None,
            "json",
            "Encode a synthetic object tree.",
        ));
        v.push(api(
            "http_request",
            vec![a_bytes("buf", 256)],
            None,
            "http",
            "Feed one request to the embedded HTTP server.",
        ));
        v.push(api(
            "vTaskTickIncrement",
            vec![a_int("ticks", 1, 10)],
            None,
            "kernel",
            "Advance the kernel tick, driving the scheduler and timers.",
        ));
        v.push(api(
            "xSpiTransfer",
            vec![
                a_int("xLength", 0, 64),
                a_enum("uxFlags", "spi_flags", SPI_FLAGS),
            ],
            None,
            "spi",
            "Clock one SPI transfer through the controller, polling STATUS and draining DATA.",
        ));
        v.push(api(
            "xI2cMasterRead",
            vec![a_int("ucAddress", 0, 127), a_int("xLength", 0, 32)],
            None,
            "i2c",
            "Master-mode I2C read: address the slave, check ACK, drain DATA bytes.",
        ));
        v.push(api(
            "xDmaStart",
            vec![
                a_int("ulSrc", 0, 0xffff_ffff),
                a_int("ulDst", 0, 0xffff_ffff),
                a_int("xLength", 0, 0x2_0000),
            ],
            None,
            "dma",
            "Program a DMA channel (src/dst/len) and start it; completion raises the DMA IRQ.",
        ));
        v
    }

    fn map_sched(e: SchedError) -> InvokeResult {
        InvokeResult::Err(match e {
            SchedError::NameTooLong => -1,
            SchedError::BadPriority => -2,
            SchedError::TooManyTasks => -3,
            SchedError::BadHandle => -4,
            SchedError::StackTooSmall => -5,
        })
    }

    fn map_ipc(e: IpcError) -> InvokeResult {
        InvokeResult::Err(match e {
            IpcError::Full => -10,
            IpcError::Empty => -11,
            IpcError::MsgTooBig => -12,
            IpcError::WouldBlock => -13,
            IpcError::Busy => -14,
            IpcError::NotOwner => -15,
            IpcError::Purged => -16,
        })
    }
}

impl Kernel for FreeRtosKernel {
    fn os(&self) -> OsKind {
        OsKind::FreeRtos
    }

    fn on_interrupt(&mut self, ctx: &mut ExecCtx<'_>, line: u8, payload: &[u8]) -> InvokeResult {
        match line {
            eof_hal::irq::SERIAL_RX => {
                ctx.cov("freertos::isr::uart_rx::entry");
                ctx.charge(4 + payload.len() as u64 / 4);
                ctx.cov_var(
                    "freertos::isr::uart_rx::len_band",
                    (payload.len() as u64 / 4).min(15),
                );
                // ISR-side FIFO with overrun handling.
                for &b in payload {
                    if self.rx_fifo.len() >= 64 {
                        ctx.cov("freertos::isr::uart_rx::overrun");
                        break;
                    }
                    self.rx_fifo.push(b);
                }
                // Framing-error path for non-ASCII bytes.
                if payload.iter().any(|b| *b >= 0x80) {
                    ctx.cov("freertos::isr::uart_rx::framing_error");
                }
                InvokeResult::Ok(self.rx_fifo.len() as u64)
            }
            eof_hal::irq::GPIO => {
                ctx.cov("freertos::isr::gpio::entry");
                ctx.charge(3);
                self.gpio_edges = self.gpio_edges.wrapping_add(1);
                ctx.cov_var(
                    "freertos::isr::gpio::edge_band",
                    (self.gpio_edges as u64).min(15),
                );
                InvokeResult::Ok(self.gpio_edges as u64)
            }
            eof_hal::irq::TIMER => {
                ctx.cov("freertos::isr::tick::entry");
                self.sched.tick(ctx, "freertos::kernel::tick");
                self.timers.advance(ctx, "freertos::timer::advance", 1);
                InvokeResult::Ok(self.sched.tick_count())
            }
            eof_hal::irq::SPI => {
                ctx.cov("freertos::isr::spi_done::entry");
                ctx.charge(3);
                InvokeResult::Ok(0)
            }
            eof_hal::irq::I2C => {
                ctx.cov("freertos::isr::i2c_done::entry");
                ctx.charge(3);
                InvokeResult::Ok(0)
            }
            eof_hal::irq::DMA => {
                ctx.cov("freertos::isr::dma_done::entry");
                ctx.charge(4);
                // Completion payload carries the transferred length.
                let len = payload
                    .first_chunk::<4>()
                    .map(|b| u32::from_le_bytes(*b))
                    .unwrap_or(0);
                ctx.cov_var(
                    "freertos::isr::dma_done::len_band",
                    (len as u64 / 64).min(15),
                );
                InvokeResult::Ok(len as u64)
            }
            _ => {
                ctx.cov("freertos::isr::spurious");
                InvokeResult::Err(-38)
            }
        }
    }

    fn api_table(&self) -> &[ApiDescriptor] {
        &self.api
    }

    fn exception_symbol(&self) -> &'static str {
        "panic_handler"
    }

    fn assert_symbol(&self) -> &'static str {
        "vAssertCalled"
    }

    fn total_branch_sites(&self) -> usize {
        crate::image::total_sites(OsKind::FreeRtos)
    }

    fn boot_banner(&self) -> Vec<String> {
        vec![
            "FreeRTOS v5.4 booting".into(),
            "heap_4: 65536 bytes at 0x20001000".into(),
            "scheduler: tick-driven, 32 priorities".into(),
        ]
    }

    fn reset(&mut self, _ctx: &mut ExecCtx<'_>) {
        let api = std::mem::take(&mut self.api);
        *self = FreeRtosKernel::new();
        self.api = api;
    }

    fn invoke(&mut self, ctx: &mut ExecCtx<'_>, api_id: u16, args: &[KArg]) -> InvokeResult {
        match api_id {
            // xTaskCreate
            0 => match self.sched.create(
                ctx,
                "freertos::task::xTaskCreate",
                arg_str(args, 0),
                arg_int(args, 2) as u8,
                arg_int(args, 1) as u32,
            ) {
                Ok(h) => {
                    // Silicon-only: the port programs an MPU region per
                    // stack; region geometry branches by stack size. An
                    // emulator without an MPU model skips all of it.
                    if ctx.bus.silicon {
                        ctx.cov_var(
                            "freertos::mpu::stack_region",
                            (arg_int(args, 1) / 256).min(15),
                        );
                    }
                    InvokeResult::Ok(h as u64)
                }
                Err(e) => Self::map_sched(e),
            },
            // vTaskDelete
            1 => {
                match self
                    .sched
                    .delete(ctx, "freertos::task::vTaskDelete", arg_int(args, 0) as u32)
                {
                    Ok(()) => InvokeResult::Ok(0),
                    Err(e) => Self::map_sched(e),
                }
            }
            // vTaskSuspend
            2 => match self.sched.suspend(
                ctx,
                "freertos::task::vTaskSuspend",
                arg_int(args, 0) as u32,
            ) {
                Ok(()) => InvokeResult::Ok(0),
                Err(e) => Self::map_sched(e),
            },
            // vTaskResume
            3 => {
                match self
                    .sched
                    .resume(ctx, "freertos::task::vTaskResume", arg_int(args, 0) as u32)
                {
                    Ok(()) => InvokeResult::Ok(0),
                    Err(e) => Self::map_sched(e),
                }
            }
            // vTaskPrioritySet
            4 => match self.sched.set_priority(
                ctx,
                "freertos::task::vTaskPrioritySet",
                arg_int(args, 0) as u32,
                arg_int(args, 1) as u8,
            ) {
                Ok(()) => InvokeResult::Ok(0),
                Err(e) => Self::map_sched(e),
            },
            // vTaskDelay
            5 => match self.sched.delay(
                ctx,
                "freertos::task::vTaskDelay",
                arg_int(args, 0) as u32,
                arg_int(args, 1),
            ) {
                Ok(()) => InvokeResult::Ok(0),
                Err(e) => Self::map_sched(e),
            },
            // xQueueCreate
            6 => {
                ctx.cov("freertos::queue::xQueueCreate::entry");
                let len = arg_int(args, 0).clamp(1, 32) as usize;
                let item = arg_int(args, 1).clamp(1, 128) as u32;
                self.queues.push(Some(MsgQueue::new(item, len)));
                InvokeResult::Ok(self.queues.len() as u64 - 1)
            }
            // xQueueSend
            7 => {
                let h = arg_int(args, 0) as usize;
                match self.queues.get_mut(h).and_then(|q| q.as_mut()) {
                    Some(q) => {
                        match q.put(ctx, "freertos::queue::xQueueSend", arg_bytes(args, 1)) {
                            Ok(()) => InvokeResult::Ok(0),
                            Err(e) => Self::map_ipc(e),
                        }
                    }
                    None => InvokeResult::Err(-4),
                }
            }
            // xQueueReceive
            8 => {
                let h = arg_int(args, 0) as usize;
                match self.queues.get_mut(h).and_then(|q| q.as_mut()) {
                    Some(q) => match q.get(ctx, "freertos::queue::xQueueReceive") {
                        Ok(m) => InvokeResult::Ok(m.len() as u64),
                        Err(e) => Self::map_ipc(e),
                    },
                    None => InvokeResult::Err(-4),
                }
            }
            // vQueueDelete
            9 => {
                ctx.cov("freertos::queue::vQueueDelete::entry");
                let h = arg_int(args, 0) as usize;
                match self.queues.get_mut(h) {
                    Some(slot @ Some(_)) => {
                        *slot = None;
                        InvokeResult::Ok(0)
                    }
                    _ => InvokeResult::Err(-4),
                }
            }
            // xSemaphoreCreateCounting
            10 => {
                ctx.cov("freertos::sem::xSemaphoreCreateCounting::entry");
                let max = arg_int(args, 0).clamp(1, 16) as i32;
                let init = (arg_int(args, 1) as i32).min(max);
                self.sems.push(Semaphore::new(init, max));
                InvokeResult::Ok(self.sems.len() as u64 - 1)
            }
            // xSemaphoreTake
            11 => match self.sems.get_mut(arg_int(args, 0) as usize) {
                Some(s) => match s.try_take(ctx, "freertos::sem::xSemaphoreTake") {
                    Ok(()) => InvokeResult::Ok(0),
                    Err(e) => Self::map_ipc(e),
                },
                None => InvokeResult::Err(-4),
            },
            // xSemaphoreGive
            12 => match self.sems.get_mut(arg_int(args, 0) as usize) {
                Some(s) => match s.give(ctx, "freertos::sem::xSemaphoreGive") {
                    Ok(()) => InvokeResult::Ok(0),
                    Err(e) => Self::map_ipc(e),
                },
                None => InvokeResult::Err(-4),
            },
            // xTimerCreate
            13 => {
                let mode = if arg_int(args, 1) == 1 {
                    TimerMode::Periodic
                } else {
                    TimerMode::OneShot
                };
                match self.timers.create(
                    ctx,
                    "freertos::timer::xTimerCreate",
                    arg_int(args, 0),
                    mode,
                ) {
                    Ok(h) => InvokeResult::Ok(h as u64),
                    Err(TimerError::BadPeriod) => InvokeResult::Err(-20),
                    Err(_) => InvokeResult::Err(-21),
                }
            }
            // xTimerStart
            14 => match self.timers.start(
                ctx,
                "freertos::timer::xTimerStart",
                arg_int(args, 0) as u32,
            ) {
                Ok(()) => InvokeResult::Ok(0),
                Err(_) => InvokeResult::Err(-4),
            },
            // xTimerStop
            15 => {
                match self
                    .timers
                    .stop(ctx, "freertos::timer::xTimerStop", arg_int(args, 0) as u32)
                {
                    Ok(()) => InvokeResult::Ok(0),
                    Err(_) => InvokeResult::Err(-4),
                }
            }
            // pvPortMalloc
            16 => {
                match self
                    .heap
                    .alloc(ctx, "freertos::heap::pvPortMalloc", arg_int(args, 0) as u32)
                {
                    Ok(h) => InvokeResult::Ok(h as u64),
                    Err(HeapError::OutOfMemory) => InvokeResult::Err(-30),
                    Err(_) => InvokeResult::Err(-31),
                }
            }
            // vPortFree
            17 => match self
                .heap
                .free(ctx, "freertos::heap::vPortFree", arg_int(args, 0) as u32)
            {
                Ok(()) => InvokeResult::Ok(0),
                Err(_) => InvokeResult::Err(-31),
            },
            // load_partitions — bug #13.
            18 => {
                ctx.cov("freertos::kernel::load_partitions::entry");
                let slot = arg_int(args, 0).min(3) as usize;
                let flags = arg_int(args, 1);
                ctx.cov_var("freertos::kernel::load_partitions::slot", slot as u64);
                if flags & 0x1 != 0 {
                    ctx.cov("freertos::kernel::load_partitions::verify");
                }
                if flags & 0x4 != 0 {
                    ctx.cov("freertos::kernel::load_partitions::format");
                }
                // Bug #13: the legacy-format path reads a stale partition
                // descriptor when asked for the last slot — an illegal
                // memory access that panics without hanging.
                if slot == 3 && flags & 0x10 != 0 {
                    ctx.cov("freertos::kernel::load_partitions::legacy_slot3");
                    ctx.klog("E (421) part: invalid descriptor at slot 3");
                    return InvokeResult::Fault(KernelFault::bug(
                        BugId::B13LoadPartitions,
                        FaultKind::Panic,
                        "Guru Meditation Error: LoadProhibited at load_partitions",
                        vec!["load_partitions", "prvInitialiseNewTask", "main"],
                        false,
                    ));
                }
                if ctx.bus.silicon {
                    // Silicon-only: the flash controller's wait-state
                    // setup branches per (slot, flag population).
                    ctx.cov_var(
                        "freertos::flashctl::wait_band",
                        slot as u64 * 8 + (flags.count_ones() as u64).min(7),
                    );
                }
                self.partitions_loaded[slot] = true;
                InvokeResult::Ok(slot as u64)
            }
            // json_parse
            19 => match json::parse(ctx, "freertos::json::parse", arg_bytes(args, 0)) {
                Ok(stats) => InvokeResult::Ok(stats.objects as u64 + stats.arrays as u64),
                Err(_) => InvokeResult::Err(-40),
            },
            // json_encode
            20 => {
                let depth = arg_int(args, 0) as u32;
                let width = arg_int(args, 1) as u32;
                if width == 0 || width > 8 {
                    ctx.cov("freertos::json::encode::bad_width");
                    return InvokeResult::Err(-41);
                }
                match json::encode(
                    ctx,
                    "freertos::json::encode",
                    depth.min(json::MAX_DEPTH + 4),
                    width,
                ) {
                    Ok(len) => InvokeResult::Ok(len as u64),
                    Err(_) => InvokeResult::Err(-41),
                }
            }
            // http_request
            21 => match http::parse_request(ctx, "freertos::http::parse", arg_bytes(args, 0)) {
                Ok(req) => {
                    let status = self.router.dispatch(ctx, "freertos::http::route", &req);
                    // Silicon-only: the NIC driver's TX path sets up DMA
                    // descriptors per (status class, response size band).
                    if ctx.bus.silicon {
                        ctx.cov_var(
                            "freertos::nic::dma_band",
                            (status as u64 / 100) * 8 + (req.path.len() as u64 / 2).min(7),
                        );
                        if req.keep_alive {
                            ctx.cov("freertos::nic::keepalive_ring");
                        }
                    }
                    InvokeResult::Ok(status as u64)
                }
                Err(_) => InvokeResult::Err(-50),
            },
            // vTaskTickIncrement
            22 => {
                let n = arg_int(args, 0).clamp(1, 10);
                for _ in 0..n {
                    self.sched.tick(ctx, "freertos::kernel::tick");
                }
                self.timers.advance(ctx, "freertos::timer::advance", n);
                InvokeResult::Ok(self.sched.tick_count())
            }
            // xSpiTransfer — driver bug #20.
            23 => {
                use eof_hal::mmio::{periph, reg, CTRL_START};
                ctx.cov("freertos::spi::xSpiTransfer::entry");
                let len = arg_int(args, 0).min(64);
                let flags = arg_int(args, 1);
                ctx.charge(8 + len);
                ctx.bus
                    .mmio_write(periph::SPI, reg::CTRL, CTRL_START | (flags << 1));
                let status = ctx.bus.mmio_read(SITE_SPI_STATUS, periph::SPI, reg::STATUS);
                ctx.cov_var("freertos::spi::status_band", (status & 0x7) as u64);
                if flags & 0x2 != 0 {
                    ctx.cov("freertos::spi::xSpiTransfer::dma_assist");
                }
                // Bug #20: under DMA-assist the driver spin-polls the BUSY
                // bit with the scheduler locked. Replay semantics pin the
                // STATUS byte per poll site, so a busy controller never
                // clears and the task spins forever.
                if len > 0 && flags & 0x2 != 0 && status & 0x80 != 0 {
                    ctx.cov("freertos::spi::xSpiTransfer::busy_poll");
                    ctx.klog("E (512) spi: transfer timeout, bus held");
                    return InvokeResult::Fault(KernelFault::bug(
                        BugId::B20SpiPollHang,
                        FaultKind::Panic,
                        "Guru Meditation Error: task watchdog in xSpiTransfer busy-poll",
                        vec!["xSpiTransfer", "prvSpiPollStatus", "main"],
                        true,
                    ));
                }
                let mut sum = 0u64;
                for i in 0..len.min(8) as u32 {
                    sum += ctx.bus.mmio_read(SITE_SPI_DATA + i, periph::SPI, reg::DATA) as u64;
                }
                InvokeResult::Ok(sum)
            }
            // xI2cMasterRead
            24 => {
                use eof_hal::mmio::{periph, reg, CTRL_START};
                ctx.cov("freertos::i2c::xI2cMasterRead::entry");
                let addr = arg_int(args, 0) & 0x7f;
                let len = arg_int(args, 1).min(32);
                ctx.charge(6 + len);
                ctx.bus
                    .mmio_write(periph::I2C, reg::CTRL, CTRL_START | (addr << 1));
                let status = ctx.bus.mmio_read(SITE_I2C_STATUS, periph::I2C, reg::STATUS);
                if status & 0x1 != 0 {
                    // NACK: the slave did not answer.
                    ctx.cov("freertos::i2c::xI2cMasterRead::nack");
                    return InvokeResult::Err(-60);
                }
                let mut sum = 0u64;
                for i in 0..len.min(8) as u32 {
                    sum += ctx.bus.mmio_read(SITE_I2C_DATA + i, periph::I2C, reg::DATA) as u64;
                }
                InvokeResult::Ok(sum)
            }
            // xDmaStart
            25 => {
                use eof_hal::mmio::{periph, reg, CTRL_START};
                ctx.cov("freertos::dma::xDmaStart::entry");
                let src = arg_int(args, 0);
                let dst = arg_int(args, 1);
                let len = arg_int(args, 2);
                ctx.charge(10 + len / 64);
                // Bug #26: a descriptor whose source aliases the
                // controller's scratch window (one exact 32-bit address)
                // skips the bounds rewrite, and a destination aliasing
                // the config mirror then corrupts the channel table.
                // Random 32-bit argument search essentially never lands
                // on either constant; the planted trace_cmp hooks hand
                // both operands to the cmplog ring, and the second
                // compare only executes once the first matches — the
                // staged-discovery shape Redqueen is built for.
                ctx.cmp("freertos::dma::xDmaStart::src_magic", 32, src, 0xD3AD_BEA7);
                if src == 0xD3AD_BEA7 {
                    ctx.cov("freertos::dma::xDmaStart::src_scratch");
                    ctx.cmp("freertos::dma::xDmaStart::dst_magic", 32, dst, 0x0BAD_F00D);
                    if dst == 0x0BAD_F00D {
                        return InvokeResult::Fault(KernelFault::bug(
                            BugId::B26DmaMagicDesc,
                            FaultKind::Panic,
                            "Guru Meditation Error: channel table corrupt in xDmaStart",
                            vec!["xDmaStart", "prvDmaProgramDescriptor", "main"],
                            false,
                        ));
                    }
                }
                ctx.bus.mmio_write(periph::DMA, reg::SRC, src);
                ctx.bus.mmio_write(periph::DMA, reg::DST, dst);
                ctx.bus.mmio_write(periph::DMA, reg::LEN, len);
                ctx.bus.mmio_write(periph::DMA, reg::CTRL, CTRL_START);
                let status = ctx.bus.mmio_read(SITE_DMA_STATUS, periph::DMA, reg::STATUS);
                ctx.cov_var("freertos::dma::chan_band", (status & 0x3) as u64);
                InvokeResult::Ok(len)
            }
            _ => InvokeResult::Err(-88),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::os::testutil::{bus, call, is_bug, ok};

    #[test]
    fn api_table_ids_are_dense() {
        let k = FreeRtosKernel::new();
        for (i, d) in k.api_table().iter().enumerate() {
            assert_eq!(d.id as usize, i);
        }
        assert!(k.api_table().len() >= 20);
    }

    #[test]
    fn task_lifecycle_through_api() {
        let mut k = FreeRtosKernel::new();
        let mut b = bus();
        let t = ok(call(
            &mut k,
            &mut b,
            "xTaskCreate",
            &[KArg::Str("worker".into()), KArg::Int(512), KArg::Int(5)],
        ));
        ok(call(&mut k, &mut b, "vTaskTickIncrement", &[KArg::Int(1)]));
        ok(call(&mut k, &mut b, "vTaskSuspend", &[KArg::Int(t)]));
        ok(call(&mut k, &mut b, "vTaskResume", &[KArg::Int(t)]));
        ok(call(&mut k, &mut b, "vTaskDelete", &[KArg::Int(t)]));
        assert!(matches!(
            call(&mut k, &mut b, "vTaskDelete", &[KArg::Int(t)]),
            InvokeResult::Err(_)
        ));
    }

    #[test]
    fn queue_roundtrip() {
        let mut k = FreeRtosKernel::new();
        let mut b = bus();
        let q = ok(call(
            &mut k,
            &mut b,
            "xQueueCreate",
            &[KArg::Int(2), KArg::Int(16)],
        ));
        ok(call(
            &mut k,
            &mut b,
            "xQueueSend",
            &[KArg::Int(q), KArg::Bytes(vec![1, 2, 3])],
        ));
        assert_eq!(
            ok(call(&mut k, &mut b, "xQueueReceive", &[KArg::Int(q)])),
            3
        );
        ok(call(&mut k, &mut b, "vQueueDelete", &[KArg::Int(q)]));
        assert!(matches!(
            call(
                &mut k,
                &mut b,
                "xQueueSend",
                &[KArg::Int(q), KArg::Bytes(vec![1])]
            ),
            InvokeResult::Err(-4)
        ));
    }

    #[test]
    fn bug13_requires_slot3_and_legacy_flag() {
        let mut k = FreeRtosKernel::new();
        let mut b = bus();
        // Benign combinations do not fault.
        for (slot, flags) in [(0, 0x10), (3, 0x1), (2, 0x10), (3, 0x4)] {
            let r = call(
                &mut k,
                &mut b,
                "load_partitions",
                &[KArg::Int(slot), KArg::Int(flags)],
            );
            assert!(!r.is_fault(), "slot={slot} flags={flags:#x}");
        }
        let r = call(
            &mut k,
            &mut b,
            "load_partitions",
            &[KArg::Int(3), KArg::Int(0x10)],
        );
        assert!(is_bug(&r, 13));
        if let InvokeResult::Fault(f) = r {
            assert!(!f.hangs_after);
            assert_eq!(f.frames[0], "load_partitions");
        }
    }

    #[test]
    fn json_and_http_modules_respond() {
        let mut k = FreeRtosKernel::new();
        let mut b = bus();
        assert_eq!(
            ok(call(
                &mut k,
                &mut b,
                "json_parse",
                &[KArg::Bytes(br#"{"a":[1]}"#.to_vec())]
            )),
            2
        );
        assert!(matches!(
            call(
                &mut k,
                &mut b,
                "json_parse",
                &[KArg::Bytes(b"{{{".to_vec())]
            ),
            InvokeResult::Err(-40)
        ));
        assert_eq!(
            ok(call(
                &mut k,
                &mut b,
                "http_request",
                &[KArg::Bytes(b"GET /status HTTP/1.1\r\n\r\n".to_vec())]
            )),
            200
        );
    }

    #[test]
    fn heap_alloc_free() {
        let mut k = FreeRtosKernel::new();
        let mut b = bus();
        let m = ok(call(&mut k, &mut b, "pvPortMalloc", &[KArg::Int(128)]));
        ok(call(&mut k, &mut b, "vPortFree", &[KArg::Int(m)]));
        assert!(matches!(
            call(&mut k, &mut b, "vPortFree", &[KArg::Int(m)]),
            InvokeResult::Err(_)
        ));
    }

    #[test]
    fn reset_clears_state() {
        let mut k = FreeRtosKernel::new();
        let mut b = bus();
        ok(call(
            &mut k,
            &mut b,
            "xQueueCreate",
            &[KArg::Int(2), KArg::Int(8)],
        ));
        let mut cov = crate::ctx::CovState::uninstrumented();
        let mut ctx = crate::ctx::ExecCtx::new(&mut b, &mut cov);
        k.reset(&mut ctx);
        assert!(k.queues.is_empty());
        assert_eq!(k.api_table().len(), FreeRtosKernel::new().api_table().len());
    }

    #[test]
    fn unknown_api_is_error_not_panic() {
        let mut k = FreeRtosKernel::new();
        let mut b = bus();
        let mut cov = crate::ctx::CovState::uninstrumented();
        let mut ctx = crate::ctx::ExecCtx::new(&mut b, &mut cov);
        assert!(matches!(
            k.invoke(&mut ctx, 999, &[]),
            InvokeResult::Err(-88)
        ));
    }

    #[test]
    fn serial_rx_isr_fills_fifo_with_overrun() {
        let mut k = FreeRtosKernel::new();
        let mut b = bus();
        let mut cov = crate::ctx::CovState::uninstrumented();
        let mut ctx = crate::ctx::ExecCtx::new(&mut b, &mut cov);
        assert_eq!(
            k.on_interrupt(&mut ctx, eof_hal::irq::SERIAL_RX, b"hello"),
            InvokeResult::Ok(5)
        );
        // Overrun: FIFO caps at 64 bytes.
        let big = vec![b'x'; 100];
        let r = k.on_interrupt(&mut ctx, eof_hal::irq::SERIAL_RX, &big);
        assert_eq!(r, InvokeResult::Ok(64));
    }

    #[test]
    fn gpio_and_timer_isrs() {
        let mut k = FreeRtosKernel::new();
        let mut b = bus();
        let mut cov = crate::ctx::CovState::uninstrumented();
        let mut ctx = crate::ctx::ExecCtx::new(&mut b, &mut cov);
        assert_eq!(
            k.on_interrupt(&mut ctx, eof_hal::irq::GPIO, &[]),
            InvokeResult::Ok(1)
        );
        assert_eq!(
            k.on_interrupt(&mut ctx, eof_hal::irq::GPIO, &[]),
            InvokeResult::Ok(2)
        );
        let ticks_before = k.sched.tick_count();
        k.on_interrupt(&mut ctx, eof_hal::irq::TIMER, &[]);
        assert_eq!(k.sched.tick_count(), ticks_before + 1);
        // Unknown lines are rejected like real spurious IRQs.
        assert_eq!(k.on_interrupt(&mut ctx, 99, &[]), InvokeResult::Err(-38));
    }

    #[test]
    fn underflowing_args_do_not_panic() {
        let mut k = FreeRtosKernel::new();
        let mut b = bus();
        // Every API with zero args supplied must return, not panic.
        for id in 0..k.api_table().len() as u16 {
            let mut cov = crate::ctx::CovState::uninstrumented();
            let mut ctx = crate::ctx::ExecCtx::new(&mut b, &mut cov);
            let _ = k.invoke(&mut ctx, id, &[]);
        }
    }

    #[test]
    fn bug20_requires_dma_assist_and_busy_status() {
        // Benign near-misses: busy status without DMA-assist, DMA-assist
        // with an idle controller, and a zero-length transfer.
        for (stream, len, flags) in [(0x82u8, 4, 0x0), (0x00, 4, 0x2), (0x82, 0, 0x2)] {
            let mut k = FreeRtosKernel::new();
            let mut b = bus();
            b.mmio.load_stream(&[stream]);
            let r = call(
                &mut k,
                &mut b,
                "xSpiTransfer",
                &[KArg::Int(len), KArg::Int(flags)],
            );
            assert!(
                !matches!(r, InvokeResult::Fault(_)),
                "{stream:#x}/{len}/{flags}"
            );
        }
        // The full gate: DMA-assist transfer polling a stuck BUSY bit.
        let mut k = FreeRtosKernel::new();
        let mut b = bus();
        b.mmio.load_stream(&[0x82]);
        let r = call(
            &mut k,
            &mut b,
            "xSpiTransfer",
            &[KArg::Int(4), KArg::Int(0x2)],
        );
        assert!(is_bug(&r, 20), "got {r:?}");
    }

    #[test]
    fn i2c_read_nacks_on_odd_status() {
        let mut k = FreeRtosKernel::new();
        let mut b = bus();
        b.mmio.load_stream(&[0x01]);
        assert_eq!(
            call(
                &mut k,
                &mut b,
                "xI2cMasterRead",
                &[KArg::Int(0x50), KArg::Int(4)],
            ),
            InvokeResult::Err(-60)
        );
        // An ACKing slave delivers data and queues the completion IRQ.
        b.mmio.load_stream(&[0x00, 0xaa, 0xbb]);
        let sum = ok(call(
            &mut k,
            &mut b,
            "xI2cMasterRead",
            &[KArg::Int(0x50), KArg::Int(2)],
        ));
        assert_eq!(sum, 0xaa + 0xbb);
        assert!(b.pending_irqs.iter().any(|r| r.line == eof_hal::irq::I2C));
    }

    #[test]
    fn dma_magic_descriptor_is_bug26_and_near_miss_is_not() {
        let mut k = FreeRtosKernel::new();
        let mut b = bus();
        // The src magic alone is a near miss: new coverage, no fault.
        let r = call(
            &mut k,
            &mut b,
            "xDmaStart",
            &[KArg::Int(0xD3AD_BEA7), KArg::Int(0x200), KArg::Int(64)],
        );
        assert!(!matches!(r, InvokeResult::Fault(_)), "got {r:?}");
        let r = call(
            &mut k,
            &mut b,
            "xDmaStart",
            &[
                KArg::Int(0xD3AD_BEA7),
                KArg::Int(0x0BAD_F00D),
                KArg::Int(64),
            ],
        );
        assert!(is_bug(&r, 26), "got {r:?}");
    }

    #[test]
    fn dma_start_latches_and_completes() {
        let mut k = FreeRtosKernel::new();
        let mut b = bus();
        let len = ok(call(
            &mut k,
            &mut b,
            "xDmaStart",
            &[KArg::Int(0x100), KArg::Int(0x200), KArg::Int(4096)],
        ));
        assert_eq!(len, 4096);
        let dma = b
            .pending_irqs
            .iter()
            .find(|r| r.line == eof_hal::irq::DMA)
            .cloned()
            .expect("DMA completion IRQ queued");
        assert_eq!(dma.payload, 4096u32.to_le_bytes());
        // The completion ISR decodes the transferred length.
        let mut cov = crate::ctx::CovState::uninstrumented();
        let mut ctx = crate::ctx::ExecCtx::new(&mut b, &mut cov);
        assert_eq!(
            k.on_interrupt(&mut ctx, eof_hal::irq::DMA, &dma.payload),
            InvokeResult::Ok(4096)
        );
    }
}
