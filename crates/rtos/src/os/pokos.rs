//! PoK-like partitioned OS model.
//!
//! Personality: ARINC-653-flavoured time and space partitioning —
//! partitions with scheduling slots, sampling/queuing ports for
//! inter-partition communication, blackboards for intra-partition
//! state, and a health-monitor error API. This is the target of the
//! paper's Gustave comparison (Table 3's PoKOS row); it carries no
//! Table-2 bugs.

use crate::api::{ApiDescriptor, InvokeResult, KArg};
use crate::ctx::ExecCtx;
use crate::kernel::{Kernel, OsKind};
use crate::os::{a_bytes, a_enum, a_int, a_res, arg_bytes, arg_int};
use crate::subsys::ipc::{EventGroup, IpcError, MsgQueue, Semaphore};

const PORT_DIRS: &[(&str, u64)] = &[("SOURCE", 0), ("DESTINATION", 1)];

/// PC-site ids for the driver layer's MMIO polls (replay keys on them).
const SITE_SPI_STATUS: u32 = 0x4a00;
const SITE_SPI_DATA: u32 = 0x4a10;
const SITE_I2C_STATUS: u32 = 0x4a20;
const SITE_I2C_DATA: u32 = 0x4a30;
const SITE_DMA_STATUS: u32 = 0x4a40;
const PART_MODES: &[(&str, u64)] = &[
    ("IDLE", 0),
    ("COLD_START", 1),
    ("WARM_START", 2),
    ("NORMAL", 3),
];
const PORT_NAMES: &[(&str, u64)] = &[("P0", 0), ("P1", 1), ("P2", 2), ("P3", 3)];
const ERROR_CODES: &[(&str, u64)] = &[
    ("DEADLINE_MISSED", 1),
    ("APPLICATION_ERROR", 2),
    ("NUMERIC_ERROR", 3),
    ("ILLEGAL_REQUEST", 4),
    ("STACK_OVERFLOW", 5),
];

#[derive(Debug, Clone)]
struct Partition {
    slots: u32,
    mode: u64,
    errors: u32,
}

#[derive(Debug, Clone)]
struct Port {
    name: u64,
    dir: u64,
    size: u32,
    queue: Vec<Vec<u8>>,
}

#[derive(Debug, Clone)]
struct Blackboard {
    name: u64,
    size: u32,
    data: Option<Vec<u8>>,
}

/// The PoK model.
pub struct PokKernel {
    api: Vec<ApiDescriptor>,
    partitions: Vec<Partition>,
    ports: Vec<Port>,
    blackboards: Vec<Blackboard>,
    buffers: Vec<MsgQueue>,
    events: Vec<EventGroup>,
    sems: Vec<Semaphore>,
    major_frame: u64,
}

impl Default for PokKernel {
    fn default() -> Self {
        Self::new()
    }
}

impl PokKernel {
    /// A freshly booted PoK.
    pub fn new() -> Self {
        PokKernel {
            api: Self::build_api(),
            partitions: Vec::new(),
            ports: Vec::new(),
            blackboards: Vec::new(),
            buffers: Vec::new(),
            events: Vec::new(),
            sems: Vec::new(),
            major_frame: 0,
        }
    }

    fn build_api() -> Vec<ApiDescriptor> {
        let mut v = Vec::new();
        let mut id = 0u16;
        let mut api = |name: &'static str,
                       args: Vec<crate::api::ArgMeta>,
                       returns: Option<&'static str>,
                       module: &'static str,
                       doc: &'static str| {
            let d = ApiDescriptor {
                id,
                name,
                args,
                returns,
                module,
                doc,
            };
            id += 1;
            d
        };
        v.push(api(
            "pok_partition_create",
            vec![a_int("slots", 1, 8), a_int("period", 1, 100)],
            Some("partition"),
            "partition",
            "Create a time partition with scheduling slots.",
        ));
        v.push(api(
            "pok_partition_set_mode",
            vec![
                a_res("part", "partition"),
                a_enum("mode", "part_modes", PART_MODES),
            ],
            None,
            "partition",
            "Transition a partition's operating mode.",
        ));
        v.push(api(
            "pok_port_create",
            vec![
                a_enum("name", "port_names", PORT_NAMES),
                a_enum("dir", "port_dirs", PORT_DIRS),
                a_int("size", 1, 128),
            ],
            Some("port"),
            "port",
            "Create a queuing port.",
        ));
        v.push(api(
            "pok_port_send",
            vec![a_res("port", "port"), a_bytes("data", 128)],
            None,
            "port",
            "Send through a SOURCE port.",
        ));
        v.push(api(
            "pok_port_receive",
            vec![a_res("port", "port")],
            None,
            "port",
            "Receive from a DESTINATION port.",
        ));
        v.push(api(
            "pok_blackboard_create",
            vec![
                a_enum("name", "port_names", PORT_NAMES),
                a_int("size", 1, 128),
            ],
            Some("blackboard"),
            "blackboard",
            "Create a blackboard.",
        ));
        v.push(api(
            "pok_blackboard_display",
            vec![a_res("bb", "blackboard"), a_bytes("data", 128)],
            None,
            "blackboard",
            "Publish a message on a blackboard.",
        ));
        v.push(api(
            "pok_blackboard_read",
            vec![a_res("bb", "blackboard")],
            None,
            "blackboard",
            "Read the current message.",
        ));
        v.push(api(
            "pok_sched_slot",
            vec![a_int("n", 1, 16)],
            None,
            "kernel",
            "Advance the partition scheduler by n minor frames.",
        ));
        v.push(api(
            "pok_error_raise",
            vec![
                a_res("part", "partition"),
                a_enum("code", "error_codes", ERROR_CODES),
            ],
            None,
            "kernel",
            "Raise a health-monitor error against a partition.",
        ));
        v.push(api(
            "pok_buffer_create",
            vec![a_int("msg_size", 1, 64), a_int("capacity", 1, 16)],
            Some("msgbuf"),
            "buffer",
            "Create an intra-partition message buffer.",
        ));
        v.push(api(
            "pok_buffer_send",
            vec![a_res("buf", "msgbuf"), a_bytes("data", 64)],
            None,
            "buffer",
            "Send a message into a buffer.",
        ));
        v.push(api(
            "pok_buffer_receive",
            vec![a_res("buf", "msgbuf")],
            None,
            "buffer",
            "Receive the oldest message.",
        ));
        v.push(api(
            "pok_event_create",
            vec![],
            Some("event"),
            "event",
            "Create an ARINC event.",
        ));
        v.push(api(
            "pok_event_set",
            vec![a_res("evt", "event"), a_int("bits", 1, 0xffff)],
            None,
            "event",
            "Set event bits, releasing waiters.",
        ));
        v.push(api(
            "pok_event_wait",
            vec![
                a_res("evt", "event"),
                a_int("mask", 1, 0xffff),
                a_int("wait_all", 0, 1),
            ],
            None,
            "event",
            "Poll for event bits with AND/OR semantics.",
        ));
        v.push(api(
            "pok_event_reset",
            vec![a_res("evt", "event")],
            None,
            "event",
            "Clear all event bits.",
        ));
        v.push(api(
            "pok_sem_create",
            vec![a_int("value", 0, 8), a_int("max", 1, 8)],
            Some("sem"),
            "sem",
            "Create a counting semaphore.",
        ));
        v.push(api(
            "pok_sem_wait",
            vec![a_res("sem", "sem")],
            None,
            "sem",
            "Take a semaphore (no wait).",
        ));
        v.push(api(
            "pok_sem_signal",
            vec![a_res("sem", "sem")],
            None,
            "sem",
            "Signal a semaphore.",
        ));
        v.push(api(
            "pok_spi_transfer",
            vec![a_int("tx_len", 0, 64), a_int("rx_len", 0, 64)],
            None,
            "spi",
            "Exchange bytes on the partition's SPI device.",
        ));
        v.push(api(
            "pok_i2c_read",
            vec![a_int("addr", 0, 127), a_int("len", 0, 32)],
            None,
            "i2c",
            "Read from an I2C slave through the partition device server.",
        ));
        v.push(api(
            "pok_dma_start",
            vec![
                a_int("src", 0, 65535),
                a_int("dst", 0, 65535),
                a_int("len", 0, 65535),
            ],
            None,
            "dma",
            "Start a bounded DMA transfer (space partitioning enforced).",
        ));
        v
    }
}

impl Kernel for PokKernel {
    fn os(&self) -> OsKind {
        OsKind::PokOs
    }

    fn on_interrupt(&mut self, ctx: &mut ExecCtx<'_>, line: u8, payload: &[u8]) -> InvokeResult {
        match line {
            eof_hal::irq::TIMER => {
                ctx.cov("pokos::isr::minor_frame::entry");
                self.major_frame += 1;
                for (i, p) in self.partitions.iter().enumerate() {
                    if p.mode == 3 {
                        ctx.cov_var("pokos::isr::minor_frame::run", (i as u64).min(7));
                    }
                }
                InvokeResult::Ok(self.major_frame)
            }
            eof_hal::irq::GPIO => {
                ctx.cov("pokos::isr::gpio::entry");
                ctx.charge(2);
                InvokeResult::Ok(0)
            }
            eof_hal::irq::SPI => {
                ctx.cov("pokos::isr::spi_done::entry");
                ctx.charge(2);
                InvokeResult::Ok(0)
            }
            eof_hal::irq::I2C => {
                ctx.cov("pokos::isr::i2c_done::entry");
                ctx.charge(2);
                InvokeResult::Ok(0)
            }
            eof_hal::irq::DMA => {
                ctx.cov("pokos::isr::dma_done::entry");
                ctx.charge(3);
                let len = payload
                    .first_chunk::<4>()
                    .map(|b| u32::from_le_bytes(*b))
                    .unwrap_or(0);
                InvokeResult::Ok(len as u64)
            }
            _ => InvokeResult::Err(-38),
        }
    }

    fn api_table(&self) -> &[ApiDescriptor] {
        &self.api
    }

    fn exception_symbol(&self) -> &'static str {
        "pok_fatal"
    }

    fn assert_symbol(&self) -> &'static str {
        "pok_assert"
    }

    fn total_branch_sites(&self) -> usize {
        crate::image::total_sites(OsKind::PokOs)
    }

    fn boot_banner(&self) -> Vec<String> {
        vec!["POK kernel b2e1cc3 (partitioned)".into()]
    }

    fn reset(&mut self, _ctx: &mut ExecCtx<'_>) {
        let api = std::mem::take(&mut self.api);
        *self = PokKernel::new();
        self.api = api;
    }

    fn invoke(&mut self, ctx: &mut ExecCtx<'_>, api_id: u16, args: &[KArg]) -> InvokeResult {
        match api_id {
            // pok_partition_create
            0 => {
                ctx.cov("pokos::partition::create::entry");
                if self.partitions.len() >= 8 {
                    ctx.cov("pokos::partition::create::full");
                    return InvokeResult::Err(-1);
                }
                let slots = arg_int(args, 0).clamp(1, 8) as u32;
                ctx.cov_var("pokos::partition::create::slots", slots as u64);
                self.partitions.push(Partition {
                    slots,
                    mode: 1,
                    errors: 0,
                });
                InvokeResult::Ok(self.partitions.len() as u64 - 1)
            }
            // pok_partition_set_mode
            1 => {
                let mode = arg_int(args, 1).min(3);
                let Some(p) = self.partitions.get_mut(arg_int(args, 0) as usize) else {
                    return InvokeResult::Err(-2);
                };
                ctx.cov_var("pokos::partition::set_mode::transition", p.mode * 4 + mode);
                // ARINC mode machine: NORMAL only from WARM/COLD start.
                if mode == 3 && p.mode == 0 {
                    ctx.cov("pokos::partition::set_mode::illegal");
                    return InvokeResult::Err(-3);
                }
                p.mode = mode;
                InvokeResult::Ok(mode)
            }
            // pok_port_create
            2 => {
                ctx.cov("pokos::port::create::entry");
                let name = arg_int(args, 0).min(3);
                let dir = arg_int(args, 1).min(1);
                if self.ports.iter().any(|p| p.name == name && p.dir == dir) {
                    ctx.cov("pokos::port::create::dup");
                    return InvokeResult::Err(-4);
                }
                self.ports.push(Port {
                    name,
                    dir,
                    size: arg_int(args, 2).clamp(1, 128) as u32,
                    queue: Vec::new(),
                });
                InvokeResult::Ok(self.ports.len() as u64 - 1)
            }
            // pok_port_send
            3 => {
                let data = arg_bytes(args, 1).to_vec();
                let Some(p) = self.ports.get_mut(arg_int(args, 0) as usize) else {
                    return InvokeResult::Err(-2);
                };
                if p.dir != 0 {
                    ctx.cov("pokos::port::send::wrong_dir");
                    return InvokeResult::Err(-5);
                }
                if data.len() > p.size as usize {
                    ctx.cov("pokos::port::send::oversize");
                    return InvokeResult::Err(-6);
                }
                if p.queue.len() >= 8 {
                    ctx.cov("pokos::port::send::full");
                    return InvokeResult::Err(-7);
                }
                ctx.cov("pokos::port::send::ok");
                p.queue.push(data);
                InvokeResult::Ok(0)
            }
            // pok_port_receive — in this loopback model, DESTINATION
            // ports drain the SOURCE port with the same name.
            4 => {
                let h = arg_int(args, 0) as usize;
                let Some(p) = self.ports.get(h) else {
                    return InvokeResult::Err(-2);
                };
                if p.dir != 1 {
                    ctx.cov("pokos::port::recv::wrong_dir");
                    return InvokeResult::Err(-5);
                }
                let name = p.name;
                let src = self.ports.iter_mut().find(|q| q.name == name && q.dir == 0);
                match src.and_then(|q| {
                    if q.queue.is_empty() {
                        None
                    } else {
                        Some(q.queue.remove(0))
                    }
                }) {
                    Some(m) => {
                        ctx.cov("pokos::port::recv::ok");
                        InvokeResult::Ok(m.len() as u64)
                    }
                    None => {
                        ctx.cov("pokos::port::recv::empty");
                        InvokeResult::Err(-8)
                    }
                }
            }
            // pok_blackboard_create
            5 => {
                ctx.cov("pokos::blackboard::create::entry");
                let name = arg_int(args, 0).min(3);
                if self.blackboards.iter().any(|b| b.name == name) {
                    return InvokeResult::Err(-4);
                }
                self.blackboards.push(Blackboard {
                    name,
                    size: arg_int(args, 1).clamp(1, 128) as u32,
                    data: None,
                });
                InvokeResult::Ok(self.blackboards.len() as u64 - 1)
            }
            // pok_blackboard_display
            6 => {
                let data = arg_bytes(args, 1).to_vec();
                let Some(b) = self.blackboards.get_mut(arg_int(args, 0) as usize) else {
                    return InvokeResult::Err(-2);
                };
                if data.len() > b.size as usize {
                    ctx.cov("pokos::blackboard::display::oversize");
                    return InvokeResult::Err(-6);
                }
                ctx.cov(if b.data.is_some() {
                    "pokos::blackboard::display::replace"
                } else {
                    "pokos::blackboard::display::first"
                });
                b.data = Some(data);
                InvokeResult::Ok(0)
            }
            // pok_blackboard_read
            7 => {
                let Some(b) = self.blackboards.get(arg_int(args, 0) as usize) else {
                    return InvokeResult::Err(-2);
                };
                match &b.data {
                    Some(d) => {
                        ctx.cov("pokos::blackboard::read::ok");
                        InvokeResult::Ok(d.len() as u64)
                    }
                    None => {
                        ctx.cov("pokos::blackboard::read::empty");
                        InvokeResult::Err(-8)
                    }
                }
            }
            // pok_sched_slot
            8 => {
                let n = arg_int(args, 0).clamp(1, 16);
                self.major_frame += n;
                ctx.charge(n);
                for (i, p) in self.partitions.iter().enumerate() {
                    if p.mode == 3 {
                        // One edge per (partition, minor-frame slot).
                        for slot in 0..p.slots {
                            ctx.cov_var("pokos::kernel::slot_run", (i as u64) * 16 + slot as u64);
                        }
                    }
                }
                InvokeResult::Ok(self.major_frame)
            }
            // pok_error_raise
            9 => {
                let code = arg_int(args, 1);
                let Some(p) = self.partitions.get_mut(arg_int(args, 0) as usize) else {
                    return InvokeResult::Err(-2);
                };
                ctx.cov_var("pokos::kernel::error_raise::code", code.min(15));
                p.errors += 1;
                // Three errors trip the health monitor into IDLE.
                if p.errors >= 3 {
                    ctx.cov("pokos::kernel::error_raise::hm_idle");
                    p.mode = 0;
                }
                InvokeResult::Ok(p.errors as u64)
            }
            // pok_buffer_create
            10 => {
                ctx.cov("pokos::buffer::create::entry");
                if self.buffers.len() >= 16 {
                    return InvokeResult::Err(-1);
                }
                let size = arg_int(args, 0).clamp(1, 64) as u32;
                let cap = arg_int(args, 1).clamp(1, 16) as usize;
                self.buffers.push(MsgQueue::new(size, cap));
                InvokeResult::Ok(self.buffers.len() as u64 - 1)
            }
            // pok_buffer_send
            11 => match self.buffers.get_mut(arg_int(args, 0) as usize) {
                Some(q) => match q.put(ctx, "pokos::buffer::send", arg_bytes(args, 1)) {
                    Ok(()) => InvokeResult::Ok(0),
                    Err(IpcError::Full) => InvokeResult::Err(-7),
                    Err(_) => InvokeResult::Err(-6),
                },
                None => InvokeResult::Err(-2),
            },
            // pok_buffer_receive
            12 => match self.buffers.get_mut(arg_int(args, 0) as usize) {
                Some(q) => match q.get(ctx, "pokos::buffer::receive") {
                    Ok(m) => InvokeResult::Ok(m.len() as u64),
                    Err(_) => InvokeResult::Err(-8),
                },
                None => InvokeResult::Err(-2),
            },
            // pok_event_create
            13 => {
                ctx.cov("pokos::event::create::entry");
                if self.events.len() >= 16 {
                    return InvokeResult::Err(-1);
                }
                self.events.push(EventGroup::new());
                InvokeResult::Ok(self.events.len() as u64 - 1)
            }
            // pok_event_set
            14 => match self.events.get_mut(arg_int(args, 0) as usize) {
                Some(e) => match e.send(ctx, "pokos::event::set", arg_int(args, 1) as u32) {
                    Ok(bits) => InvokeResult::Ok(bits as u64),
                    Err(_) => InvokeResult::Err(-6),
                },
                None => InvokeResult::Err(-2),
            },
            // pok_event_wait
            15 => {
                let mask = arg_int(args, 1) as u32;
                let all = arg_int(args, 2) == 1;
                match self.events.get_mut(arg_int(args, 0) as usize) {
                    Some(e) => match e.recv(ctx, "pokos::event::wait", mask, all, false) {
                        Ok(got) => InvokeResult::Ok(got as u64),
                        Err(_) => InvokeResult::Err(-8),
                    },
                    None => InvokeResult::Err(-2),
                }
            }
            // pok_event_reset
            16 => match self.events.get_mut(arg_int(args, 0) as usize) {
                Some(e) => {
                    ctx.cov("pokos::event::reset::entry");
                    let _ = e.recv(ctx, "pokos::event::reset", u32::MAX, false, true);
                    InvokeResult::Ok(0)
                }
                None => InvokeResult::Err(-2),
            },
            // pok_sem_create
            17 => {
                ctx.cov("pokos::sem::create::entry");
                if self.sems.len() >= 16 {
                    return InvokeResult::Err(-1);
                }
                let max = arg_int(args, 1).clamp(1, 8) as i32;
                let value = (arg_int(args, 0) as i32).min(max);
                self.sems.push(Semaphore::new(value, max));
                InvokeResult::Ok(self.sems.len() as u64 - 1)
            }
            // pok_sem_wait
            18 => match self.sems.get_mut(arg_int(args, 0) as usize) {
                Some(sm) => match sm.try_take(ctx, "pokos::sem::wait") {
                    Ok(()) => InvokeResult::Ok(0),
                    Err(_) => InvokeResult::Err(-8),
                },
                None => InvokeResult::Err(-2),
            },
            // pok_sem_signal
            19 => match self.sems.get_mut(arg_int(args, 0) as usize) {
                Some(sm) => match sm.give(ctx, "pokos::sem::signal") {
                    Ok(()) => InvokeResult::Ok(0),
                    Err(_) => InvokeResult::Err(-7),
                },
                None => InvokeResult::Err(-2),
            },
            // pok_spi_transfer — PoK's partitioned drivers carry no
            // seeded bugs; the layer exists for the Gustave comparison.
            20 => {
                use eof_hal::mmio::{periph, reg, CTRL_START};
                ctx.cov("pokos::spi::pok_spi_transfer::entry");
                let tx_len = arg_int(args, 0).min(64);
                let rx_len = arg_int(args, 1).min(64);
                ctx.charge(8 + tx_len + rx_len);
                ctx.bus
                    .mmio_write(periph::SPI, reg::CTRL, CTRL_START | (tx_len << 8));
                let status = ctx.bus.mmio_read(SITE_SPI_STATUS, periph::SPI, reg::STATUS);
                ctx.cov_var(
                    "pokos::spi::pok_spi_transfer::status_band",
                    (status & 0x7) as u64,
                );
                let mut sum = 0u64;
                for i in 0..rx_len.min(8) as u32 {
                    sum += ctx.bus.mmio_read(SITE_SPI_DATA + i, periph::SPI, reg::DATA) as u64;
                }
                InvokeResult::Ok(sum)
            }
            // pok_i2c_read
            21 => {
                use eof_hal::mmio::{periph, reg, CTRL_START};
                ctx.cov("pokos::i2c::pok_i2c_read::entry");
                let addr = arg_int(args, 0) & 0x7f;
                let len = arg_int(args, 1).min(32);
                ctx.charge(6 + len);
                ctx.bus
                    .mmio_write(periph::I2C, reg::CTRL, CTRL_START | (addr << 1));
                let status = ctx.bus.mmio_read(SITE_I2C_STATUS, periph::I2C, reg::STATUS);
                if status & 0x1 != 0 {
                    ctx.cov("pokos::i2c::pok_i2c_read::nack");
                    return InvokeResult::Err(-8);
                }
                let mut sum = 0u64;
                for i in 0..len.min(8) as u32 {
                    sum += ctx.bus.mmio_read(SITE_I2C_DATA + i, periph::I2C, reg::DATA) as u64;
                }
                InvokeResult::Ok(sum)
            }
            // pok_dma_start
            22 => {
                use eof_hal::mmio::{periph, reg, CTRL_START};
                ctx.cov("pokos::dma::pok_dma_start::entry");
                let src = arg_int(args, 0);
                let dst = arg_int(args, 1);
                let len = arg_int(args, 2).min(65535);
                ctx.charge(10 + len / 64);
                ctx.bus.mmio_write(periph::DMA, reg::SRC, src);
                ctx.bus.mmio_write(periph::DMA, reg::DST, dst);
                ctx.bus.mmio_write(periph::DMA, reg::LEN, len);
                ctx.bus.mmio_write(periph::DMA, reg::CTRL, CTRL_START);
                let status = ctx.bus.mmio_read(SITE_DMA_STATUS, periph::DMA, reg::STATUS);
                ctx.cov_var(
                    "pokos::dma::pok_dma_start::chan_band",
                    (status & 0x3) as u64,
                );
                InvokeResult::Ok(len)
            }
            _ => InvokeResult::Err(-88),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::os::testutil::{bus, call, ok};

    #[test]
    fn partition_mode_machine() {
        let mut k = PokKernel::new();
        let mut b = bus();
        let p = ok(call(
            &mut k,
            &mut b,
            "pok_partition_create",
            &[KArg::Int(2), KArg::Int(10)],
        ));
        // COLD_START → NORMAL is legal.
        assert_eq!(
            ok(call(
                &mut k,
                &mut b,
                "pok_partition_set_mode",
                &[KArg::Int(p), KArg::Int(3)]
            )),
            3
        );
        // NORMAL → IDLE, then IDLE → NORMAL is illegal.
        ok(call(
            &mut k,
            &mut b,
            "pok_partition_set_mode",
            &[KArg::Int(p), KArg::Int(0)],
        ));
        assert!(matches!(
            call(
                &mut k,
                &mut b,
                "pok_partition_set_mode",
                &[KArg::Int(p), KArg::Int(3)]
            ),
            InvokeResult::Err(-3)
        ));
    }

    #[test]
    fn port_channel_source_to_destination() {
        let mut k = PokKernel::new();
        let mut b = bus();
        let src = ok(call(
            &mut k,
            &mut b,
            "pok_port_create",
            &[KArg::Int(0), KArg::Int(0), KArg::Int(32)],
        ));
        let dst = ok(call(
            &mut k,
            &mut b,
            "pok_port_create",
            &[KArg::Int(0), KArg::Int(1), KArg::Int(32)],
        ));
        // Duplicate (name, dir) is rejected.
        assert!(matches!(
            call(
                &mut k,
                &mut b,
                "pok_port_create",
                &[KArg::Int(0), KArg::Int(0), KArg::Int(32)]
            ),
            InvokeResult::Err(-4)
        ));
        ok(call(
            &mut k,
            &mut b,
            "pok_port_send",
            &[KArg::Int(src), KArg::Bytes(b"msg".to_vec())],
        ));
        assert_eq!(
            ok(call(&mut k, &mut b, "pok_port_receive", &[KArg::Int(dst)])),
            3
        );
        assert!(matches!(
            call(&mut k, &mut b, "pok_port_receive", &[KArg::Int(dst)]),
            InvokeResult::Err(-8)
        ));
        // Direction rules enforced both ways.
        assert!(matches!(
            call(&mut k, &mut b, "pok_port_receive", &[KArg::Int(src)]),
            InvokeResult::Err(-5)
        ));
        assert!(matches!(
            call(
                &mut k,
                &mut b,
                "pok_port_send",
                &[KArg::Int(dst), KArg::Bytes(b"x".to_vec())]
            ),
            InvokeResult::Err(-5)
        ));
    }

    #[test]
    fn blackboard_display_read() {
        let mut k = PokKernel::new();
        let mut b = bus();
        let bb = ok(call(
            &mut k,
            &mut b,
            "pok_blackboard_create",
            &[KArg::Int(2), KArg::Int(16)],
        ));
        assert!(matches!(
            call(&mut k, &mut b, "pok_blackboard_read", &[KArg::Int(bb)]),
            InvokeResult::Err(-8)
        ));
        ok(call(
            &mut k,
            &mut b,
            "pok_blackboard_display",
            &[KArg::Int(bb), KArg::Bytes(b"state".to_vec())],
        ));
        assert_eq!(
            ok(call(
                &mut k,
                &mut b,
                "pok_blackboard_read",
                &[KArg::Int(bb)]
            )),
            5
        );
        assert!(matches!(
            call(
                &mut k,
                &mut b,
                "pok_blackboard_display",
                &[KArg::Int(bb), KArg::Bytes(vec![0; 64])]
            ),
            InvokeResult::Err(-6)
        ));
    }

    #[test]
    fn health_monitor_idles_partition() {
        let mut k = PokKernel::new();
        let mut b = bus();
        let p = ok(call(
            &mut k,
            &mut b,
            "pok_partition_create",
            &[KArg::Int(1), KArg::Int(10)],
        ));
        ok(call(
            &mut k,
            &mut b,
            "pok_partition_set_mode",
            &[KArg::Int(p), KArg::Int(3)],
        ));
        for i in 1..=3u64 {
            assert_eq!(
                ok(call(
                    &mut k,
                    &mut b,
                    "pok_error_raise",
                    &[KArg::Int(p), KArg::Int(2)]
                )),
                i
            );
        }
        // Partition is now IDLE; NORMAL re-entry is illegal.
        assert!(matches!(
            call(
                &mut k,
                &mut b,
                "pok_partition_set_mode",
                &[KArg::Int(p), KArg::Int(3)]
            ),
            InvokeResult::Err(-3)
        ));
    }

    #[test]
    fn sched_slots_accumulate() {
        let mut k = PokKernel::new();
        let mut b = bus();
        assert_eq!(
            ok(call(&mut k, &mut b, "pok_sched_slot", &[KArg::Int(4)])),
            4
        );
        assert_eq!(
            ok(call(&mut k, &mut b, "pok_sched_slot", &[KArg::Int(4)])),
            8
        );
    }

    #[test]
    fn driver_layer_is_bug_free_under_hostile_streams() {
        // PoK carries no seeded driver bugs: any status byte only varies
        // data/error paths, never faults.
        for stream in [0x00u8, 0x01, 0x04, 0x08, 0x40, 0x80, 0xff] {
            let mut k = PokKernel::new();
            let mut b = bus();
            b.mmio.load_stream(&[stream]);
            assert!(!call(
                &mut k,
                &mut b,
                "pok_spi_transfer",
                &[KArg::Int(8), KArg::Int(64)],
            )
            .is_fault());
            assert!(!call(
                &mut k,
                &mut b,
                "pok_i2c_read",
                &[KArg::Int(0x50), KArg::Int(32)],
            )
            .is_fault());
            assert!(!call(
                &mut k,
                &mut b,
                "pok_dma_start",
                &[KArg::Int(1), KArg::Int(2), KArg::Int(65535)],
            )
            .is_fault());
        }
    }
}
