//! RT-Thread kernel model.
//!
//! Personality: everything is a kernel object in a typed registry
//! (`rt_object_*`), `rt_`-prefixed APIs, memory pools and small-memory
//! (`rt_smem`) management, a device framework carrying the serial
//! console, and the SAL socket layer. Hosts eight Table-2 bugs (#5–#12),
//! including the paper's Figure-6 case study: `syz_create_bind_socket`
//! logging through a stale serial device and panicking in
//! `rt_serial_write`.

use crate::api::{ApiDescriptor, InvokeResult, KArg, KernelFault};
use crate::bugs::BugId;
use crate::ctx::ExecCtx;
use crate::kernel::{Kernel, OsKind};
use crate::os::{a_bytes, a_enum, a_int, a_res, a_str, arg_bytes, arg_int, arg_str};
use crate::subsys::heap::{FreeListHeap, HeapError};
use crate::subsys::ipc::{EventGroup, IpcError};
use crate::subsys::object::{ObjClass, ObjError, ObjectRegistry};
use crate::subsys::pool::{MemoryPool, PoolError};
use crate::subsys::sal::{SalError, SocketLayer};
use crate::subsys::sched::{Policy, SchedError, Scheduler};
use crate::subsys::serial::{SerialError, SerialFramework, FLAG_STREAM};
use eof_hal::FaultKind;

const OBJ_CLASSES: &[(&str, u64)] = &[
    ("RT_Object_Class_Thread", 1),
    ("RT_Object_Class_Semaphore", 2),
    ("RT_Object_Class_Event", 3),
    ("RT_Object_Class_MemPool", 4),
    ("RT_Object_Class_Device", 5),
    ("RT_Object_Class_Timer", 6),
];
const EVENT_OPTS: &[(&str, u64)] = &[
    ("RT_EVENT_FLAG_AND", 0x1),
    ("RT_EVENT_FLAG_OR", 0x2),
    ("RT_EVENT_FLAG_CLEAR", 0x4),
];
const SOCK_DOMAINS: &[(&str, u64)] = &[("AF_UNIX", 1), ("AF_INET", 2), ("AF_INET6", 10)];
const SOCK_TYPES: &[(&str, u64)] = &[("SOCK_STREAM", 1), ("SOCK_DGRAM", 2)];
const DEV_FLAGS: &[(&str, u64)] = &[
    ("RT_DEVICE_FLAG_RDONLY", 0x001),
    ("RT_DEVICE_FLAG_WRONLY", 0x002),
    ("RT_DEVICE_FLAG_RDWR", 0x003),
    ("RT_DEVICE_FLAG_STREAM", 0x040),
];

/// PC-site ids for the driver layer's MMIO polls (replay keys on them).
const SITE_SPI_STATUS: u32 = 0x4800;
const SITE_SPI_DATA: u32 = 0x4810;
const SITE_I2C_STATUS: u32 = 0x4820;
const SITE_I2C_DATA: u32 = 0x4830;
const SITE_DMA_STATUS: u32 = 0x4840;

fn obj_class_of(v: u64) -> ObjClass {
    match v {
        2 => ObjClass::Semaphore,
        3 => ObjClass::Event,
        4 => ObjClass::MemPool,
        5 => ObjClass::Device,
        6 => ObjClass::Timer,
        _ => ObjClass::Thread,
    }
}

/// One small-memory (`rt_smem`) region.
struct Smem {
    size: u32,
    name: String,
}

/// The RT-Thread model.
pub struct RtThreadKernel {
    api: Vec<ApiDescriptor>,
    objects: ObjectRegistry,
    sched: Scheduler,
    heap: FreeListHeap,
    pools: Vec<Option<MemoryPool>>,
    events: Vec<EventGroup>,
    smems: Vec<Smem>,
    serial: SerialFramework,
    sal: SocketLayer,
    critical_nest: u32,
    /// Console device handle within the serial framework.
    console: u32,
    /// A DMA descriptor is in flight (bug #23's first hop).
    dma_busy: bool,
}

impl Default for RtThreadKernel {
    fn default() -> Self {
        Self::new()
    }
}

impl RtThreadKernel {
    /// A freshly booted RT-Thread.
    pub fn new() -> Self {
        RtThreadKernel {
            api: Self::build_api(),
            objects: ObjectRegistry::new(32),
            sched: Scheduler::new(Policy::TickRoundRobin, 16, 31, 15, 128),
            heap: FreeListHeap::new(64 * 1024),
            pools: Vec::new(),
            events: Vec::new(),
            smems: Vec::new(),
            serial: SerialFramework::with_console(),
            sal: SocketLayer::new(8),
            critical_nest: 0,
            console: 0,
            dma_busy: false,
        }
    }

    fn build_api() -> Vec<ApiDescriptor> {
        let mut v = Vec::new();
        let mut id = 0u16;
        let mut api = |name: &'static str,
                       args: Vec<crate::api::ArgMeta>,
                       returns: Option<&'static str>,
                       module: &'static str,
                       doc: &'static str| {
            let d = ApiDescriptor {
                id,
                name,
                args,
                returns,
                module,
                doc,
            };
            id += 1;
            d
        };
        v.push(api(
            "rt_thread_create",
            vec![
                a_str("name", 15),
                a_int("priority", 0, 31),
                a_int("stack_size", 128, 4096),
            ],
            Some("thread"),
            "thread",
            "Create a thread registered as a kernel object.",
        ));
        v.push(api(
            "rt_thread_delete",
            vec![a_res("thread", "thread")],
            None,
            "thread",
            "Delete a thread.",
        ));
        v.push(api(
            "rt_object_init",
            vec![a_enum("type", "obj_class", OBJ_CLASSES), a_str("name", 15)],
            Some("object"),
            "kernel",
            "Register a static kernel object in the typed container.",
        ));
        v.push(api(
            "rt_object_detach",
            vec![a_res("object", "object")],
            None,
            "kernel",
            "Detach an object from its container.",
        ));
        v.push(api(
            "rt_object_get_type",
            vec![a_res("object", "object")],
            None,
            "kernel",
            "Read an object's class tag.",
        ));
        v.push(api(
            "rt_object_find",
            vec![a_enum("type", "obj_class", OBJ_CLASSES), a_str("name", 15)],
            None,
            "kernel",
            "Find a live object by class and name.",
        ));
        v.push(api(
            "rt_service_check",
            vec![
                a_enum("type", "obj_class", OBJ_CLASSES),
                a_int("max_depth", 0, 4096),
            ],
            None,
            "service",
            "Walk a class container up to max_depth nodes, checking list integrity.",
        ));
        v.push(api(
            "rt_mp_create",
            vec![
                a_str("name", 15),
                a_int("block_size", 4, 128),
                a_int("block_count", 1, 8),
            ],
            Some("mempool"),
            "memory",
            "Create a fixed-block memory pool.",
        ));
        v.push(api(
            "rt_mp_alloc",
            vec![a_res("mp", "mempool"), a_int("flags", 0, 255)],
            None,
            "memory",
            "Allocate one block from a pool.",
        ));
        v.push(api(
            "rt_mp_free",
            vec![a_res("mp", "mempool"), a_int("block", 0, 8)],
            None,
            "memory",
            "Return a block to its pool.",
        ));
        v.push(api(
            "rt_mp_delete",
            vec![a_res("mp", "mempool")],
            None,
            "memory",
            "Delete a memory pool.",
        ));
        v.push(api(
            "rt_event_create",
            vec![a_str("name", 15)],
            Some("event"),
            "ipc",
            "Create an event object.",
        ));
        v.push(api(
            "rt_event_send",
            vec![a_res("event", "event"), a_int("set", 0, 0xffff_ffff)],
            None,
            "ipc",
            "OR event flags into an event object.",
        ));
        v.push(api(
            "rt_event_recv",
            vec![
                a_res("event", "event"),
                a_int("set", 1, 0xffff_ffff),
                a_enum("option", "event_opts", EVENT_OPTS),
            ],
            None,
            "ipc",
            "Receive event flags with AND/OR/CLEAR options.",
        ));
        v.push(api(
            "rt_event_delete",
            vec![a_res("event", "event")],
            None,
            "ipc",
            "Delete an event object.",
        ));
        v.push(api(
            "rt_malloc",
            vec![a_int("size", 1, 8192)],
            Some("mem"),
            "heap",
            "Allocate from the system heap.",
        ));
        v.push(api(
            "rt_free",
            vec![a_res("ptr", "mem")],
            None,
            "heap",
            "Free a system-heap allocation.",
        ));
        v.push(api(
            "rt_enter_critical",
            vec![],
            None,
            "kernel",
            "Disable the scheduler (nestable).",
        ));
        v.push(api(
            "rt_exit_critical",
            vec![],
            None,
            "kernel",
            "Re-enable the scheduler.",
        ));
        v.push(api(
            "rt_smem_init",
            vec![a_int("size", 64, 4096)],
            Some("smem"),
            "memory",
            "Initialise a small-memory region.",
        ));
        v.push(api(
            "rt_smem_setname",
            vec![a_res("smem", "smem"), a_str("name", 32)],
            None,
            "memory",
            "Set the debug name of a small-memory region.",
        ));
        v.push(api(
            "rt_console_device",
            vec![],
            Some("device"),
            "serial",
            "Get the console serial device.",
        ));
        v.push(api(
            "rt_device_register",
            vec![a_str("name", 15)],
            Some("device"),
            "serial",
            "Register a new serial device.",
        ));
        v.push(api(
            "rt_device_close",
            vec![a_res("dev", "device")],
            None,
            "serial",
            "Close an open device.",
        ));
        v.push(api(
            "rt_device_unregister",
            vec![a_res("dev", "device")],
            None,
            "serial",
            "Unregister a closed device (entry becomes stale).",
        ));
        v.push(api(
            "rt_device_open",
            vec![
                a_res("dev", "device"),
                a_enum("oflag", "dev_flags", DEV_FLAGS),
            ],
            None,
            "serial",
            "Open a device with flags.",
        ));
        v.push(api(
            "rt_device_write",
            vec![a_res("dev", "device"), a_bytes("buffer", 64)],
            None,
            "serial",
            "Write through the serial poll-TX path.",
        ));
        v.push(api(
            "syz_create_bind_socket",
            vec![
                a_enum("domain", "sock_domain", SOCK_DOMAINS),
                a_enum("type", "sock_type", SOCK_TYPES),
                a_int("protocol", 0, 255),
                a_int("port", 1, 65535),
            ],
            Some("sock"),
            "sal",
            "Pseudo-syscall: create a socket, log the creation banner, bind it.",
        ));
        v.push(api(
            "closesocket",
            vec![a_res("sock", "sock")],
            None,
            "sal",
            "Close a socket.",
        ));
        v.push(api(
            "sal_send",
            vec![a_res("sock", "sock"), a_bytes("data", 128)],
            None,
            "sal",
            "Send bytes on a socket.",
        ));
        v.push(api(
            "rt_tick_increase",
            vec![a_int("n", 1, 10)],
            None,
            "kernel",
            "Advance the kernel tick.",
        ));
        v.push(api(
            "rt_spi_transfer",
            vec![a_int("send_len", 0, 64), a_int("recv_len", 0, 64)],
            None,
            "spi",
            "Transfer a message on the SPI bus device.",
        ));
        v.push(api(
            "rt_i2c_master_recv",
            vec![a_int("addr", 0, 127), a_int("len", 0, 32)],
            None,
            "i2c",
            "Master-mode receive from an I2C slave.",
        ));
        v.push(api(
            "rt_dma_start",
            vec![
                a_int("src", 0, 0xffff),
                a_int("dst", 0, 0xffff),
                a_int("len", 0, 65536),
            ],
            None,
            "dma",
            "Program and start a DMA descriptor.",
        ));
        v
    }

    fn map_obj(e: ObjError) -> InvokeResult {
        InvokeResult::Err(match e {
            ObjError::DupName => -1,
            ObjError::Full => -2,
            ObjError::BadHandle => -3,
            ObjError::BadName => -4,
            ObjError::AlreadyDetached => -5,
        })
    }

    /// The kernel log path: `rt_kprintf` → `_kputs` → `rt_device_write`
    /// on the console. If the console device is stale, this is bug #12 —
    /// the Figure-6 backtrace, innermost frame first.
    fn kprintf(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        line: &str,
        via: &'static str,
    ) -> Result<(), KernelFault> {
        match self.serial.write(
            ctx,
            "rt-thread::serial::rt_serial_write",
            self.console,
            line.as_bytes(),
        ) {
            Ok(_) => {
                ctx.klog(line);
                Ok(())
            }
            Err(SerialError::Stale) => Err(KernelFault::bug(
                BugId::B12SerialWrite,
                FaultKind::Panic,
                "BUG: unexpected stop: bus fault in _serial_poll_tx",
                vec![
                    "rt_serial_write",
                    "rt_device_write",
                    "_kputs",
                    "rt_kprintf",
                    via,
                ],
                true,
            )),
            Err(_) => Ok(()),
        }
    }
}

impl Kernel for RtThreadKernel {
    fn os(&self) -> OsKind {
        OsKind::RtThread
    }

    fn on_interrupt(&mut self, ctx: &mut ExecCtx<'_>, line: u8, payload: &[u8]) -> InvokeResult {
        match line {
            eof_hal::irq::TIMER => {
                ctx.cov("rt-thread::isr::tick::entry");
                self.sched.tick(ctx, "rt-thread::kernel::tick");
                // The tick handler also kicks any armed event bit 0 —
                // the classic RT-Thread systick hook.
                if let Some(e) = self.events.iter_mut().find(|e| !e.deleted) {
                    ctx.cov("rt-thread::isr::tick::event_hook");
                    let _ = e.send(ctx, "rt-thread::ipc::rt_event_send", 1);
                }
                InvokeResult::Ok(self.sched.tick_count())
            }
            eof_hal::irq::GPIO => {
                ctx.cov("rt-thread::isr::gpio::entry");
                ctx.charge(3);
                ctx.cov_var(
                    "rt-thread::isr::gpio::live_objs",
                    (self.objects.live_count() as u64).min(15),
                );
                InvokeResult::Ok(0)
            }
            eof_hal::irq::SERIAL_RX => {
                ctx.cov("rt-thread::isr::uart_rx::entry");
                ctx.charge(3 + payload.len() as u64 / 4);
                ctx.cov_var(
                    "rt-thread::isr::uart_rx::len_band",
                    (payload.len() as u64 / 4).min(15),
                );
                InvokeResult::Ok(payload.len() as u64)
            }
            eof_hal::irq::SPI => {
                ctx.cov("rt-thread::isr::spi_done::entry");
                ctx.charge(3);
                InvokeResult::Ok(0)
            }
            eof_hal::irq::I2C => {
                ctx.cov("rt-thread::isr::i2c_done::entry");
                ctx.charge(3);
                InvokeResult::Ok(0)
            }
            eof_hal::irq::DMA => {
                ctx.cov("rt-thread::isr::dma_done::entry");
                ctx.charge(4);
                // Completion retires the in-flight descriptor.
                self.dma_busy = false;
                let len = payload
                    .first_chunk::<4>()
                    .map(|b| u32::from_le_bytes(*b))
                    .unwrap_or(0);
                ctx.cov_var(
                    "rt-thread::isr::dma_done::len_band",
                    (len as u64 / 64).min(15),
                );
                InvokeResult::Ok(len as u64)
            }
            _ => InvokeResult::Err(-38),
        }
    }

    fn api_table(&self) -> &[ApiDescriptor] {
        &self.api
    }

    fn exception_symbol(&self) -> &'static str {
        "common_exception"
    }

    fn assert_symbol(&self) -> &'static str {
        "rt_assert_handler"
    }

    fn total_branch_sites(&self) -> usize {
        crate::image::total_sites(OsKind::RtThread)
    }

    fn boot_banner(&self) -> Vec<String> {
        vec![
            " \\ | /".into(),
            "- RT -     Thread Operating System".into(),
            " / | \\     build 2f55990".into(),
        ]
    }

    fn reset(&mut self, _ctx: &mut ExecCtx<'_>) {
        let api = std::mem::take(&mut self.api);
        *self = RtThreadKernel::new();
        self.api = api;
    }

    fn invoke(&mut self, ctx: &mut ExecCtx<'_>, api_id: u16, args: &[KArg]) -> InvokeResult {
        match api_id {
            // rt_thread_create
            0 => {
                let name = arg_str(args, 0).to_string();
                match self.sched.create(
                    ctx,
                    "rt-thread::thread::rt_thread_create",
                    &name,
                    arg_int(args, 1) as u8,
                    arg_int(args, 2) as u32,
                ) {
                    Ok(h) => {
                        let _ = self.objects.init(
                            ctx,
                            "rt-thread::kernel::rt_object_init",
                            ObjClass::Thread,
                            &name,
                        );
                        InvokeResult::Ok(h as u64)
                    }
                    Err(SchedError::NameTooLong) => InvokeResult::Err(-4),
                    Err(_) => InvokeResult::Err(-2),
                }
            }
            // rt_thread_delete
            1 => match self.sched.delete(
                ctx,
                "rt-thread::thread::rt_thread_delete",
                arg_int(args, 0) as u32,
            ) {
                Ok(()) => InvokeResult::Ok(0),
                Err(_) => InvokeResult::Err(-3),
            },
            // rt_object_init — bug #8.
            2 => {
                let class = obj_class_of(arg_int(args, 0));
                let name = arg_str(args, 1);
                match self
                    .objects
                    .init(ctx, "rt-thread::kernel::rt_object_init", class, name)
                {
                    Ok(h) => InvokeResult::Ok(h as u64),
                    // Bug #8: RT_ASSERT(name != RT_NULL) passes for an
                    // empty string; only the timer class then takes the
                    // name-indexed wheel slot path whose copy loop
                    // underflows — the assert handler reports and hangs.
                    Err(ObjError::BadName) if name.is_empty() && class == ObjClass::Timer => {
                        ctx.cov("rt-thread::kernel::rt_object_init::empty_name");
                        ctx.klog("(obj != object_find(name)) assertion failed at rt_object_init");
                        InvokeResult::Fault(KernelFault::bug(
                            BugId::B08ObjectInit,
                            FaultKind::Assertion,
                            "Assertion failed: name length in rt_object_init",
                            vec!["rt_object_init", "rt_object_attach"],
                            true,
                        ))
                    }
                    Err(e) => Self::map_obj(e),
                }
            }
            // rt_object_detach
            3 => match self.objects.detach(
                ctx,
                "rt-thread::kernel::rt_object_detach",
                arg_int(args, 0) as u32,
            ) {
                Ok(()) => InvokeResult::Ok(0),
                Err(e) => Self::map_obj(e),
            },
            // rt_object_get_type — bug #5.
            4 => match self.objects.get_type(
                ctx,
                "rt-thread::kernel::rt_object_get_type",
                arg_int(args, 0) as u32,
            ) {
                Ok((tag, false)) => InvokeResult::Ok(tag as u64),
                // Bug #5: only the *device* teardown path poisons the
                // type field on detach; reading a detached device's tag
                // trips the RT_ASSERT, which loops. Other classes return
                // the stale-but-valid tag.
                Ok((tag, true)) if tag == ObjClass::Device.tag() => {
                    ctx.cov("rt-thread::kernel::rt_object_get_type::detached");
                    ctx.klog(
                        "(rt_object_get_type(obj) < RT_Object_Class_Unknown) assertion failed",
                    );
                    InvokeResult::Fault(KernelFault::bug(
                        BugId::B05ObjectGetType,
                        FaultKind::Assertion,
                        "Assertion failed: object class tag in rt_object_get_type",
                        vec!["rt_object_get_type", "rt_object_is_systemobject"],
                        true,
                    ))
                }
                Ok((tag, true)) => {
                    ctx.cov("rt-thread::kernel::rt_object_get_type::stale_tag");
                    InvokeResult::Ok(tag as u64)
                }
                Err(e) => Self::map_obj(e),
            },
            // rt_object_find
            5 => {
                let class = obj_class_of(arg_int(args, 0));
                match self.objects.find(
                    ctx,
                    "rt-thread::kernel::rt_object_find",
                    class,
                    arg_str(args, 1),
                ) {
                    Some(h) => InvokeResult::Ok(h as u64),
                    None => InvokeResult::Err(-3),
                }
            }
            // rt_service_check — bug #6.
            6 => {
                let class = obj_class_of(arg_int(args, 0));
                let (empty, poisoned) = self.objects.container_is_empty(
                    ctx,
                    "rt-thread::service::rt_list_isempty",
                    class,
                );
                let max_depth = arg_int(args, 1);
                // Breadcrumb ladder: the walker's bail-out comparison
                // dispatches per depth bound on a poisoned container —
                // one branch per small bound, a single saturating branch
                // beyond.
                if poisoned {
                    ctx.cov_var(
                        "rt-thread::service::rt_list_isempty::bound",
                        max_depth.min(63),
                    );
                }
                // Bug #6: bound 11 lands the bail-out pointer exactly on
                // the freed node left by an unlink-twice, and the
                // emptiness probe dereferences it.
                if poisoned && max_depth == 11 {
                    // Bug #6: the service walker trusts `rt_list_isempty`
                    // on a container whose node was unlinked twice — the
                    // second unlink wrote through a freed prev pointer.
                    ctx.cov("rt-thread::service::rt_list_isempty::poisoned");
                    ctx.klog("E rt_service: list node 0xdeadbeef out of container");
                    return InvokeResult::Fault(KernelFault::bug(
                        BugId::B06ListIsEmpty,
                        FaultKind::MemFault,
                        "BUG: bus fault walking object container in rt_list_isempty",
                        vec!["rt_list_isempty", "rt_service_check", "information_walk"],
                        false,
                    ));
                }
                InvokeResult::Ok(empty as u64)
            }
            // rt_mp_create
            7 => {
                ctx.cov("rt-thread::memory::rt_mp_create::entry");
                let name = arg_str(args, 0);
                if name.is_empty() || name.len() > 15 {
                    return InvokeResult::Err(-4);
                }
                let bs = arg_int(args, 1).clamp(4, 128) as u32;
                let count = arg_int(args, 2).clamp(1, 8) as usize;
                let _ = self.objects.init(
                    ctx,
                    "rt-thread::kernel::rt_object_init",
                    ObjClass::MemPool,
                    name,
                );
                self.pools.push(Some(MemoryPool::new(name, bs, count)));
                InvokeResult::Ok(self.pools.len() as u64 - 1)
            }
            // rt_mp_alloc — bug #7.
            8 => {
                let h = arg_int(args, 0) as usize;
                let flags = arg_int(args, 1);
                ctx.cov_var(
                    "rt-thread::memory::rt_mp_alloc::flags_band",
                    (flags / 16).min(31),
                );
                let Some(Some(p)) = self.pools.get_mut(h) else {
                    return InvokeResult::Err(-3);
                };
                // Breadcrumb ladder: the exhausted slow path dispatches
                // per flag value (a jump table in the real code), so each
                // flag reached on an exhausted pool is its own edge.
                if p.is_exhausted() {
                    ctx.cov_var(
                        "rt-thread::memory::rt_mp_alloc::exhausted_flags",
                        flags.min(255),
                    );
                }
                // Bug #7: RT_MP_SUSPEND_RETRY (0x5A) on an exhausted pool
                // re-reads the free list head after it was nulled.
                if p.is_exhausted() && flags == 0x5A {
                    ctx.cov("rt-thread::memory::rt_mp_alloc::exhausted_retry");
                    ctx.klog("E rt_mp: block_list NULL deref in rt_mp_alloc");
                    return InvokeResult::Fault(KernelFault::bug(
                        BugId::B07MpAlloc,
                        FaultKind::MemFault,
                        "BUG: NULL dereference in rt_mp_alloc",
                        vec!["rt_mp_alloc", "rt_mp_alloc_inner"],
                        false,
                    ));
                }
                match p.alloc(ctx, "rt-thread::memory::rt_mp_alloc") {
                    Ok(b) => InvokeResult::Ok(b as u64),
                    Err(PoolError::Exhausted) => InvokeResult::Err(-6),
                    Err(_) => InvokeResult::Err(-3),
                }
            }
            // rt_mp_free
            9 => {
                let h = arg_int(args, 0) as usize;
                let Some(Some(p)) = self.pools.get_mut(h) else {
                    return InvokeResult::Err(-3);
                };
                match p.free(
                    ctx,
                    "rt-thread::memory::rt_mp_free",
                    arg_int(args, 1) as u32,
                ) {
                    Ok(()) => InvokeResult::Ok(0),
                    Err(_) => InvokeResult::Err(-3),
                }
            }
            // rt_mp_delete
            10 => {
                ctx.cov("rt-thread::memory::rt_mp_delete::entry");
                match self.pools.get_mut(arg_int(args, 0) as usize) {
                    Some(slot @ Some(_)) => {
                        *slot = None;
                        InvokeResult::Ok(0)
                    }
                    _ => InvokeResult::Err(-3),
                }
            }
            // rt_event_create
            11 => {
                ctx.cov("rt-thread::ipc::rt_event_create::entry");
                let name = arg_str(args, 0);
                if name.is_empty() || name.len() > 15 {
                    return InvokeResult::Err(-4);
                }
                let _ = self.objects.init(
                    ctx,
                    "rt-thread::kernel::rt_object_init",
                    ObjClass::Event,
                    name,
                );
                self.events.push(EventGroup::new());
                InvokeResult::Ok(self.events.len() as u64 - 1)
            }
            // rt_event_send — bug #10.
            12 => {
                let Some(e) = self.events.get_mut(arg_int(args, 0) as usize) else {
                    return InvokeResult::Err(-3);
                };
                // Bug #10: sending to a deleted event normally bounces off
                // the object-type NULL guard — except when the set mask is
                // dense enough (26 bits) that the guard's popcount-keyed
                // fast path skips the check and walks the freed suspend
                // list. The guard itself branches per popcount (the
                // breadcrumb ladder guided mutation climbs).
                if e.deleted {
                    let set = arg_int(args, 1) as u32;
                    ctx.cov_var(
                        "rt-thread::ipc::rt_event_send::deleted_guard",
                        set.count_ones() as u64,
                    );
                    if set.count_ones() == 26 {
                        ctx.cov("rt-thread::ipc::rt_event_send::deleted");
                        ctx.klog("E rt_event: suspend list corrupt in rt_event_send");
                        return InvokeResult::Fault(KernelFault::bug(
                            BugId::B10EventSend,
                            FaultKind::MemFault,
                            "BUG: freed suspend-list walk in rt_event_send",
                            vec!["rt_event_send", "_ipc_list_resume_all"],
                            false,
                        ));
                    }
                    return InvokeResult::Err(-3);
                }
                match e.send(
                    ctx,
                    "rt-thread::ipc::rt_event_send",
                    arg_int(args, 1) as u32,
                ) {
                    Ok(bits) => InvokeResult::Ok(bits as u64),
                    Err(IpcError::Empty) => InvokeResult::Err(-7),
                    Err(_) => InvokeResult::Err(-1),
                }
            }
            // rt_event_recv
            13 => {
                let opt = arg_int(args, 2);
                let Some(e) = self.events.get_mut(arg_int(args, 0) as usize) else {
                    return InvokeResult::Err(-3);
                };
                if e.deleted {
                    return InvokeResult::Err(-3);
                }
                match e.recv(
                    ctx,
                    "rt-thread::ipc::rt_event_recv",
                    arg_int(args, 1) as u32,
                    opt & 0x1 != 0,
                    opt & 0x4 != 0,
                ) {
                    Ok(got) => InvokeResult::Ok(got as u64),
                    Err(_) => InvokeResult::Err(-11),
                }
            }
            // rt_event_delete
            14 => {
                ctx.cov("rt-thread::ipc::rt_event_delete::entry");
                match self.events.get_mut(arg_int(args, 0) as usize) {
                    Some(e) if !e.deleted => {
                        e.deleted = true;
                        InvokeResult::Ok(0)
                    }
                    _ => InvokeResult::Err(-3),
                }
            }
            // rt_malloc — bug #9.
            15 => {
                let size = arg_int(args, 0) as u32;
                // Bug #9: a large allocation while the scheduler is
                // locked takes `_heap_lock` recursively — the non-
                // recursive lock deadlock is caught by the lock's own
                // sanity check, which panics.
                if self.critical_nest > 0 && size > 1024 {
                    ctx.cov("rt-thread::heap::_heap_lock::critical_large");
                    ctx.klog("E rt_heap: _heap_lock re-entered under scheduler lock");
                    return InvokeResult::Fault(KernelFault::bug(
                        BugId::B09HeapLock,
                        FaultKind::Panic,
                        "BUG: _heap_lock recursion under rt_enter_critical",
                        vec!["_heap_lock", "rt_malloc", "rt_smem_alloc"],
                        false,
                    ));
                }
                match self.heap.alloc(ctx, "rt-thread::heap::rt_malloc", size) {
                    Ok(h) => InvokeResult::Ok(h as u64),
                    Err(HeapError::OutOfMemory) => InvokeResult::Err(-12),
                    Err(_) => InvokeResult::Err(-1),
                }
            }
            // rt_free
            16 => match self
                .heap
                .free(ctx, "rt-thread::heap::rt_free", arg_int(args, 0) as u32)
            {
                Ok(()) => InvokeResult::Ok(0),
                Err(_) => InvokeResult::Err(-1),
            },
            // rt_enter_critical
            17 => {
                ctx.cov("rt-thread::kernel::rt_enter_critical::entry");
                self.critical_nest += 1;
                InvokeResult::Ok(self.critical_nest as u64)
            }
            // rt_exit_critical
            18 => {
                ctx.cov("rt-thread::kernel::rt_exit_critical::entry");
                self.critical_nest = self.critical_nest.saturating_sub(1);
                InvokeResult::Ok(self.critical_nest as u64)
            }
            // rt_smem_init
            19 => {
                ctx.cov("rt-thread::memory::rt_smem_init::entry");
                let size = arg_int(args, 0).clamp(64, 4096) as u32;
                self.smems.push(Smem {
                    size,
                    name: String::new(),
                });
                InvokeResult::Ok(self.smems.len() as u64 - 1)
            }
            // rt_smem_setname — bug #11.
            20 => {
                let name = arg_str(args, 1).to_string();
                ctx.cov_var(
                    "rt-thread::memory::rt_smem_setname::len_band",
                    (name.len() as u64 / 4).min(15),
                );
                let Some(s) = self.smems.get_mut(arg_int(args, 0) as usize) else {
                    return InvokeResult::Err(-3);
                };
                // Breadcrumb ladder: small regions index the inline name
                // slot by the region size (header packing), one branch
                // per byte of headroom.
                if name.len() > 15 && s.size < 256 {
                    ctx.cov_var(
                        "rt-thread::memory::rt_smem_setname::slot",
                        s.size.min(255) as u64,
                    );
                }
                // Bug #11: the name copy uses the caller's length, but a
                // 118-byte region's header leaves the inline name slot
                // exactly flush with the first free block — a long name
                // overruns it.
                if name.len() > 15 && s.size == 118 {
                    ctx.cov("rt-thread::memory::rt_smem_setname::overrun");
                    ctx.klog("E rt_smem: header overrun in rt_smem_setname");
                    return InvokeResult::Fault(KernelFault::bug(
                        BugId::B11SmemSetname,
                        FaultKind::MemFault,
                        "BUG: smem header overrun in rt_smem_setname",
                        vec!["rt_smem_setname", "rt_memcpy"],
                        false,
                    ));
                }
                ctx.cov("rt-thread::memory::rt_smem_setname::ok");
                s.name = name;
                InvokeResult::Ok(0)
            }
            // rt_console_device
            21 => {
                ctx.cov("rt-thread::serial::rt_console_device::entry");
                InvokeResult::Ok(self.console as u64)
            }
            // rt_device_register
            22 => {
                let name = arg_str(args, 0);
                if name.is_empty() || name.len() > 15 {
                    return InvokeResult::Err(-4);
                }
                match self
                    .serial
                    .register(ctx, "rt-thread::serial::rt_device_register", name)
                {
                    Ok(h) => {
                        let _ = self.objects.init(
                            ctx,
                            "rt-thread::kernel::rt_object_init",
                            ObjClass::Device,
                            name,
                        );
                        InvokeResult::Ok(h as u64)
                    }
                    Err(SerialError::DupName) => InvokeResult::Err(-1),
                    Err(_) => InvokeResult::Err(-3),
                }
            }
            // rt_device_close
            23 => match self.serial.close_handle(
                ctx,
                "rt-thread::serial::rt_device_close",
                arg_int(args, 0) as u32,
            ) {
                Ok(()) => InvokeResult::Ok(0),
                Err(_) => InvokeResult::Err(-3),
            },
            // rt_device_unregister — by handle; open devices are busy;
            // the table entry goes stale.
            24 => match self.serial.unregister_handle(
                ctx,
                "rt-thread::serial::rt_device_unregister",
                arg_int(args, 0) as u32,
            ) {
                Ok(()) => InvokeResult::Ok(0),
                Err(SerialError::Busy) => InvokeResult::Err(-16),
                Err(_) => InvokeResult::Err(-3),
            },
            // rt_device_open
            25 => match self.serial.open(
                ctx,
                "rt-thread::serial::rt_device_open",
                arg_int(args, 0) as u32,
                arg_int(args, 1) as u32 | FLAG_STREAM,
            ) {
                Ok(()) => InvokeResult::Ok(0),
                Err(_) => InvokeResult::Err(-3),
            },
            // rt_device_write — a direct write to a stale handle is
            // caught by the device layer's registered check (plain
            // error); only the *console logging* path reaches the stale
            // pointer blind (bug #12, via syz_create_bind_socket).
            26 => {
                let h = arg_int(args, 0) as u32;
                let data = arg_bytes(args, 1).to_vec();
                match self
                    .serial
                    .write(ctx, "rt-thread::serial::rt_serial_write", h, &data)
                {
                    Ok(n) => InvokeResult::Ok(n),
                    Err(_) => InvokeResult::Err(-3),
                }
            }
            // syz_create_bind_socket — the Figure-6 pseudo-syscall.
            27 => {
                ctx.cov("rt-thread::sal::syz_create_bind_socket::entry");
                let domain = arg_int(args, 0);
                let ty = arg_int(args, 1);
                let proto = arg_int(args, 2);
                let port = arg_int(args, 3).clamp(1, 65535) as u16;
                match self
                    .sal
                    .socket(ctx, "rt-thread::sal::sal_socket", domain, ty, proto)
                {
                    Ok(sock) => {
                        // sal_socket logs its banner via rt_kprintf. On a
                        // stale console the short banner is dropped by
                        // the driver's length guard (breadcrumbs below);
                        // the *long* variant — ephemeral port warning
                        // plus a raw-protocol suffix — bypasses the guard
                        // and dies in rt_serial_write (bug #12).
                        if self.serial.is_stale(self.console) {
                            ctx.cov_var(
                                "rt-thread::sal::sal_socket::lost_banner_port",
                                (port as u64) / 4096,
                            );
                            ctx.cov_var(
                                "rt-thread::sal::sal_socket::lost_banner_proto",
                                (proto & 0xff).min(255),
                            );
                            if port >= 0x8000 && proto & 0xff == 0x01 {
                                if let Err(fault) = self.kprintf(
                                    ctx,
                                    &format!(
                                        "W sal: socket {sock} on ephemeral port {port} (raw proto {proto:#x})"
                                    ),
                                    "sal_socket",
                                ) {
                                    return InvokeResult::Fault(fault);
                                }
                            }
                        } else if let Err(fault) = self.kprintf(
                            ctx,
                            &format!("I sal: socket {sock} created (domain {domain})"),
                            "sal_socket",
                        ) {
                            return InvokeResult::Fault(fault);
                        }
                        let _ = self.sal.bind(ctx, "rt-thread::sal::sal_bind", sock, port);
                        InvokeResult::Ok(sock as u64)
                    }
                    Err(SalError::BadDomain) => InvokeResult::Err(-97),
                    Err(SalError::BadType) => InvokeResult::Err(-94),
                    Err(_) => InvokeResult::Err(-24),
                }
            }
            // closesocket
            28 => match self
                .sal
                .close(ctx, "rt-thread::sal::closesocket", arg_int(args, 0) as u32)
            {
                Ok(()) => InvokeResult::Ok(0),
                Err(_) => InvokeResult::Err(-9),
            },
            // sal_send
            29 => match self.sal.send(
                ctx,
                "rt-thread::sal::sal_send",
                arg_int(args, 0) as u32,
                arg_bytes(args, 1),
            ) {
                Ok(n) => InvokeResult::Ok(n),
                Err(SalError::NotConnected) => InvokeResult::Err(-107),
                Err(_) => InvokeResult::Err(-9),
            },
            // rt_tick_increase
            30 => {
                let n = arg_int(args, 0).clamp(1, 10);
                for _ in 0..n {
                    self.sched.tick(ctx, "rt-thread::kernel::tick");
                }
                InvokeResult::Ok(self.sched.tick_count())
            }
            // rt_spi_transfer
            31 => {
                use eof_hal::mmio::{periph, reg, CTRL_START};
                ctx.cov("rt-thread::spi::rt_spi_transfer::entry");
                let send_len = arg_int(args, 0).min(64);
                let recv_len = arg_int(args, 1).min(64);
                ctx.charge(8 + send_len + recv_len);
                ctx.bus
                    .mmio_write(periph::SPI, reg::CTRL, CTRL_START | (send_len << 8));
                let status = ctx.bus.mmio_read(SITE_SPI_STATUS, periph::SPI, reg::STATUS);
                ctx.cov_var(
                    "rt-thread::spi::rt_spi_transfer::status_band",
                    (status & 0x7) as u64,
                );
                let mut sum = 0u64;
                for i in 0..recv_len.min(8) as u32 {
                    sum += ctx.bus.mmio_read(SITE_SPI_DATA + i, periph::SPI, reg::DATA) as u64;
                }
                InvokeResult::Ok(sum)
            }
            // rt_i2c_master_recv — bug #22.
            32 => {
                use eof_hal::mmio::{periph, reg, CTRL_START};
                ctx.cov("rt-thread::i2c::rt_i2c_master_recv::entry");
                let addr = arg_int(args, 0) & 0x7f;
                let len = arg_int(args, 1).min(32);
                ctx.charge(6 + len);
                ctx.bus
                    .mmio_write(periph::I2C, reg::CTRL, CTRL_START | (addr << 1));
                let status = ctx.bus.mmio_read(SITE_I2C_STATUS, periph::I2C, reg::STATUS);
                if status & 0x1 != 0 {
                    ctx.cov("rt-thread::i2c::rt_i2c_master_recv::nack");
                    // Bug #22: the NACK error path for a multi-block read
                    // frees the rx bounce buffer, then the cleanup epilogue
                    // frees it again. Short reads use the inline buffer and
                    // skip the first free.
                    if len > 16 {
                        ctx.cov("rt-thread::i2c::rt_i2c_master_recv::nack_bounce");
                        ctx.klog("E rt_i2c: bounce buffer double free on NACK");
                        return InvokeResult::Fault(KernelFault::bug(
                            BugId::B22I2cNackDoubleFree,
                            FaultKind::Panic,
                            "BUG: double free of rx bounce buffer in rt_i2c_master_recv",
                            vec!["rt_i2c_master_recv", "i2c_bit_xfer", "rt_free"],
                            false,
                        ));
                    }
                    return InvokeResult::Err(-5);
                }
                let mut sum = 0u64;
                for i in 0..len.min(8) as u32 {
                    sum += ctx.bus.mmio_read(SITE_I2C_DATA + i, periph::I2C, reg::DATA) as u64;
                }
                InvokeResult::Ok(sum)
            }
            // rt_dma_start — bug #23.
            33 => {
                use eof_hal::mmio::{periph, reg, CTRL_START};
                ctx.cov("rt-thread::dma::rt_dma_start::entry");
                let src = arg_int(args, 0);
                let dst = arg_int(args, 1);
                let len = arg_int(args, 2).min(65536);
                ctx.charge(10 + len / 64);
                ctx.bus.mmio_write(periph::DMA, reg::SRC, src);
                ctx.bus.mmio_write(periph::DMA, reg::DST, dst);
                ctx.bus.mmio_write(periph::DMA, reg::LEN, len);
                let status = ctx.bus.mmio_read(SITE_DMA_STATUS, periph::DMA, reg::STATUS);
                if self.dma_busy {
                    ctx.cov("rt-thread::dma::rt_dma_start::restart");
                }
                // Bug #23 (depth 2): starting a second transfer while the
                // first descriptor is still in flight AND the engine's
                // ACTIVE bit is latched rewrites the live descriptor's
                // next pointer — the engine then chases a freed chain.
                if self.dma_busy && len > 0 && status & 0x8 != 0 {
                    ctx.cov("rt-thread::dma::rt_dma_start::desc_reuse");
                    ctx.klog("E rt_dma: in-flight descriptor rewritten in rt_dma_start");
                    return InvokeResult::Fault(KernelFault::bug(
                        BugId::B23DmaDescReuse,
                        FaultKind::Panic,
                        "BUG: in-flight descriptor reuse in rt_dma_start",
                        vec!["rt_dma_start", "dma_desc_link", "executor"],
                        false,
                    ));
                }
                ctx.bus.mmio_write(periph::DMA, reg::CTRL, CTRL_START);
                if len > 0 {
                    self.dma_busy = true;
                }
                InvokeResult::Ok(len)
            }
            _ => InvokeResult::Err(-88),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::os::testutil::{bus, call, is_bug, ok};

    #[test]
    fn bug5_detached_device_object_type() {
        let mut k = RtThreadKernel::new();
        let mut b = bus();
        // Non-device classes survive a detached-type read.
        let sem = ok(call(
            &mut k,
            &mut b,
            "rt_object_init",
            &[KArg::Int(2), KArg::Str("sem0".into())],
        ));
        ok(call(&mut k, &mut b, "rt_object_detach", &[KArg::Int(sem)]));
        assert!(!call(&mut k, &mut b, "rt_object_get_type", &[KArg::Int(sem)]).is_fault());
        // The device class asserts.
        let dev = ok(call(
            &mut k,
            &mut b,
            "rt_object_init",
            &[KArg::Int(5), KArg::Str("spi1".into())],
        ));
        assert_eq!(
            ok(call(
                &mut k,
                &mut b,
                "rt_object_get_type",
                &[KArg::Int(dev)]
            )),
            5
        );
        ok(call(&mut k, &mut b, "rt_object_detach", &[KArg::Int(dev)]));
        let r = call(&mut k, &mut b, "rt_object_get_type", &[KArg::Int(dev)]);
        assert!(is_bug(&r, 5));
    }

    #[test]
    fn bug6_needs_poison_and_bound_11() {
        let mut k = RtThreadKernel::new();
        let mut b = bus();
        let o1 = ok(call(
            &mut k,
            &mut b,
            "rt_object_init",
            &[KArg::Int(4), KArg::Str("mp0".into())],
        ));
        ok(call(&mut k, &mut b, "rt_object_detach", &[KArg::Int(o1)]));
        // Clean container: any bound is fine.
        assert!(!call(
            &mut k,
            &mut b,
            "rt_service_check",
            &[KArg::Int(4), KArg::Int(11)]
        )
        .is_fault());
        // Poisoned container with near-miss bounds: breadcrumbs only.
        let _ = call(&mut k, &mut b, "rt_object_detach", &[KArg::Int(o1)]);
        for bound in [0u64, 10, 12, 1000] {
            assert!(
                !call(
                    &mut k,
                    &mut b,
                    "rt_service_check",
                    &[KArg::Int(4), KArg::Int(bound)]
                )
                .is_fault(),
                "bound {bound}"
            );
        }
        // Poisoned + bound 11: panic.
        let r = call(
            &mut k,
            &mut b,
            "rt_service_check",
            &[KArg::Int(4), KArg::Int(11)],
        );
        assert!(is_bug(&r, 6));
    }

    #[test]
    fn bug7_exhausted_pool_with_retry_flag() {
        let mut k = RtThreadKernel::new();
        let mut b = bus();
        let mp = ok(call(
            &mut k,
            &mut b,
            "rt_mp_create",
            &[KArg::Str("mp".into()), KArg::Int(16), KArg::Int(2)],
        ));
        ok(call(
            &mut k,
            &mut b,
            "rt_mp_alloc",
            &[KArg::Int(mp), KArg::Int(0)],
        ));
        ok(call(
            &mut k,
            &mut b,
            "rt_mp_alloc",
            &[KArg::Int(mp), KArg::Int(0)],
        ));
        // Exhausted without the magic flag: plain error (near misses too).
        for flags in [0u64, 0x59, 0x5B, 0x50] {
            assert!(matches!(
                call(
                    &mut k,
                    &mut b,
                    "rt_mp_alloc",
                    &[KArg::Int(mp), KArg::Int(flags)]
                ),
                InvokeResult::Err(-6)
            ));
        }
        let r = call(
            &mut k,
            &mut b,
            "rt_mp_alloc",
            &[KArg::Int(mp), KArg::Int(0x5A)],
        );
        assert!(is_bug(&r, 7));
    }

    #[test]
    fn bug8_empty_timer_object_name() {
        let mut k = RtThreadKernel::new();
        let mut b = bus();
        // Empty names on other classes are a plain error.
        assert!(matches!(
            call(
                &mut k,
                &mut b,
                "rt_object_init",
                &[KArg::Int(1), KArg::Str("".into())]
            ),
            InvokeResult::Err(-4)
        ));
        // Empty name on the timer class asserts and hangs.
        let r = call(
            &mut k,
            &mut b,
            "rt_object_init",
            &[KArg::Int(6), KArg::Str("".into())],
        );
        assert!(is_bug(&r, 8));
        // Over-long names are only an error.
        assert!(matches!(
            call(
                &mut k,
                &mut b,
                "rt_object_init",
                &[KArg::Int(1), KArg::Str("sixteen-chars-xx".into())]
            ),
            InvokeResult::Err(-4)
        ));
    }

    #[test]
    fn bug9_malloc_under_critical() {
        let mut k = RtThreadKernel::new();
        let mut b = bus();
        // Large malloc outside critical: fine.
        ok(call(&mut k, &mut b, "rt_malloc", &[KArg::Int(2048)]));
        ok(call(&mut k, &mut b, "rt_enter_critical", &[]));
        // Small malloc under critical: fine.
        ok(call(&mut k, &mut b, "rt_malloc", &[KArg::Int(64)]));
        let r = call(&mut k, &mut b, "rt_malloc", &[KArg::Int(2048)]);
        assert!(is_bug(&r, 9));
        // Leaving critical restores safety.
        let mut k2 = RtThreadKernel::new();
        ok(call(&mut k2, &mut b, "rt_enter_critical", &[]));
        ok(call(&mut k2, &mut b, "rt_exit_critical", &[]));
        assert!(!call(&mut k2, &mut b, "rt_malloc", &[KArg::Int(2048)]).is_fault());
    }

    #[test]
    fn bug10_deleted_send_needs_dense_mask() {
        let mut k = RtThreadKernel::new();
        let mut b = bus();
        let e = ok(call(
            &mut k,
            &mut b,
            "rt_event_create",
            &[KArg::Str("evt".into())],
        ));
        ok(call(
            &mut k,
            &mut b,
            "rt_event_send",
            &[KArg::Int(e), KArg::Int(0b1)],
        ));
        ok(call(&mut k, &mut b, "rt_event_delete", &[KArg::Int(e)]));
        // Sparse masks bounce off the NULL guard.
        assert!(matches!(
            call(
                &mut k,
                &mut b,
                "rt_event_send",
                &[KArg::Int(e), KArg::Int(0b1)]
            ),
            InvokeResult::Err(-3)
        ));
        // A 26-bit-dense mask skips the guard's fast path: panic.
        let dense = u64::from(u32::MAX >> 6); // 26 ones.
        let r = call(
            &mut k,
            &mut b,
            "rt_event_send",
            &[KArg::Int(e), KArg::Int(dense)],
        );
        assert!(is_bug(&r, 10));
    }

    #[test]
    fn bug11_long_name_on_small_smem() {
        let mut k = RtThreadKernel::new();
        let mut b = bus();
        // 118 % 32 == 22: the vulnerable header-packing slot.
        let small = ok(call(&mut k, &mut b, "rt_smem_init", &[KArg::Int(118)]));
        let large = ok(call(&mut k, &mut b, "rt_smem_init", &[KArg::Int(1024)]));
        let off_slot = ok(call(&mut k, &mut b, "rt_smem_init", &[KArg::Int(128)]));
        let long = "a-very-long-region-name";
        // Long name on a large region: fine.
        ok(call(
            &mut k,
            &mut b,
            "rt_smem_setname",
            &[KArg::Int(large), KArg::Str(long.into())],
        ));
        // Small region of a near-miss size: fine (breadcrumb only).
        ok(call(
            &mut k,
            &mut b,
            "rt_smem_setname",
            &[KArg::Int(off_slot), KArg::Str(long.into())],
        ));
        // Short name on the vulnerable region: fine.
        ok(call(
            &mut k,
            &mut b,
            "rt_smem_setname",
            &[KArg::Int(small), KArg::Str("ok".into())],
        ));
        let r = call(
            &mut k,
            &mut b,
            "rt_smem_setname",
            &[KArg::Int(small), KArg::Str(long.into())],
        );
        assert!(is_bug(&r, 11));
    }

    #[test]
    fn bug12_stale_console_breaks_socket_logging() {
        let mut k = RtThreadKernel::new();
        let mut b = bus();
        // Socket creation with a healthy console logs and succeeds.
        let s = ok(call(
            &mut k,
            &mut b,
            "syz_create_bind_socket",
            &[KArg::Int(2), KArg::Int(1), KArg::Int(0), KArg::Int(8080)],
        ));
        assert!(b.uart.drain().starts_with(b"I sal: socket"));
        ok(call(&mut k, &mut b, "closesocket", &[KArg::Int(s)]));
        // The open console is busy: unregistering it fails.
        let con = ok(call(&mut k, &mut b, "rt_console_device", &[]));
        assert!(matches!(
            call(&mut k, &mut b, "rt_device_unregister", &[KArg::Int(con)]),
            InvokeResult::Err(-16)
        ));
        // Close it, unregister it, then create a socket: Figure 6.
        ok(call(&mut k, &mut b, "rt_device_close", &[KArg::Int(con)]));
        ok(call(
            &mut k,
            &mut b,
            "rt_device_unregister",
            &[KArg::Int(con)],
        ));
        // A mundane socket after the unregister only loses its banner
        // (the short-banner guard swallows it).
        assert!(!call(
            &mut k,
            &mut b,
            "syz_create_bind_socket",
            &[KArg::Int(2), KArg::Int(1), KArg::Int(0), KArg::Int(80)],
        )
        .is_fault());
        // The paper's own arguments — raw protocol 0x101, ephemeral port
        // 48248 — take the long-banner path into the stale device.
        let r = call(
            &mut k,
            &mut b,
            "syz_create_bind_socket",
            &[
                KArg::Int(2),
                KArg::Int(1),
                KArg::Int(0x101),
                KArg::Int(48248),
            ],
        );
        assert!(is_bug(&r, 12));
        if let InvokeResult::Fault(f) = r {
            assert_eq!(f.frames[0], "rt_serial_write");
            assert!(f.frames.contains(&"rt_kprintf"));
            assert!(f.frames.contains(&"sal_socket"));
            assert!(f.hangs_after);
        }
    }

    #[test]
    fn event_recv_options() {
        let mut k = RtThreadKernel::new();
        let mut b = bus();
        let e = ok(call(
            &mut k,
            &mut b,
            "rt_event_create",
            &[KArg::Str("evt".into())],
        ));
        ok(call(
            &mut k,
            &mut b,
            "rt_event_send",
            &[KArg::Int(e), KArg::Int(0b0110)],
        ));
        // AND on a superset mask blocks.
        assert!(matches!(
            call(
                &mut k,
                &mut b,
                "rt_event_recv",
                &[KArg::Int(e), KArg::Int(0b1110), KArg::Int(0x1)]
            ),
            InvokeResult::Err(-11)
        ));
        // OR+CLEAR succeeds.
        assert_eq!(
            ok(call(
                &mut k,
                &mut b,
                "rt_event_recv",
                &[KArg::Int(e), KArg::Int(0b0100), KArg::Int(0x2 | 0x4)]
            )),
            0b0100
        );
    }

    #[test]
    fn zero_flag_event_send_is_error_not_bug() {
        let mut k = RtThreadKernel::new();
        let mut b = bus();
        let e = ok(call(
            &mut k,
            &mut b,
            "rt_event_create",
            &[KArg::Str("evt".into())],
        ));
        assert!(matches!(
            call(
                &mut k,
                &mut b,
                "rt_event_send",
                &[KArg::Int(e), KArg::Int(0)]
            ),
            InvokeResult::Err(-7)
        ));
    }

    #[test]
    fn bug22_needs_nack_and_long_read() {
        // NACK on a short read is a plain error; a long read off an
        // ACKing slave is fine.
        let mut k = RtThreadKernel::new();
        let mut b = bus();
        b.mmio.load_stream(&[0x01]);
        assert_eq!(
            call(
                &mut k,
                &mut b,
                "rt_i2c_master_recv",
                &[KArg::Int(0x50), KArg::Int(8)],
            ),
            InvokeResult::Err(-5)
        );
        b.mmio.load_stream(&[0x00]);
        assert!(!call(
            &mut k,
            &mut b,
            "rt_i2c_master_recv",
            &[KArg::Int(0x50), KArg::Int(20)],
        )
        .is_fault());
        // NACK on a bounce-buffered (long) read: double free.
        b.mmio.load_stream(&[0x01]);
        let r = call(
            &mut k,
            &mut b,
            "rt_i2c_master_recv",
            &[KArg::Int(0x50), KArg::Int(20)],
        );
        assert!(is_bug(&r, 22), "got {r:?}");
    }

    #[test]
    fn bug23_needs_second_start_on_active_engine() {
        // Two starts with the ACTIVE bit clear: fine.
        let mut k = RtThreadKernel::new();
        let mut b = bus();
        b.mmio.load_stream(&[0x00]);
        for _ in 0..2 {
            ok(call(
                &mut k,
                &mut b,
                "rt_dma_start",
                &[KArg::Int(0x10), KArg::Int(0x20), KArg::Int(256)],
            ));
        }
        // Completion between starts retires the descriptor: fine.
        let mut k = RtThreadKernel::new();
        let mut b = bus();
        b.mmio.load_stream(&[0x08]);
        ok(call(
            &mut k,
            &mut b,
            "rt_dma_start",
            &[KArg::Int(0x10), KArg::Int(0x20), KArg::Int(256)],
        ));
        {
            let mut cov = crate::ctx::CovState::uninstrumented();
            let mut ctx = crate::ctx::ExecCtx::new(&mut b, &mut cov);
            k.on_interrupt(&mut ctx, eof_hal::irq::DMA, &256u32.to_le_bytes());
        }
        assert!(!call(
            &mut k,
            &mut b,
            "rt_dma_start",
            &[KArg::Int(0x10), KArg::Int(0x20), KArg::Int(256)],
        )
        .is_fault());
        // Back-to-back starts on an ACTIVE engine: depth-2 bug #23
        // (replay pins the latched status byte across both polls).
        let mut k = RtThreadKernel::new();
        let mut b = bus();
        b.mmio.load_stream(&[0x08]);
        ok(call(
            &mut k,
            &mut b,
            "rt_dma_start",
            &[KArg::Int(0x10), KArg::Int(0x20), KArg::Int(256)],
        ));
        let r = call(
            &mut k,
            &mut b,
            "rt_dma_start",
            &[KArg::Int(0x10), KArg::Int(0x20), KArg::Int(256)],
        );
        assert!(is_bug(&r, 23), "got {r:?}");
    }

    #[test]
    fn no_spurious_faults_on_zero_args() {
        let n = RtThreadKernel::new().api_table().len() as u16;
        let mut b = bus();
        for id in 0..n {
            // Skip rt_object_init (id 2): zero args means empty name,
            // which IS bug #8 by design.
            if id == 2 {
                continue;
            }
            // Fresh kernel per API: state left by one call (e.g. an
            // unregistered console) must not bleed into the next check.
            let mut k = RtThreadKernel::new();
            let mut cov = crate::ctx::CovState::uninstrumented();
            let mut ctx = crate::ctx::ExecCtx::new(&mut b, &mut cov);
            let r = k.invoke(&mut ctx, id, &[]);
            assert!(!r.is_fault(), "api {id} faulted with no args: {r:?}");
        }
    }
}
